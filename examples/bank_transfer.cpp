// Bank example: linearizable transfers between accounts sharded over
// partitions — the classic "x := y" cross-partition command family from the
// paper's §3, built directly on the public API (custom PRObject +
// AppStateMachine, not one of the bundled workloads).
//
// Run:  ./bank_transfer
#include <cstdio>
#include <memory>
#include <vector>

#include "core/system.h"

using namespace dynastar;

namespace {

class Account final : public core::PRObject {
 public:
  explicit Account(std::int64_t b) : balance(b) {}
  std::unique_ptr<core::PRObject> clone() const override {
    return std::make_unique<Account>(balance);
  }
  std::int64_t balance;
};

struct Transfer final : sim::Message {
  Transfer(std::int64_t a) : amount(a) {}
  const char* type_name() const override { return "bank.Transfer"; }
  std::int64_t amount;  // objects[0] -> objects[1]
};

struct Audit final : sim::Message {
  const char* type_name() const override { return "bank.Audit"; }
};

struct BankReply final : sim::Message {
  const char* type_name() const override { return "bank.Reply"; }
  bool ok = true;
  std::int64_t total = 0;
};

class BankApp final : public core::AppStateMachine {
 public:
  core::ExecResult execute(const core::Command& cmd,
                           core::ObjectStore& store) override {
    auto reply = sim::make_mutable_message<BankReply>();
    if (auto* transfer = dynamic_cast<const Transfer*>(cmd.payload.get())) {
      auto* from = dynamic_cast<Account*>(store.find(cmd.objects[0]));
      auto* to = dynamic_cast<Account*>(store.find(cmd.objects[1]));
      if (from == nullptr || to == nullptr || from->balance < transfer->amount) {
        reply->ok = false;
      } else {
        from->balance -= transfer->amount;
        to->balance += transfer->amount;
      }
      return {reply, microseconds(8)};
    }
    if (dynamic_cast<const Audit*>(cmd.payload.get()) != nullptr) {
      for (ObjectId id : cmd.objects) {
        if (auto* account = dynamic_cast<Account*>(store.find(id)))
          reply->total += account->balance;
      }
      return {reply, microseconds(5)};
    }
    reply->ok = false;
    return {reply, microseconds(2)};
  }

  core::ObjectPtr make_object(const core::Command&) override {
    return std::make_shared<Account>(0);
  }
};

class TellerDriver final : public core::ClientDriver {
 public:
  TellerDriver(std::uint64_t accounts, int ops) : accounts_(accounts), ops_(ops) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime) override {
    if (ops_-- <= 0) return std::nullopt;
    core::CommandSpec spec;
    std::uint64_t from = rng.uniform(0, accounts_ - 1);
    std::uint64_t to = rng.uniform(0, accounts_ - 1);
    if (to == from) to = (to + 1) % accounts_;
    spec.objects.emplace_back(ObjectId{from}, core::VertexId{from});
    spec.objects.emplace_back(ObjectId{to}, core::VertexId{to});
    spec.payload = sim::make_message<Transfer>(
        static_cast<std::int64_t>(rng.uniform(1, 50)));
    return spec;
  }

  void on_result(const core::CommandSpec&, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime, SimTime) override {
    if (status != core::ReplyStatus::kOk) return;
    if (auto* reply = dynamic_cast<const BankReply*>(payload.get()))
      reply->ok ? ++succeeded : ++declined;
  }

  int succeeded = 0;
  int declined = 0;

 private:
  std::uint64_t accounts_;
  int ops_;
};

class AuditDriver final : public core::ClientDriver {
 public:
  AuditDriver(std::uint64_t accounts, SimTime start)
      : accounts_(accounts), start_(start) {}

  std::optional<core::CommandSpec> next(Rng&, SimTime now) override {
    if (done_) return std::nullopt;
    if (now < start_) return core::CommandSpec::pause_for(milliseconds(100));
    done_ = true;
    core::CommandSpec spec;
    for (std::uint64_t a = 0; a < accounts_; ++a)
      spec.objects.emplace_back(ObjectId{a}, core::VertexId{a});
    spec.payload = sim::make_message<Audit>();
    return spec;
  }

  void on_result(const core::CommandSpec&, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime, SimTime) override {
    if (status != core::ReplyStatus::kOk) return;
    if (auto* reply = dynamic_cast<const BankReply*>(payload.get()))
      audited_total = reply->total;
  }

  std::int64_t audited_total = -1;

 private:
  std::uint64_t accounts_;
  SimTime start_;
  bool done_ = false;
};

}  // namespace

int main() {
  constexpr std::uint64_t kAccounts = 16;
  constexpr std::int64_t kInitialBalance = 1000;

  core::SystemConfig config;
  config.num_partitions = 4;
  core::System system(config,
                      [] { return std::make_unique<BankApp>(); });
  core::Assignment assignment;
  for (std::uint64_t a = 0; a < kAccounts; ++a) {
    const PartitionId p{a % 4};
    assignment[core::VertexId{a}] = p;
    system.preload_object(ObjectId{a}, core::VertexId{a}, p,
                          Account(kInitialBalance));
  }
  system.preload_assignment(assignment);

  std::vector<TellerDriver*> tellers;
  for (int c = 0; c < 8; ++c) {
    auto driver = std::make_unique<TellerDriver>(kAccounts, 100);
    tellers.push_back(driver.get());
    system.add_client(std::move(driver));
  }
  // One global audit across ALL partitions, concurrent with the transfers:
  // linearizability means it must still see exactly the total money supply.
  auto audit = std::make_unique<AuditDriver>(kAccounts, seconds(1));
  auto* audit_ptr = audit.get();
  system.add_client(std::move(audit));

  system.run_until(seconds(10));

  int ok = 0, declined = 0;
  for (auto* teller : tellers) {
    ok += teller->succeeded;
    declined += teller->declined;
  }
  std::printf("transfers: %d succeeded, %d declined (insufficient funds)\n",
              ok, declined);
  std::printf("concurrent audit total: %lld (expected %lld)\n",
              static_cast<long long>(audit_ptr->audited_total),
              static_cast<long long>(kAccounts * kInitialBalance));
  const bool conserved =
      audit_ptr->audited_total ==
      static_cast<std::int64_t>(kAccounts * kInitialBalance);
  std::printf(conserved ? "money conserved — the audit linearized between "
                          "transfers.\n"
                        : "MONEY NOT CONSERVED — bug!\n");
  return conserved ? 0 : 1;
}
