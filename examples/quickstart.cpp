// Quickstart: a replicated key-value store on DynaStar in ~60 lines of
// application code.
//
//   1. Define your replicated objects (PRObject) and server logic
//      (AppStateMachine) — here we reuse the bundled KV application.
//   2. Build a System: partitions, replicas, acceptors, and the oracle are
//      wired automatically.
//   3. Preload state and an initial assignment (or create() at runtime).
//   4. Add closed-loop clients and run.
//
// Run:  ./quickstart
#include <cstdio>
#include <memory>

#include "core/system.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

using namespace dynastar;

int main() {
  // --- 1. Configure: DynaStar with 2 partitions (defaults: 2 replicas + 3
  //        acceptors per partition, plus a replicated oracle). ---
  core::SystemConfig config;
  config.mode = core::ExecutionMode::kDynaStar;
  config.num_partitions = 2;
  core::System system(config, workloads::kv_app_factory());

  // --- 2. Preload 8 keys, round-robin across partitions. ---
  core::Assignment assignment;
  for (std::uint64_t key = 0; key < 8; ++key) {
    const PartitionId partition{key % 2};
    assignment[core::VertexId{key}] = partition;
    system.preload_object(ObjectId{key}, core::VertexId{key}, partition,
                          workloads::KvObject(0));
  }
  system.preload_assignment(assignment);

  // --- 3. A scripted client: single-key put/get plus one cross-partition
  //        multi-key put (keys 0 and 1 live on different partitions). ---
  using workloads::KvOp;
  std::vector<core::CommandSpec> script;
  auto make = [](std::initializer_list<std::uint64_t> keys, KvOp::Kind kind,
                 std::uint64_t value) {
    core::CommandSpec spec;
    for (auto k : keys)
      spec.objects.emplace_back(ObjectId{k}, core::VertexId{k});
    spec.payload = sim::make_message<KvOp>(kind, value);
    return spec;
  };
  script.push_back(make({0}, KvOp::Kind::kPut, 42));
  script.push_back(make({0}, KvOp::Kind::kGet, 0));
  script.push_back(make({0, 1}, KvOp::Kind::kPut, 7));  // cross-partition!
  script.push_back(make({1}, KvOp::Kind::kGet, 0));

  std::vector<workloads::ScriptedKvDriver::Record> records;
  system.add_client(
      std::make_unique<workloads::ScriptedKvDriver>(script, &records));

  // --- 4. Run the simulated cluster. ---
  system.run_until(seconds(2));

  std::printf("quickstart: %zu commands completed\n", records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& record = records[i];
    std::printf("  cmd %zu: status=%s latency=%.2fms observed=[", i,
                record.status == core::ReplyStatus::kOk ? "ok" : "error",
                to_millis(record.completed_at - record.issued_at));
    for (const auto& value : record.observed)
      std::printf("%s ", value ? std::to_string(*value).c_str() : "-");
    std::printf("]\n");
  }
  std::printf("\nThe multi-key put was executed once, at a single partition,\n"
              "after DynaStar borrowed the remote variable and returned it\n"
              "afterwards — the get on key 1 (owned by the other partition)\n"
              "sees 7.\n");
  return records.size() == 4 ? 0 : 1;
}
