// Chirper example: a small social network under skewed load, showing
// DynaStar adapting its partitioning while the service runs.
//
// We start from a random placement, let Zipfian clients read timelines and
// post, and watch the oracle's repartition cut the multi-partition rate.
//
// Run:  ./chirper_feed
#include <cstdio>
#include <memory>

#include "baselines/registry.h"
#include "core/system.h"
#include "workloads/chirper.h"
#include "workloads/social_graph.h"

using namespace dynastar;
namespace chirper = workloads::chirper;

int main() {
  // A 2,000-user preferential-attachment network (stand-in for the paper's
  // Higgs Twitter dataset) over 4 partitions.
  auto graph = workloads::generate_social_graph(2000, 4, 42);
  std::printf("social graph: %zu users, %zu follow edges, max followers %u\n",
              graph.num_users(), graph.num_edges(), graph.max_followers());

  auto config = baselines::config_for("dynastar", 4);
  config.repartition_hint_threshold = 40'000;
  config.min_repartition_interval = seconds(8);
  core::System system(config, chirper::chirper_app_factory());
  chirper::setup(system, graph, chirper::Placement::kRandom);

  auto directory = chirper::make_directory(graph);
  auto zipf = std::make_shared<ZipfGenerator>(2000, 0.95);
  chirper::WorkloadMix mix;  // 85% timeline reads, 15% posts
  for (int c = 0; c < 24; ++c) {
    system.add_client(
        std::make_unique<chirper::ChirperDriver>(directory, mix, zipf));
  }

  const std::size_t duration = 30;
  system.run_until(seconds(duration));

  std::printf("\n%4s %12s %10s %8s\n", "t(s)", "commands/s", "mpart/s",
              "plans");
  const auto& completed = system.metrics().series("completed");
  const auto& mpart = system.metrics().series("mpart");
  const auto& plans = system.metrics().series("oracle.plans_applied");
  for (std::size_t t = 0; t < duration; t += 2) {
    std::printf("%4zu %12.0f %10.0f %8.0f\n", t, completed.at(t), mpart.at(t),
                plans.at(t));
  }
  const auto* latency = system.metrics().find_histogram("latency");
  std::printf("\noverall: %.0f commands, avg latency %.2fms, p95 %.2fms\n",
              completed.total(),
              latency ? to_millis(static_cast<SimTime>(latency->mean())) : 0.0,
              latency ? to_millis(latency->percentile(0.95)) : 0.0);
  std::printf("Watch the mpart/s column drop after the plan lands — that is\n"
              "DynaStar moving follower communities onto shared partitions.\n");
  return 0;
}
