// TPC-C example: an order-processing evening across four warehouses, with
// a mid-run repartition after state was loaded badly (randomly scattered).
//
// Run:  ./tpcc_night
#include <cstdio>
#include <memory>

#include "baselines/registry.h"
#include "core/system.h"
#include "workloads/tpcc.h"

using namespace dynastar;
namespace tpcc = workloads::tpcc;

int main() {
  const std::uint32_t warehouses = 4;
  auto config = baselines::config_for("dynastar", warehouses);
  config.repartition_hint_threshold = UINT64_MAX;  // we trigger explicitly

  tpcc::Scale scale;  // scaled-down tables, standard transaction mix
  core::System system(config, tpcc::tpcc_app_factory(scale));
  tpcc::setup(system, scale, warehouses, tpcc::Placement::kRandom);

  for (std::uint32_t c = 0; c < 24; ++c) {
    system.add_client(std::make_unique<tpcc::TpccDriver>(
        scale, warehouses, c % warehouses + 1, c / warehouses % 10 + 1));
  }

  std::printf("phase 1: randomly scattered districts (every transaction\n"
              "         coordinates across partitions)...\n");
  system.run_until(seconds(8));
  const double before = system.metrics().series("completed").total();

  std::printf("phase 2: ops team asks the oracle for a repartition...\n");
  system.oracle(0).request_repartition();
  system.oracle(1).request_repartition();
  system.run_until(seconds(16));
  const double after = system.metrics().series("completed").total() - before;

  std::printf("\ntransactions completed: %.0f (first 8s) vs %.0f (last 8s)\n",
              before, after);
  const auto& mpart = system.metrics().series("mpart");
  const auto& executed = system.metrics().series("executed");
  auto window_pct = [&](std::size_t from, std::size_t to) {
    double m = 0, e = 0;
    for (std::size_t t = from; t < to; ++t) {
      m += mpart.at(t);
      e += executed.at(t);
    }
    return e > 0 ? 100.0 * m / e : 0.0;
  };
  std::printf("multi-partition rate: %.1f%% before, %.1f%% after\n",
              window_pct(0, 8), window_pct(10, 16));
  std::printf("\nAfter METIS places each warehouse-and-districts cluster on\n"
              "one partition, only inherent remote TPC-C traffic (remote\n"
              "stock, remote payments) crosses partitions.\n");
  return after > before ? 0 : 1;
}
