# Empty compiler generated dependencies file for chirper_feed.
# This may be replaced when dependencies are built.
