file(REMOVE_RECURSE
  "CMakeFiles/chirper_feed.dir/chirper_feed.cpp.o"
  "CMakeFiles/chirper_feed.dir/chirper_feed.cpp.o.d"
  "chirper_feed"
  "chirper_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirper_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
