file(REMOVE_RECURSE
  "CMakeFiles/tpcc_night.dir/tpcc_night.cpp.o"
  "CMakeFiles/tpcc_night.dir/tpcc_night.cpp.o.d"
  "tpcc_night"
  "tpcc_night.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_night.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
