# Empty dependencies file for tpcc_night.
# This may be replaced when dependencies are built.
