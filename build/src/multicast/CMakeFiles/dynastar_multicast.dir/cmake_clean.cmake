file(REMOVE_RECURSE
  "CMakeFiles/dynastar_multicast.dir/member.cpp.o"
  "CMakeFiles/dynastar_multicast.dir/member.cpp.o.d"
  "libdynastar_multicast.a"
  "libdynastar_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynastar_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
