# Empty compiler generated dependencies file for dynastar_multicast.
# This may be replaced when dependencies are built.
