file(REMOVE_RECURSE
  "libdynastar_multicast.a"
)
