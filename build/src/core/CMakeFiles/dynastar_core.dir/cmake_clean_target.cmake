file(REMOVE_RECURSE
  "libdynastar_core.a"
)
