file(REMOVE_RECURSE
  "CMakeFiles/dynastar_core.dir/client.cpp.o"
  "CMakeFiles/dynastar_core.dir/client.cpp.o.d"
  "CMakeFiles/dynastar_core.dir/oracle.cpp.o"
  "CMakeFiles/dynastar_core.dir/oracle.cpp.o.d"
  "CMakeFiles/dynastar_core.dir/server.cpp.o"
  "CMakeFiles/dynastar_core.dir/server.cpp.o.d"
  "CMakeFiles/dynastar_core.dir/system.cpp.o"
  "CMakeFiles/dynastar_core.dir/system.cpp.o.d"
  "libdynastar_core.a"
  "libdynastar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynastar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
