
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/dynastar_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/dynastar_core.dir/client.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/core/CMakeFiles/dynastar_core.dir/oracle.cpp.o" "gcc" "src/core/CMakeFiles/dynastar_core.dir/oracle.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/dynastar_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/dynastar_core.dir/server.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/dynastar_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/dynastar_core.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/multicast/CMakeFiles/dynastar_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/partitioning/CMakeFiles/dynastar_partitioning.dir/DependInfo.cmake"
  "/root/repo/build/src/paxos/CMakeFiles/dynastar_paxos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynastar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynastar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
