# Empty compiler generated dependencies file for dynastar_core.
# This may be replaced when dependencies are built.
