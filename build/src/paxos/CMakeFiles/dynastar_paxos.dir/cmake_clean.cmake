file(REMOVE_RECURSE
  "CMakeFiles/dynastar_paxos.dir/acceptor.cpp.o"
  "CMakeFiles/dynastar_paxos.dir/acceptor.cpp.o.d"
  "CMakeFiles/dynastar_paxos.dir/replica.cpp.o"
  "CMakeFiles/dynastar_paxos.dir/replica.cpp.o.d"
  "libdynastar_paxos.a"
  "libdynastar_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynastar_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
