# Empty dependencies file for dynastar_paxos.
# This may be replaced when dependencies are built.
