file(REMOVE_RECURSE
  "libdynastar_paxos.a"
)
