
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/chirper.cpp" "src/workloads/CMakeFiles/dynastar_workloads.dir/chirper.cpp.o" "gcc" "src/workloads/CMakeFiles/dynastar_workloads.dir/chirper.cpp.o.d"
  "/root/repo/src/workloads/smallbank.cpp" "src/workloads/CMakeFiles/dynastar_workloads.dir/smallbank.cpp.o" "gcc" "src/workloads/CMakeFiles/dynastar_workloads.dir/smallbank.cpp.o.d"
  "/root/repo/src/workloads/social_graph.cpp" "src/workloads/CMakeFiles/dynastar_workloads.dir/social_graph.cpp.o" "gcc" "src/workloads/CMakeFiles/dynastar_workloads.dir/social_graph.cpp.o.d"
  "/root/repo/src/workloads/tpcc.cpp" "src/workloads/CMakeFiles/dynastar_workloads.dir/tpcc.cpp.o" "gcc" "src/workloads/CMakeFiles/dynastar_workloads.dir/tpcc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dynastar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/multicast/CMakeFiles/dynastar_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/partitioning/CMakeFiles/dynastar_partitioning.dir/DependInfo.cmake"
  "/root/repo/build/src/paxos/CMakeFiles/dynastar_paxos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynastar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynastar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
