file(REMOVE_RECURSE
  "libdynastar_workloads.a"
)
