# Empty compiler generated dependencies file for dynastar_workloads.
# This may be replaced when dependencies are built.
