file(REMOVE_RECURSE
  "CMakeFiles/dynastar_workloads.dir/chirper.cpp.o"
  "CMakeFiles/dynastar_workloads.dir/chirper.cpp.o.d"
  "CMakeFiles/dynastar_workloads.dir/smallbank.cpp.o"
  "CMakeFiles/dynastar_workloads.dir/smallbank.cpp.o.d"
  "CMakeFiles/dynastar_workloads.dir/social_graph.cpp.o"
  "CMakeFiles/dynastar_workloads.dir/social_graph.cpp.o.d"
  "CMakeFiles/dynastar_workloads.dir/tpcc.cpp.o"
  "CMakeFiles/dynastar_workloads.dir/tpcc.cpp.o.d"
  "libdynastar_workloads.a"
  "libdynastar_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynastar_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
