file(REMOVE_RECURSE
  "CMakeFiles/dynastar_baselines.dir/presets.cpp.o"
  "CMakeFiles/dynastar_baselines.dir/presets.cpp.o.d"
  "libdynastar_baselines.a"
  "libdynastar_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynastar_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
