file(REMOVE_RECURSE
  "libdynastar_baselines.a"
)
