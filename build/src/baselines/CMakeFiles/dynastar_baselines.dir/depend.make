# Empty dependencies file for dynastar_baselines.
# This may be replaced when dependencies are built.
