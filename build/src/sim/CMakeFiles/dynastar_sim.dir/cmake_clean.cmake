file(REMOVE_RECURSE
  "CMakeFiles/dynastar_sim.dir/network.cpp.o"
  "CMakeFiles/dynastar_sim.dir/network.cpp.o.d"
  "CMakeFiles/dynastar_sim.dir/process.cpp.o"
  "CMakeFiles/dynastar_sim.dir/process.cpp.o.d"
  "CMakeFiles/dynastar_sim.dir/simulator.cpp.o"
  "CMakeFiles/dynastar_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/dynastar_sim.dir/world.cpp.o"
  "CMakeFiles/dynastar_sim.dir/world.cpp.o.d"
  "libdynastar_sim.a"
  "libdynastar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynastar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
