file(REMOVE_RECURSE
  "libdynastar_sim.a"
)
