# Empty dependencies file for dynastar_sim.
# This may be replaced when dependencies are built.
