file(REMOVE_RECURSE
  "CMakeFiles/dynastar_common.dir/histogram.cpp.o"
  "CMakeFiles/dynastar_common.dir/histogram.cpp.o.d"
  "CMakeFiles/dynastar_common.dir/linearizability.cpp.o"
  "CMakeFiles/dynastar_common.dir/linearizability.cpp.o.d"
  "CMakeFiles/dynastar_common.dir/logging.cpp.o"
  "CMakeFiles/dynastar_common.dir/logging.cpp.o.d"
  "CMakeFiles/dynastar_common.dir/metrics.cpp.o"
  "CMakeFiles/dynastar_common.dir/metrics.cpp.o.d"
  "CMakeFiles/dynastar_common.dir/rng.cpp.o"
  "CMakeFiles/dynastar_common.dir/rng.cpp.o.d"
  "libdynastar_common.a"
  "libdynastar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynastar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
