file(REMOVE_RECURSE
  "libdynastar_common.a"
)
