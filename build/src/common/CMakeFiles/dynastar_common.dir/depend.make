# Empty dependencies file for dynastar_common.
# This may be replaced when dependencies are built.
