file(REMOVE_RECURSE
  "CMakeFiles/dynastar_partitioning.dir/graph.cpp.o"
  "CMakeFiles/dynastar_partitioning.dir/graph.cpp.o.d"
  "CMakeFiles/dynastar_partitioning.dir/partitioner.cpp.o"
  "CMakeFiles/dynastar_partitioning.dir/partitioner.cpp.o.d"
  "libdynastar_partitioning.a"
  "libdynastar_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynastar_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
