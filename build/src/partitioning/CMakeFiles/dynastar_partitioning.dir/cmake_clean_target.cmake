file(REMOVE_RECURSE
  "libdynastar_partitioning.a"
)
