# Empty compiler generated dependencies file for dynastar_partitioning.
# This may be replaced when dependencies are built.
