# Empty compiler generated dependencies file for fig8_oracle_load.
# This may be replaced when dependencies are built.
