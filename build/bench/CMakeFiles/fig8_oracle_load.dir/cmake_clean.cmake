file(REMOVE_RECURSE
  "CMakeFiles/fig8_oracle_load.dir/fig8_oracle_load.cpp.o"
  "CMakeFiles/fig8_oracle_load.dir/fig8_oracle_load.cpp.o.d"
  "fig8_oracle_load"
  "fig8_oracle_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_oracle_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
