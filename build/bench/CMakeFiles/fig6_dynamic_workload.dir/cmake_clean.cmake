file(REMOVE_RECURSE
  "CMakeFiles/fig6_dynamic_workload.dir/fig6_dynamic_workload.cpp.o"
  "CMakeFiles/fig6_dynamic_workload.dir/fig6_dynamic_workload.cpp.o.d"
  "fig6_dynamic_workload"
  "fig6_dynamic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dynamic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
