# Empty compiler generated dependencies file for fig6_dynamic_workload.
# This may be replaced when dependencies are built.
