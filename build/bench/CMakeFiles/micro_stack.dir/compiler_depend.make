# Empty compiler generated dependencies file for micro_stack.
# This may be replaced when dependencies are built.
