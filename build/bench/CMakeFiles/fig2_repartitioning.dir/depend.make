# Empty dependencies file for fig2_repartitioning.
# This may be replaced when dependencies are built.
