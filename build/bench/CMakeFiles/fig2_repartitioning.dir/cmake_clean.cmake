file(REMOVE_RECURSE
  "CMakeFiles/fig2_repartitioning.dir/fig2_repartitioning.cpp.o"
  "CMakeFiles/fig2_repartitioning.dir/fig2_repartitioning.cpp.o.d"
  "fig2_repartitioning"
  "fig2_repartitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_repartitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
