# Empty compiler generated dependencies file for fig3_tpcc_scalability.
# This may be replaced when dependencies are built.
