
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_tpcc_scalability.cpp" "bench/CMakeFiles/fig3_tpcc_scalability.dir/fig3_tpcc_scalability.cpp.o" "gcc" "bench/CMakeFiles/fig3_tpcc_scalability.dir/fig3_tpcc_scalability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/dynastar_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dynastar_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dynastar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/multicast/CMakeFiles/dynastar_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/paxos/CMakeFiles/dynastar_paxos.dir/DependInfo.cmake"
  "/root/repo/build/src/partitioning/CMakeFiles/dynastar_partitioning.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynastar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynastar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
