# Empty dependencies file for fig4_social_scalability.
# This may be replaced when dependencies are built.
