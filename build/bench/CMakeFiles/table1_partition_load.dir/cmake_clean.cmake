file(REMOVE_RECURSE
  "CMakeFiles/table1_partition_load.dir/table1_partition_load.cpp.o"
  "CMakeFiles/table1_partition_load.dir/table1_partition_load.cpp.o.d"
  "table1_partition_load"
  "table1_partition_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_partition_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
