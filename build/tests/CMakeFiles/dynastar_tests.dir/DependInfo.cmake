
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_acceptor_unit.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_acceptor_unit.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_acceptor_unit.cpp.o.d"
  "/root/repo/tests/test_chirper_integration.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_chirper_integration.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_chirper_integration.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_core_units.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_core_units.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_core_units.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_fault_tolerance.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_fault_tolerance.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_fault_tolerance.cpp.o.d"
  "/root/repo/tests/test_kv_integration.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_kv_integration.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_kv_integration.cpp.o.d"
  "/root/repo/tests/test_linearizability_stack.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_linearizability_stack.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_linearizability_stack.cpp.o.d"
  "/root/repo/tests/test_multicast.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_multicast.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_multicast.cpp.o.d"
  "/root/repo/tests/test_network_partition.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_network_partition.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_network_partition.cpp.o.d"
  "/root/repo/tests/test_partitioner.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_partitioner.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_partitioner.cpp.o.d"
  "/root/repo/tests/test_paxos.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_paxos.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_paxos.cpp.o.d"
  "/root/repo/tests/test_repartitioning.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_repartitioning.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_repartitioning.cpp.o.d"
  "/root/repo/tests/test_replica_unit.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_replica_unit.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_replica_unit.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_smallbank.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_smallbank.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_smallbank.cpp.o.d"
  "/root/repo/tests/test_tpcc_integration.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_tpcc_integration.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_tpcc_integration.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_workload_units.cpp" "tests/CMakeFiles/dynastar_tests.dir/test_workload_units.cpp.o" "gcc" "tests/CMakeFiles/dynastar_tests.dir/test_workload_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/dynastar_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dynastar_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dynastar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/multicast/CMakeFiles/dynastar_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/paxos/CMakeFiles/dynastar_paxos.dir/DependInfo.cmake"
  "/root/repo/build/src/partitioning/CMakeFiles/dynastar_partitioning.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynastar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynastar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
