# Empty compiler generated dependencies file for dynastar_tests.
# This may be replaced when dependencies are built.
