// Multi-Paxos tests: agreement, total order across replicas, leader
// failover, message loss, and acceptor crash/recovery.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "paxos/nodes.h"
#include "paxos/replica.h"
#include "sim/process.h"

namespace dynastar::paxos {
namespace {

struct Payload final : sim::Message {
  explicit Payload(std::uint64_t v) : value(v) {}
  const char* type_name() const override { return "test.Payload"; }
  std::uint64_t value;
};

/// Node hosting a bare ReplicaCore that records its delivery sequence.
class ReplicaNode final : public sim::Process {
 public:
  ReplicaNode(ProcessId id, sim::World& world, const Topology& topology,
              GroupId group)
      : sim::Process(id, world) {
    ReplicaConfig config;
    core_ = std::make_unique<ReplicaCore>(*this, topology, group, config);
    core_->set_deliver([this](std::uint64_t, const sim::MessagePtr& value) {
      if (auto* payload = dynamic_cast<const Payload*>(value.get()))
        delivered.push_back(payload->value);
    });
  }
  void on_start() override { core_->start(); }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    core_->handle(from, msg);
  }
  ReplicaCore& core() { return *core_; }
  std::vector<std::uint64_t> delivered;

 private:
  std::unique_ptr<ReplicaCore> core_;
};

struct Cluster {
  explicit Cluster(std::uint64_t seed = 1, sim::NetworkConfig net = {})
      : world(net, seed) {
    GroupDef def;
    def.id = GroupId{0};
    def.replicas = {ProcessId{0}, ProcessId{1}};
    def.acceptors = {ProcessId{2}, ProcessId{3}, ProcessId{4}};
    topology.add_group(def);
    replicas.push_back(&world.spawn<ReplicaNode>(topology, GroupId{0}));
    replicas.push_back(&world.spawn<ReplicaNode>(topology, GroupId{0}));
    for (int i = 0; i < 3; ++i)
      acceptors.push_back(&world.spawn<AcceptorNode>(GroupId{0}));
  }

  sim::World world;
  Topology topology;
  std::vector<ReplicaNode*> replicas;
  std::vector<AcceptorNode*> acceptors;
};

TEST(Paxos, OrdersSubmittedValues) {
  Cluster cluster;
  cluster.world.run_until(milliseconds(100));  // leader bootstrap
  for (std::uint64_t v = 0; v < 50; ++v) cluster.replicas[0]->core().submit(
      sim::make_message<Payload>(v));
  cluster.world.run_until(seconds(2));
  ASSERT_EQ(cluster.replicas[0]->delivered.size(), 50u);
  for (std::uint64_t v = 0; v < 50; ++v)
    EXPECT_EQ(cluster.replicas[0]->delivered[v], v);  // FIFO from one submitter
}

TEST(Paxos, ReplicasAgreeOnOrder) {
  Cluster cluster;
  cluster.world.run_until(milliseconds(100));
  // Submit from both replicas (the non-leader forwards).
  for (std::uint64_t v = 0; v < 40; ++v)
    cluster.replicas[v % 2]->core().submit(sim::make_message<Payload>(v));
  cluster.world.run_until(seconds(2));
  EXPECT_EQ(cluster.replicas[0]->delivered.size(), 40u);
  EXPECT_EQ(cluster.replicas[0]->delivered, cluster.replicas[1]->delivered);
}

TEST(Paxos, SurvivesMessageLossAndDuplication) {
  sim::NetworkConfig net;
  net.drop_probability = 0.05;
  net.duplicate_probability = 0.05;
  Cluster cluster(7, net);
  cluster.world.run_until(milliseconds(200));
  for (std::uint64_t v = 0; v < 30; ++v)
    cluster.replicas[0]->core().submit(sim::make_message<Payload>(v));
  cluster.world.run_until(seconds(10));
  // Loss can delay but (with retry via elections/catch-up) all values from
  // the leader's batch buffer eventually decide; order must match.
  const auto& d0 = cluster.replicas[0]->delivered;
  const auto& d1 = cluster.replicas[1]->delivered;
  const std::size_t common = std::min(d0.size(), d1.size());
  for (std::size_t i = 0; i < common; ++i) EXPECT_EQ(d0[i], d1[i]);
  EXPECT_GT(common, 0u);
}

TEST(Paxos, LeaderFailoverPreservesOrderAndResumesProgress) {
  Cluster cluster;
  cluster.world.run_until(milliseconds(100));
  for (std::uint64_t v = 0; v < 20; ++v)
    cluster.replicas[0]->core().submit(sim::make_message<Payload>(v));
  cluster.world.run_until(seconds(1));
  ASSERT_TRUE(cluster.replicas[0]->core().is_leader());

  cluster.world.crash(cluster.replicas[0]->id());
  cluster.world.run_until(seconds(2));  // election timeout + phase 1
  EXPECT_TRUE(cluster.replicas[1]->core().is_leader());

  for (std::uint64_t v = 100; v < 120; ++v)
    cluster.replicas[1]->core().submit(sim::make_message<Payload>(v));
  cluster.world.run_until(seconds(4));
  const auto& delivered = cluster.replicas[1]->delivered;
  ASSERT_GE(delivered.size(), 40u);
  // Prefix decided by the old leader is preserved.
  for (std::uint64_t v = 0; v < 20; ++v) EXPECT_EQ(delivered[v], v);
  // New leader's values all present after the prefix.
  for (std::uint64_t v = 100; v < 120; ++v) {
    EXPECT_NE(std::find(delivered.begin(), delivered.end(), v),
              delivered.end());
  }
}

TEST(Paxos, AcceptorCrashRecoveryKeepsSafety) {
  Cluster cluster;
  cluster.world.run_until(milliseconds(100));
  for (std::uint64_t v = 0; v < 10; ++v)
    cluster.replicas[0]->core().submit(sim::make_message<Payload>(v));
  cluster.world.run_until(seconds(1));

  // Crash one acceptor (quorum of 2/3 remains), keep going.
  cluster.world.crash(cluster.acceptors[0]->id());
  for (std::uint64_t v = 10; v < 20; ++v)
    cluster.replicas[0]->core().submit(sim::make_message<Payload>(v));
  cluster.world.run_until(seconds(2));
  // Recover it; its durable promises/votes survive the crash.
  cluster.world.recover(cluster.acceptors[0]->id());
  for (std::uint64_t v = 20; v < 30; ++v)
    cluster.replicas[0]->core().submit(sim::make_message<Payload>(v));
  cluster.world.run_until(seconds(4));

  const auto& delivered = cluster.replicas[0]->delivered;
  ASSERT_EQ(delivered.size(), 30u);
  for (std::uint64_t v = 0; v < 30; ++v) EXPECT_EQ(delivered[v], v);
  EXPECT_EQ(cluster.replicas[1]->delivered, delivered);
}

TEST(Paxos, TwoAcceptorCrashesStallThenRecover) {
  Cluster cluster;
  cluster.world.run_until(milliseconds(100));
  cluster.world.crash(cluster.acceptors[0]->id());
  cluster.world.crash(cluster.acceptors[1]->id());
  for (std::uint64_t v = 0; v < 5; ++v)
    cluster.replicas[0]->core().submit(sim::make_message<Payload>(v));
  cluster.world.run_until(seconds(2));
  EXPECT_TRUE(cluster.replicas[0]->delivered.empty());  // no quorum

  cluster.world.recover(cluster.acceptors[0]->id());
  // Values sit in in_flight_ with no retransmit path until a new ballot;
  // resubmitting after recovery must succeed.
  for (std::uint64_t v = 10; v < 15; ++v)
    cluster.replicas[0]->core().submit(sim::make_message<Payload>(v));
  cluster.world.run_until(seconds(6));
  EXPECT_GE(cluster.replicas[0]->delivered.size(), 5u);
}

// Property sweep: agreement and gap-freedom over random fault seeds.
class PaxosSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaxosSeedSweep, AgreementUnderLossReorderJitter) {
  sim::NetworkConfig net;
  net.jitter = microseconds(400);  // heavy reordering
  net.drop_probability = 0.02;
  net.duplicate_probability = 0.02;
  Cluster cluster(GetParam(), net);
  cluster.world.run_until(milliseconds(200));
  for (std::uint64_t v = 0; v < 60; ++v)
    cluster.replicas[v % 2]->core().submit(sim::make_message<Payload>(v));
  cluster.world.run_until(seconds(15));

  const auto& d0 = cluster.replicas[0]->delivered;
  const auto& d1 = cluster.replicas[1]->delivered;
  const std::size_t common = std::min(d0.size(), d1.size());
  for (std::size_t i = 0; i < common; ++i) {
    ASSERT_EQ(d0[i], d1[i]) << "divergence at index " << i << " seed "
                            << GetParam();
  }
  EXPECT_GT(common, 30u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dynastar::paxos
