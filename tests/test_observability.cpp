// Command-lifecycle tracing invariants: tracing is side-effect-free (a
// traced run is identical to an untraced one), bit-deterministic across
// same-seed runs, well-formed as a span tree, and its phase breakdown
// telescopes exactly to end-to-end latency. Also covers the per-node
// labeled metric series the servers emit.
#include <gtest/gtest.h>

#include <map>

#include "common/metric_names.h"
#include "common/report.h"
#include "common/trace.h"
#include "core/scenario.h"
#include "tests/test_util.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

core::ScenarioBuilder kv_scenario(std::uint64_t seed) {
  return core::ScenarioBuilder()
      .execution_mode(core::ExecutionMode::kDynaStar)
      .partitions(2)
      .seed(seed)
      .repartitioning(false)
      .app(workloads::kv_app_factory())
      .preload_kv(16, workloads::KvObject(0))
      .clients(3, [](std::size_t) {
        return std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.4);
      });
}

struct RunResult {
  double completed = 0;
  double mpart = 0;
  double exchanged = 0;
  double latency_mean = 0;
  std::uint64_t events = 0;
  std::vector<TraceEvent> trace;
};

RunResult run(std::uint64_t seed, bool traced) {
  auto system = kv_scenario(seed).trace(traced).build();
  system->run_until(seconds(2));
  RunResult r;
  r.completed = system->metrics().series(metric::kCompleted).total();
  r.mpart = system->metrics().series(metric::kMultiPartition).total();
  r.exchanged = system->metrics().series(metric::kObjectsExchanged).total();
  if (const auto* latency =
          system->metrics().find_histogram(metric::kLatency))
    r.latency_mean = latency->mean();
  r.events = system->world().sim().executed_events();
  r.trace = system->world().trace().events();
  return r;
}

TEST(Observability, TracedRunMatchesUntracedRun) {
  const auto traced = run(7, true);
  const auto untraced = run(7, false);
  // Tracing must never perturb the simulation: same event count, same
  // outcomes, same metrics — only the trace buffer differs.
  EXPECT_EQ(traced.events, untraced.events);
  EXPECT_EQ(traced.completed, untraced.completed);
  EXPECT_EQ(traced.mpart, untraced.mpart);
  EXPECT_EQ(traced.exchanged, untraced.exchanged);
  EXPECT_EQ(traced.latency_mean, untraced.latency_mean);
  EXPECT_GT(traced.trace.size(), 0u);
  EXPECT_EQ(untraced.trace.size(), 0u);
}

TEST(Observability, SameSeedTracesAreIdentical) {
  const auto a = run(11, true);
  const auto b = run(11, true);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    ASSERT_EQ(a.trace[i], b.trace[i]) << "trace diverges at event " << i;
}

TEST(Observability, DifferentSeedTracesDiverge) {
  const auto a = run(1, true);
  const auto b = run(2, true);
  EXPECT_NE(a.trace, b.trace);
}

TEST(Observability, SpanNestingIsWellFormed) {
  const auto result = run(5, true);

  struct Span {
    SimTime issue = -1;
    SimTime complete = -1;
    std::uint64_t issues = 0;
    std::uint64_t completes = 0;
  };
  std::map<std::uint64_t, Span> spans;
  SimTime last_time = 0;
  for (const TraceEvent& ev : result.trace) {
    // Events are appended in simulation order.
    ASSERT_GE(ev.time, last_time);
    last_time = ev.time;
    switch (ev.point) {
      case TracePoint::kClientIssue: {
        Span& span = spans[ev.key];
        span.issue = ev.time;
        span.issues++;
        break;
      }
      case TracePoint::kClientComplete: {
        Span& span = spans[ev.key];
        span.complete = ev.time;
        span.completes++;
        break;
      }
      case TracePoint::kClientRoute:
      case TracePoint::kOracleRelay:
      case TracePoint::kServerDeliver:
      case TracePoint::kExecuteStart:
      case TracePoint::kReplySent: {
        // Inner lifecycle points happen after their command was issued.
        // (They may trail completion: the client completes on the first
        // replica's reply while stragglers are still executing.)
        auto it = spans.find(ev.key);
        ASSERT_NE(it, spans.end()) << "lifecycle event before issue";
        ASSERT_GE(ev.time, it->second.issue);
        break;
      }
      default:
        break;
    }
  }

  std::uint64_t completed_spans = 0;
  for (const auto& [cmd, span] : spans) {
    EXPECT_EQ(span.issues, 1u) << "command " << cmd << " issued twice";
    EXPECT_LE(span.completes, 1u);
    if (span.completes == 1) {
      EXPECT_GE(span.complete, span.issue);
      ++completed_spans;
    }
  }
  EXPECT_GT(completed_spans, 100u);
}

TEST(Observability, PhaseLatenciesSumToEndToEnd) {
  auto system = kv_scenario(3).trace().build();
  system->run_until(seconds(2));
  const auto breakdown = compute_phase_breakdown(system->world().trace());
  ASSERT_GT(breakdown.commands, 0u);
  ASSERT_EQ(breakdown.phases.size(), 6u);

  double phase_sum = 0;
  for (const auto& phase : breakdown.phases) {
    EXPECT_EQ(phase.count, breakdown.commands);
    EXPECT_GE(phase.total_ns, 0.0);
    phase_sum += phase.total_ns;
  }
  // The boundaries telescope, so the sum is exact up to double rounding —
  // far inside the 5% budget the acceptance criterion allows.
  EXPECT_NEAR(phase_sum, breakdown.e2e_total_ns,
              1e-9 * breakdown.e2e_total_ns);

  // Sanity on magnitudes: ordering and coordination dominate a
  // cross-partition KV run; execution is instantaneous in the simulator.
  const auto& order = breakdown.phases[2];
  EXPECT_GT(order.mean_ns(), 0.0);
  EXPECT_GT(breakdown.e2e_mean_ns(), order.mean_ns());
}

TEST(Observability, DisabledCollectorRecordsNothing) {
  TraceCollector trace;
  EXPECT_FALSE(trace.enabled());
  trace.record(TracePoint::kClientIssue, 10, 1, 1, 0);
  EXPECT_EQ(trace.size(), 0u);

  trace.enable();
  trace.record(TracePoint::kClientIssue, 10, 1, 1, 0, 2);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.events()[0].point, TracePoint::kClientIssue);
  EXPECT_EQ(trace.events()[0].detail, 2u);

  trace.enable(false);
  trace.record(TracePoint::kClientComplete, 20, 1, 1, 0);
  EXPECT_EQ(trace.size(), 1u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(Observability, PointNamesAreStable) {
  EXPECT_STREQ(TraceCollector::point_name(TracePoint::kClientIssue),
               "client_issue");
  EXPECT_STREQ(TraceCollector::point_name(TracePoint::kOracleRelay),
               "oracle_relay");
  EXPECT_STREQ(TraceCollector::point_name(TracePoint::kChaosEvent),
               "chaos_event");
  EXPECT_STREQ(TraceCollector::point_name(TracePoint::kAdmit), "admit");
  EXPECT_STREQ(TraceCollector::point_name(TracePoint::kShed), "shed");
  EXPECT_STREQ(TraceCollector::point_name(TracePoint::kBusyReply),
               "busy_reply");
}

TEST(Observability, AdmissionTraceIsWellFormed) {
  // Tight caps on a loss-free network force the admission gates to engage.
  // Every gate decision must surface in the trace, and the admit / shed /
  // busy_reply events for one attempt must be mutually consistent:
  //   * an attempt is either admitted or shed, never both (loss-free runs
  //     order exactly one StartEntry per attempt);
  //   * every busy_reply follows a shed of the same (command, attempt) and
  //     carries a positive retry-after hint;
  //   * every command that was ever shed still completes (Busy is a
  //     deferral, not a verdict).
  std::vector<KvOperation> history;
  testutil::StatusTally tally;
  constexpr std::size_t kTraceClients = 16;
  constexpr int kTraceOps = 25;
  auto system =
      core::ScenarioBuilder()
          .execution_mode(core::ExecutionMode::kDynaStar)
          .partitions(2)
          .seed(13)
          .repartitioning(false)
          .app(workloads::kv_app_factory())
          .preload_kv(12, workloads::KvObject(0))
          .queue_cap(4)
          .clients(kTraceClients,
                   [&](std::size_t) {
                     return std::make_unique<testutil::RecordingKvDriver>(
                         12, kTraceOps, &history, &tally);
                   })
          .trace()
          .build();
  system->run_until(seconds(20));
  ASSERT_EQ(tally.completions, kTraceClients * kTraceOps)
      << "shed commands must eventually complete";

  struct Attempt {
    bool admitted = false;
    bool shed = false;
    SimTime first_shed = 0;
  };
  std::map<std::pair<std::uint64_t, std::uint32_t>, Attempt> attempts;
  std::map<std::uint64_t, SimTime> completed;
  std::size_t admits = 0, sheds = 0, busy_replies = 0;
  for (const TraceEvent& ev : system->world().trace().events()) {
    const auto id = std::make_pair(ev.key, ev.attempt);
    switch (ev.point) {
      case TracePoint::kAdmit: {
        ++admits;
        attempts[id].admitted = true;
        break;
      }
      case TracePoint::kShed: {
        ++sheds;
        Attempt& a = attempts[id];
        if (!a.shed) a.first_shed = ev.time;
        a.shed = true;
        break;
      }
      case TracePoint::kBusyReply: {
        ++busy_replies;
        auto it = attempts.find(id);
        ASSERT_NE(it, attempts.end()) << "busy_reply without a shed";
        EXPECT_TRUE(it->second.shed) << "busy_reply without a shed";
        EXPECT_GE(ev.time, it->second.first_shed);
        EXPECT_GT(ev.detail, 0u) << "busy_reply without a retry-after hint";
        break;
      }
      case TracePoint::kClientComplete:
        completed[ev.key] = ev.time;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(admits, 0u);
  EXPECT_GT(sheds, 0u);
  EXPECT_GT(busy_replies, 0u);
  for (const auto& [id, a] : attempts) {
    EXPECT_FALSE(a.admitted && a.shed)
        << "attempt " << id.second << " of command " << id.first
        << " was both admitted and shed";
    if (a.shed) {
      EXPECT_TRUE(completed.count(id.first))
          << "shed command " << id.first << " never completed";
    }
  }
}

TEST(Observability, LabeledMetricNamesAreCanonical) {
  EXPECT_EQ(labeled_metric_name("server.executed",
                                {{"replica", "0"}, {"partition", "2"}}),
            "server.executed{partition=2,replica=0}");
  EXPECT_EQ(labeled_metric_name("x", {}), "x");

  MetricsRegistry registry;
  registry.series("server.executed", {{"partition", "1"}, {"replica", "0"}})
      .add(0, 3.0);
  // Label order in the call does not matter: same set, same series.
  const auto* found = registry.find_series("server.executed",
                                           {{"replica", "0"},
                                            {"partition", "1"}});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->total(), 3.0);
}

TEST(Observability, ServersEmitPerNodeLabeledSeries) {
  auto system = kv_scenario(9).build();
  system->run_until(seconds(2));
  auto& metrics = system->metrics();
  double labeled_total = 0;
  for (std::uint32_t p = 0; p < 2; ++p) {
    const auto* executed =
        metrics.find_series(metric::kServerExecuted,
                            {{"partition", std::to_string(p)},
                             {"replica", "0"}});
    ASSERT_NE(executed, nullptr) << "missing labeled series for partition " << p;
    EXPECT_GT(executed->total(), 0.0);
    labeled_total += executed->total();
  }
  // Primary-replica labeled series must agree with the run-wide counter.
  EXPECT_EQ(labeled_total, metrics.series(metric::kExecuted).total());
}

}  // namespace
}  // namespace dynastar
