// Trace record/replay: a recorded random workload replays identically, and
// the same trace run against two execution modes yields the same
// application results (mode equivalence).
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"
#include "workloads/trace.h"

namespace dynastar {
namespace {

core::ScenarioBuilder scenario_for(core::ExecutionMode mode) {
  return core::ScenarioBuilder()
      .execution_mode(mode)
      .partitions(2)
      .repartitioning(false)
      .app(workloads::kv_app_factory())
      .preload_kv(16, workloads::KvObject(0));
}

workloads::Trace record_trace() {
  workloads::Trace trace;
  auto system = scenario_for(core::ExecutionMode::kDynaStar)
                    .clients(1,
                             [&](std::size_t) {
                               return std::make_unique<workloads::RecordingDriver>(
                                   std::make_unique<workloads::RandomKvDriver>(
                                       16, 0.5, 0.4),
                                   &trace);
                             })
                    .build();
  system->run_until(seconds(2));
  return trace;
}

TEST(Trace, RecordsIssuedCommands) {
  auto trace = record_trace();
  EXPECT_GT(trace.size(), 100u);
  EXPECT_EQ(trace.ok_count(), trace.size());
  // Times are monotone for a closed-loop client.
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_LE(trace.entries[i - 1].completed_at, trace.entries[i].issued_at);
}

TEST(Trace, ReplayIsDeterministic) {
  auto trace = std::make_shared<const workloads::Trace>(record_trace());

  auto run_replay = [&](core::ExecutionMode mode) {
    workloads::Trace sink;
    auto system = scenario_for(mode)
                      .clients(1,
                               [&](std::size_t) {
                                 return std::make_unique<workloads::ReplayDriver>(
                                     trace, false, &sink);
                               })
                      .build();
    system->run_until(seconds(20));
    return sink;
  };

  auto a = run_replay(core::ExecutionMode::kDynaStar);
  auto b = run_replay(core::ExecutionMode::kDynaStar);
  ASSERT_EQ(a.size(), trace->size());
  ASSERT_EQ(b.size(), trace->size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries[i].issued_at, b.entries[i].issued_at);
    EXPECT_EQ(a.entries[i].completed_at, b.entries[i].completed_at);
  }
}

TEST(Trace, SameTraceAcrossModesGivesSameFinalState) {
  auto trace = std::make_shared<const workloads::Trace>(record_trace());

  auto final_read = [&](core::ExecutionMode mode) {
    auto system = scenario_for(mode)
                      .clients(1,
                               [&](std::size_t) {
                                 return std::make_unique<workloads::ReplayDriver>(
                                     trace);
                               })
                      .build();
    system->run_until(seconds(20));
    // Read the final value of every key directly from the stores.
    std::vector<std::uint64_t> values;
    for (std::uint64_t k = 0; k < 16; ++k) {
      for (std::uint32_t p = 0; p < 2; ++p) {
        const auto& store = system->server(PartitionId{p}).store();
        if (const auto* obj = dynamic_cast<const workloads::KvObject*>(
                store.find(ObjectId{k}))) {
          values.push_back(obj->value);
        }
      }
    }
    return values;
  };

  // A single client's sequential trace is order-deterministic, so every
  // mode must end in the same application state.
  const auto dyna = final_read(core::ExecutionMode::kDynaStar);
  const auto ssmr = final_read(core::ExecutionMode::kSSMR);
  const auto dssmr = final_read(core::ExecutionMode::kDSSMR);
  EXPECT_EQ(dyna.size(), 16u);
  EXPECT_EQ(dyna, ssmr);
  EXPECT_EQ(dyna, dssmr);
}

TEST(Trace, PacedReplayRespectsIssueTimes) {
  auto trace = std::make_shared<const workloads::Trace>(record_trace());
  workloads::Trace sink;
  auto system = scenario_for(core::ExecutionMode::kDynaStar)
                    .clients(1,
                             [&](std::size_t) {
                               return std::make_unique<workloads::ReplayDriver>(
                                   trace, /*paced=*/true, &sink);
                             })
                    .build();
  system->run_until(seconds(30));
  ASSERT_EQ(sink.size(), trace->size());
  for (std::size_t i = 0; i < sink.size(); ++i)
    EXPECT_GE(sink.entries[i].issued_at, trace->entries[i].issued_at);
}

}  // namespace
}  // namespace dynastar
