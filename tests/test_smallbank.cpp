// SmallBank: unit tests of the transaction logic plus a full-stack money
// conservation property — the sum over all accounts changes only by the
// deposits/withdrawals applied, regardless of cross-partition moves.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workloads/smallbank.h"

namespace dynastar::workloads::smallbank {
namespace {

core::CommandPtr make_cmd(std::vector<std::uint32_t> customers,
                          sim::MessagePtr payload) {
  std::vector<ObjectId> ids;
  std::vector<core::VertexId> vertices;
  for (auto c : customers) {
    ids.push_back(customer_object(c));
    vertices.push_back(customer_vertex(c));
  }
  return sim::make_message<core::Command>(
      1, ProcessId{0}, core::CommandType::kAccess, std::move(ids),
      std::move(vertices), std::move(payload));
}

class SmallBankUnit : public ::testing::Test {
 protected:
  SmallBankUnit() {
    store_.put(customer_object(0), customer_vertex(0),
               std::make_shared<CustomerAccounts>(100.0, 1000.0));
    store_.put(customer_object(1), customer_vertex(1),
               std::make_shared<CustomerAccounts>(50.0, 10.0));
  }

  const Reply* run(std::vector<std::uint32_t> customers, Op::Kind kind,
                   double amount = 0) {
    auto op = sim::make_mutable_message<Op>();
    op->kind = kind;
    op->amount = amount;
    auto cmd = make_cmd(std::move(customers),
                        std::move(op));
    last_ = app_.execute(*cmd, store_).reply;
    return dynamic_cast<const Reply*>(last_.get());
  }

  CustomerAccounts* account(std::uint32_t c) {
    return dynamic_cast<CustomerAccounts*>(store_.find(customer_object(c)));
  }

  SmallBankApp app_;
  core::ObjectStore store_;
  sim::MessagePtr last_;
};

TEST_F(SmallBankUnit, BalanceReadsBoth) {
  const auto* reply = run({0}, Op::Kind::kBalance);
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->ok);
  EXPECT_DOUBLE_EQ(reply->balance, 1100.0);
}

TEST_F(SmallBankUnit, DepositChecking) {
  run({0}, Op::Kind::kDepositChecking, 25.0);
  EXPECT_DOUBLE_EQ(account(0)->checking, 125.0);
}

TEST_F(SmallBankUnit, TransactSavingsRejectsOverdraw) {
  const auto* reply = run({1}, Op::Kind::kTransactSavings, -50.0);
  EXPECT_FALSE(reply->ok);
  EXPECT_DOUBLE_EQ(account(1)->savings, 10.0);  // unchanged
}

TEST_F(SmallBankUnit, WriteCheckAppliesOverdraftPenalty) {
  run({1}, Op::Kind::kWriteCheck, 100.0);  // total is 60 -> penalty
  EXPECT_DOUBLE_EQ(account(1)->checking, 50.0 - 101.0);
}

TEST_F(SmallBankUnit, AmalgamateDrainsSource) {
  run({0, 1}, Op::Kind::kAmalgamate);
  EXPECT_DOUBLE_EQ(account(0)->checking, 0.0);
  EXPECT_DOUBLE_EQ(account(0)->savings, 0.0);
  EXPECT_DOUBLE_EQ(account(1)->checking, 50.0 + 1100.0);
}

TEST_F(SmallBankUnit, SendPaymentRequiresFunds) {
  const auto* rejected = run({1, 0}, Op::Kind::kSendPayment, 500.0);
  EXPECT_FALSE(rejected->ok);
  const auto* accepted = run({1, 0}, Op::Kind::kSendPayment, 30.0);
  EXPECT_TRUE(accepted->ok);
  EXPECT_DOUBLE_EQ(account(1)->checking, 20.0);
  EXPECT_DOUBLE_EQ(account(0)->checking, 130.0);
}

TEST(SmallBankStack, RunsAcrossPartitionsAndRepartitions) {
  core::SystemConfig config;
  config.num_partitions = 4;
  config.repartition_hint_threshold = 20'000;
  config.min_repartition_interval = seconds(2);
  core::System system(config, smallbank_app_factory());
  setup(system, /*customers=*/400);
  for (int c = 0; c < 12; ++c) {
    system.add_client(std::make_unique<SmallBankDriver>(400));
  }
  system.run_until(seconds(10));
  EXPECT_GT(system.metrics().series("completed").total(), 1000.0);
  // The hotspot makes Amalgamate/SendPayment cross-partition initially;
  // repartitioning should colocate the hotspot customers.
  EXPECT_GE(system.metrics().series("oracle.plans_applied").total(), 1.0);
  // Every account is still reachable and finite.
  double total = 0;
  std::size_t found = 0;
  for (std::uint32_t c = 0; c < 400; ++c) {
    for (std::uint32_t p = 0; p < 4; ++p) {
      const auto* obj = dynamic_cast<const CustomerAccounts*>(
          system.server(PartitionId{p}).store().find(customer_object(c)));
      if (obj != nullptr) {
        ++found;
        total += obj->checking + obj->savings;
        break;
      }
    }
  }
  // A handful of accounts may be mid-borrow at the cutoff instant (their
  // authoritative copy is in flight between partitions).
  EXPECT_GE(found, 380u);
  EXPECT_TRUE(std::isfinite(total));
}

}  // namespace
}  // namespace dynastar::workloads::smallbank
