// STAR asymmetric execution: single-partition commands execute partitioned,
// multi-partition commands defer to log-ordered master epochs. These tests
// pin the mode's safety bar (linearizability under mixed load, chaos, and
// crash-restart with snapshot installs), its determinism bar (same-seed runs
// phase-switch bit-identically), and the baseline-registry contract that the
// four systems differ only in protocol knobs.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/linearizability.h"
#include "common/metric_names.h"
#include "core/scenario.h"
#include "core/system.h"
#include "sim/chaos.h"
#include "tests/test_util.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

constexpr std::uint64_t kKeys = 10;
constexpr int kClients = 4;
constexpr int kOpsPerClient = 40;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t history_hash(const std::vector<KvOperation>& history) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& op : history) {
    h = fnv1a(h, op.is_put ? 1 : 0);
    h = fnv1a(h, op.value);
    for (std::uint64_t k : op.keys) h = fnv1a(h, k);
    for (const auto& o : op.observed) h = fnv1a(h, o ? *o + 1 : 0);
    h = fnv1a(h, static_cast<std::uint64_t>(op.invoke_time));
    h = fnv1a(h, static_cast<std::uint64_t>(op.response_time));
  }
  return h;
}

struct StarRun {
  std::vector<KvOperation> history;
  testutil::StatusTally tally;
  double epochs = 0;
  double deferred = 0;
  std::string fingerprint;
};

std::string fingerprint_of(core::System& system,
                           const std::vector<KvOperation>& history) {
  std::ostringstream fp;
  fp << "events=" << system.world().sim().executed_events();
  for (const char* name : {"completed", "executed", "client.timeouts",
                           "client.retransmits"}) {
    const auto* series = system.metrics().find_series(name);
    fp << ' ' << name << '=' << (series ? series->total() : 0.0);
  }
  for (const char* name :
       {metric::kStarEpochs, metric::kStarDeferred,
        "server.reply_cache_hits", "server.snapshot_installs"}) {
    fp << ' ' << name << '=' << system.metrics().counter(name);
  }
  fp << " history=" << history.size() << '/' << std::hex
     << history_hash(history);
  return fp.str();
}

/// Mixed single/multi-key load against a 3-partition STAR deployment on a
/// lossy, duplicating network — every epoch switch interleaves with singles.
StarRun run_star_scenario(std::uint64_t seed) {
  auto config = testutil::config_for(core::ExecutionMode::kStar, 3);
  config.seed = seed;
  config.network.drop_probability = 0.01;
  config.network.duplicate_probability = 0.01;
  config.client_timeout_base = milliseconds(300);
  config.client_timeout_jitter = milliseconds(20);
  config.client_timeout_cap = seconds(2);
  config.client_max_attempts = 0;  // retry forever: liveness is the property

  core::System system(config, workloads::kv_app_factory());
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const PartitionId p{k % config.num_partitions};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p,
                          workloads::KvObject(1000 + k));
  }
  system.preload_assignment(assignment);

  StarRun run;
  for (int c = 0; c < kClients; ++c) {
    system.add_client(std::make_unique<testutil::RecordingKvDriver>(
        kKeys, kOpsPerClient, &run.history, &run.tally));
  }
  system.run_until(seconds(30));

  run.epochs = system.metrics().counter(metric::kStarEpochs);
  run.deferred = system.metrics().counter(metric::kStarDeferred);
  run.fingerprint = fingerprint_of(system, run.history);
  return run;
}

TEST(Star, MixedLoadIsLinearizable) {
  const StarRun run = run_star_scenario(/*seed=*/5);

  // The asymmetric path was actually exercised: multi-partition commands
  // were deferred and executed in at least one master epoch.
  EXPECT_GE(run.epochs, 1.0) << "no epoch switch ever happened";
  EXPECT_GE(run.deferred, 1.0) << "no command took the deferred path";

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kClients) * kOpsPerClient;
  EXPECT_EQ(run.tally.completions, expected) << "clients hung under STAR";
  EXPECT_EQ(run.tally.ok, expected);
  ASSERT_EQ(run.history.size(), expected);

  const auto full = testutil::with_initial_puts(run.history, kKeys, 1000);
  const auto result = check_kv_linearizable(full);
  EXPECT_TRUE(result.linearizable)
      << "non-linearizable STAR history; stuck op "
      << (result.stuck_operation ? static_cast<long>(*result.stuck_operation)
                                 : -1);
}

TEST(Star, PhaseSwitchesAreBitDeterministic) {
  const StarRun a = run_star_scenario(/*seed=*/5);
  const StarRun b = run_star_scenario(/*seed=*/5);
  EXPECT_EQ(a.fingerprint, b.fingerprint)
      << "STAR epoch switching is not a pure function of (config, seed)";
  EXPECT_GE(a.epochs, 1.0);
}

/// Long-downtime crashes (including the master partition's replicas) while
/// epochs keep switching: downtime outruns the retained log, so recovery
/// REQUIRES a snapshot install whose Snapshot carries the STAR fields
/// (epoch counter, deferred queue, pending updates).
StarRun run_star_crash_scenario(std::uint64_t system_seed,
                                std::uint64_t chaos_seed) {
  auto config = testutil::config_for(core::ExecutionMode::kStar, 3);
  config.seed = system_seed;
  config.network.drop_probability = 0.01;
  config.network.duplicate_probability = 0.01;
  config.client_timeout_base = milliseconds(300);
  config.client_timeout_jitter = milliseconds(20);
  config.client_timeout_cap = seconds(2);
  config.client_max_attempts = 0;
  config.paxos.checkpoint_interval = 32;
  config.paxos.catchup_window = 8;

  core::System system(config, workloads::kv_app_factory());
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const PartitionId p{k % config.num_partitions};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p,
                          workloads::KvObject(1000 + k));
  }
  system.preload_assignment(assignment);

  StarRun run;
  for (int c = 0; c < kClients; ++c) {
    system.add_client(std::make_unique<testutil::RecordingKvDriver>(
        kKeys, kOpsPerClient, &run.history, &run.tally));
  }

  sim::ChaosConfig chaos;
  chaos.seed = chaos_seed;
  chaos.start = seconds(1);
  chaos.horizon = seconds(8);
  for (std::uint32_t p = 0; p < config.num_partitions; ++p) {
    chaos.crash_groups.push_back(
        system.topology().group(core::group_of(PartitionId{p})).replicas);
  }
  chaos.crash_events = 0;
  chaos.long_crash_events = 3;
  chaos.long_min_downtime = milliseconds(1500);
  chaos.long_max_downtime = milliseconds(2500);

  sim::ChaosInjector injector(system.world(), chaos);
  injector.arm();

  system.run_until(seconds(50));

  EXPECT_GE(system.metrics().counter("server.snapshot_installs"), 1.0)
      << "downtime never outran the catch-up window: no snapshot install";
  run.epochs = system.metrics().counter(metric::kStarEpochs);
  run.deferred = system.metrics().counter(metric::kStarDeferred);
  run.fingerprint = fingerprint_of(system, run.history);
  return run;
}

TEST(Star, EpochSwitchRacesCrashRestartAndStaysLinearizable) {
  const StarRun run = run_star_crash_scenario(/*system_seed=*/13,
                                              /*chaos_seed=*/57);

  EXPECT_GE(run.epochs, 1.0);
  EXPECT_GE(run.deferred, 1.0);

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kClients) * kOpsPerClient;
  EXPECT_EQ(run.tally.completions, expected)
      << "clients hung across a long-downtime crash under STAR";
  EXPECT_EQ(run.tally.ok, expected);
  ASSERT_EQ(run.history.size(), expected);

  const auto full = testutil::with_initial_puts(run.history, kKeys, 1000);
  const auto result = check_kv_linearizable(full);
  EXPECT_TRUE(result.linearizable)
      << "non-linearizable STAR history after snapshot-install recovery; "
      << "stuck op "
      << (result.stuck_operation ? static_cast<long>(*result.stuck_operation)
                                 : -1);
}

TEST(Star, CrashRestartRunsAreBitIdentical) {
  const StarRun a = run_star_crash_scenario(/*system_seed=*/13,
                                            /*chaos_seed=*/57);
  const StarRun b = run_star_crash_scenario(/*system_seed=*/13,
                                            /*chaos_seed=*/57);
  EXPECT_EQ(a.fingerprint, b.fingerprint)
      << "STAR snapshot recovery broke same-seed determinism";
}

// Surge under STAR with admission control armed: client-facing commands are
// shed with kBusy, but the shed exemptions specific to the mode must hold —
// epoch markers (not ExecCommands) and epoch updates (reliable channel) are
// never gated, so epochs keep switching and the deferred path stays live
// right through the overload window. Chaos.* so the sanitizer job's existing
// filter picks it up alongside the DynaStar chaos runs.
TEST(Chaos, StarSurgeShedsWithoutStallingEpochSwitches) {
  auto config = testutil::config_for(core::ExecutionMode::kStar, 3);
  config.seed = 21;
  config.client_timeout_base = milliseconds(300);
  config.client_timeout_jitter = milliseconds(20);
  config.client_timeout_cap = seconds(2);
  config.client_max_attempts = 0;
  config.server_queue_cap = 8;
  config.oracle_inflight_cap = 16;

  core::System system(config, workloads::kv_app_factory());
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const PartitionId p{k % config.num_partitions};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p,
                          workloads::KvObject(1000 + k));
  }
  system.preload_assignment(assignment);

  // Enough scripted work to still be in flight when the surge saturates
  // admission — their completions are the shed-and-retry path under test.
  constexpr int kSurgeOps = kOpsPerClient * 10;
  std::vector<KvOperation> history;
  testutil::StatusTally tally;
  for (int c = 0; c < kClients; ++c) {
    system.add_client(std::make_unique<testutil::RecordingKvDriver>(
        kKeys, kSurgeOps, &history, &tally));
  }
  // An open-loop burst of surge-only clients saturates admission during
  // [1s, 5s); the scripted clients must still finish afterwards.
  for (int c = 0; c < 24; ++c) {
    system.add_client(std::make_unique<workloads::RandomKvDriver>(kKeys, 0.5,
                                                                  0.4),
                      /*surge_only=*/true);
  }
  auto& world = system.world();
  world.sim().schedule_at(seconds(1), [&world] { world.begin_surge(); });
  world.sim().schedule_at(seconds(5), [&world] { world.end_surge(); });

  system.run_until(seconds(1));
  const double epochs_before_surge =
      system.metrics().counter(metric::kStarEpochs);
  system.run_until(seconds(5));
  const double epochs_during_surge =
      system.metrics().counter(metric::kStarEpochs);
  system.run_until(seconds(60));

  // The gate engaged, yet epochs kept switching right through the overload
  // window: markers are StarEpochMsg (never ExecCommand-gated) and updates
  // ride the reliable channel.
  EXPECT_GE(system.metrics().counter(metric::kServerShed), 1.0)
      << "surge never tripped admission control";
  EXPECT_GT(epochs_during_surge, epochs_before_surge)
      << "epoch switching stalled during the surge";

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kClients) * kSurgeOps;
  EXPECT_EQ(tally.completions, expected) << "scripted clients hung";
  EXPECT_EQ(tally.ok, expected);

  const auto full = testutil::with_initial_puts(history, kKeys, 1000);
  EXPECT_TRUE(check_kv_linearizable(full).linearizable);
}

// --- Baseline registry -----------------------------------------------------

/// Every field that is NOT a protocol knob must equal baseline_common()'s.
/// Spelled out field-by-field (memcmp would compare padding) so adding a
/// shared parameter without listing it here fails the build review, not the
/// comparison.
void expect_only_protocol_knobs_differ(const core::SystemConfig& c,
                                       const core::SystemConfig& common) {
  EXPECT_EQ(c.num_partitions, common.num_partitions);
  EXPECT_EQ(c.replicas_per_partition, common.replicas_per_partition);
  EXPECT_EQ(c.acceptors_per_partition, common.acceptors_per_partition);
  EXPECT_EQ(c.repartition_hint_threshold, common.repartition_hint_threshold);
  EXPECT_EQ(c.min_repartition_interval, common.min_repartition_interval);
  EXPECT_EQ(c.hint_batch_commands, common.hint_batch_commands);
  EXPECT_EQ(c.eager_plan_transfer, common.eager_plan_transfer);
  EXPECT_EQ(c.strict_epoch_validation, common.strict_epoch_validation);
  EXPECT_EQ(c.workload_graph_decay, common.workload_graph_decay);
  EXPECT_EQ(c.star_master_partition, common.star_master_partition);
  EXPECT_EQ(c.star_epoch_interval, common.star_epoch_interval);
  EXPECT_EQ(c.client_cache_capacity, common.client_cache_capacity);
  EXPECT_EQ(c.client_timeout_base, common.client_timeout_base);
  EXPECT_EQ(c.client_timeout_multiplier, common.client_timeout_multiplier);
  EXPECT_EQ(c.client_timeout_jitter, common.client_timeout_jitter);
  EXPECT_EQ(c.client_timeout_cap, common.client_timeout_cap);
  EXPECT_EQ(c.client_max_attempts, common.client_max_attempts);
  EXPECT_EQ(c.server_queue_cap, common.server_queue_cap);
  EXPECT_EQ(c.oracle_inflight_cap, common.oracle_inflight_cap);
  EXPECT_EQ(c.busy_retry_after_base, common.busy_retry_after_base);
  EXPECT_EQ(c.busy_retry_after_per_item, common.busy_retry_after_per_item);
  EXPECT_EQ(c.client_retry_budget, common.client_retry_budget);
  EXPECT_EQ(c.client_retry_token_interval, common.client_retry_token_interval);
  EXPECT_EQ(c.plan_compute_base, common.plan_compute_base);
  EXPECT_EQ(c.plan_compute_ns_per_element,
            common.plan_compute_ns_per_element);
  EXPECT_EQ(c.partitioner.imbalance, common.partitioner.imbalance);
  EXPECT_EQ(c.partitioner.coarsest_per_part,
            common.partitioner.coarsest_per_part);
  EXPECT_EQ(c.partitioner.coarsest_floor, common.partitioner.coarsest_floor);
  EXPECT_EQ(c.partitioner.refinement_passes,
            common.partitioner.refinement_passes);
  EXPECT_EQ(c.partitioner.seed, common.partitioner.seed);
  EXPECT_EQ(c.server_service_time, common.server_service_time);
  EXPECT_EQ(c.oracle_service_time, common.oracle_service_time);
  EXPECT_EQ(c.acceptor_service_time, common.acceptor_service_time);
  EXPECT_EQ(c.client_service_time, common.client_service_time);
  EXPECT_EQ(c.paxos.batch_delay, common.paxos.batch_delay);
  EXPECT_EQ(c.paxos.max_batch, common.paxos.max_batch);
  EXPECT_EQ(c.paxos.heartbeat_interval, common.paxos.heartbeat_interval);
  EXPECT_EQ(c.paxos.election_timeout, common.paxos.election_timeout);
  EXPECT_EQ(c.paxos.phase1_timeout, common.paxos.phase1_timeout);
  EXPECT_EQ(c.paxos.catchup_delay, common.paxos.catchup_delay);
  EXPECT_EQ(c.paxos.catchup_window, common.paxos.catchup_window);
  EXPECT_EQ(c.paxos.checkpoint_interval, common.paxos.checkpoint_interval);
  EXPECT_EQ(c.network.base_latency, common.network.base_latency);
  EXPECT_EQ(c.network.jitter, common.network.jitter);
  EXPECT_EQ(c.network.drop_probability, common.network.drop_probability);
  EXPECT_EQ(c.network.duplicate_probability,
            common.network.duplicate_probability);
  EXPECT_EQ(c.network.per_kib_cost, common.network.per_kib_cost);
  EXPECT_EQ(c.seed, common.seed);
}

TEST(Registry, SystemsDifferOnlyInProtocolKnobs) {
  const auto common = baselines::baseline_common(4, 9);
  for (const auto& baseline : baselines::registry()) {
    SCOPED_TRACE(baseline.name);
    const auto config = baseline.config(4, 9);
    EXPECT_EQ(config.mode, baseline.mode);
    expect_only_protocol_knobs_differ(config, common);
  }
}

TEST(Registry, EnumeratesAllFourSystems) {
  ASSERT_EQ(baselines::registry().size(), 4u);
  for (const char* name : {"dynastar", "ssmr", "dssmr", "star"}) {
    const auto* baseline = baselines::find_baseline(name);
    ASSERT_NE(baseline, nullptr) << name;
    EXPECT_STREQ(baseline->name, name);
    EXPECT_NE(std::string(baseline->summary), "");
  }
  EXPECT_EQ(baselines::find_baseline("paxos-only"), nullptr);
  EXPECT_EQ(baselines::baseline_names(), "dynastar | ssmr | dssmr | star");
}

TEST(Registry, OnlyDynaStarRepartitions) {
  for (const auto& baseline : baselines::registry()) {
    const auto config = baseline.config(2);
    EXPECT_EQ(config.repartitioning_enabled,
              baseline.mode == core::ExecutionMode::kDynaStar)
        << baseline.name;
  }
}

TEST(Registry, ScenarioBuilderPresetKeepsDeploymentShape) {
  core::ScenarioBuilder builder;
  builder.partitions(6).seed(33).system_preset("star");
  EXPECT_EQ(builder.current_config().mode, core::ExecutionMode::kStar);
  EXPECT_EQ(builder.current_config().num_partitions, 6u);
  EXPECT_EQ(builder.current_config().seed, 33u);
  EXPECT_FALSE(builder.current_config().repartitioning_enabled);
}

TEST(ExecutionModeApi, NamesRoundTripThroughParse) {
  for (core::ExecutionMode mode : core::kAllModes) {
    const auto parsed = core::parse_mode(core::mode_name(mode));
    ASSERT_TRUE(parsed.has_value()) << core::mode_name(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(core::parse_mode("bogus").has_value());
  EXPECT_FALSE(core::parse_mode("").has_value());
}

}  // namespace
}  // namespace dynastar
