// ReplicaCore unit tests against a mock Env: leader bootstrap, phase-1
// value adoption, batching, decision dissemination, and step-down.
#include <gtest/gtest.h>

#include <vector>

#include "paxos/replica.h"

namespace dynastar::paxos {
namespace {

class MockEnv final : public sim::Env {
 public:
  explicit MockEnv(ProcessId self) : self_(self) {}
  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] SimTime now() const override { return now_; }
  void send_message(ProcessId to, const sim::MessagePtr& msg) override {
    sent.emplace_back(to, msg);
  }
  void start_timer(SimTime delay, std::function<void()> fn) override {
    timers.emplace_back(now_ + delay, std::move(fn));
  }
  void consume_cpu(SimTime) override {}
  Rng& random() override { return rng_; }

  /// Fires every timer due at or before `t` (single pass).
  void advance_to(SimTime t) {
    now_ = t;
    auto due = std::move(timers);
    timers.clear();
    for (auto& [when, fn] : due) {
      if (when <= t)
        fn();
      else
        timers.emplace_back(when, std::move(fn));
    }
  }

  template <typename T>
  std::vector<const T*> all_of() const {
    std::vector<const T*> found;
    for (const auto& [to, msg] : sent)
      if (auto* m = dynamic_cast<const T*>(msg.get())) found.push_back(m);
    return found;
  }

  std::vector<std::pair<ProcessId, sim::MessagePtr>> sent;
  std::vector<std::pair<SimTime, std::function<void()>>> timers;
  SimTime now_ = 0;

 private:
  ProcessId self_;
  Rng rng_{1};
};

struct Payload final : sim::Message {
  explicit Payload(std::uint64_t v) : value(v) {}
  const char* type_name() const override { return "test.Payload"; }
  std::uint64_t value;
};

Topology two_replica_topology() {
  Topology topology;
  GroupDef def;
  def.id = GroupId{0};
  def.replicas = {ProcessId{0}, ProcessId{1}};
  def.acceptors = {ProcessId{2}, ProcessId{3}, ProcessId{4}};
  topology.add_group(def);
  return topology;
}

class ReplicaUnit : public ::testing::Test {
 protected:
  ReplicaUnit()
      : topology_(two_replica_topology()),
        env_(ProcessId{0}),
        core_(env_, topology_, GroupId{0}) {
    core_.set_deliver([this](std::uint64_t, const sim::MessagePtr& value) {
      if (auto* payload = dynamic_cast<const Payload*>(value.get()))
        delivered_.push_back(payload->value);
    });
  }

  /// Answers the outstanding Prepare with promises from a quorum.
  void grant_promises(Ballot ballot,
                      std::vector<AcceptedEntry> accepted = {}) {
    core_.handle(ProcessId{2},
                 sim::make_message<Promise>(GroupId{0}, ballot, accepted));
    core_.handle(ProcessId{3},
                 sim::make_message<Promise>(GroupId{0}, ballot,
                                            std::vector<AcceptedEntry>{}));
  }

  /// Acks the Accept for `slot` from a quorum of acceptors.
  void grant_accepts(Ballot ballot, Slot slot) {
    core_.handle(ProcessId{2}, sim::make_message<Accepted>(GroupId{0}, ballot, slot));
    core_.handle(ProcessId{3}, sim::make_message<Accepted>(GroupId{0}, ballot, slot));
  }

  Topology topology_;
  MockEnv env_;
  ReplicaCore core_;
  std::vector<std::uint64_t> delivered_;
};

TEST_F(ReplicaUnit, BootstrapsPhaseOneAtBallotZero) {
  core_.start();
  auto prepares = env_.all_of<Prepare>();
  ASSERT_EQ(prepares.size(), 3u);  // one per acceptor
  EXPECT_EQ(prepares[0]->ballot, 0u);
  EXPECT_FALSE(core_.is_leader());
  grant_promises(0);
  EXPECT_TRUE(core_.is_leader());
}

TEST_F(ReplicaUnit, BatchesSubmissionsIntoOneSlot) {
  core_.start();
  grant_promises(0);
  core_.submit(sim::make_message<Payload>(1));
  core_.submit(sim::make_message<Payload>(2));
  core_.submit(sim::make_message<Payload>(3));
  EXPECT_TRUE(env_.all_of<Accept>().empty());  // still inside the window
  env_.advance_to(microseconds(200));          // batch flush timer
  auto accepts = env_.all_of<Accept>();
  ASSERT_EQ(accepts.size(), 3u);  // one slot to three acceptors
  EXPECT_EQ(accepts[0]->slot, accepts[1]->slot);
  const auto* batch = dynamic_cast<const Batch*>(accepts[0]->value.get());
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->values.size(), 3u);
}

TEST_F(ReplicaUnit, DeliversAfterQuorumAndDisseminates) {
  core_.start();
  grant_promises(0);
  core_.submit(sim::make_message<Payload>(7));
  env_.advance_to(microseconds(200));
  grant_accepts(0, 0);
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{7}));
  auto decisions = env_.all_of<Decision>();
  ASSERT_EQ(decisions.size(), 1u);  // to the one other replica
}

TEST_F(ReplicaUnit, AdoptsRecoveredValuesInPhaseOne) {
  core_.start();
  // Acceptor 2 reports an accepted value at slot 0 from an older ballot.
  std::vector<AcceptedEntry> accepted{
      {0, 0, sim::make_message<Payload>(42)}};
  grant_promises(0, accepted);
  // The new leader must re-propose 42 at slot 0, not skip it.
  auto accepts = env_.all_of<Accept>();
  ASSERT_FALSE(accepts.empty());
  EXPECT_EQ(accepts[0]->slot, 0u);
  const auto* payload = dynamic_cast<const Payload*>(accepts[0]->value.get());
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->value, 42u);
  grant_accepts(0, 0);
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{42}));
}

TEST_F(ReplicaUnit, StepsDownOnHigherBallotNack) {
  core_.start();
  grant_promises(0);
  ASSERT_TRUE(core_.is_leader());
  core_.handle(ProcessId{2}, sim::make_message<Nack>(GroupId{0}, 0, 5));
  EXPECT_FALSE(core_.is_leader());
  EXPECT_EQ(core_.ballot(), 5u);
  // Leader hint follows the new ballot's owner (5 % 2 == replica 1).
  EXPECT_EQ(core_.leader_hint(), ProcessId{1});
}

TEST_F(ReplicaUnit, NonLeaderForwardsSubmissions) {
  MockEnv env(ProcessId{1});
  ReplicaCore follower(env, topology_, GroupId{0});
  follower.start();  // index 1: follower, arms election timer only
  follower.submit(sim::make_message<Payload>(9));
  // Forwarded to the presumed leader (ballot 0's owner, replica 0).
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.sent[0].first, ProcessId{0});
  EXPECT_NE(dynamic_cast<const ProposeReq*>(env.sent[0].second.get()), nullptr);
}

TEST_F(ReplicaUnit, DuplicateDecisionsApplyOnce) {
  core_.start();
  grant_promises(0);
  auto value = sim::make_message<Payload>(3);
  core_.handle(ProcessId{1}, sim::make_message<Decision>(GroupId{0}, 0, value));
  core_.handle(ProcessId{1}, sim::make_message<Decision>(GroupId{0}, 0, value));
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{3}));
}

TEST_F(ReplicaUnit, GapsHoldDeliveryUntilFilled) {
  core_.start();
  grant_promises(0);
  core_.handle(ProcessId{1}, sim::make_message<Decision>(
                                 GroupId{0}, 1, sim::make_message<Payload>(2)));
  EXPECT_TRUE(delivered_.empty());  // slot 0 missing
  core_.handle(ProcessId{1}, sim::make_message<Decision>(
                                 GroupId{0}, 0, sim::make_message<Payload>(1)));
  EXPECT_EQ(delivered_, (std::vector<std::uint64_t>{1, 2}));
}

}  // namespace
}  // namespace dynastar::paxos
