// Epoch-validated read leases: read-only multi-partition commands execute
// against lease-protected local copies instead of borrow/return. These tests
// pin the protocol's safety edges — plan-epoch bumps racing grants, writes
// invalidating outstanding copies, lender crashes with live leases, snapshot
// installs clearing lease state — and the configuration contract that a
// lease-off run is bit-identical to one where leases never engage.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/system.h"
#include "tests/lin_harness.h"
#include "tests/test_util.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

using Record = workloads::ScriptedKvDriver::Record;

core::CommandSpec kv_get(std::initializer_list<std::uint64_t> keys) {
  core::CommandSpec spec;
  for (std::uint64_t k : keys)
    spec.objects.emplace_back(ObjectId{k}, core::VertexId{k});
  spec.payload =
      sim::make_message<workloads::KvOp>(workloads::KvOp::Kind::kGet, 0);
  spec.read_only = true;
  return spec;
}

core::CommandSpec kv_put(std::initializer_list<std::uint64_t> keys,
                         std::uint64_t value) {
  core::CommandSpec spec;
  for (std::uint64_t k : keys)
    spec.objects.emplace_back(ObjectId{k}, core::VertexId{k});
  spec.payload =
      sim::make_message<workloads::KvOp>(workloads::KvOp::Kind::kPut, value);
  return spec;
}

/// Two partitions, leases on, keys k (even -> P0, odd -> P1) preloaded with
/// 1000 + k.
std::unique_ptr<core::System> lease_system(core::ExecutionMode mode,
                                           std::uint64_t seed,
                                           std::uint64_t keys = 4,
                                           bool leases = true) {
  auto config = testutil::config_for(mode, 2);
  config.seed = seed;
  config.read_leases = leases;
  config.client_max_attempts = 0;  // liveness asserts completion
  auto system =
      std::make_unique<core::System>(config, workloads::kv_app_factory());
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < keys; ++k) {
    const PartitionId p{k % 2};
    assignment[core::VertexId{k}] = p;
    system->preload_object(ObjectId{k}, core::VertexId{k}, p,
                           workloads::KvObject(1000 + k));
  }
  system->preload_assignment(assignment);
  return system;
}

// A read-only cross-partition command executes off leases (no borrow, no
// return), and a write to a leased vertex revokes the copy so the next read
// observes the fresh value.
TEST(ReadLease, WriteAfterGrantInvalidatesTheLease) {
  auto system = lease_system(core::ExecutionMode::kDynaStar, 5);

  std::vector<Record> reader_records;
  std::vector<core::CommandSpec> reader_script;
  reader_script.push_back(kv_get({0, 1}));  // establishes the lease
  reader_script.push_back(core::CommandSpec::pause_for(milliseconds(400)));
  reader_script.push_back(kv_get({0, 1}));  // must observe the write below
  system->add_client(std::make_unique<workloads::ScriptedKvDriver>(
      reader_script, &reader_records));

  std::vector<Record> writer_records;
  std::vector<core::CommandSpec> writer_script;
  writer_script.push_back(core::CommandSpec::pause_for(milliseconds(200)));
  writer_script.push_back(kv_put({0, 1}, 777));
  system->add_client(std::make_unique<workloads::ScriptedKvDriver>(
      writer_script, &writer_records));

  system->run_until(seconds(5));

  ASSERT_EQ(reader_records.size(), 2u);
  ASSERT_EQ(writer_records.size(), 1u);
  EXPECT_EQ(reader_records[0].status, core::ReplyStatus::kOk);
  EXPECT_EQ(writer_records[0].status, core::ReplyStatus::kOk);
  EXPECT_EQ(reader_records[1].status, core::ReplyStatus::kOk);

  // First read sees the preloaded values, second sees the write: the leased
  // copy granted before the put must not serve the read issued after it.
  ASSERT_EQ(reader_records[0].observed.size(), 2u);
  EXPECT_EQ(reader_records[0].observed[0], 1000u);
  EXPECT_EQ(reader_records[0].observed[1], 1001u);
  ASSERT_EQ(reader_records[1].observed.size(), 2u);
  EXPECT_EQ(reader_records[1].observed[0], 777u);
  EXPECT_EQ(reader_records[1].observed[1], 777u);

  // Both reads took the lease path; the write revoked the outstanding copy.
  EXPECT_GE(system->metrics().counter("server.lease_reads"), 2.0);
  EXPECT_GE(system->metrics().counter("server.lease_grants"), 2.0);
  EXPECT_GE(system->metrics().counter("server.lease_revokes"), 1.0);
}

// The DS-SMR lease path must skip the permanent move: a leased read leaves
// ownership where it was, and subsequent commands still resolve correctly.
TEST(ReadLease, DssmrLeasedReadSkipsThePermanentMove) {
  auto system = lease_system(core::ExecutionMode::kDSSMR, 6);

  std::vector<Record> records;
  std::vector<core::CommandSpec> script;
  script.push_back(kv_get({0, 1}));
  script.push_back(kv_get({2, 3}));
  script.push_back(kv_get({0, 1}));
  script.push_back(kv_put({1}, 42));
  script.push_back(kv_get({0, 1}));
  system->add_client(
      std::make_unique<workloads::ScriptedKvDriver>(script, &records));

  system->run_until(seconds(5));

  ASSERT_EQ(records.size(), 5u);
  for (const auto& r : records) EXPECT_EQ(r.status, core::ReplyStatus::kOk);
  EXPECT_EQ(records[4].observed[0], 1000u);
  EXPECT_EQ(records[4].observed[1], 42u);
  EXPECT_GE(system->metrics().counter("server.lease_reads"), 3.0);
  // Leased reads move nothing (the moved-vertices metrics only count plan
  // and DS-SMR relocations).
  EXPECT_EQ(system->metrics().series("vertices_moved_out").total(), 0.0);
}

// Plan-epoch bumps racing in-flight grants: repartition churn while leased
// reads are outstanding must stay live and linearizable (grants issued under
// a stale epoch fail validation and fall back to kRetry).
TEST(ReadLease, GrantRacingPlanEpochBumpStaysLinearizable) {
  testutil::LinScenario s;
  s.mode = core::ExecutionMode::kDynaStar;
  s.system_seed = 11;
  s.read_leases = true;
  s.repartition_mid_run = true;
  s.multi_fraction = 0.6;
  s.write_fraction = 0.3;
  const auto run = testutil::run_lin_scenario(s);

  EXPECT_EQ(run.tally.ok, run.expected_ops);
  EXPECT_TRUE(run.lin.linearizable)
      << "stuck op "
      << (run.lin.stuck_operation
              ? static_cast<long>(*run.lin.stuck_operation)
              : -1);
  EXPECT_GT(run.lease_reads, 0.0) << "lease path never engaged";
}

// Revocations racing queued reads under a write-heavy mix and a chaotic
// network: every validation failure must resolve via the retry path, never
// a stale read.
TEST(ReadLease, RevokeRacingExecuteFallsBackSafely) {
  testutil::LinScenario s;
  s.mode = core::ExecutionMode::kDynaStar;
  s.system_seed = 21;
  s.read_leases = true;
  s.multi_fraction = 0.5;
  s.write_fraction = 0.6;
  s.chaos = true;
  s.chaos_seed = 77;
  const auto run = testutil::run_lin_scenario(s);

  EXPECT_EQ(run.tally.ok, run.expected_ops);
  EXPECT_TRUE(run.lin.linearizable)
      << "stuck op "
      << (run.lin.stuck_operation
              ? static_cast<long>(*run.lin.stuck_operation)
              : -1);
  EXPECT_GT(run.lease_reads, 0.0);
}

// Lender crash while a lease is live: volatile lease state dies with the
// incarnation, the blocked reader recovers via snapshotted grant
// coordination, and post-recovery reads observe post-recovery writes.
TEST(ReadLease, LenderCrashWithLiveLeaseRecoversFresh) {
  auto system = lease_system(core::ExecutionMode::kDynaStar, 9);

  std::vector<Record> reader_records;
  std::vector<core::CommandSpec> reader_script;
  reader_script.push_back(kv_get({0, 1}));  // lease established pre-crash
  reader_script.push_back(core::CommandSpec::pause_for(seconds(2)));
  reader_script.push_back(kv_get({0, 1}));  // served after recovery
  system->add_client(std::make_unique<workloads::ScriptedKvDriver>(
      reader_script, &reader_records));

  std::vector<Record> writer_records;
  std::vector<core::CommandSpec> writer_script;
  writer_script.push_back(core::CommandSpec::pause_for(milliseconds(1200)));
  writer_script.push_back(kv_put({0, 1}, 55));  // lands around the recovery
  system->add_client(std::make_unique<workloads::ScriptedKvDriver>(
      writer_script, &writer_records));

  system->run_until(milliseconds(300));
  // Crash one replica of every partition group while leases are live; the
  // survivors keep serving, and the victims recover with cleared lease
  // state (but snapshotted version counters — see server.h).
  std::vector<ProcessId> victims;
  for (std::uint32_t p = 0; p < 2; ++p)
    victims.push_back(
        system->topology().group(core::group_of(PartitionId{p})).replicas[0]);
  for (ProcessId v : victims) system->world().crash(v);
  system->run_until(milliseconds(900));
  for (ProcessId v : victims) system->world().recover(v);
  system->run_until(seconds(10));

  ASSERT_EQ(reader_records.size(), 2u);
  ASSERT_EQ(writer_records.size(), 1u);
  EXPECT_EQ(reader_records[0].status, core::ReplyStatus::kOk);
  EXPECT_EQ(writer_records[0].status, core::ReplyStatus::kOk);
  EXPECT_EQ(reader_records[1].status, core::ReplyStatus::kOk);
  // The post-recovery read observes the write, not the pre-crash lease copy.
  ASSERT_EQ(reader_records[1].observed.size(), 2u);
  EXPECT_EQ(reader_records[1].observed[0], 55u);
  EXPECT_EQ(reader_records[1].observed[1], 55u);
  EXPECT_GE(system->metrics().counter("server.lease_reads"), 2.0);
}

// Regression pin for lease volatility: a snapshot-install recovery (long
// downtime outrunning the catch-up window) clears installed copies and
// holder records, and the system stays live and linearizable with leases on.
TEST(ReadLease, SnapshotInstallClearsLeaseState) {
  testutil::LinScenario s;
  s.mode = core::ExecutionMode::kDynaStar;
  s.system_seed = 13;
  s.read_leases = true;
  s.multi_fraction = 0.5;
  s.write_fraction = 0.4;
  s.chaos = true;
  s.chaos_seed = 57;
  s.long_crashes = true;
  s.run_for = seconds(50);
  s.tune = [](core::SystemConfig& config) {
    config.paxos.checkpoint_interval = 32;
    config.paxos.catchup_window = 8;
  };
  const auto run = testutil::run_lin_scenario(s);

  EXPECT_GE(run.snapshot_installs, 1.0)
      << "downtime never outran the catch-up window: no snapshot install";
  EXPECT_EQ(run.tally.ok, run.expected_ops);
  EXPECT_TRUE(run.lin.linearizable)
      << "stuck op "
      << (run.lin.stuck_operation
              ? static_cast<long>(*run.lin.stuck_operation)
              : -1);
  EXPECT_GT(run.lease_reads, 0.0);
}

// Configuration contract: when no lease is ever granted (the workload has no
// read-only multi-partition command), a leases-on run is bit-identical to a
// leases-off run of the same seed. The version-counter bumps behind the
// config gate must stay free of observable side effects.
TEST(ReadLease, LeaseOffIsBitIdenticalWhenNeverEngaged) {
  auto run_once = [](bool leases) {
    testutil::LinScenario s;
    s.mode = core::ExecutionMode::kDynaStar;
    s.system_seed = 31;
    s.read_leases = leases;
    s.write_fraction = 1.0;  // multi-partition commands exist, none read-only
    s.multi_fraction = 0.5;
    s.run_for = seconds(20);
    return testutil::run_lin_scenario(s);
  };
  const auto off = run_once(false);
  const auto on = run_once(true);
  EXPECT_EQ(off.lease_reads, 0.0);
  EXPECT_EQ(on.lease_reads, 0.0);
  EXPECT_EQ(off.fingerprint, on.fingerprint)
      << "enabling leases changed a run that never used them";
}

}  // namespace
}  // namespace dynastar
