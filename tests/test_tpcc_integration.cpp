// TPC-C over the full stack: sanity of transaction logic, cross-warehouse
// commands, and repartitioning from a random initial placement.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workloads/tpcc.h"

namespace dynastar {
namespace {

namespace tpcc = workloads::tpcc;

core::SystemConfig tpcc_config(core::ExecutionMode mode,
                               std::uint32_t partitions) {
  core::SystemConfig config;
  config.mode = mode;
  config.num_partitions = partitions;
  config.repartitioning_enabled = mode == core::ExecutionMode::kDynaStar;
  config.repartition_hint_threshold = 1'000'000'000;  // not in these tests
  return config;
}

tpcc::Scale small_scale() {
  tpcc::Scale scale;
  scale.customers_per_district = 20;
  scale.items = 200;
  return scale;
}

TEST(TpccIntegration, TransactionsCompleteOnOptimalPlacement) {
  const auto scale = small_scale();
  core::System system(tpcc_config(core::ExecutionMode::kDynaStar, 2),
                      tpcc::tpcc_app_factory(scale));
  tpcc::setup(system, scale, /*warehouses=*/2,
              tpcc::Placement::kWarehousePerPartition);
  for (std::uint32_t c = 0; c < 4; ++c) {
    system.add_client(std::make_unique<tpcc::TpccDriver>(
        scale, 2, /*home_w=*/c % 2 + 1, /*home_d=*/c / 2 % 10 + 1));
  }
  system.run_until(seconds(10));
  const double completed = system.metrics().series("completed").total();
  EXPECT_GT(completed, 200.0);
  // Some remote NewOrder/Payment traffic must exist with 2 warehouses.
  EXPECT_GT(system.metrics().series("mpart").total(), 0.0);
}

TEST(TpccIntegration, RandomPlacementStillCompletes) {
  const auto scale = small_scale();
  core::System system(tpcc_config(core::ExecutionMode::kDynaStar, 4),
                      tpcc::tpcc_app_factory(scale));
  tpcc::setup(system, scale, /*warehouses=*/4, tpcc::Placement::kRandom);
  for (std::uint32_t c = 0; c < 8; ++c) {
    system.add_client(std::make_unique<tpcc::TpccDriver>(
        scale, 4, c % 4 + 1, c / 4 % 10 + 1));
  }
  system.run_until(seconds(10));
  EXPECT_GT(system.metrics().series("completed").total(), 50.0);
  // Random placement scatters districts: most commands are multi-partition.
  const double executed = system.metrics().series("executed").total();
  const double mpart = system.metrics().series("mpart").total();
  EXPECT_GT(mpart / executed, 0.3);
}

TEST(TpccIntegration, RepartitioningImprovesLocality) {
  const auto scale = small_scale();
  auto config = tpcc_config(core::ExecutionMode::kDynaStar, 2);
  config.repartition_hint_threshold = 2'000;  // trigger quickly
  core::System system(config, tpcc::tpcc_app_factory(scale));
  tpcc::setup(system, scale, /*warehouses=*/2, tpcc::Placement::kRandom);
  for (std::uint32_t c = 0; c < 6; ++c) {
    system.add_client(std::make_unique<tpcc::TpccDriver>(
        scale, 2, c % 2 + 1, c / 2 % 10 + 1));
  }
  system.run_until(seconds(40));
  EXPECT_GE(system.metrics().series("oracle.plans_applied").total(), 1.0);

  // After the plan, the multi-partition fraction must drop well below the
  // random-placement level (only inherent remote TPC-C traffic remains).
  const auto& executed = system.metrics().series("executed");
  const auto& mpart = system.metrics().series("mpart");
  double late_exec = 0, late_mpart = 0;
  const std::size_t buckets = executed.num_buckets();
  for (std::size_t b = buckets - 10; b < buckets; ++b) {
    late_exec += executed.at(b);
    late_mpart += mpart.at(b);
  }
  ASSERT_GT(late_exec, 0.0);
  EXPECT_LT(late_mpart / late_exec, 0.25);
}

TEST(TpccIntegration, SsmrBaselineCompletes) {
  const auto scale = small_scale();
  core::System system(tpcc_config(core::ExecutionMode::kSSMR, 2),
                      tpcc::tpcc_app_factory(scale));
  tpcc::setup(system, scale, 2, tpcc::Placement::kWarehousePerPartition);
  for (std::uint32_t c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<tpcc::TpccDriver>(scale, 2, c % 2 + 1, 1));
  }
  system.run_until(seconds(10));
  EXPECT_GT(system.metrics().series("completed").total(), 200.0);
}

}  // namespace
}  // namespace dynastar
