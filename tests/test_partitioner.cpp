// Workload graph and multilevel partitioner tests: balance constraint,
// edge-cut quality, determinism, remapping, and dynamic graph maintenance.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "partitioning/graph.h"
#include "partitioning/partitioner.h"
#include "workloads/social_graph.h"

namespace dynastar::partitioning {
namespace {

/// Two dense clusters joined by one weak edge.
Graph two_cluster_graph(std::uint32_t per_cluster) {
  GraphBuilder builder(per_cluster * 2);
  for (std::uint32_t i = 0; i < per_cluster; ++i) {
    for (std::uint32_t j = i + 1; j < per_cluster; ++j) {
      builder.add_edge(i, j, 10);
      builder.add_edge(per_cluster + i, per_cluster + j, 10);
    }
  }
  builder.add_edge(0, per_cluster, 1);  // weak bridge
  return builder.build();
}

TEST(Partitioner, SeparatesObviousClusters) {
  auto graph = two_cluster_graph(16);
  auto result = partition_graph(graph, 2);
  EXPECT_EQ(result.edge_cut, 1);  // only the bridge is cut
  // Every cluster lands wholly in one part.
  for (std::uint32_t v = 1; v < 16; ++v)
    EXPECT_EQ(result.assignment[v], result.assignment[0]);
  for (std::uint32_t v = 17; v < 32; ++v)
    EXPECT_EQ(result.assignment[v], result.assignment[16]);
  EXPECT_NE(result.assignment[0], result.assignment[16]);
}

TEST(Partitioner, RespectsBalanceConstraint) {
  // Power-law graph: hard to balance; the 20% constraint must hold.
  auto social = workloads::generate_social_graph(2000, 4, 3);
  GraphBuilder builder(2000);
  for (std::uint32_t u = 0; u < 2000; ++u)
    for (std::uint32_t f : social.followers[u]) builder.add_edge(u, f, 1);
  auto graph = builder.build();
  for (std::uint32_t k : {2u, 4u, 8u}) {
    PartitionerConfig config;
    config.imbalance = 1.20;
    auto result = partition_graph(graph, k, config);
    EXPECT_LE(result.achieved_imbalance, 1.25)
        << "k=" << k;  // small slack over the constraint
  }
}

TEST(Partitioner, BeatsRandomPlacementOnEdgeCut) {
  auto social = workloads::generate_social_graph(1500, 4, 9);
  GraphBuilder builder(1500);
  for (std::uint32_t u = 0; u < 1500; ++u)
    for (std::uint32_t f : social.followers[u]) builder.add_edge(u, f, 1);
  auto graph = builder.build();

  auto result = partition_graph(graph, 4);

  Rng rng(5);
  std::vector<std::uint32_t> random_assign(graph.num_vertices());
  for (auto& p : random_assign)
    p = static_cast<std::uint32_t>(rng.uniform(0, 3));
  const auto random_cut = edge_cut(graph, random_assign);
  // Preferential-attachment graphs have weak community structure (hubs
  // connect everything), so even METIS only cuts ~25-40% below random.
  EXPECT_LT(result.edge_cut, random_cut * 4 / 5)
      << "partitioner should clearly beat the random cut";
}

TEST(Partitioner, DeterministicGivenSeed) {
  auto graph = two_cluster_graph(32);
  PartitionerConfig config;
  config.seed = 77;
  auto a = partition_graph(graph, 4, config);
  auto b = partition_graph(graph, 4, config);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.edge_cut, b.edge_cut);
}

TEST(Partitioner, TrivialCases) {
  Graph empty;
  EXPECT_TRUE(partition_graph(empty, 4).assignment.empty());

  GraphBuilder one(1);
  auto single = partition_graph(one.build(), 4);
  ASSERT_EQ(single.assignment.size(), 1u);

  auto graph = two_cluster_graph(8);
  auto k1 = partition_graph(graph, 1);
  EXPECT_EQ(k1.edge_cut, 0);
  for (auto p : k1.assignment) EXPECT_EQ(p, 0u);
}

TEST(Partitioner, MorePartsThanVertices) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 1);
  auto result = partition_graph(builder.build(), 8);
  ASSERT_EQ(result.assignment.size(), 3u);
  for (auto p : result.assignment) EXPECT_LT(p, 8u);
}

TEST(Partitioner, RemapMinimizesMoves) {
  auto graph = two_cluster_graph(16);
  auto result = partition_graph(graph, 2);
  // Build a "previous" assignment identical but with labels flipped.
  std::vector<std::uint32_t> prev = result.assignment;
  for (auto& p : prev) p ^= 1u;
  auto remapped = remap_to_minimize_moves(graph, 2, prev, result.assignment);
  // After relabeling, the new assignment matches the previous exactly.
  EXPECT_EQ(remapped, prev);
}

TEST(Partitioner, RemapIsPermutation) {
  auto social = workloads::generate_social_graph(500, 3, 4);
  GraphBuilder builder(500);
  for (std::uint32_t u = 0; u < 500; ++u)
    for (std::uint32_t f : social.followers[u]) builder.add_edge(u, f, 1);
  auto graph = builder.build();
  auto result = partition_graph(graph, 4);
  Rng rng(9);
  std::vector<std::uint32_t> prev(500);
  for (auto& p : prev) p = static_cast<std::uint32_t>(rng.uniform(0, 3));
  auto remapped = remap_to_minimize_moves(graph, 4, prev, result.assignment);
  // Edge-cut must be label-invariant.
  EXPECT_EQ(edge_cut(graph, remapped), result.edge_cut);
}

// --- WorkloadGraph ---

TEST(WorkloadGraph, AccumulatesAndCompacts) {
  WorkloadGraph graph;
  graph.add_edge(10, 20, 3);
  graph.add_edge(20, 30, 1);
  graph.add_edge(10, 20, 2);  // reinforce
  graph.add_vertex(40, 5);
  EXPECT_EQ(graph.num_vertices(), 4u);
  EXPECT_EQ(graph.num_edges(), 2u);

  auto compact = graph.compact();
  EXPECT_EQ(compact.graph.num_vertices(), 4u);
  EXPECT_EQ(compact.graph.num_edges(), 2u);
  // ids sorted: 10, 20, 30, 40.
  EXPECT_EQ(compact.ids, (std::vector<std::uint64_t>{10, 20, 30, 40}));
  // Edge {10,20} has weight 5.
  const auto& g = compact.graph;
  bool found = false;
  for (std::size_t e = g.xadj[0]; e < g.xadj[1]; ++e) {
    if (g.adjacency[e] == 1) {
      EXPECT_EQ(g.edge_weights[e], 5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WorkloadGraph, RemoveVertexDropsEdges) {
  WorkloadGraph graph;
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  graph.add_edge(1, 3);
  graph.remove_vertex(2);
  EXPECT_EQ(graph.num_vertices(), 2u);
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_FALSE(graph.contains(2));
}

TEST(WorkloadGraph, DecayForgetsColdEdges) {
  WorkloadGraph graph;
  graph.add_edge(1, 2, 1);    // cold
  graph.add_edge(3, 4, 100);  // hot
  graph.decay(0.5);
  EXPECT_EQ(graph.num_edges(), 1u);  // cold edge decayed to zero
  graph.decay(0.5);
  EXPECT_EQ(graph.num_edges(), 1u);  // hot edge survives (50 -> 25)
}

TEST(WorkloadGraph, SelfEdgeCountsAsVertexWeight) {
  WorkloadGraph graph;
  graph.add_edge(7, 7, 3);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_TRUE(graph.contains(7));
}

// Parameterized: partitioner quality on varying graph shapes.
struct ShapeParam {
  std::uint32_t users;
  std::uint32_t edges_per_user;
  std::uint32_t k;
};

class PartitionerShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(PartitionerShapes, BalancedAndBetterThanRandom) {
  const auto param = GetParam();
  auto social =
      workloads::generate_social_graph(param.users, param.edges_per_user, 13);
  GraphBuilder builder(param.users);
  for (std::uint32_t u = 0; u < param.users; ++u)
    for (std::uint32_t f : social.followers[u]) builder.add_edge(u, f, 1);
  auto graph = builder.build();

  auto result = partition_graph(graph, param.k);
  EXPECT_LE(result.achieved_imbalance, 1.3);

  Rng rng(1);
  std::vector<std::uint32_t> random_assign(graph.num_vertices());
  for (auto& p : random_assign)
    p = static_cast<std::uint32_t>(rng.uniform(0, param.k - 1));
  EXPECT_LT(result.edge_cut, edge_cut(graph, random_assign));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionerShapes,
    ::testing::Values(ShapeParam{200, 2, 2}, ShapeParam{500, 3, 4},
                      ShapeParam{1000, 5, 8}, ShapeParam{2000, 8, 4},
                      ShapeParam{3000, 2, 16}));

}  // namespace
}  // namespace dynastar::partitioning
