// AcceptorCore unit tests against a mock Env — no simulator involved.
// Verifies the single-slot Paxos acceptor rules directly: promise
// monotonicity, vote recording, nacks, and durable-state semantics.
#include <gtest/gtest.h>

#include <vector>

#include "paxos/acceptor.h"
#include "paxos/messages.h"

namespace dynastar::paxos {
namespace {

/// Captures outgoing messages; provides deterministic time/randomness.
class MockEnv final : public sim::Env {
 public:
  [[nodiscard]] ProcessId self() const override { return ProcessId{99}; }
  [[nodiscard]] SimTime now() const override { return now_; }
  void send_message(ProcessId to, const sim::MessagePtr& msg) override {
    sent.emplace_back(to, msg);
  }
  void start_timer(SimTime, std::function<void()> fn) override {
    timers.push_back(std::move(fn));
  }
  void consume_cpu(SimTime amount) override { cpu_used += amount; }
  Rng& random() override { return rng_; }

  template <typename T>
  const T* last_as() const {
    return sent.empty() ? nullptr
                        : dynamic_cast<const T*>(sent.back().second.get());
  }

  std::vector<std::pair<ProcessId, sim::MessagePtr>> sent;
  std::vector<std::function<void()>> timers;
  SimTime cpu_used = 0;
  SimTime now_ = 0;

 private:
  Rng rng_{1};
};

struct Noop final : sim::Message {
  const char* type_name() const override { return "test.Noop"; }
};

class AcceptorUnit : public ::testing::Test {
 protected:
  AcceptorUnit() : core_(env_, GroupId{0}, storage_) {}

  void prepare(Ballot ballot, Slot from = 0, ProcessId from_proc = ProcessId{1}) {
    core_.handle(from_proc, sim::make_message<Prepare>(GroupId{0}, ballot, from));
  }
  void accept(Ballot ballot, Slot slot, ProcessId from_proc = ProcessId{1}) {
    core_.handle(from_proc, sim::make_message<Accept>(GroupId{0}, ballot, slot,
                                                      0, sim::make_message<Noop>()));
  }

  MockEnv env_;
  AcceptorStorage storage_;
  AcceptorCore core_;
};

TEST_F(AcceptorUnit, PromisesFreshBallot) {
  prepare(5);
  EXPECT_EQ(storage_.promised, 5u);
  const auto* promise = env_.last_as<Promise>();
  ASSERT_NE(promise, nullptr);
  EXPECT_EQ(promise->ballot, 5u);
  EXPECT_TRUE(promise->accepted.empty());
}

TEST_F(AcceptorUnit, NacksStaleBallot) {
  prepare(5);
  prepare(3);
  const auto* nack = env_.last_as<Nack>();
  ASSERT_NE(nack, nullptr);
  EXPECT_EQ(nack->promised, 5u);
  EXPECT_EQ(storage_.promised, 5u);  // unchanged
}

TEST_F(AcceptorUnit, EqualBallotRePrepareIsNacked) {
  prepare(5);
  prepare(5);
  EXPECT_NE(env_.last_as<Nack>(), nullptr);
}

TEST_F(AcceptorUnit, AcceptsAtPromisedBallot) {
  prepare(5);
  accept(5, 0);
  const auto* accepted = env_.last_as<Accepted>();
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->slot, 0u);
  ASSERT_TRUE(storage_.votes.contains(0));
  EXPECT_EQ(storage_.votes.at(0).ballot, 5u);
}

TEST_F(AcceptorUnit, AcceptsHigherBallotWithoutPrepare) {
  // Phase 2 at a higher ballot implies the promise.
  prepare(5);
  accept(8, 0);
  EXPECT_NE(env_.last_as<Accepted>(), nullptr);
  EXPECT_EQ(storage_.promised, 8u);
}

TEST_F(AcceptorUnit, RejectsAcceptBelowPromise) {
  prepare(5);
  accept(4, 0);
  EXPECT_NE(env_.last_as<Nack>(), nullptr);
  EXPECT_FALSE(storage_.votes.contains(0));
}

TEST_F(AcceptorUnit, PromiseReturnsVotesFromSlot) {
  prepare(1);
  accept(1, 0);
  accept(1, 1);
  accept(1, 2);
  env_.sent.clear();
  prepare(9, /*from=*/1);
  const auto* promise = env_.last_as<Promise>();
  ASSERT_NE(promise, nullptr);
  ASSERT_EQ(promise->accepted.size(), 2u);  // slots 1 and 2 only
  EXPECT_EQ(promise->accepted[0].slot, 1u);
  EXPECT_EQ(promise->accepted[1].slot, 2u);
}

TEST_F(AcceptorUnit, LaterBallotOverwritesVote) {
  prepare(1);
  accept(1, 0);
  accept(7, 0);
  EXPECT_EQ(storage_.votes.at(0).ballot, 7u);
}

TEST_F(AcceptorUnit, IgnoresOtherGroups) {
  const bool handled = core_.handle(
      ProcessId{1}, sim::make_message<Prepare>(GroupId{3}, 1, 0));
  EXPECT_FALSE(handled);
  EXPECT_EQ(storage_.promised, kNoBallot);
}

TEST_F(AcceptorUnit, CommittedPrefixTrimsOldVotes) {
  prepare(1);
  for (Slot s = 0; s < 10; ++s) accept(1, s);
  EXPECT_EQ(storage_.votes.size(), 10u);
  // An accept with a committed prefix far ahead trims everything below
  // committed - window; with committed=5000 and window 4096, slots < 904 go.
  core_.handle(ProcessId{1},
               sim::make_message<Accept>(GroupId{0}, 1, 5000, 5000,
                                         sim::make_message<Noop>()));
  EXPECT_FALSE(storage_.votes.contains(0));
  EXPECT_FALSE(storage_.votes.contains(9));
  EXPECT_TRUE(storage_.votes.contains(5000));
}

TEST_F(AcceptorUnit, StorageSurvivesCoreRebuild) {
  prepare(4);
  accept(4, 0);
  // Simulate crash-recovery: new core over the same storage.
  AcceptorCore recovered(env_, GroupId{0}, storage_);
  env_.sent.clear();
  recovered.handle(ProcessId{2}, sim::make_message<Prepare>(GroupId{0}, 2, 0));
  EXPECT_NE(env_.last_as<Nack>(), nullptr);  // remembers promised=4
}

}  // namespace
}  // namespace dynastar::paxos
