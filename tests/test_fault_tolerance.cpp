// Fault tolerance of the full system: replicas and acceptors are fail-stop
// (the paper deploys 2 replicas + 3 acceptors per partition; the system
// must survive one replica and one acceptor failure per group), and crashed
// replicas may later recover and rejoin their group.
#include <gtest/gtest.h>

#include "core/system.h"
#include "tests/test_util.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

using testutil::config_for;
using testutil::preload;
using testutil::tail_throughput;

TEST(FaultTolerance, PartitionSurvivesReplicaCrash) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 6; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(3));
  const double before = system.metrics().series("completed").total();
  EXPECT_GT(before, 100.0);

  // Crash replica 0 (the bootstrap leader) of partition 0.
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).replicas[0];
  system.world().crash(victim);

  system.run_until(seconds(12));
  EXPECT_GT(tail_throughput(system, 3), 50.0)
      << "system did not resume after replica failover";
}

TEST(FaultTolerance, PartitionSurvivesAcceptorCrash) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 6; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(3));
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{1})).acceptors[1];
  system.world().crash(victim);
  system.run_until(seconds(8));
  EXPECT_GT(tail_throughput(system, 3), 100.0);
}

TEST(FaultTolerance, OracleSurvivesReplicaCrash) {
  auto config = config_for(core::ExecutionMode::kDynaStar);
  core::System system(config, workloads::kv_app_factory());
  preload(system, 16);
  // Drivers that create new vertices force ongoing oracle involvement.
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(2));
  const ProcessId victim =
      system.topology().group(core::kOracleGroup).replicas[0];
  system.world().crash(victim);
  system.run_until(seconds(4));

  // Fresh clients (empty caches) must still resolve through the oracle.
  std::vector<workloads::ScriptedKvDriver::Record> records;
  std::vector<core::CommandSpec> script;
  core::CommandSpec spec;
  spec.objects.emplace_back(ObjectId{3}, core::VertexId{3});
  spec.payload =
      sim::make_message<workloads::KvOp>(workloads::KvOp::Kind::kGet, 0);
  script.push_back(spec);
  system.add_client(
      std::make_unique<workloads::ScriptedKvDriver>(script, &records));
  system.run_until(seconds(10));
  ASSERT_EQ(records.size(), 1u) << "oracle did not answer after failover";
  EXPECT_EQ(records[0].status, core::ReplyStatus::kOk);
}

TEST(FaultTolerance, CrashDuringCrossPartitionTrafficIsLive) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 8; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.8));
  }
  system.run_until(milliseconds(2500));
  // Crash one replica in EACH partition group mid-traffic.
  system.world().crash(
      system.topology().group(core::group_of(PartitionId{0})).replicas[1]);
  system.world().crash(
      system.topology().group(core::group_of(PartitionId{1})).replicas[0]);
  system.run_until(seconds(15));
  EXPECT_GT(tail_throughput(system, 3), 30.0);
}

TEST(FaultTolerance, PartitionReplicaRecoversAndRejoins) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 6; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(3));
  EXPECT_GT(system.metrics().series("completed").total(), 100.0);

  // Crash the bootstrap leader of partition 0, let the follower take over,
  // then bring the crashed replica back. It must rejoin as follower without
  // destabilising the group (no dueling-leader livelock).
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).replicas[0];
  system.world().crash(victim);
  system.run_until(seconds(9));
  system.world().recover(victim);
  system.run_until(seconds(16));
  EXPECT_GT(tail_throughput(system, 3), 50.0)
      << "throughput did not hold after the crashed replica rejoined";
}

TEST(FaultTolerance, OracleReplicaRecoversAndRejoins) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(2));
  const ProcessId victim =
      system.topology().group(core::kOracleGroup).replicas[0];
  system.world().crash(victim);
  system.run_until(seconds(6));
  system.world().recover(victim);
  system.run_until(seconds(10));

  // Fresh clients (empty caches) must resolve through the oracle after the
  // recovered replica has rejoined its group.
  std::vector<workloads::ScriptedKvDriver::Record> records;
  std::vector<core::CommandSpec> script;
  core::CommandSpec spec;
  spec.objects.emplace_back(ObjectId{5}, core::VertexId{5});
  spec.payload =
      sim::make_message<workloads::KvOp>(workloads::KvOp::Kind::kGet, 0);
  script.push_back(spec);
  system.add_client(
      std::make_unique<workloads::ScriptedKvDriver>(script, &records));
  system.run_until(seconds(16));
  ASSERT_EQ(records.size(), 1u) << "oracle did not answer after recovery";
  EXPECT_EQ(records[0].status, core::ReplyStatus::kOk);
  EXPECT_GT(tail_throughput(system, 3), 30.0);
}

}  // namespace
}  // namespace dynastar
