// Fault tolerance of the full system: replicas and acceptors are fail-stop
// (the paper deploys 2 replicas + 3 acceptors per partition; the system
// must survive one replica and one acceptor failure per group).
#include <gtest/gtest.h>

#include "core/system.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

core::SystemConfig config_for(core::ExecutionMode mode) {
  core::SystemConfig config;
  config.mode = mode;
  config.num_partitions = 2;
  config.repartitioning_enabled = false;
  config.repartition_hint_threshold = UINT64_MAX;
  return config;
}

void preload(core::System& system, std::uint64_t keys) {
  core::Assignment assignment;
  workloads::KvObject zero(0);
  for (std::uint64_t k = 0; k < keys; ++k) {
    const PartitionId p{k % system.config().num_partitions};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p, zero);
  }
  system.preload_assignment(assignment);
}

double tail_throughput(core::System& system, std::size_t last_n) {
  const auto& completed = system.metrics().series("completed");
  double total = 0;
  const std::size_t buckets = completed.num_buckets();
  for (std::size_t b = buckets > last_n ? buckets - last_n : 0; b < buckets;
       ++b)
    total += completed.at(b);
  return total;
}

TEST(FaultTolerance, PartitionSurvivesReplicaCrash) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 6; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(3));
  const double before = system.metrics().series("completed").total();
  EXPECT_GT(before, 100.0);

  // Crash replica 0 (the bootstrap leader) of partition 0.
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).replicas[0];
  system.world().crash(victim);

  system.run_until(seconds(12));
  EXPECT_GT(tail_throughput(system, 3), 50.0)
      << "system did not resume after replica failover";
}

TEST(FaultTolerance, PartitionSurvivesAcceptorCrash) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 6; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(3));
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{1})).acceptors[1];
  system.world().crash(victim);
  system.run_until(seconds(8));
  EXPECT_GT(tail_throughput(system, 3), 100.0);
}

TEST(FaultTolerance, OracleSurvivesReplicaCrash) {
  auto config = config_for(core::ExecutionMode::kDynaStar);
  core::System system(config, workloads::kv_app_factory());
  preload(system, 16);
  // Drivers that create new vertices force ongoing oracle involvement.
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(2));
  const ProcessId victim =
      system.topology().group(core::kOracleGroup).replicas[0];
  system.world().crash(victim);
  system.run_until(seconds(4));

  // Fresh clients (empty caches) must still resolve through the oracle.
  std::vector<workloads::ScriptedKvDriver::Record> records;
  std::vector<core::CommandSpec> script;
  core::CommandSpec spec;
  spec.objects.emplace_back(ObjectId{3}, core::VertexId{3});
  spec.payload =
      sim::make_message<workloads::KvOp>(workloads::KvOp::Kind::kGet, 0);
  script.push_back(spec);
  system.add_client(
      std::make_unique<workloads::ScriptedKvDriver>(script, &records));
  system.run_until(seconds(10));
  ASSERT_EQ(records.size(), 1u) << "oracle did not answer after failover";
  EXPECT_EQ(records[0].status, core::ReplyStatus::kOk);
}

TEST(FaultTolerance, CrashDuringCrossPartitionTrafficIsLive) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 8; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.8));
  }
  system.run_until(milliseconds(2500));
  // Crash one replica in EACH partition group mid-traffic.
  system.world().crash(
      system.topology().group(core::group_of(PartitionId{0})).replicas[1]);
  system.world().crash(
      system.topology().group(core::group_of(PartitionId{1})).replicas[0]);
  system.run_until(seconds(15));
  EXPECT_GT(tail_throughput(system, 3), 30.0);
}

}  // namespace
}  // namespace dynastar
