// Fault tolerance of the full system: replicas and acceptors are fail-stop
// (the paper deploys 2 replicas + 3 acceptors per partition; the system
// must survive one replica and one acceptor failure per group), and crashed
// replicas may later recover and rejoin their group.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/linearizability.h"
#include "common/metric_names.h"
#include "core/system.h"
#include "tests/test_util.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

using testutil::config_for;
using testutil::preload;
using testutil::tail_throughput;

TEST(FaultTolerance, PartitionSurvivesReplicaCrash) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 6; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(3));
  const double before = system.metrics().series("completed").total();
  EXPECT_GT(before, 100.0);

  // Crash replica 0 (the bootstrap leader) of partition 0.
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).replicas[0];
  system.world().crash(victim);

  system.run_until(seconds(12));
  EXPECT_GT(tail_throughput(system, 3), 50.0)
      << "system did not resume after replica failover";
}

TEST(FaultTolerance, PartitionSurvivesAcceptorCrash) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 6; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(3));
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{1})).acceptors[1];
  system.world().crash(victim);
  system.run_until(seconds(8));
  EXPECT_GT(tail_throughput(system, 3), 100.0);
}

TEST(FaultTolerance, OracleSurvivesReplicaCrash) {
  auto config = config_for(core::ExecutionMode::kDynaStar);
  core::System system(config, workloads::kv_app_factory());
  preload(system, 16);
  // Drivers that create new vertices force ongoing oracle involvement.
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(2));
  const ProcessId victim =
      system.topology().group(core::kOracleGroup).replicas[0];
  system.world().crash(victim);
  system.run_until(seconds(4));

  // Fresh clients (empty caches) must still resolve through the oracle.
  std::vector<workloads::ScriptedKvDriver::Record> records;
  std::vector<core::CommandSpec> script;
  core::CommandSpec spec;
  spec.objects.emplace_back(ObjectId{3}, core::VertexId{3});
  spec.payload =
      sim::make_message<workloads::KvOp>(workloads::KvOp::Kind::kGet, 0);
  script.push_back(spec);
  system.add_client(
      std::make_unique<workloads::ScriptedKvDriver>(script, &records));
  system.run_until(seconds(10));
  ASSERT_EQ(records.size(), 1u) << "oracle did not answer after failover";
  EXPECT_EQ(records[0].status, core::ReplyStatus::kOk);
}

TEST(FaultTolerance, CrashDuringCrossPartitionTrafficIsLive) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 8; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.8));
  }
  system.run_until(milliseconds(2500));
  // Crash one replica in EACH partition group mid-traffic.
  system.world().crash(
      system.topology().group(core::group_of(PartitionId{0})).replicas[1]);
  system.world().crash(
      system.topology().group(core::group_of(PartitionId{1})).replicas[0]);
  system.run_until(seconds(15));
  EXPECT_GT(tail_throughput(system, 3), 30.0);
}

TEST(FaultTolerance, PartitionReplicaRecoversAndRejoins) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 6; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(3));
  EXPECT_GT(system.metrics().series("completed").total(), 100.0);

  // Crash the bootstrap leader of partition 0, let the follower take over,
  // then bring the crashed replica back. It must rejoin as follower without
  // destabilising the group (no dueling-leader livelock).
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).replicas[0];
  system.world().crash(victim);
  system.run_until(seconds(9));
  system.world().recover(victim);
  system.run_until(seconds(16));
  EXPECT_GT(tail_throughput(system, 3), 50.0)
      << "throughput did not hold after the crashed replica rejoined";
}

TEST(FaultTolerance, OracleReplicaRecoversAndRejoins) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(2));
  const ProcessId victim =
      system.topology().group(core::kOracleGroup).replicas[0];
  system.world().crash(victim);
  system.run_until(seconds(6));
  system.world().recover(victim);
  system.run_until(seconds(10));

  // Fresh clients (empty caches) must resolve through the oracle after the
  // recovered replica has rejoined its group.
  std::vector<workloads::ScriptedKvDriver::Record> records;
  std::vector<core::CommandSpec> script;
  core::CommandSpec spec;
  spec.objects.emplace_back(ObjectId{5}, core::VertexId{5});
  spec.payload =
      sim::make_message<workloads::KvOp>(workloads::KvOp::Kind::kGet, 0);
  script.push_back(spec);
  system.add_client(
      std::make_unique<workloads::ScriptedKvDriver>(script, &records));
  system.run_until(seconds(16));
  ASSERT_EQ(records.size(), 1u) << "oracle did not answer after recovery";
  EXPECT_EQ(records[0].status, core::ReplyStatus::kOk);
  EXPECT_GT(tail_throughput(system, 3), 30.0);
}

// --- crash-restart: checkpoints, replay, and bounded logs ---

/// Preloads `keys` KV objects valued 1000+k (so "absent" never aliases a
/// legal read); pair with with_initial_puts(history, keys, 1000).
void preload_lin(core::System& system, std::uint64_t keys) {
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < keys; ++k) {
    const PartitionId p{k % system.config().num_partitions};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p,
                          workloads::KvObject(1000 + k));
  }
  system.preload_assignment(assignment);
}

TEST(FaultTolerance, RecoveredReplicaStateComesFromCheckpointNotHeap) {
  // Volatile-state leak regression: crash must wipe the heap; recovery must
  // rebuild exclusively from the durable checkpoint plus log replay. Poison
  // the victim's in-memory store with an object that is in no checkpoint and
  // no decided command — if any pre-crash heap survives the crash/recover
  // cycle, the poison object survives with it.
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(3));

  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).replicas[1];
  system.server(PartitionId{0}, 1)
      .preload_object(ObjectId{999}, core::VertexId{999},
                      core::ObjectPtr(workloads::KvObject(999).clone()));
  ASSERT_TRUE(system.server(PartitionId{0}, 1).store().contains(ObjectId{999}));

  system.world().crash(victim);
  system.run_until(seconds(5));
  system.world().recover(victim);
  system.run_until(seconds(12));

  const auto& recovered = system.server(PartitionId{0}, 1).store();
  EXPECT_FALSE(recovered.contains(ObjectId{999}))
      << "pre-crash heap state leaked through recovery";
  // The legitimate state converges with the surviving sibling replica.
  const auto& sibling = system.server(PartitionId{0}, 0).store();
  for (std::uint64_t k = 0; k < 16; k += 2)  // partition 0's preloaded keys
    EXPECT_EQ(recovered.contains(ObjectId{k}), sibling.contains(ObjectId{k}))
        << "key " << k << " differs from the surviving replica";
  EXPECT_GT(tail_throughput(system, 3), 50.0);
}

TEST(FaultTolerance, RecoveredOracleStateComesFromCheckpointNotHeap) {
  core::System system(config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(2));

  const ProcessId victim =
      system.topology().group(core::kOracleGroup).replicas[1];
  // Poison the victim oracle replica's workload graph with a vertex no
  // delivered hint or create ever added.
  system.oracle(1).preload_vertex(core::VertexId{777777}, 5);
  ASSERT_TRUE(system.oracle(1).graph().contains(777777));

  system.world().crash(victim);
  system.run_until(seconds(4));
  system.world().recover(victim);
  system.run_until(seconds(10));

  EXPECT_FALSE(system.oracle(1).graph().contains(777777))
      << "pre-crash oracle heap state leaked through recovery";
  EXPECT_GT(tail_throughput(system, 3), 30.0);
}

TEST(FaultTolerance, CrashAtCheckpointBoundary) {
  // checkpoint_interval=1: every delivered slot is a checkpoint boundary, so
  // whenever the crash lands it coincides with a just-captured checkpoint.
  // Recovery must replay a (possibly empty) suffix without double-applying
  // the checkpointed prefix.
  auto config = config_for(core::ExecutionMode::kDynaStar);
  config.paxos.checkpoint_interval = 1;
  core::System system(config, workloads::kv_app_factory());
  preload_lin(system, 16);

  std::vector<KvOperation> history;
  testutil::StatusTally tally;
  for (int c = 0; c < 4; ++c) {
    system.add_client(std::make_unique<testutil::RecordingKvDriver>(
        16, 30, &history, &tally));
  }
  system.run_until(milliseconds(1500));
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).replicas[0];
  system.world().crash(victim);
  system.run_until(seconds(4));
  system.world().recover(victim);
  system.run_until(seconds(20));

  EXPECT_EQ(tally.completions, 4u * 30u) << "clients hung across the crash";
  EXPECT_EQ(tally.ok, 4u * 30u);
  EXPECT_GE(system.metrics().counter(metric::kServerCheckpoints), 1.0);
  const auto full = testutil::with_initial_puts(history, 16, 1000);
  EXPECT_TRUE(check_kv_linearizable(full).linearizable);
}

TEST(FaultTolerance, CrashDuringInFlightBorrow) {
  // Heavy multi-partition traffic guarantees borrows are in flight at the
  // crash instant; the wiped replica must reconverge (retained VarTransfers
  // / VarReturns are re-driven via the reliable link's ResendReq) and the
  // history must stay linearizable.
  auto config = config_for(core::ExecutionMode::kDynaStar);
  config.paxos.checkpoint_interval = 64;
  core::System system(config, workloads::kv_app_factory());
  preload_lin(system, 16);

  std::vector<KvOperation> history;
  testutil::StatusTally tally;
  for (int c = 0; c < 6; ++c) {
    system.add_client(std::make_unique<testutil::RecordingKvDriver>(
        16, 40, &history, &tally));
  }
  system.run_until(milliseconds(1200));
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{1})).replicas[0];
  system.world().crash(victim);
  system.run_until(milliseconds(3200));
  system.world().recover(victim);
  system.run_until(seconds(25));

  EXPECT_EQ(tally.completions, 6u * 40u)
      << "commands wedged across a crash during borrow/return traffic";
  EXPECT_EQ(tally.ok, 6u * 40u);
  const auto full = testutil::with_initial_puts(history, 16, 1000);
  const auto result = check_kv_linearizable(full);
  EXPECT_TRUE(result.linearizable)
      << "non-linearizable history; stuck op "
      << (result.stuck_operation ? static_cast<long>(*result.stuck_operation)
                                 : -1);
}

TEST(FaultTolerance, AppliedLogBoundedByCheckpointInterval) {
  // With a small checkpoint interval and catch-up window, the applied-log
  // suffix each replica retains must stay bounded by those knobs — not grow
  // with the run length.
  auto config = config_for(core::ExecutionMode::kDynaStar);
  config.paxos.checkpoint_interval = 16;
  config.paxos.catchup_window = 16;
  core::System system(config, workloads::kv_app_factory());
  preload(system, 16);
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(4));

  for (std::uint32_t p = 0; p < system.config().num_partitions; ++p) {
    for (std::size_t r = 0; r < 2; ++r) {
      auto& replica = system.server(PartitionId{p}, r).member().replica();
      EXPECT_GT(replica.next_deliver_slot(), 64u)
          << "partition " << p << " delivered too little to exercise bounds";
      EXPECT_GT(replica.floor_slot(), 0u)
          << "log of partition " << p << " replica " << r
          << " was never truncated";
      // Retained suffix: at most the catch-up window plus one full
      // checkpoint interval of not-yet-stable slots (plus decided-ahead
      // gaps, which quiesce to zero).
      EXPECT_LE(replica.applied_log_size(),
                4 * static_cast<std::size_t>(config.paxos.checkpoint_interval))
          << "partition " << p << " replica " << r
          << " retains an unbounded applied log";
    }
  }
  EXPECT_GE(system.metrics().counter(metric::kServerCheckpoints), 1.0);
  EXPECT_GE(system.metrics().counter(metric::kOracleCheckpoints), 1.0);
}

TEST(FaultTolerance, SnapshotInstallRacingPlanEpochBump) {
  // A replica that recovers after its peers truncated past its gap pulls a
  // full snapshot — while repartitioning keeps bumping the plan epoch. The
  // installed snapshot carries the map/epoch of its capture instant; the
  // epoch-gated command validation must keep the history linearizable
  // through the race.
  core::SystemConfig config;
  config.mode = core::ExecutionMode::kDynaStar;
  config.num_partitions = 2;
  config.repartitioning_enabled = true;
  config.repartition_hint_threshold = 100;
  config.min_repartition_interval = milliseconds(20);
  config.hint_batch_commands = 50;
  config.paxos.checkpoint_interval = 32;
  config.paxos.catchup_window = 8;
  core::System system(config, workloads::kv_app_factory());
  preload_lin(system, 16);

  std::vector<KvOperation> history;
  testutil::StatusTally tally;
  // Enough traffic that hints keep arriving well past the repartition
  // cooldown and the crash/recovery window — the trigger is re-evaluated
  // on hint arrival, so a burst that ends inside the cooldown never plans.
  for (int c = 0; c < 6; ++c) {
    system.add_client(std::make_unique<testutil::RecordingKvDriver>(
        16, 150, &history, &tally));
  }
  // The whole burst spans ~100 simulated milliseconds, so the crash window
  // sits at that granularity: take the follower down while commands are in
  // flight, give its peers time to decide far more than catchup_window
  // slots, then bring it back mid-traffic.
  system.run_until(milliseconds(20));
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).replicas[1];
  system.world().crash(victim);
  system.run_until(milliseconds(60));
  system.world().recover(victim);
  system.run_until(seconds(5));

  EXPECT_GE(system.metrics().series(metric::kOraclePlansApplied).total(), 1.0)
      << "no plan epoch bump happened; the race was not exercised";
  EXPECT_GE(system.metrics().counter(metric::kServerSnapshotInstalls), 1.0)
      << "the recovered replica caught up without a snapshot install";
  EXPECT_EQ(tally.completions, 6u * 150u);
  EXPECT_EQ(tally.ok, 6u * 150u);
  const auto full = testutil::with_initial_puts(history, 16, 1000);
  EXPECT_TRUE(check_kv_linearizable(full).linearizable);
}

}  // namespace
}  // namespace dynastar
