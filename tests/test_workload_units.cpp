// Unit tests for the workload applications' deterministic logic, executed
// directly against an ObjectStore (no distributed stack involved).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/object.h"
#include "workloads/chirper.h"
#include "workloads/kv_drivers.h"
#include "workloads/smallbank.h"
#include "workloads/social_graph.h"
#include "workloads/tpcc.h"

namespace dynastar::workloads {
namespace {

namespace tp = tpcc;
namespace ch = chirper;

core::CommandPtr make_cmd(std::vector<std::pair<ObjectId, core::VertexId>> objs,
                          sim::MessagePtr payload) {
  std::vector<ObjectId> ids;
  std::vector<core::VertexId> vertices;
  for (auto& [o, v] : objs) {
    ids.push_back(o);
    vertices.push_back(v);
  }
  return sim::make_message<core::Command>(
      1, ProcessId{0}, core::CommandType::kAccess, std::move(ids),
      std::move(vertices), std::move(payload));
}

class TpccAppTest : public ::testing::Test {
 protected:
  TpccAppTest() : app_(scale_) {
    store_.put(tp::oid(tp::Table::kWarehouse, 1, 0, 0), tp::warehouse_vertex(1),
               std::make_shared<tp::WarehouseRow>());
    store_.put(tp::oid(tp::Table::kDistrict, 1, 1, 0), tp::district_vertex(1, 1),
               std::make_shared<tp::DistrictRow>());
    store_.put(tp::oid(tp::Table::kHistory, 1, 1, 0), tp::district_vertex(1, 1),
               std::make_shared<tp::HistoryRow>());
    for (std::uint32_t c = 1; c <= 3; ++c) {
      store_.put(tp::oid(tp::Table::kCustomer, 1, 1, c),
                 tp::district_vertex(1, 1), std::make_shared<tp::CustomerRow>());
    }
    for (std::uint32_t i = 1; i <= 10; ++i) {
      store_.put(tp::oid(tp::Table::kStock, 1, 0, i), tp::warehouse_vertex(1),
                 std::make_shared<tp::StockRow>());
    }
  }

  const tp::TpccReply* run_new_order(std::uint32_t c,
                                     std::vector<tp::OrderLine> lines) {
    auto args = sim::make_mutable_message<tp::NewOrderArgs>();
    args->w = 1;
    args->d = 1;
    args->c = c;
    args->lines = std::move(lines);
    auto cmd = make_cmd({{tp::oid(tp::Table::kWarehouse, 1, 0, 0),
                          tp::warehouse_vertex(1)}},
                        args);
    last_ = app_.execute(*cmd, store_).reply;
    return dynamic_cast<const tp::TpccReply*>(last_.get());
  }

  tp::Scale scale_;
  tp::TpccApp app_;
  core::ObjectStore store_;
  sim::MessagePtr last_;
};

TEST_F(TpccAppTest, NewOrderAssignsIncreasingOrderIds) {
  auto* r1 = run_new_order(1, {{3, 1, 5, 0}});
  auto* r2 = run_new_order(2, {{4, 1, 2, 0}});
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->o_id, 1u);
  EXPECT_EQ(r2->o_id, 2u);
  // Order rows exist under the district vertex.
  EXPECT_TRUE(store_.contains(tp::oid(tp::Table::kOrder, 1, 1, 1)));
  EXPECT_TRUE(store_.contains(tp::oid(tp::Table::kOrder, 1, 1, 2)));
  EXPECT_EQ(store_.vertex_of(tp::oid(tp::Table::kOrder, 1, 1, 1)),
            tp::district_vertex(1, 1));
}

TEST_F(TpccAppTest, NewOrderUpdatesStock) {
  run_new_order(1, {{5, 1, 7, 0}});
  auto* stock = dynamic_cast<tp::StockRow*>(
      store_.find(tp::oid(tp::Table::kStock, 1, 0, 5)));
  ASSERT_NE(stock, nullptr);
  EXPECT_EQ(stock->quantity, 43u);  // 50 - 7
  EXPECT_EQ(stock->ytd, 7u);
  EXPECT_EQ(stock->order_cnt, 1u);
  EXPECT_EQ(stock->remote_cnt, 0u);
}

TEST_F(TpccAppTest, StockRefillsBelowThreshold) {
  for (int i = 0; i < 5; ++i) run_new_order(1, {{5, 1, 9, 0}});
  auto* stock = dynamic_cast<tp::StockRow*>(
      store_.find(tp::oid(tp::Table::kStock, 1, 0, 5)));
  // Quantity must never go negative; the spec's +91 refill kicks in.
  EXPECT_GT(stock->quantity, 0u);
  EXPECT_EQ(stock->ytd, 45u);
}

TEST_F(TpccAppTest, PaymentMovesMoney) {
  auto args = sim::make_mutable_message<tp::PaymentArgs>();
  args->w = 1;
  args->d = 1;
  args->c_w = 1;
  args->c_d = 1;
  args->c = 2;
  args->amount = 100.0;
  auto cmd = make_cmd({{tp::oid(tp::Table::kCustomer, 1, 1, 2),
                        tp::district_vertex(1, 1)}},
                      args);
  auto result = app_.execute(*cmd, store_);
  auto* reply = dynamic_cast<const tp::TpccReply*>(result.reply.get());
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->ok);
  EXPECT_NEAR(reply->balance, -110.0, 1e-9);  // initial -10 minus 100
  auto* warehouse = dynamic_cast<tp::WarehouseRow*>(
      store_.find(tp::oid(tp::Table::kWarehouse, 1, 0, 0)));
  EXPECT_NEAR(warehouse->ytd, 100.0, 1e-9);
  auto* history = dynamic_cast<tp::HistoryRow*>(
      store_.find(tp::oid(tp::Table::kHistory, 1, 1, 0)));
  EXPECT_EQ(history->entries, 1u);
}

TEST_F(TpccAppTest, DeliveryProcessesOldestUndelivered) {
  run_new_order(1, {{3, 1, 5, 0}});
  run_new_order(2, {{4, 1, 2, 0}});
  auto args = sim::make_mutable_message<tp::DeliveryArgs>();
  args->w = 1;
  args->d = 1;
  args->carrier = 7;
  auto cmd = make_cmd({{tp::oid(tp::Table::kDistrict, 1, 1, 0),
                        tp::district_vertex(1, 1)}},
                      args);
  auto result = app_.execute(*cmd, store_);
  auto* reply = dynamic_cast<const tp::TpccReply*>(result.reply.get());
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->o_id, 1u);  // oldest first
  auto* order = dynamic_cast<tp::OrderRow*>(
      store_.find(tp::oid(tp::Table::kOrder, 1, 1, 1)));
  EXPECT_EQ(order->carrier, 7u);
  // Customer 1's balance got credited.
  auto* customer = dynamic_cast<tp::CustomerRow*>(
      store_.find(tp::oid(tp::Table::kCustomer, 1, 1, 1)));
  EXPECT_GT(customer->balance, -10.0);
  EXPECT_EQ(customer->delivery_cnt, 1u);

  // Second delivery processes order 2.
  auto result2 = app_.execute(*cmd, store_);
  auto* reply2 = dynamic_cast<const tp::TpccReply*>(result2.reply.get());
  EXPECT_EQ(reply2->o_id, 2u);
}

TEST_F(TpccAppTest, StockScanReportsRecentItems) {
  run_new_order(1, {{3, 1, 5, 0}, {7, 1, 1, 0}});
  auto args = sim::make_mutable_message<tp::StockScanArgs>();
  args->w = 1;
  args->d = 1;
  auto cmd = make_cmd({{tp::oid(tp::Table::kDistrict, 1, 1, 0),
                        tp::district_vertex(1, 1)}},
                      args);
  auto result = app_.execute(*cmd, store_);
  auto* reply = dynamic_cast<const tp::TpccReply*>(result.reply.get());
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->items, (std::vector<std::uint32_t>{3, 7}));
}

TEST_F(TpccAppTest, MissingRowsRejectGracefully) {
  auto args = sim::make_mutable_message<tp::PaymentArgs>();
  args->w = 9;  // nonexistent warehouse
  args->d = 1;
  args->c_w = 9;
  args->c_d = 1;
  args->c = 1;
  auto cmd = make_cmd({{tp::oid(tp::Table::kCustomer, 9, 1, 1),
                        tp::district_vertex(9, 1)}},
                      args);
  auto result = app_.execute(*cmd, store_);
  auto* reply = dynamic_cast<const tp::TpccReply*>(result.reply.get());
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->ok);
}

// --- Chirper ---

TEST(ChirperApp, PostAppendsToFollowerTimelinesOnly) {
  ch::ChirperApp app;
  core::ObjectStore store;
  for (std::uint32_t u = 0; u < 3; ++u)
    store.put(ch::user_object(u), ch::user_vertex(u),
              std::make_shared<ch::UserObject>());
  auto op = sim::make_mutable_message<ch::ChirperOp>();
  op->kind = ch::ChirperOp::Kind::kPost;
  op->author = 0;
  op->post_ref = 0xfeed;
  auto cmd = make_cmd({{ch::user_object(0), ch::user_vertex(0)},
                       {ch::user_object(1), ch::user_vertex(1)},
                       {ch::user_object(2), ch::user_vertex(2)}},
                      op);
  app.execute(*cmd, store);

  auto* author = dynamic_cast<ch::UserObject*>(store.find(ch::user_object(0)));
  EXPECT_EQ(author->posts, 1u);
  EXPECT_TRUE(author->timeline.empty());
  for (std::uint32_t u = 1; u < 3; ++u) {
    auto* follower =
        dynamic_cast<ch::UserObject*>(store.find(ch::user_object(u)));
    ASSERT_EQ(follower->timeline.size(), 1u);
    EXPECT_EQ(follower->timeline[0], 0xfeedu);
  }
}

TEST(ChirperApp, TimelineIsCapped) {
  ch::UserObject user;
  for (std::uint64_t i = 0; i < 50; ++i) user.append(i);
  EXPECT_EQ(user.timeline.size(), ch::UserObject::kTimelineCap);
  EXPECT_EQ(user.timeline.back(), 49u);
  EXPECT_EQ(user.timeline.front(), 50 - ch::UserObject::kTimelineCap);
}

TEST(ChirperApp, FollowAdjustsCounters) {
  ch::ChirperApp app;
  core::ObjectStore store;
  store.put(ch::user_object(1), ch::user_vertex(1),
            std::make_shared<ch::UserObject>());
  store.put(ch::user_object(2), ch::user_vertex(2),
            std::make_shared<ch::UserObject>());
  auto op = sim::make_mutable_message<ch::ChirperOp>();
  op->kind = ch::ChirperOp::Kind::kFollow;
  auto cmd = make_cmd({{ch::user_object(1), ch::user_vertex(1)},
                       {ch::user_object(2), ch::user_vertex(2)}},
                      op);
  app.execute(*cmd, store);
  auto* follower = dynamic_cast<ch::UserObject*>(store.find(ch::user_object(1)));
  auto* followee = dynamic_cast<ch::UserObject*>(store.find(ch::user_object(2)));
  EXPECT_EQ(follower->following_count, 1u);
  EXPECT_EQ(followee->followers_count, 1u);

  auto unop = sim::make_mutable_message<ch::ChirperOp>();
  unop->kind = ch::ChirperOp::Kind::kUnfollow;
  auto uncmd = make_cmd({{ch::user_object(1), ch::user_vertex(1)},
                         {ch::user_object(2), ch::user_vertex(2)}},
                        unop);
  app.execute(*uncmd, store);
  EXPECT_EQ(follower->following_count, 0u);
  EXPECT_EQ(followee->followers_count, 0u);
}

// --- Social graph generator ---

TEST(SocialGraph, SizesAndSymmetry) {
  auto graph = generate_social_graph(1000, 4, 7);
  EXPECT_EQ(graph.num_users(), 1000u);
  // ~4 follows per user (first few users have fewer options).
  EXPECT_GT(graph.num_edges(), 3500u);
  EXPECT_LT(graph.num_edges(), 4100u);
  // followers/following are mirror images.
  std::size_t follower_sum = 0, following_sum = 0;
  for (const auto& f : graph.followers) follower_sum += f.size();
  for (const auto& f : graph.following) following_sum += f.size();
  EXPECT_EQ(follower_sum, following_sum);
}

TEST(SocialGraph, HeavyTailedFollowers) {
  auto graph = generate_social_graph(5000, 4, 7);
  const auto max_followers = graph.max_followers();
  const double avg = static_cast<double>(graph.num_edges()) /
                     static_cast<double>(graph.num_users());
  EXPECT_GT(max_followers, avg * 20) << "no celebrities in the graph";
}

TEST(SocialGraph, DeterministicGivenSeed) {
  auto a = generate_social_graph(500, 3, 11);
  auto b = generate_social_graph(500, 3, 11);
  EXPECT_EQ(a.followers, b.followers);
}

TEST(SocialGraph, NoSelfFollowsOrDuplicates) {
  auto graph = generate_social_graph(800, 5, 3);
  for (std::uint32_t u = 0; u < 800; ++u) {
    auto following = graph.following[u];
    std::sort(following.begin(), following.end());
    EXPECT_EQ(std::unique(following.begin(), following.end()), following.end());
    EXPECT_EQ(std::find(following.begin(), following.end(), u),
              following.end());
  }
}

// --- Read-only declaration audit ---
//
// The read_only hints drivers attach to CommandSpecs are load-bearing: the
// parallel executor schedules "reads" concurrently and read leases serve
// them from unreplicated local copies, both via core::is_read_only. This
// audit runs each driver's spec stream straight against its application and
// checks the declarations against the *actual* write set, via PRObject
// digests of every declared vertex:
//   (a) a declared read must leave every digest unchanged, and
//   (b) the stream's writes must move digests somewhere —
// so a workload whose digest() is unimplemented (constant 0) fails (b)
// loudly instead of passing (a) vacuously.

std::uint64_t vertex_digest(const core::ObjectStore& store, core::VertexId v) {
  auto ids = store.objects_of_vertex(v);
  std::sort(ids.begin(), ids.end());
  std::uint64_t h = core::digest_mix(0xcbf29ce484222325ull, ids.size());
  for (ObjectId id : ids) {
    h = core::digest_mix(h, id.value());
    const auto* obj = store.find(id);
    h = core::digest_mix(h, obj ? obj->digest() : 0);
  }
  return h;
}

struct AuditCounts {
  int reads = 0;
  int writes = 0;
  int writes_that_changed_state = 0;
};

AuditCounts audit_driver(core::ClientDriver& driver,
                         core::AppStateMachine& app, core::ObjectStore& store,
                         std::uint64_t seed, int ops) {
  Rng rng(seed);
  AuditCounts counts;
  for (int i = 0; i < ops; ++i) {
    auto spec = driver.next(rng, 0);
    if (!spec.has_value()) break;
    if (spec->objects.empty()) continue;  // pause spec: the client idles
    if (spec->type != core::CommandType::kAccess) continue;

    std::vector<ObjectId> ids;
    std::vector<core::VertexId> vertices;
    for (const auto& [o, v] : spec->objects) {
      ids.push_back(o);
      vertices.push_back(v);
    }
    std::vector<core::VertexId> distinct = vertices;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());

    std::vector<std::uint64_t> before;
    before.reserve(distinct.size());
    for (core::VertexId v : distinct) before.push_back(vertex_digest(store, v));

    auto cmd = sim::make_message<core::Command>(
        static_cast<std::uint64_t>(i + 1), ProcessId{0}, spec->type, ids,
        vertices, spec->payload, spec->read_only);
    auto result = app.execute(*cmd, store);

    bool changed = false;
    for (std::size_t j = 0; j < distinct.size(); ++j) {
      const std::uint64_t after = vertex_digest(store, distinct[j]);
      if (core::is_read_only(*cmd)) {
        EXPECT_EQ(before[j], after)
            << "declared read-only command #" << i << " ("
            << (spec->payload ? spec->payload->type_name() : "<none>")
            << ") mutated vertex " << distinct[j];
      } else if (after != before[j]) {
        changed = true;
      }
    }
    if (core::is_read_only(*cmd)) {
      ++counts.reads;
    } else {
      ++counts.writes;
      if (changed) ++counts.writes_that_changed_state;
    }
    // Stateful drivers (chirper's follower directory, TPC-C's pending
    // deliveries and last-order table) advance through the result callback.
    driver.on_result(*spec, core::ReplyStatus::kOk, result.reply, 0, 0);
  }
  return counts;
}

TEST(ReadOnlyAudit, KvDriverDeclarationsMatchWriteSet) {
  KvApp app;
  core::ObjectStore store;
  constexpr std::uint64_t kKeys = 16;
  for (std::uint64_t k = 0; k < kKeys; ++k)
    store.put(ObjectId{k}, core::VertexId{k},
              std::make_shared<KvObject>(1000 + k));
  RandomKvDriver driver(kKeys, 0.5, 0.4);
  const auto counts = audit_driver(driver, app, store, 17, 200);
  EXPECT_GT(counts.reads, 20);
  EXPECT_GT(counts.writes, 20);
  EXPECT_GT(counts.writes_that_changed_state, 0)
      << "no write moved a digest: KvObject::digest() is not observing state";
}

TEST(ReadOnlyAudit, SmallBankDriverDeclarationsMatchWriteSet) {
  smallbank::SmallBankApp app;
  core::ObjectStore store;
  constexpr std::uint32_t kCustomers = 200;
  for (std::uint32_t c = 0; c < kCustomers; ++c)
    store.put(smallbank::customer_object(c), smallbank::customer_vertex(c),
              std::make_shared<smallbank::CustomerAccounts>(100.0, 1000.0));
  smallbank::SmallBankDriver driver(kCustomers);
  const auto counts = audit_driver(driver, app, store, 23, 200);
  EXPECT_GT(counts.reads, 5);   // kBalance is 15% of the default mix
  EXPECT_GT(counts.writes, 50);
  EXPECT_GT(counts.writes_that_changed_state, 0)
      << "no write moved a digest: CustomerAccounts::digest() is broken";
}

TEST(ReadOnlyAudit, ChirperDriverDeclarationsMatchWriteSet) {
  ch::ChirperApp app;
  core::ObjectStore store;
  constexpr std::uint32_t kUsers = 50;
  auto graph = generate_social_graph(kUsers, 4, 5);
  for (std::uint32_t u = 0; u < kUsers; ++u) {
    auto user = std::make_shared<ch::UserObject>();
    user->followers_count = static_cast<std::uint32_t>(graph.followers[u].size());
    user->following_count = static_cast<std::uint32_t>(graph.following[u].size());
    store.put(ch::user_object(u), ch::user_vertex(u), std::move(user));
  }
  ch::WorkloadMix mix;
  mix.timeline_fraction = 0.5;  // plenty of both reads and posts
  mix.follow_fraction = 0.1;
  auto zipf = std::make_shared<const ZipfGenerator>(kUsers, mix.zipf_theta);
  ch::ChirperDriver driver(ch::make_directory(graph), mix, zipf);
  const auto counts = audit_driver(driver, app, store, 31, 200);
  EXPECT_GT(counts.reads, 20);
  EXPECT_GT(counts.writes, 20);
  EXPECT_GT(counts.writes_that_changed_state, 0)
      << "no write moved a digest: UserObject::digest() is broken";
}

TEST(ReadOnlyAudit, TpccDriverDeclarationsMatchWriteSet) {
  tp::Scale scale;
  scale.districts_per_warehouse = 2;
  scale.customers_per_district = 5;
  scale.items = 20;
  constexpr std::uint32_t kWarehouses = 2;
  tp::TpccApp app(scale);
  core::ObjectStore store;
  for (std::uint32_t w = 1; w <= kWarehouses; ++w) {
    store.put(tp::oid(tp::Table::kWarehouse, w, 0, 0), tp::warehouse_vertex(w),
              std::make_shared<tp::WarehouseRow>());
    for (std::uint32_t i = 1; i <= scale.items; ++i)
      store.put(tp::oid(tp::Table::kStock, w, 0, i), tp::warehouse_vertex(w),
                std::make_shared<tp::StockRow>());
    for (std::uint32_t d = 1; d <= scale.districts_per_warehouse; ++d) {
      store.put(tp::oid(tp::Table::kDistrict, w, d, 0),
                tp::district_vertex(w, d), std::make_shared<tp::DistrictRow>());
      store.put(tp::oid(tp::Table::kHistory, w, d, 0),
                tp::district_vertex(w, d), std::make_shared<tp::HistoryRow>());
      for (std::uint32_t c = 1; c <= scale.customers_per_district; ++c)
        store.put(tp::oid(tp::Table::kCustomer, w, d, c),
                  tp::district_vertex(w, d),
                  std::make_shared<tp::CustomerRow>());
    }
  }
  tp::TpccDriver driver(scale, kWarehouses, 1, 1);
  const auto counts = audit_driver(driver, app, store, 41, 300);
  EXPECT_GT(counts.reads, 10);  // Order-Status + Stock-Level
  EXPECT_GT(counts.writes, 50);
  EXPECT_GT(counts.writes_that_changed_state, 0)
      << "no write moved a digest: the tpcc row digests are broken";
}

}  // namespace
}  // namespace dynastar::workloads
