// Unit tests for the Network link-capacity model: LinkKey hashing, explicit
// config setters, link-profile resolution, FIFO bandwidth serialization,
// queue-cap tail drops, site striping, and labeled per-link byte accounting.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/metric_names.h"
#include "sim/process.h"
#include "sim/simulator.h"
#include "sim/world.h"

namespace dynastar::sim {
namespace {

// --- LinkKey / LinkKeyHash ---

TEST(LinkKey, HashIsOrderSensitive) {
  // (a, b) and (b, a) are different directed links; a symmetric hash would
  // put them in the same bucket systematically and, worse, a symmetric
  // equality would merge them. Equality must distinguish them.
  const Network::LinkKey ab{1, 2};
  const Network::LinkKey ba{2, 1};
  EXPECT_FALSE(ab == ba);
  // The hash should *usually* differ too (quality, not correctness): check
  // over a spread of pairs that reversal changes the hash.
  Network::LinkKeyHash hash;
  int differing = 0;
  for (std::uint64_t a = 1; a <= 64; ++a) {
    const Network::LinkKey fwd{a, a + 1000};
    const Network::LinkKey rev{a + 1000, a};
    if (hash(fwd) != hash(rev)) ++differing;
  }
  EXPECT_GE(differing, 60) << "reversed links collide almost always";
}

TEST(LinkKey, HighBitsDoNotAliasLowLinks) {
  // Regression shape: a packed 32+32 key made {2^32+1 -> 0} equal {1 -> 0}.
  const Network::LinkKey high{(1ull << 32) + 1, 0};
  const Network::LinkKey low{1, 0};
  EXPECT_FALSE(high == low);
  std::unordered_set<Network::LinkKey, Network::LinkKeyHash> set;
  set.insert(high);
  EXPECT_FALSE(set.contains(low));
}

TEST(LinkKey, HashSpreadsOverDenseIds) {
  // Process ids are dense small integers; the hash must not degenerate.
  Network::LinkKeyHash hash;
  std::unordered_set<std::size_t> buckets;
  for (std::uint64_t from = 0; from < 32; ++from)
    for (std::uint64_t to = 0; to < 32; ++to)
      buckets.insert(hash(Network::LinkKey{from, to}) % 1024);
  EXPECT_GT(buckets.size(), 512u) << "dense ids collapse into few buckets";
}

// --- fixtures ---

class EchoProcess final : public Process {
 public:
  using Process::Process;
  void on_message(ProcessId, const MessagePtr&) override {
    ++received;
    last_arrival = world().sim().now();
    arrivals.push_back(last_arrival);
  }
  int received = 0;
  SimTime last_arrival = 0;
  std::vector<SimTime> arrivals;
};

struct Payload final : Message {
  explicit Payload(std::size_t bytes) : bytes(bytes) {}
  const char* type_name() const override { return "test.Payload"; }
  std::size_t size_bytes() const override { return bytes; }
  std::size_t bytes;
};

class BurstSender final : public Process {
 public:
  BurstSender(ProcessId id, World& world, ProcessId to, int count,
              std::size_t bytes)
      : Process(id, world), to_(to), count_(count), bytes_(bytes) {}
  void on_start() override {
    for (int i = 0; i < count_; ++i)
      send_message(to_, make_message<Payload>(bytes_));
  }
  void on_message(ProcessId, const MessagePtr&) override {}

 private:
  ProcessId to_;
  int count_;
  std::size_t bytes_;
};

NetworkConfig quiet_config() {
  NetworkConfig net;
  net.base_latency = 0;
  net.jitter = 0;
  net.per_kib_cost = 0;
  return net;
}

// --- explicit setters (the old mutable config() is gone) ---

TEST(Network, SettersRewriteGlobalKnobs) {
  NetworkConfig net = quiet_config();
  World world(net, 1);
  auto& echo = world.spawn<EchoProcess>();
  auto& sender = world.spawn<BurstSender>(echo.id(), 1, 100);
  world.network().set_drop_probability(1.0);
  world.run_until(milliseconds(1));
  EXPECT_EQ(echo.received, 0);
  EXPECT_EQ(world.network().config().drop_probability, 1.0);
  world.network().set_drop_probability(0.0);
  world.network().set_base_latency(milliseconds(2));
  world.network().send(sender.id(), echo.id(), make_message<Payload>(8));
  world.run_until(milliseconds(2));
  EXPECT_EQ(echo.received, 0) << "new base latency not applied";
  world.run_until(milliseconds(4));
  EXPECT_EQ(echo.received, 1);
}

// --- bandwidth / FIFO serialization ---

TEST(Network, BandwidthDelaysLargeMessages) {
  World world(quiet_config(), 1);
  auto& echo = world.spawn<EchoProcess>();
  auto& sender = world.spawn<BurstSender>(echo.id(), 0, 0);
  LinkProfile profile;
  profile.bandwidth_bytes_per_sec = 1'000'000;  // 1 MB/s -> 1 KB per ms
  world.network().set_link_profile(sender.id(), echo.id(), profile);
  world.network().send(sender.id(), echo.id(), make_message<Payload>(10'000));
  world.run_until(milliseconds(9));
  EXPECT_EQ(echo.received, 0) << "10 KB at 1 MB/s should take 10 ms";
  world.run_until(milliseconds(11));
  EXPECT_EQ(echo.received, 1);
}

TEST(Network, FifoSerializationDelaysFollowers) {
  // A large message in front of a small one delays it: the small message's
  // transmission cannot start until the pipe is clear.
  World world(quiet_config(), 1);
  auto& echo = world.spawn<EchoProcess>();
  auto& sender = world.spawn<BurstSender>(echo.id(), 0, 0);
  LinkProfile profile;
  profile.bandwidth_bytes_per_sec = 1'000'000;
  world.network().set_link_profile(sender.id(), echo.id(), profile);
  world.network().send(sender.id(), echo.id(), make_message<Payload>(10'000));
  world.network().send(sender.id(), echo.id(), make_message<Payload>(100));
  world.run_until(seconds(1));
  ASSERT_EQ(echo.received, 2);
  // First arrival ~10 ms, second ~10.1 ms — strictly after the first.
  EXPECT_GE(echo.arrivals[0], milliseconds(10));
  EXPECT_GT(echo.arrivals[1], echo.arrivals[0]);
  // Without the pipe ahead of it, 100 B would arrive in ~0.1 ms.
  EXPECT_GE(echo.arrivals[1], milliseconds(10));
}

TEST(Network, BandwidthScaleSlowsEveryProfiledLink) {
  World world(quiet_config(), 1);
  auto& echo = world.spawn<EchoProcess>();
  auto& sender = world.spawn<BurstSender>(echo.id(), 0, 0);
  LinkProfile profile;
  profile.bandwidth_bytes_per_sec = 1'000'000;
  world.network().set_link_profile(sender.id(), echo.id(), profile);
  world.network().set_bandwidth_scale(0.1);  // 10x collapse
  world.network().send(sender.id(), echo.id(), make_message<Payload>(1'000));
  world.run_until(milliseconds(9));
  EXPECT_EQ(echo.received, 0) << "1 KB at 100 KB/s should take 10 ms";
  world.run_until(milliseconds(11));
  EXPECT_EQ(echo.received, 1);
  world.network().set_bandwidth_scale(1.0);
}

TEST(Network, QueueCapTailDropsAndDrains) {
  World world(quiet_config(), 1);
  auto& echo = world.spawn<EchoProcess>();
  auto& sender = world.spawn<BurstSender>(echo.id(), 0, 0);
  LinkProfile profile;
  profile.bandwidth_bytes_per_sec = 1'000'000;
  profile.queue_bytes = 2'500;  // room for two 1 KB messages + change
  world.network().set_link_profile(sender.id(), echo.id(), profile);
  for (int i = 0; i < 5; ++i)
    world.network().send(sender.id(), echo.id(), make_message<Payload>(1'000));
  EXPECT_EQ(world.network().messages_queue_dropped(), 3u);
  EXPECT_EQ(world.network().messages_dropped(), 3u);
  world.run_until(seconds(1));
  EXPECT_EQ(echo.received, 2);
  // The queue drains as transmissions finish: later sends are accepted.
  world.network().send(sender.id(), echo.id(), make_message<Payload>(1'000));
  world.run_until(seconds(2));
  EXPECT_EQ(echo.received, 3);
  EXPECT_EQ(world.network().messages_queue_dropped(), 3u);
}

TEST(Network, NullProfileKeepsLegacyTiming) {
  // Two identically-seeded worlds, one with an explicitly installed null
  // profile: delivery instants must match exactly (the null profile is the
  // documented bit-compatibility contract).
  NetworkConfig net;  // defaults: latency + jitter + per-KiB cost
  World plain(net, 7);
  auto& echo1 = plain.spawn<EchoProcess>();
  plain.spawn<BurstSender>(echo1.id(), 3, 4'000);
  plain.run_until(seconds(1));

  World profiled(net, 7);
  auto& echo2 = profiled.spawn<EchoProcess>();
  auto& sender2 = profiled.spawn<BurstSender>(echo2.id(), 3, 4'000);
  profiled.network().set_link_profile(sender2.id(), echo2.id(), LinkProfile{});
  profiled.run_until(seconds(1));

  ASSERT_EQ(echo1.received, echo2.received);
  EXPECT_EQ(echo1.arrivals, echo2.arrivals);
}

// --- profile resolution: override > site pair > default ---

TEST(Network, ProfileResolutionPriority) {
  World world(quiet_config(), 1);
  auto& a = world.spawn<EchoProcess>();
  auto& b = world.spawn<EchoProcess>();
  Network& net = world.network();

  LinkProfile def;
  def.bandwidth_bytes_per_sec = 111;
  net.set_default_profile(def);
  EXPECT_EQ(net.resolve_profile(a.id(), b.id()).bandwidth_bytes_per_sec, 111u);

  LinkProfile site;
  site.bandwidth_bytes_per_sec = 222;
  net.set_site(a.id(), 0);
  net.set_site(b.id(), 1);
  net.set_site_profile(0, 1, site);
  EXPECT_EQ(net.resolve_profile(a.id(), b.id()).bandwidth_bytes_per_sec, 222u);
  // The reverse direction has no site profile: falls back to the default.
  EXPECT_EQ(net.resolve_profile(b.id(), a.id()).bandwidth_bytes_per_sec, 111u);

  LinkProfile link;
  link.bandwidth_bytes_per_sec = 333;
  net.set_link_profile(a.id(), b.id(), link);
  EXPECT_EQ(net.resolve_profile(a.id(), b.id()).bandwidth_bytes_per_sec, 333u);
  EXPECT_TRUE(net.link_profile_override(a.id(), b.id()).has_value());

  net.clear_link_profile(a.id(), b.id());
  EXPECT_EQ(net.resolve_profile(a.id(), b.id()).bandwidth_bytes_per_sec, 222u);
  EXPECT_FALSE(net.link_profile_override(a.id(), b.id()).has_value());
}

// --- block/unblock edge cases ---

TEST(Network, UnblockUnblockedLinkIsNoop) {
  World world(quiet_config(), 1);
  auto& echo = world.spawn<EchoProcess>();
  auto& sender = world.spawn<BurstSender>(echo.id(), 0, 0);
  world.network().unblock_link(sender.id(), echo.id());  // never blocked
  world.network().send(sender.id(), echo.id(), make_message<Payload>(8));
  world.run_until(milliseconds(1));
  EXPECT_EQ(echo.received, 1);
}

TEST(Network, DoubleBlockSingleUnblockOpensLink) {
  // Blocking is a set, not a counter: block twice, unblock once -> open.
  World world(quiet_config(), 1);
  auto& echo = world.spawn<EchoProcess>();
  auto& sender = world.spawn<BurstSender>(echo.id(), 0, 0);
  world.network().block_link(sender.id(), echo.id());
  world.network().block_link(sender.id(), echo.id());
  world.network().unblock_link(sender.id(), echo.id());
  world.network().send(sender.id(), echo.id(), make_message<Payload>(8));
  world.run_until(milliseconds(1));
  EXPECT_EQ(echo.received, 1);
}

TEST(Network, UnblockAllClearsEveryDirection) {
  World world(quiet_config(), 1);
  auto& a = world.spawn<EchoProcess>();
  auto& b = world.spawn<EchoProcess>();
  world.network().block_link(a.id(), b.id());
  world.network().block_link(b.id(), a.id());
  world.network().unblock_all();
  world.network().send(a.id(), b.id(), make_message<Payload>(8));
  world.network().send(b.id(), a.id(), make_message<Payload>(8));
  world.run_until(milliseconds(1));
  EXPECT_EQ(a.received, 1);
  EXPECT_EQ(b.received, 1);
}

TEST(Network, BlockedSendStillCountsBytes) {
  // bytes_sent/messages_sent count attempts (the sender did the work);
  // blocked and dropped messages are visible in messages_dropped.
  World world(quiet_config(), 1);
  auto& echo = world.spawn<EchoProcess>();
  auto& sender = world.spawn<BurstSender>(echo.id(), 0, 0);
  world.network().block_link(sender.id(), echo.id());
  world.network().send(sender.id(), echo.id(), make_message<Payload>(500));
  EXPECT_EQ(world.network().messages_sent(), 1u);
  EXPECT_EQ(world.network().bytes_sent(), 500u);
  EXPECT_EQ(world.network().messages_dropped(), 1u);
  world.network().unblock_all();
}

// --- per-KiB cost vs bytes accounting ---

TEST(Network, PerKibCostScalesWithSizeAndBytesMatch) {
  NetworkConfig net = quiet_config();
  net.per_kib_cost = microseconds(10);
  World world(net, 1);
  auto& echo = world.spawn<EchoProcess>();
  // The timing assertions below are about *network* latency alone, so the
  // receiver's CPU queue must not add its own service delay.
  echo.set_message_service_time(0);
  auto& sender = world.spawn<BurstSender>(echo.id(), 0, 0);
  world.network().send(sender.id(), echo.id(), make_message<Payload>(4'096));
  world.run_until(microseconds(39));
  EXPECT_EQ(echo.received, 0) << "4 KiB at 10 us/KiB should take 40 us";
  world.run_until(microseconds(41));
  EXPECT_EQ(echo.received, 1);
  EXPECT_EQ(world.network().bytes_sent(), 4'096u);
  // Partial KiB rounds up: 100 B costs one full KiB tick.
  world.network().send(sender.id(), echo.id(), make_message<Payload>(100));
  world.run_until(microseconds(50));
  EXPECT_EQ(echo.received, 1);
  world.run_until(microseconds(52));
  EXPECT_EQ(echo.received, 2);
  EXPECT_EQ(world.network().bytes_sent(), 4'196u);
}

// --- labeled per-link metrics ---

TEST(Network, LabeledBytesPerSitePair) {
  World world(quiet_config(), 1);
  auto& a = world.spawn<EchoProcess>();
  auto& b = world.spawn<EchoProcess>();
  Network& net = world.network();
  net.set_site(a.id(), 0);
  net.set_site(b.id(), 2);
  LinkProfile wan;
  wan.bandwidth_bytes_per_sec = 1'000'000'000;
  net.set_site_profile(0, 2, wan);
  net.send(a.id(), b.id(), make_message<Payload>(1'000));
  net.send(a.id(), b.id(), make_message<Payload>(500));
  world.run_until(milliseconds(1));
  const auto* series =
      world.metrics().find_series(metric::kNetworkBytesSent, {{"link", "s0->s2"}});
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->total(), 1'500.0);
}

TEST(Network, LabeledBytesPerLinkOverride) {
  World world(quiet_config(), 1);
  auto& a = world.spawn<EchoProcess>();
  auto& b = world.spawn<EchoProcess>();
  LinkProfile slow;
  slow.bandwidth_bytes_per_sec = 1'000'000'000;
  world.network().set_link_profile(a.id(), b.id(), slow);
  world.network().send(a.id(), b.id(), make_message<Payload>(256));
  world.run_until(milliseconds(1));
  const auto* series =
      world.metrics().find_series(metric::kNetworkBytesSent, {{"link", "p0->p1"}});
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->total(), 256.0);
}

}  // namespace
}  // namespace dynastar::sim
