// Chaos testing: the full DynaStar stack under a seeded nemesis (replica
// crash/recover, directed link cuts, latency spikes, drop bursts) layered on
// top of a lossy, duplicating network. Every scripted command must still
// complete successfully, the recorded history must stay linearizable, and —
// because the nemesis schedule is a pure function of its seed — two runs
// with identical seeds must produce bit-identical metrics.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/linearizability.h"
#include "core/system.h"
#include "sim/chaos.h"
#include "tests/test_util.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

constexpr std::uint64_t kKeys = 10;
constexpr int kClients = 4;
constexpr int kOpsPerClient = 40;

struct ChaosRun {
  std::vector<KvOperation> history;
  testutil::StatusTally tally;
  std::vector<std::string> chaos_log;
  std::size_t events_injected = 0;
  std::string fingerprint;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t history_hash(const std::vector<KvOperation>& history) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& op : history) {
    h = fnv1a(h, op.is_put ? 1 : 0);
    h = fnv1a(h, op.value);
    for (std::uint64_t k : op.keys) h = fnv1a(h, k);
    for (const auto& o : op.observed)
      h = fnv1a(h, o ? *o + 1 : 0);
    h = fnv1a(h, static_cast<std::uint64_t>(op.invoke_time));
    h = fnv1a(h, static_cast<std::uint64_t>(op.response_time));
  }
  return h;
}

ChaosRun run_chaos_scenario(std::uint64_t system_seed,
                            std::uint64_t chaos_seed) {
  auto config = testutil::config_for(core::ExecutionMode::kDynaStar, 3);
  config.seed = system_seed;
  config.network.drop_probability = 0.015;
  config.network.duplicate_probability = 0.015;
  config.client_timeout_base = milliseconds(300);
  config.client_timeout_jitter = milliseconds(20);
  config.client_timeout_cap = seconds(2);
  config.client_max_attempts = 0;  // retry forever: liveness is the property

  core::System system(config, workloads::kv_app_factory());
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const PartitionId p{k % config.num_partitions};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p,
                          workloads::KvObject(1000 + k));
  }
  system.preload_assignment(assignment);

  ChaosRun run;
  for (int c = 0; c < kClients; ++c) {
    system.add_client(std::make_unique<testutil::RecordingKvDriver>(
        kKeys, kOpsPerClient, &run.history, &run.tally));
  }

  sim::ChaosConfig chaos;
  chaos.seed = chaos_seed;
  chaos.start = seconds(1);
  chaos.horizon = seconds(6);
  chaos.crash_groups.push_back(
      system.topology().group(core::kOracleGroup).replicas);
  std::vector<ProcessId> pool;
  for (std::uint32_t p = 0; p < config.num_partitions; ++p) {
    const auto& replicas =
        system.topology().group(core::group_of(PartitionId{p})).replicas;
    chaos.crash_groups.push_back(replicas);
    pool.insert(pool.end(), replicas.begin(), replicas.end());
  }
  chaos.crash_events = 4;
  chaos.min_downtime = milliseconds(300);
  chaos.max_downtime = milliseconds(800);
  chaos.link_pool = pool;
  chaos.link_cut_events = 2;
  chaos.max_cut = milliseconds(400);
  chaos.drop_burst_events = 2;
  chaos.burst_drop_probability = 0.15;
  chaos.latency_spike_events = 2;
  chaos.spike_latency = milliseconds(1);
  chaos.max_window = milliseconds(300);

  sim::ChaosInjector injector(system.world(), chaos);
  injector.arm();

  system.run_until(seconds(45));

  run.chaos_log = injector.log();
  run.events_injected = injector.events_injected();

  std::ostringstream fp;
  fp << "events=" << system.world().sim().executed_events();
  for (const char* name :
       {"completed", "executed", "client.timeouts", "client.retransmits"}) {
    const auto* series = system.metrics().find_series(name);
    fp << ' ' << name << '=' << (series ? series->total() : 0.0);
  }
  for (const char* name : {"server.reply_cache_hits", "oracle.reply_cache_hits",
                           "chaos.events"}) {
    fp << ' ' << name << '=' << system.metrics().counter(name);
  }
  fp << " history=" << run.history.size() << '/' << std::hex
     << history_hash(run.history);
  for (const auto& line : run.chaos_log) fp << '|' << line;
  run.fingerprint = fp.str();
  return run;
}

TEST(Chaos, AllCommandsCompleteAndHistoryIsLinearizable) {
  const ChaosRun run = run_chaos_scenario(/*system_seed=*/7, /*chaos_seed=*/99);

  // The nemesis actually did something: at least 2 crash and 2 recover
  // events landed, plus network windows.
  std::size_t crashes = 0, recovers = 0;
  for (const auto& line : run.chaos_log) {
    if (line.find("crash") != std::string::npos) ++crashes;
    if (line.find("recover") != std::string::npos) ++recovers;
  }
  EXPECT_GE(crashes, 2u) << "nemesis injected too few crashes";
  EXPECT_GE(recovers, 2u);
  EXPECT_GE(run.events_injected, 8u);

  // Liveness: every scripted command completed, none gave up.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kClients) * kOpsPerClient;
  EXPECT_EQ(run.tally.completions, expected)
      << "some clients hung under chaos";
  EXPECT_EQ(run.tally.ok, expected);
  EXPECT_EQ(run.tally.timeouts, 0u);
  EXPECT_EQ(run.tally.other, 0u);
  ASSERT_EQ(run.history.size(), expected);

  // Safety: the observed history admits a legal sequential witness.
  const auto full = testutil::with_initial_puts(run.history, kKeys, 1000);
  const auto result = check_kv_linearizable(full);
  EXPECT_TRUE(result.linearizable)
      << "non-linearizable history under chaos; stuck op index "
      << (result.stuck_operation ? static_cast<long>(*result.stuck_operation)
                                 : -1);
}

TEST(Chaos, SameSeedGivesBitIdenticalRuns) {
  const ChaosRun a = run_chaos_scenario(/*system_seed=*/7, /*chaos_seed=*/99);
  const ChaosRun b = run_chaos_scenario(/*system_seed=*/7, /*chaos_seed=*/99);
  EXPECT_EQ(a.fingerprint, b.fingerprint)
      << "chaos run is not a pure function of (config, seed)";
  ASSERT_EQ(a.chaos_log.size(), b.chaos_log.size());
  for (std::size_t i = 0; i < a.chaos_log.size(); ++i)
    EXPECT_EQ(a.chaos_log[i], b.chaos_log[i]);
}

TEST(Chaos, DifferentSeedGivesDifferentSchedule) {
  // Sanity check on the fingerprint itself: it must be sensitive enough to
  // distinguish genuinely different executions.
  const ChaosRun a = run_chaos_scenario(/*system_seed=*/7, /*chaos_seed=*/99);
  const ChaosRun b = run_chaos_scenario(/*system_seed=*/7, /*chaos_seed=*/100);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

// Long-downtime variant: shrink the catch-up window and checkpoint interval
// so a multi-second crash leaves the victim's gap strictly below its peers'
// log floor — recovery then REQUIRES a snapshot install (plain replay would
// wedge). Same liveness/safety/determinism bar as the short-crash scenario.
ChaosRun run_long_downtime_scenario(std::uint64_t system_seed,
                                    std::uint64_t chaos_seed) {
  auto config = testutil::config_for(core::ExecutionMode::kDynaStar, 3);
  config.seed = system_seed;
  config.network.drop_probability = 0.01;
  config.network.duplicate_probability = 0.01;
  config.client_timeout_base = milliseconds(300);
  config.client_timeout_jitter = milliseconds(20);
  config.client_timeout_cap = seconds(2);
  config.client_max_attempts = 0;  // retry forever: liveness is the property
  config.paxos.checkpoint_interval = 32;
  config.paxos.catchup_window = 8;

  core::System system(config, workloads::kv_app_factory());
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const PartitionId p{k % config.num_partitions};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p,
                          workloads::KvObject(1000 + k));
  }
  system.preload_assignment(assignment);

  ChaosRun run;
  for (int c = 0; c < kClients; ++c) {
    system.add_client(std::make_unique<testutil::RecordingKvDriver>(
        kKeys, kOpsPerClient, &run.history, &run.tally));
  }

  sim::ChaosConfig chaos;
  chaos.seed = chaos_seed;
  chaos.start = seconds(1);
  chaos.horizon = seconds(8);
  // Partition-server groups only: the asserted metric is the *server*
  // snapshot-install counter.
  for (std::uint32_t p = 0; p < config.num_partitions; ++p) {
    chaos.crash_groups.push_back(
        system.topology().group(core::group_of(PartitionId{p})).replicas);
  }
  chaos.crash_events = 0;
  chaos.long_crash_events = 3;
  chaos.long_min_downtime = milliseconds(1500);
  chaos.long_max_downtime = milliseconds(2500);

  sim::ChaosInjector injector(system.world(), chaos);
  injector.arm();

  system.run_until(seconds(50));

  run.chaos_log = injector.log();
  run.events_injected = injector.events_injected();

  std::ostringstream fp;
  fp << "events=" << system.world().sim().executed_events();
  for (const char* name :
       {"completed", "executed", "client.timeouts", "client.retransmits"}) {
    const auto* series = system.metrics().find_series(name);
    fp << ' ' << name << '=' << (series ? series->total() : 0.0);
  }
  for (const char* name :
       {"server.reply_cache_hits", "server.checkpoints",
        "server.snapshot_installs", "chaos.events"}) {
    fp << ' ' << name << '=' << system.metrics().counter(name);
  }
  fp << " history=" << run.history.size() << '/' << std::hex
     << history_hash(run.history);
  for (const auto& line : run.chaos_log) fp << '|' << line;
  run.fingerprint = fp.str();

  // Stashed into the fingerprint above; also assertable by callers.
  EXPECT_GE(system.metrics().counter("server.snapshot_installs"), 1.0)
      << "downtime never outran the catch-up window: no snapshot install";
  EXPECT_GE(system.metrics().counter("server.checkpoints"), 1.0);
  return run;
}

TEST(Chaos, LongDowntimeForcesSnapshotInstallAndStaysLinearizable) {
  const ChaosRun run =
      run_long_downtime_scenario(/*system_seed=*/13, /*chaos_seed=*/57);

  std::size_t crashes = 0, recovers = 0;
  for (const auto& line : run.chaos_log) {
    if (line.find("crash") != std::string::npos) ++crashes;
    if (line.find("recover") != std::string::npos) ++recovers;
  }
  EXPECT_GE(crashes, 2u);
  EXPECT_GE(recovers, 2u);

  // Liveness: every command completes despite multi-second outages.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kClients) * kOpsPerClient;
  EXPECT_EQ(run.tally.completions, expected)
      << "clients hung across a long-downtime crash";
  EXPECT_EQ(run.tally.ok, expected);
  ASSERT_EQ(run.history.size(), expected);

  // Safety: snapshot-install recovery preserves linearizability.
  const auto full = testutil::with_initial_puts(run.history, kKeys, 1000);
  const auto result = check_kv_linearizable(full);
  EXPECT_TRUE(result.linearizable)
      << "non-linearizable history after snapshot-install recovery; stuck op "
      << (result.stuck_operation ? static_cast<long>(*result.stuck_operation)
                                 : -1);
}

TEST(Chaos, LongDowntimeRunsAreBitIdentical) {
  const ChaosRun a =
      run_long_downtime_scenario(/*system_seed=*/13, /*chaos_seed=*/57);
  const ChaosRun b =
      run_long_downtime_scenario(/*system_seed=*/13, /*chaos_seed=*/57);
  EXPECT_EQ(a.fingerprint, b.fingerprint)
      << "checkpoint/snapshot recovery broke same-seed determinism";
}

TEST(Chaos, DuplicateExecutionServedFromReplyCache) {
  // At-most-once: execute a put, lose every reply to the client, and let the
  // client retransmit. The retransmitted command must be answered from the
  // server's reply cache without executing the state machine a second time.
  auto config = testutil::config_for(core::ExecutionMode::kDynaStar, 1);
  config.seed = 11;
  config.client_timeout_base = milliseconds(200);
  config.client_timeout_jitter = 0;
  config.client_timeout_cap = seconds(1);
  config.client_max_attempts = 0;

  core::System system(config, workloads::kv_app_factory());
  core::Assignment assignment;
  assignment[core::VertexId{0}] = PartitionId{0};
  system.preload_object(ObjectId{0}, core::VertexId{0}, PartitionId{0},
                        workloads::KvObject(1));
  system.preload_assignment(assignment);

  std::vector<workloads::ScriptedKvDriver::Record> records;
  std::vector<core::CommandSpec> script;
  core::CommandSpec put;
  put.objects.emplace_back(ObjectId{0}, core::VertexId{0});
  put.payload =
      sim::make_message<workloads::KvOp>(workloads::KvOp::Kind::kPut, 7);
  script.push_back(put);
  core::CommandSpec get;
  get.objects.emplace_back(ObjectId{0}, core::VertexId{0});
  get.payload =
      sim::make_message<workloads::KvOp>(workloads::KvOp::Kind::kGet, 0);
  script.push_back(get);
  auto& client = system.add_client(
      std::make_unique<workloads::ScriptedKvDriver>(script, &records));

  // Cut every server -> client reply path; the put executes but the client
  // never learns, so it must retransmit into the reply cache.
  const auto& replicas =
      system.topology().group(core::group_of(PartitionId{0})).replicas;
  for (ProcessId replica : replicas)
    system.world().network().block_link(replica, client.id());

  system.run_until(seconds(1));
  EXPECT_EQ(system.metrics().series("executed").total(), 1.0)
      << "the retransmitted command was executed again";
  EXPECT_GE(system.metrics().counter("server.reply_cache_hits"), 1.0)
      << "no retransmission was served from the reply cache";
  EXPECT_GE(system.metrics().series("client.retransmits").total(), 1.0);
  ASSERT_TRUE(records.empty());  // replies were all dropped

  // Heal: the next retransmission's cached reply reaches the client and the
  // script finishes.
  system.world().network().unblock_all();
  system.run_until(seconds(10));

  ASSERT_EQ(records.size(), 2u) << "script did not finish after healing";
  EXPECT_EQ(records[0].status, core::ReplyStatus::kOk);
  EXPECT_EQ(records[1].status, core::ReplyStatus::kOk);
  // The get observes exactly one application of the put.
  ASSERT_EQ(records[1].observed.size(), 1u);
  ASSERT_TRUE(records[1].observed[0].has_value());
  EXPECT_EQ(*records[1].observed[0], 7u);
  // Total executions: the put once, the get once — never the duplicate.
  EXPECT_EQ(system.metrics().series("executed").total(), 2.0);
}

}  // namespace
}  // namespace dynastar
