// Full-stack linearizability: concurrent clients issue single- and
// multi-key reads/writes against the complete system (atomic multicast,
// Paxos, borrow/return, repartitioning plans mid-run), and the recorded
// history must admit a legal sequential witness.
//
// This is the repository's strongest correctness property: it exercises the
// cross-partition execution path and the relocation machinery at once. The
// scenarios are expressed through tests/lin_harness.h, which the LinFuzz
// sweep shares.
#include <gtest/gtest.h>

#include "tests/lin_harness.h"

namespace dynastar {
namespace {

struct LinParam {
  core::ExecutionMode mode;
  bool repartition_mid_run;
  std::uint64_t seed;
};

class StackLinearizability : public ::testing::TestWithParam<LinParam> {};

TEST_P(StackLinearizability, HistoryIsLinearizable) {
  const auto param = GetParam();
  testutil::LinScenario scenario;
  scenario.mode = param.mode;
  scenario.partitions = 3;
  scenario.system_seed = param.seed;
  scenario.ops_per_client = 60;
  scenario.repartition_mid_run = param.repartition_mid_run;
  scenario.run_for = seconds(20);

  const auto run = testutil::run_lin_scenario(scenario);

  ASSERT_GT(run.history.size(), 100u);
  EXPECT_TRUE(run.lin.linearizable)
      << "non-linearizable history; stuck op index "
      << (run.lin.stuck_operation
              ? static_cast<long>(*run.lin.stuck_operation)
              : -1)
      << " mode " << static_cast<int>(param.mode) << " seed " << param.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, StackLinearizability,
    ::testing::Values(
        LinParam{core::ExecutionMode::kDynaStar, false, 1},
        LinParam{core::ExecutionMode::kDynaStar, false, 2},
        LinParam{core::ExecutionMode::kDynaStar, true, 3},
        LinParam{core::ExecutionMode::kDynaStar, true, 4},
        LinParam{core::ExecutionMode::kSSMR, false, 5},
        LinParam{core::ExecutionMode::kSSMR, false, 6},
        LinParam{core::ExecutionMode::kDSSMR, false, 7},
        LinParam{core::ExecutionMode::kDSSMR, false, 8}));

}  // namespace
}  // namespace dynastar
