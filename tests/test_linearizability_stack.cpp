// Full-stack linearizability: concurrent clients issue single- and
// multi-key reads/writes against the complete system (atomic multicast,
// Paxos, borrow/return, repartitioning plans mid-run), and the recorded
// history must admit a legal sequential witness.
//
// This is the repository's strongest correctness property: it exercises the
// cross-partition execution path and the relocation machinery at once.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/linearizability.h"
#include "core/system.h"
#include "workloads/kv.h"

namespace dynastar {
namespace {

using core::CommandSpec;
using core::VertexId;
using workloads::KvOp;
using workloads::KvReply;

/// Issues random single/multi-key gets and puts, recording a KvOperation
/// per completed command.
class RecordingKvDriver final : public core::ClientDriver {
 public:
  RecordingKvDriver(std::uint64_t num_keys, int max_ops,
                    std::vector<KvOperation>* history)
      : num_keys_(num_keys), remaining_(max_ops), history_(history) {}

  std::optional<CommandSpec> next(Rng& rng, SimTime /*now*/) override {
    if (remaining_-- <= 0) return std::nullopt;
    CommandSpec spec;
    const bool multi = rng.chance(0.4);
    const std::uint64_t span = multi ? 2 + rng.uniform(0, 1) : 1;
    std::vector<std::uint64_t> keys;
    while (keys.size() < span) {
      const std::uint64_t key = rng.uniform(0, num_keys_ - 1);
      if (std::find(keys.begin(), keys.end(), key) == keys.end())
        keys.push_back(key);
    }
    for (std::uint64_t key : keys)
      spec.objects.emplace_back(ObjectId{key}, VertexId{key});
    const bool write = rng.chance(0.5);
    spec.payload = sim::make_message<KvOp>(
        write ? KvOp::Kind::kPut : KvOp::Kind::kGet,
        rng.uniform(1, 1u << 30));
    return spec;
  }

  void on_result(const CommandSpec& spec, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime issued_at,
                 SimTime completed_at) override {
    if (status != core::ReplyStatus::kOk) return;
    const auto* reply = dynamic_cast<const KvReply*>(payload.get());
    const auto* op = dynamic_cast<const KvOp*>(spec.payload.get());
    if (reply == nullptr || op == nullptr) return;
    KvOperation record;
    record.is_put = op->kind == KvOp::Kind::kPut;
    record.value = op->value;
    for (const auto& [obj, vertex] : spec.objects)
      record.keys.push_back(obj.value());
    record.observed = reply->values;
    record.invoke_time = issued_at;
    record.response_time = completed_at;
    history_->push_back(std::move(record));
  }

 private:
  std::uint64_t num_keys_;
  int remaining_;
  std::vector<KvOperation>* history_;
};

struct LinParam {
  core::ExecutionMode mode;
  bool repartition_mid_run;
  std::uint64_t seed;
};

class StackLinearizability : public ::testing::TestWithParam<LinParam> {};

TEST_P(StackLinearizability, HistoryIsLinearizable) {
  const auto param = GetParam();
  core::SystemConfig config;
  config.mode = param.mode;
  config.num_partitions = 3;
  config.seed = param.seed;
  config.repartitioning_enabled =
      param.mode == core::ExecutionMode::kDynaStar;
  config.repartition_hint_threshold = UINT64_MAX;
  // Preload objects with nonzero values so "absent" never aliases zero.
  core::System system(config, workloads::kv_app_factory());
  constexpr std::uint64_t kKeys = 10;
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const PartitionId p{k % 3};
    assignment[VertexId{k}] = p;
    system.preload_object(ObjectId{k}, VertexId{k}, p,
                          workloads::KvObject(1000 + k));
  }
  system.preload_assignment(assignment);

  std::vector<KvOperation> history;
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<RecordingKvDriver>(kKeys, 60, &history));
  }

  if (param.repartition_mid_run &&
      param.mode == core::ExecutionMode::kDynaStar) {
    system.run_until(milliseconds(300));
    system.oracle(0).request_repartition();
    system.oracle(1).request_repartition();
    system.run_until(milliseconds(900));
    system.oracle(0).request_repartition();
    system.oracle(1).request_repartition();
  }
  system.run_until(seconds(20));

  ASSERT_GT(history.size(), 100u);
  // Account for preloaded values: seed the history with instantaneous
  // initial puts before time zero.
  std::vector<KvOperation> full;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    KvOperation init;
    init.is_put = true;
    init.keys = {k};
    init.value = 1000 + k;
    init.observed = {};  // unconstrained observation
    init.invoke_time = -2;
    init.response_time = -1;
    full.push_back(init);
  }
  full.insert(full.end(), history.begin(), history.end());

  const auto result = check_kv_linearizable(full);
  EXPECT_TRUE(result.linearizable)
      << "non-linearizable history; stuck op index "
      << (result.stuck_operation ? static_cast<long>(*result.stuck_operation)
                                 : -1)
      << " mode " << static_cast<int>(param.mode) << " seed " << param.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, StackLinearizability,
    ::testing::Values(
        LinParam{core::ExecutionMode::kDynaStar, false, 1},
        LinParam{core::ExecutionMode::kDynaStar, false, 2},
        LinParam{core::ExecutionMode::kDynaStar, true, 3},
        LinParam{core::ExecutionMode::kDynaStar, true, 4},
        LinParam{core::ExecutionMode::kSSMR, false, 5},
        LinParam{core::ExecutionMode::kSSMR, false, 6},
        LinParam{core::ExecutionMode::kDSSMR, false, 7},
        LinParam{core::ExecutionMode::kDSSMR, false, 8}));

}  // namespace
}  // namespace dynastar
