// Full-stack linearizability: concurrent clients issue single- and
// multi-key reads/writes against the complete system (atomic multicast,
// Paxos, borrow/return, repartitioning plans mid-run), and the recorded
// history must admit a legal sequential witness.
//
// This is the repository's strongest correctness property: it exercises the
// cross-partition execution path and the relocation machinery at once.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/linearizability.h"
#include "core/system.h"
#include "tests/test_util.h"
#include "workloads/kv.h"

namespace dynastar {
namespace {

using core::VertexId;
using testutil::RecordingKvDriver;

struct LinParam {
  core::ExecutionMode mode;
  bool repartition_mid_run;
  std::uint64_t seed;
};

class StackLinearizability : public ::testing::TestWithParam<LinParam> {};

TEST_P(StackLinearizability, HistoryIsLinearizable) {
  const auto param = GetParam();
  core::SystemConfig config;
  config.mode = param.mode;
  config.num_partitions = 3;
  config.seed = param.seed;
  config.repartitioning_enabled =
      param.mode == core::ExecutionMode::kDynaStar;
  config.repartition_hint_threshold = UINT64_MAX;
  // Preload objects with nonzero values so "absent" never aliases zero.
  core::System system(config, workloads::kv_app_factory());
  constexpr std::uint64_t kKeys = 10;
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const PartitionId p{k % 3};
    assignment[VertexId{k}] = p;
    system.preload_object(ObjectId{k}, VertexId{k}, p,
                          workloads::KvObject(1000 + k));
  }
  system.preload_assignment(assignment);

  std::vector<KvOperation> history;
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<RecordingKvDriver>(kKeys, 60, &history));
  }

  if (param.repartition_mid_run &&
      param.mode == core::ExecutionMode::kDynaStar) {
    system.run_until(milliseconds(300));
    system.oracle(0).request_repartition();
    system.oracle(1).request_repartition();
    system.run_until(milliseconds(900));
    system.oracle(0).request_repartition();
    system.oracle(1).request_repartition();
  }
  system.run_until(seconds(20));

  ASSERT_GT(history.size(), 100u);
  // Account for preloaded values: seed the history with instantaneous
  // initial puts before time zero.
  const auto full = testutil::with_initial_puts(history, kKeys, 1000);

  const auto result = check_kv_linearizable(full);
  EXPECT_TRUE(result.linearizable)
      << "non-linearizable history; stuck op index "
      << (result.stuck_operation ? static_cast<long>(*result.stuck_operation)
                                 : -1)
      << " mode " << static_cast<int>(param.mode) << " seed " << param.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, StackLinearizability,
    ::testing::Values(
        LinParam{core::ExecutionMode::kDynaStar, false, 1},
        LinParam{core::ExecutionMode::kDynaStar, false, 2},
        LinParam{core::ExecutionMode::kDynaStar, true, 3},
        LinParam{core::ExecutionMode::kDynaStar, true, 4},
        LinParam{core::ExecutionMode::kSSMR, false, 5},
        LinParam{core::ExecutionMode::kSSMR, false, 6},
        LinParam{core::ExecutionMode::kDSSMR, false, 7},
        LinParam{core::ExecutionMode::kDSSMR, false, 8}));

}  // namespace
}  // namespace dynastar
