// Unit tests: discrete-event kernel, network fault injection, and the
// process CPU-queue model.
#include <gtest/gtest.h>

#include "sim/process.h"
#include "sim/simulator.h"
#include "sim/world.h"

namespace dynastar::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  simulator.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  simulator.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), milliseconds(30));
}

TEST(Simulator, TiesBreakBySchedulingOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_at(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleInPastClampsToNow) {
  Simulator simulator;
  bool ran = false;
  simulator.schedule_at(milliseconds(10), [&] {
    simulator.schedule_at(milliseconds(5), [&] { ran = true; });
  });
  simulator.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(simulator.now(), milliseconds(10));
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator simulator;
  simulator.run_until(seconds(5));
  EXPECT_EQ(simulator.now(), seconds(5));
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) simulator.schedule_after(microseconds(1), recurse);
  };
  simulator.schedule_after(0, recurse);
  simulator.run();
  EXPECT_EQ(depth, 100);
}

// Same-timestamp events must run in schedule (seq) order even when they are
// pushed into different tiers of the event queue: events beyond the wheel
// horizon (~67 ms) start in the spill heap and migrate into the wheel as the
// cursor advances; migration must not reorder them relative to events that
// were scheduled later but landed in the wheel directly.
TEST(Simulator, TiesBreakBySchedulingOrderAcrossQueueTiers) {
  Simulator simulator;
  std::vector<int> order;
  const SimTime far = milliseconds(500);  // well past the wheel horizon
  // First batch goes to the spill heap (far future at schedule time).
  for (int i = 0; i < 5; ++i) {
    simulator.schedule_at(far, [&order, i] { order.push_back(i); });
  }
  // An intermediate event advances the cursor so `far` is inside the wheel
  // horizon when the second batch is scheduled.
  simulator.schedule_at(milliseconds(450), [&] {
    for (int i = 5; i < 10; ++i) {
      simulator.schedule_at(far, [&order, i] { order.push_back(i); });
    }
  });
  simulator.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(simulator.now(), far);
}

// Events scheduled for exactly now() from inside a running event land in the
// bucket currently being drained; they must still run this step, after any
// already-pending events at the same timestamp (seq order).
TEST(Simulator, ScheduleAtNowFromInsideRunningEvent) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(milliseconds(7), [&] {
    order.push_back(0);
    simulator.schedule_at(simulator.now(), [&] {
      order.push_back(2);
      simulator.schedule_at(simulator.now(), [&] { order.push_back(3); });
    });
  });
  simulator.schedule_at(milliseconds(7), [&] { order.push_back(1); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(simulator.now(), milliseconds(7));
}

// Past-time scheduling clamps to now() and still respects seq order among
// everything clamped to the same instant.
TEST(Simulator, PastTimeClampKeepsScheduleOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(milliseconds(10), [&] {
    simulator.schedule_at(milliseconds(3), [&] { order.push_back(0); });
    simulator.schedule_at(milliseconds(1), [&] { order.push_back(1); });
    simulator.schedule_at(simulator.now(), [&] { order.push_back(2); });
    simulator.schedule_at(milliseconds(2), [&] { order.push_back(3); });
  });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(simulator.now(), milliseconds(10));
}

// --- Process / network fixtures ---

class EchoProcess final : public Process {
 public:
  using Process::Process;
  void on_message(ProcessId from, const MessagePtr& msg) override {
    ++received;
    last_from = from;
    last = msg;
  }
  int received = 0;
  ProcessId last_from;
  MessagePtr last;
};

struct Ping final : Message {
  const char* type_name() const override { return "test.Ping"; }
};

class SenderProcess final : public Process {
 public:
  SenderProcess(ProcessId id, World& world, ProcessId to, int count)
      : Process(id, world), to_(to), count_(count) {}
  void on_start() override {
    for (int i = 0; i < count_; ++i) send_message(to_, make_message<Ping>());
  }
  void on_message(ProcessId, const MessagePtr&) override {}

 private:
  ProcessId to_;
  int count_;
};

TEST(Network, DeliversWithLatency) {
  NetworkConfig net;
  net.base_latency = milliseconds(1);
  net.jitter = 0;
  World world(net, 1);
  auto& echo = world.spawn<EchoProcess>();
  world.spawn<SenderProcess>(echo.id(), 3);
  world.run_until(milliseconds(5));
  EXPECT_EQ(echo.received, 3);
}

TEST(Network, DropsMessagesWhenConfigured) {
  NetworkConfig net;
  net.drop_probability = 1.0;
  World world(net, 1);
  auto& echo = world.spawn<EchoProcess>();
  world.spawn<SenderProcess>(echo.id(), 10);
  world.run_until(seconds(1));
  EXPECT_EQ(echo.received, 0);
  EXPECT_EQ(world.network().messages_dropped(), 10u);
}

TEST(Network, DuplicatesMessagesWhenConfigured) {
  NetworkConfig net;
  net.duplicate_probability = 1.0;
  World world(net, 1);
  auto& echo = world.spawn<EchoProcess>();
  world.spawn<SenderProcess>(echo.id(), 5);
  world.run_until(seconds(1));
  EXPECT_EQ(echo.received, 10);
}

TEST(Network, BlockedLinksDrop) {
  World world({}, 1);
  auto& echo = world.spawn<EchoProcess>();
  auto& sender = world.spawn<SenderProcess>(echo.id(), 4);
  world.network().block_link(sender.id(), echo.id());
  world.run_until(seconds(1));
  EXPECT_EQ(echo.received, 0);
  world.network().unblock_all();
}

TEST(Network, BlockedLinkKeysDoNotCollide) {
  // Regression: the blocked set used to key links as (from << 32) | to,
  // so a from id with bits above 2^32 aliased an unrelated low link
  // (e.g. {2^32 + 1} -> {0} collided with {1} -> {0}). Blocking the
  // high-id link must not affect the low-id one.
  World world({}, 1);
  auto& echo = world.spawn<EchoProcess>();          // id 0
  world.spawn<SenderProcess>(echo.id(), 4);         // id 1
  world.network().block_link(ProcessId{(1ull << 32) + 1}, echo.id());
  world.run_until(seconds(1));
  EXPECT_EQ(echo.received, 4)
      << "blocking an unrelated high-id link dropped low-id traffic";
  world.network().unblock_all();
}

TEST(Network, BlockedLinksAreDirectional) {
  World world({}, 1);
  auto& echo = world.spawn<EchoProcess>();
  auto& sender = world.spawn<SenderProcess>(echo.id(), 4);
  world.network().block_link(echo.id(), sender.id());  // reverse direction
  world.run_until(seconds(1));
  EXPECT_EQ(echo.received, 4);
  world.network().unblock_all();
}

TEST(Process, CrashedProcessReceivesNothing) {
  World world({}, 1);
  auto& echo = world.spawn<EchoProcess>();
  world.spawn<SenderProcess>(echo.id(), 4);
  world.crash(echo.id());
  world.run_until(seconds(1));
  EXPECT_EQ(echo.received, 0);
  EXPECT_TRUE(echo.crashed());
  world.recover(echo.id());
  EXPECT_FALSE(echo.crashed());
}

class TimerProcess final : public Process {
 public:
  using Process::Process;
  void on_start() override {
    start_timer(milliseconds(10), [this] { ++fired; });
  }
  void on_message(ProcessId, const MessagePtr&) override {}
  int fired = 0;
};

TEST(Process, TimersCancelledByCrash) {
  World world({}, 1);
  auto& proc = world.spawn<TimerProcess>();
  world.run_until(milliseconds(1));
  world.crash(proc.id());
  world.run_until(milliseconds(50));
  EXPECT_EQ(proc.fired, 0);
}

TEST(Process, TimersFromOldIncarnationNeverFire) {
  World world({}, 1);
  auto& proc = world.spawn<TimerProcess>();
  world.run_until(milliseconds(1));
  world.crash(proc.id());
  world.recover(proc.id());  // on_recover does not rearm the timer
  world.run_until(milliseconds(50));
  EXPECT_EQ(proc.fired, 0);
}

class SlowProcess final : public Process {
 public:
  SlowProcess(ProcessId id, World& world) : Process(id, world) {
    set_message_service_time(milliseconds(10));
  }
  void on_message(ProcessId, const MessagePtr&) override {
    handled_at.push_back(now());
  }
  std::vector<SimTime> handled_at;
};

TEST(Process, MessagesQueueBehindServiceTime) {
  NetworkConfig net;
  net.base_latency = microseconds(1);
  net.jitter = 0;
  World world(net, 1);
  auto& slow = world.spawn<SlowProcess>();
  world.spawn<SenderProcess>(slow.id(), 3);
  world.run_until(seconds(1));
  ASSERT_EQ(slow.handled_at.size(), 3u);
  // Each message occupies the CPU for 10ms: handlers run 10ms apart.
  EXPECT_GE(slow.handled_at[1] - slow.handled_at[0], milliseconds(10));
  EXPECT_GE(slow.handled_at[2] - slow.handled_at[1], milliseconds(10));
}

class BusyProcess final : public Process {
 public:
  using Process::Process;
  void on_message(ProcessId, const MessagePtr&) override {
    handled_at.push_back(now());
    consume_cpu(milliseconds(20));  // expensive handler
  }
  std::vector<SimTime> handled_at;
};

TEST(Process, ConsumeCpuDelaysSubsequentMessages) {
  NetworkConfig net;
  net.base_latency = microseconds(1);
  net.jitter = 0;
  World world(net, 1);
  auto& busy = world.spawn<BusyProcess>();
  world.spawn<SenderProcess>(busy.id(), 2);
  world.run_until(seconds(1));
  ASSERT_EQ(busy.handled_at.size(), 2u);
  EXPECT_GE(busy.handled_at[1] - busy.handled_at[0], milliseconds(20));
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [] {
    NetworkConfig net;
    net.jitter = microseconds(50);
    World world(net, 42);
    auto& echo = world.spawn<EchoProcess>();
    world.spawn<SenderProcess>(echo.id(), 100);
    world.run_until(seconds(1));
    return world.sim().executed_events();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dynastar::sim
