// Atomic multicast property tests (§2.2 of the paper): integrity, agreement
// within groups, FIFO per sender for same-destination messages, and the
// pairwise-consistent (acyclic / prefix) delivery order across groups.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "multicast/client.h"
#include "multicast/member.h"
#include "paxos/nodes.h"
#include "sim/process.h"
#include "tests/order_checker.h"

namespace dynastar::multicast {
namespace {

struct Tagged final : sim::Message {
  explicit Tagged(std::uint64_t t) : tag(t) {}
  const char* type_name() const override { return "test.Tagged"; }
  std::uint64_t tag;
};

class MemberNode final : public sim::Process {
 public:
  MemberNode(ProcessId id, sim::World& world, const paxos::Topology& topology,
             GroupId group)
      : sim::Process(id, world) {
    core_ = std::make_unique<MemberCore>(*this, topology, group);
    core_->set_deliver([this](const McastData& data) {
      delivered.push_back(data.uid);
      if (auto* tagged = dynamic_cast<const Tagged*>(data.payload.get()))
        delivered_tags.push_back(tagged->tag);
    });
  }
  void on_start() override { core_->start(); }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    core_->handle(from, msg);
  }
  MemberCore& core() { return *core_; }
  std::vector<Uid> delivered;
  std::vector<std::uint64_t> delivered_tags;

 private:
  std::unique_ptr<MemberCore> core_;
};

/// A test client that a-mcasts a scripted sequence of (groups, tag) pairs
/// with optional spacing.
class SenderNode final : public sim::Process {
 public:
  struct Item {
    std::vector<GroupId> groups;
    std::uint64_t tag;
  };
  SenderNode(ProcessId id, sim::World& world, const paxos::Topology& topology,
             std::vector<Item> script, SimTime spacing)
      : sim::Process(id, world),
        client_(*this, topology),
        script_(std::move(script)),
        spacing_(spacing) {}

  void on_start() override { send_next(); }
  void on_message(ProcessId, const sim::MessagePtr&) override {}

 private:
  void send_next() {
    if (index_ >= script_.size()) return;
    const Item& item = script_[index_++];
    client_.amcast(item.groups, sim::make_message<Tagged>(item.tag));
    start_timer(spacing_, [this] { send_next(); });
  }

  McastClient client_;
  std::vector<SenderNode::Item> script_;
  SimTime spacing_;
  std::size_t index_ = 0;
};

struct MulticastWorld {
  explicit MulticastWorld(std::size_t num_groups, std::uint64_t seed = 1,
                          sim::NetworkConfig net = {})
      : world(net, seed) {
    std::uint64_t next = 0;
    for (std::size_t g = 0; g < num_groups; ++g) {
      paxos::GroupDef def;
      def.id = GroupId{g};
      def.replicas = {ProcessId{next}, ProcessId{next + 1}};
      def.acceptors = {ProcessId{next + 2}, ProcessId{next + 3},
                       ProcessId{next + 4}};
      next += 5;
      topology.add_group(def);
    }
    members.resize(num_groups);
    for (std::size_t g = 0; g < num_groups; ++g) {
      members[g].push_back(&world.spawn<MemberNode>(topology, GroupId{g}));
      members[g].push_back(&world.spawn<MemberNode>(topology, GroupId{g}));
      for (int a = 0; a < 3; ++a) world.spawn<paxos::AcceptorNode>(GroupId{g});
    }
  }

  sim::World world;
  paxos::Topology topology;
  std::vector<std::vector<MemberNode*>> members;  // [group][replica]
};

/// Checks pairwise-consistent order: for any two messages delivered by two
/// different observers, their relative order matches.
void expect_consistent_order(const std::vector<Uid>& a,
                             const std::vector<Uid>& b) {
  std::map<Uid, std::size_t> pos_a;
  for (std::size_t i = 0; i < a.size(); ++i) pos_a[a[i]] = i;
  std::vector<std::size_t> shared_positions;
  for (Uid uid : b) {
    auto it = pos_a.find(uid);
    if (it != pos_a.end()) shared_positions.push_back(it->second);
  }
  for (std::size_t i = 1; i < shared_positions.size(); ++i) {
    EXPECT_LT(shared_positions[i - 1], shared_positions[i])
        << "inconsistent relative delivery order";
  }
}

TEST(Multicast, SingleGroupDeliversOnceInAgreement) {
  MulticastWorld mw(1);
  std::vector<SenderNode::Item> script;
  for (std::uint64_t i = 0; i < 30; ++i) script.push_back({{GroupId{0}}, i});
  mw.world.spawn<SenderNode>(mw.topology, script, microseconds(50));
  mw.world.run_until(seconds(3));

  auto& r0 = mw.members[0][0]->delivered;
  auto& r1 = mw.members[0][1]->delivered;
  EXPECT_EQ(r0.size(), 30u);
  EXPECT_EQ(r0, r1);
  // Integrity: no duplicates.
  auto sorted = r0;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Multicast, FifoPerSenderSameDestination) {
  MulticastWorld mw(1);
  std::vector<SenderNode::Item> script;
  for (std::uint64_t i = 0; i < 40; ++i) script.push_back({{GroupId{0}}, i});
  // Zero spacing: many concurrent multicasts from one sender.
  mw.world.spawn<SenderNode>(mw.topology, script, 0);
  mw.world.run_until(seconds(3));
  const auto& tags = mw.members[0][0]->delivered_tags;
  ASSERT_EQ(tags.size(), 40u);
  for (std::uint64_t i = 0; i < 40; ++i) EXPECT_EQ(tags[i], i);
}

TEST(Multicast, MultiGroupDeliveredAtAllDestinations) {
  MulticastWorld mw(3);
  std::vector<SenderNode::Item> script;
  for (std::uint64_t i = 0; i < 20; ++i)
    script.push_back({{GroupId{0}, GroupId{1}, GroupId{2}}, i});
  mw.world.spawn<SenderNode>(mw.topology, script, microseconds(100));
  mw.world.run_until(seconds(5));
  for (auto& group : mw.members) {
    for (auto* member : group) {
      EXPECT_EQ(member->delivered.size(), 20u);
    }
  }
  expect_consistent_order(mw.members[0][0]->delivered,
                          mw.members[1][0]->delivered);
  expect_consistent_order(mw.members[1][0]->delivered,
                          mw.members[2][0]->delivered);
}

TEST(Multicast, GroupSenderEmitsExactlyOnce) {
  // amcast_as_group is called on every replica but transmitted by the
  // leader only; destinations must deliver one copy.
  MulticastWorld mw(2);
  mw.world.run_until(milliseconds(200));
  for (auto* member : mw.members[0]) {
    member->core().amcast_as_group(0xabcd, {GroupId{1}},
                                   sim::make_message<Tagged>(1));
  }
  mw.world.run_until(seconds(2));
  EXPECT_EQ(mw.members[1][0]->delivered.size(), 1u);
  EXPECT_EQ(mw.members[1][1]->delivered.size(), 1u);
}

// Property sweep: mixed single/multi-group traffic from several senders
// under jitter (heavy reordering) must preserve acyclic pairwise order and
// per-group agreement.
class McastSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McastSeedSweep, MixedTrafficConsistency) {
  sim::NetworkConfig net;
  net.jitter = microseconds(300);
  MulticastWorld mw(3, GetParam(), net);

  Rng rng(GetParam() * 7919 + 1);
  for (int s = 0; s < 4; ++s) {
    std::vector<SenderNode::Item> script;
    for (std::uint64_t i = 0; i < 25; ++i) {
      std::vector<GroupId> groups;
      const auto pick = rng.uniform(0, 5);
      if (pick < 3) {
        groups = {GroupId{pick % 3}};
      } else if (pick < 5) {
        groups = {GroupId{0}, GroupId{(pick % 2) + 1}};
      } else {
        groups = {GroupId{0}, GroupId{1}, GroupId{2}};
      }
      script.push_back({groups, i});
    }
    mw.world.spawn<SenderNode>(mw.topology, script,
                               microseconds(rng.uniform(10, 200)));
  }
  mw.world.run_until(seconds(10));

  // Agreement within every group.
  for (auto& group : mw.members)
    EXPECT_EQ(group[0]->delivered, group[1]->delivered);
  // Pairwise-consistent order across groups.
  expect_consistent_order(mw.members[0][0]->delivered,
                          mw.members[1][0]->delivered);
  expect_consistent_order(mw.members[0][0]->delivered,
                          mw.members[2][0]->delivered);
  expect_consistent_order(mw.members[1][0]->delivered,
                          mw.members[2][0]->delivered);
  // Global atomic order: the union over all observers must be acyclic
  // (stronger than pairwise — catches three-group cycles).
  std::vector<std::vector<Uid>> observations;
  for (auto& group : mw.members)
    for (auto* member : group) observations.push_back(member->delivered);
  EXPECT_TRUE(dynastar::testing::global_order_acyclic(observations));
  // Liveness: everything sent to group 0 arrived (no multicast lost).
  EXPECT_GT(mw.members[0][0]->delivered.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McastSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Multicast, LeaderCrashDoesNotLoseMessages) {
  MulticastWorld mw(2);
  mw.world.run_until(milliseconds(200));
  std::vector<SenderNode::Item> script;
  for (std::uint64_t i = 0; i < 30; ++i)
    script.push_back({{GroupId{0}, GroupId{1}}, i});
  mw.world.spawn<SenderNode>(mw.topology, script, milliseconds(5));
  mw.world.run_until(milliseconds(250));  // mid-stream
  // Crash group 0's initial leader (replica 0).
  mw.world.crash(mw.members[0][0]->id());
  mw.world.run_until(seconds(10));
  // The surviving replica of group 0 and both replicas of group 1 agree and
  // eventually deliver everything.
  EXPECT_EQ(mw.members[0][1]->delivered.size(), 30u);
  EXPECT_EQ(mw.members[1][0]->delivered.size(), 30u);
  expect_consistent_order(mw.members[0][1]->delivered,
                          mw.members[1][0]->delivered);
}

}  // namespace
}  // namespace dynastar::multicast
