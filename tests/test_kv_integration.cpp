// End-to-end integration: KV application over the full DynaStar stack
// (clients -> atomic multicast -> Paxos groups -> partition servers,
// with the oracle resolving cache misses).
#include <gtest/gtest.h>

#include "core/system.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

using core::CommandSpec;
using core::CommandType;
using core::SystemConfig;
using core::VertexId;
using workloads::KvOp;
using workloads::ScriptedKvDriver;

CommandSpec put(std::initializer_list<std::uint64_t> keys, std::uint64_t v) {
  CommandSpec spec;
  for (auto k : keys) spec.objects.emplace_back(ObjectId{k}, VertexId{k});
  spec.payload = sim::make_message<KvOp>(KvOp::Kind::kPut, v);
  return spec;
}

CommandSpec get(std::initializer_list<std::uint64_t> keys) {
  CommandSpec spec;
  for (auto k : keys) spec.objects.emplace_back(ObjectId{k}, VertexId{k});
  spec.payload = sim::make_message<KvOp>(KvOp::Kind::kGet, 0);
  return spec;
}

SystemConfig small_config(core::ExecutionMode mode, std::uint32_t partitions) {
  SystemConfig config;
  config.mode = mode;
  config.num_partitions = partitions;
  config.repartitioning_enabled = mode == core::ExecutionMode::kDynaStar;
  config.repartition_hint_threshold = 1'000'000;  // no plan unless asked
  return config;
}

/// Preloads keys 0..n-1 round-robin over partitions.
void preload_keys(core::System& system, std::uint64_t n) {
  core::Assignment assignment;
  workloads::KvObject zero(0);
  for (std::uint64_t k = 0; k < n; ++k) {
    const PartitionId p{k % system.config().num_partitions};
    assignment[VertexId{k}] = p;
    system.preload_object(ObjectId{k}, VertexId{k}, p, zero);
  }
  system.preload_assignment(assignment);
}

TEST(KvIntegration, SinglePartitionPutGet) {
  core::System system(small_config(core::ExecutionMode::kDynaStar, 1),
                      workloads::kv_app_factory());
  preload_keys(system, 4);
  std::vector<ScriptedKvDriver::Record> records;
  system.add_client(std::make_unique<ScriptedKvDriver>(
      std::vector<CommandSpec>{put({1}, 42), get({1})}, &records));
  system.run_until(seconds(5));

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].status, core::ReplyStatus::kOk);
  EXPECT_EQ(records[1].status, core::ReplyStatus::kOk);
  ASSERT_EQ(records[1].observed.size(), 1u);
  EXPECT_EQ(records[1].observed[0], 42u);
}

TEST(KvIntegration, CrossPartitionCommandBorrowsAndReturns) {
  core::System system(small_config(core::ExecutionMode::kDynaStar, 2),
                      workloads::kv_app_factory());
  preload_keys(system, 4);  // keys 0,2 -> p0; keys 1,3 -> p1
  std::vector<ScriptedKvDriver::Record> records;
  system.add_client(std::make_unique<ScriptedKvDriver>(
      std::vector<CommandSpec>{
          put({0, 1}, 7),  // spans both partitions
          get({0}),        // must see 7 at p0
          get({1}),        // must see 7 at p1 (variable returned home)
      },
      &records));
  system.run_until(seconds(5));

  ASSERT_EQ(records.size(), 3u);
  for (const auto& r : records) EXPECT_EQ(r.status, core::ReplyStatus::kOk);
  EXPECT_EQ(records[1].observed[0], 7u);
  EXPECT_EQ(records[2].observed[0], 7u);
}

TEST(KvIntegration, CreateThenAccessNewVertex) {
  core::System system(small_config(core::ExecutionMode::kDynaStar, 2),
                      workloads::kv_app_factory());
  preload_keys(system, 2);
  CommandSpec create;
  create.type = CommandType::kCreate;
  create.objects.emplace_back(ObjectId{100}, VertexId{100});
  create.payload = sim::make_message<KvOp>(KvOp::Kind::kPut, 11);
  std::vector<ScriptedKvDriver::Record> records;
  system.add_client(std::make_unique<ScriptedKvDriver>(
      std::vector<CommandSpec>{create, get({100}), put({100, 0}, 5), get({100})},
      &records));
  system.run_until(seconds(5));

  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].status, core::ReplyStatus::kOk);
  EXPECT_EQ(records[1].observed[0], 11u);
  EXPECT_EQ(records[3].observed[0], 5u);
}

TEST(KvIntegration, ManyClientsRandomLoadAllComplete) {
  for (auto mode : {core::ExecutionMode::kDynaStar, core::ExecutionMode::kSSMR,
                    core::ExecutionMode::kDSSMR}) {
    core::System system(small_config(mode, 4), workloads::kv_app_factory());
    preload_keys(system, 64);
    for (int c = 0; c < 8; ++c) {
      system.add_client(std::make_unique<workloads::RandomKvDriver>(
          64, /*write=*/0.5, /*multi=*/0.3));
    }
    system.run_until(seconds(10));
    const double completed = system.metrics().series("completed").total();
    EXPECT_GT(completed, 100.0) << "mode " << static_cast<int>(mode);
    // Closed loop with 8 clients: every client must still be making progress
    // (no deadlock): check late-bucket throughput.
    const auto& series = system.metrics().series("completed");
    double tail = 0;
    for (std::size_t b = 5; b < series.num_buckets(); ++b) tail += series.at(b);
    EXPECT_GT(tail, 10.0) << "mode " << static_cast<int>(mode);
  }
}


TEST(KvIntegration, BoundedClientCacheFallsBackToOracle) {
  auto config = small_config(core::ExecutionMode::kDynaStar, 2);
  config.client_cache_capacity = 2;  // far smaller than the working set
  core::System system(config, workloads::kv_app_factory());
  preload_keys(system, 32);
  system.add_client(std::make_unique<workloads::RandomKvDriver>(
      32, /*write=*/0.5, /*multi=*/0.0));
  system.run_until(seconds(5));
  auto& client = system.client(0).core();
  EXPECT_GT(client.completed(), 100u);
  // With only 2 cached entries over 32 hot keys, most commands must have
  // resolved through the oracle.
  EXPECT_GT(client.oracle_queries(), client.completed() / 2);
}

TEST(KvIntegration, UnboundedCacheRarelyAsksOracle) {
  auto config = small_config(core::ExecutionMode::kDynaStar, 2);
  core::System system(config, workloads::kv_app_factory());
  preload_keys(system, 32);
  system.add_client(std::make_unique<workloads::RandomKvDriver>(
      32, /*write=*/0.5, /*multi=*/0.0));
  system.run_until(seconds(5));
  auto& client = system.client(0).core();
  EXPECT_GT(client.completed(), 100u);
  // Steady state: at most one oracle query per key (cold misses only).
  EXPECT_LE(client.oracle_queries(), 32u);
}

}  // namespace
}  // namespace dynastar
