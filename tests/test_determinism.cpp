// Whole-system determinism: a run is a pure function of its configuration
// and seed. This is what makes every benchmark figure reproducible and
// every test failure replayable.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workloads/chirper.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"
#include "workloads/social_graph.h"

namespace dynastar {
namespace {

struct Fingerprint {
  double completed;
  double mpart;
  double exchanged;
  std::uint64_t events;

  bool operator==(const Fingerprint& other) const {
    return completed == other.completed && mpart == other.mpart &&
           exchanged == other.exchanged && events == other.events;
  }
};

Fingerprint run_kv(std::uint64_t seed) {
  core::SystemConfig config;
  config.num_partitions = 3;
  config.seed = seed;
  config.repartition_hint_threshold = UINT64_MAX;
  core::System system(config, workloads::kv_app_factory());
  core::Assignment assignment;
  workloads::KvObject zero(0);
  for (std::uint64_t k = 0; k < 32; ++k) {
    const PartitionId p{k % 3};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p, zero);
  }
  system.preload_assignment(assignment);
  for (int c = 0; c < 6; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(32, 0.5, 0.4));
  }
  system.run_until(seconds(3));
  return Fingerprint{system.metrics().series("completed").total(),
                     system.metrics().series("mpart").total(),
                     system.metrics().series("objects_exchanged").total(),
                     system.world().sim().executed_events()};
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  EXPECT_TRUE(run_kv(42) == run_kv(42));
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_kv(1);
  const auto b = run_kv(2);
  // Different schedules, but both made comparable progress.
  EXPECT_NE(a.events, b.events);
  EXPECT_GT(a.completed, 100.0);
  EXPECT_GT(b.completed, 100.0);
}

TEST(Determinism, ChirperRunsReproduce) {
  auto run_once = [] {
    core::SystemConfig config;
    config.num_partitions = 2;
    config.repartition_hint_threshold = 10'000;
    config.min_repartition_interval = seconds(1);
    auto graph = workloads::generate_social_graph(300, 3, 9);
    core::System system(config, workloads::chirper::chirper_app_factory());
    workloads::chirper::setup(system, graph,
                              workloads::chirper::Placement::kRandom);
    auto directory = workloads::chirper::make_directory(graph);
    auto zipf = std::make_shared<ZipfGenerator>(300, 0.95);
    workloads::chirper::WorkloadMix mix;
    for (int c = 0; c < 4; ++c) {
      system.add_client(std::make_unique<workloads::chirper::ChirperDriver>(
          directory, mix, zipf));
    }
    system.run_until(seconds(5));
    return Fingerprint{system.metrics().series("completed").total(),
                       system.metrics().series("mpart").total(),
                       system.metrics().series("objects_exchanged").total(),
                       system.world().sim().executed_events()};
  };
  EXPECT_TRUE(run_once() == run_once());
}

}  // namespace
}  // namespace dynastar
