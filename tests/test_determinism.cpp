// Whole-system determinism: a run is a pure function of its configuration
// and seed. This is what makes every benchmark figure reproducible and
// every test failure replayable.
#include <gtest/gtest.h>

#include "common/metric_names.h"
#include "core/scenario.h"
#include "workloads/chirper.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"
#include "workloads/social_graph.h"

namespace dynastar {
namespace {

struct Fingerprint {
  double completed;
  double mpart;
  double exchanged;
  std::uint64_t events;

  bool operator==(const Fingerprint& other) const {
    return completed == other.completed && mpart == other.mpart &&
           exchanged == other.exchanged && events == other.events;
  }
};

Fingerprint fingerprint_of(core::System& system) {
  return Fingerprint{system.metrics().series(metric::kCompleted).total(),
                     system.metrics().series(metric::kMultiPartition).total(),
                     system.metrics().series(metric::kObjectsExchanged).total(),
                     system.world().sim().executed_events()};
}

Fingerprint run_kv(std::uint64_t seed) {
  auto system =
      core::ScenarioBuilder()
          .partitions(3)
          .seed(seed)
          .tune([](core::SystemConfig& c) {
            c.repartition_hint_threshold = UINT64_MAX;
          })
          .app(workloads::kv_app_factory())
          .preload_kv(32, workloads::KvObject(0))
          .clients(6,
                   [](std::size_t) {
                     return std::make_unique<workloads::RandomKvDriver>(32, 0.5,
                                                                        0.4);
                   })
          .build();
  system->run_until(seconds(3));
  return fingerprint_of(*system);
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  EXPECT_TRUE(run_kv(42) == run_kv(42));
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_kv(1);
  const auto b = run_kv(2);
  // Different schedules, but both made comparable progress.
  EXPECT_NE(a.events, b.events);
  EXPECT_GT(a.completed, 100.0);
  EXPECT_GT(b.completed, 100.0);
}

TEST(Determinism, ChirperRunsReproduce) {
  auto run_once = [] {
    auto graph = workloads::generate_social_graph(300, 3, 9);
    auto directory = workloads::chirper::make_directory(graph);
    auto zipf = std::make_shared<ZipfGenerator>(300, 0.95);
    workloads::chirper::WorkloadMix mix;
    auto system =
        core::ScenarioBuilder()
            .partitions(2)
            .tune([](core::SystemConfig& c) {
              c.repartition_hint_threshold = 10'000;
              c.min_repartition_interval = seconds(1);
            })
            .app(workloads::chirper::chirper_app_factory())
            .preload([&](core::System& s) {
              workloads::chirper::setup(s, graph,
                                        workloads::chirper::Placement::kRandom);
            })
            .clients(4,
                     [&](std::size_t) {
                       return std::make_unique<
                           workloads::chirper::ChirperDriver>(directory, mix,
                                                              zipf);
                     })
            .build();
    system->run_until(seconds(5));
    return fingerprint_of(*system);
  };
  EXPECT_TRUE(run_once() == run_once());
}

}  // namespace
}  // namespace dynastar
