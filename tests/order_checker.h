// Test utility: global acyclicity check for multicast delivery orders.
//
// The paper's "atomic order" property requires the union of all processes'
// delivery orders to be acyclic. This is strictly stronger than checking
// pairwise consistency between two observers: a cycle can span three
// groups that are pairwise consistent on their shared messages.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <vector>

namespace dynastar::testing {

/// Returns true iff the union of the observers' delivery orders is a DAG.
template <typename Id>
bool global_order_acyclic(const std::vector<std::vector<Id>>& observations) {
  std::map<Id, std::set<Id>> successors;
  std::map<Id, int> indegree;
  for (const auto& order : observations) {
    for (const auto& id : order) {
      successors.try_emplace(id);
      indegree.try_emplace(id, 0);
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (std::size_t j = i + 1; j < order.size(); ++j) {
        if (successors[order[i]].insert(order[j]).second)
          ++indegree[order[j]];
      }
    }
  }
  // Kahn's algorithm: the order is acyclic iff every vertex drains.
  std::queue<Id> ready;
  for (const auto& [id, degree] : indegree)
    if (degree == 0) ready.push(id);
  std::size_t drained = 0;
  while (!ready.empty()) {
    const Id id = ready.front();
    ready.pop();
    ++drained;
    for (const Id& next : successors[id])
      if (--indegree[next] == 0) ready.push(next);
  }
  return drained == indegree.size();
}

}  // namespace dynastar::testing
