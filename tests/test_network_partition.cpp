// Network-partition behavior: Paxos and the full system under blocked
// links (not just crashed processes) — the harder asymmetric-failure cases.
#include <gtest/gtest.h>

#include "core/system.h"
#include "paxos/nodes.h"
#include "paxos/replica.h"
#include "tests/test_util.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

struct Payload final : sim::Message {
  explicit Payload(std::uint64_t v) : value(v) {}
  const char* type_name() const override { return "test.Payload"; }
  std::uint64_t value;
};

class ReplicaNode final : public sim::Process {
 public:
  ReplicaNode(ProcessId id, sim::World& world, const paxos::Topology& topology,
              GroupId group)
      : sim::Process(id, world) {
    core_ = std::make_unique<paxos::ReplicaCore>(*this, topology, group);
    core_->set_deliver([this](std::uint64_t, const sim::MessagePtr& value) {
      if (auto* payload = dynamic_cast<const Payload*>(value.get()))
        delivered.push_back(payload->value);
    });
  }
  void on_start() override { core_->start(); }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    core_->handle(from, msg);
  }
  paxos::ReplicaCore& core() { return *core_; }
  std::vector<std::uint64_t> delivered;

 private:
  std::unique_ptr<paxos::ReplicaCore> core_;
};

TEST(NetworkPartition, IsolatedPaxosLeaderIsSuperseded) {
  sim::World world({}, 3);
  paxos::Topology topology;
  paxos::GroupDef def;
  def.id = GroupId{0};
  def.replicas = {ProcessId{0}, ProcessId{1}};
  def.acceptors = {ProcessId{2}, ProcessId{3}, ProcessId{4}};
  topology.add_group(def);
  auto& r0 = world.spawn<ReplicaNode>(topology, GroupId{0});
  auto& r1 = world.spawn<ReplicaNode>(topology, GroupId{0});
  std::vector<paxos::AcceptorNode*> acceptors;
  for (int i = 0; i < 3; ++i)
    acceptors.push_back(&world.spawn<paxos::AcceptorNode>(GroupId{0}));

  world.run_until(milliseconds(200));
  ASSERT_TRUE(r0.core().is_leader());

  // Cut the leader off from every acceptor and its peer (asymmetric: it can
  // still *send* heartbeats nowhere useful). The follower must take over.
  for (auto* acceptor : acceptors) {
    world.network().block_link(r0.id(), acceptor->id());
    world.network().block_link(acceptor->id(), r0.id());
  }
  world.network().block_link(r0.id(), r1.id());
  world.network().block_link(r1.id(), r0.id());

  // Let the follower detect the silence and win an election first; values
  // submitted before that would be forwarded into the blocked link (the
  // replica layer does not retry lost forwards — clients do, at their
  // layer).
  world.run_until(seconds(2));
  EXPECT_TRUE(r1.core().is_leader());
  for (std::uint64_t v = 0; v < 10; ++v)
    r1.core().submit(sim::make_message<Payload>(v));
  world.run_until(seconds(3));
  EXPECT_EQ(r1.delivered.size(), 10u);

  // Heal: the deposed leader re-joins as follower and catches up.
  world.network().unblock_all();
  world.run_until(seconds(6));
  EXPECT_EQ(r0.delivered, r1.delivered);
}

TEST(NetworkPartition, MinorityAcceptorIsolationIsHarmless) {
  core::System system(testutil::config_for(core::ExecutionMode::kDynaStar),
                      workloads::kv_app_factory());
  testutil::preload(system, 16);
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.3));
  }
  system.run_until(seconds(2));
  const double before = system.metrics().series("completed").total();

  // Isolate one acceptor of partition 0 in both directions.
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).acceptors[0];
  for (ProcessId replica :
       system.topology().group(core::group_of(PartitionId{0})).replicas) {
    system.world().network().block_link(replica, victim);
    system.world().network().block_link(victim, replica);
  }
  system.run_until(seconds(6));
  const double after = system.metrics().series("completed").total() - before;
  EXPECT_GT(after, before * 0.5)  // remaining quorum keeps full service
      << "throughput collapsed under minority acceptor isolation";
}

}  // namespace
}  // namespace dynastar
