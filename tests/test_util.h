// Shared helpers for the system-level tests: canonical small-system config,
// KV preloading, tail-throughput measurement, and a history-recording driver
// for linearizability checks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/linearizability.h"
#include "core/system.h"
#include "workloads/kv.h"

namespace dynastar::testutil {

/// Small fixed-partition config with repartitioning disabled — the baseline
/// for fault/chaos tests where plan churn would obscure the property under
/// test.
inline core::SystemConfig config_for(core::ExecutionMode mode,
                                     std::uint32_t num_partitions = 2) {
  core::SystemConfig config;
  config.mode = mode;
  config.num_partitions = num_partitions;
  config.repartitioning_enabled = false;
  config.repartition_hint_threshold = UINT64_MAX;
  return config;
}

/// Preloads `keys` zero-valued KV objects round-robin across partitions.
inline void preload(core::System& system, std::uint64_t keys,
                    std::uint64_t initial_value = 0) {
  core::Assignment assignment;
  workloads::KvObject object(initial_value);
  for (std::uint64_t k = 0; k < keys; ++k) {
    const PartitionId p{k % system.config().num_partitions};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p, object);
  }
  system.preload_assignment(assignment);
}

/// Sum of the `completed` series over the last `last_n` one-second buckets.
inline double tail_throughput(core::System& system, std::size_t last_n) {
  const auto& completed = system.metrics().series("completed");
  double total = 0;
  const std::size_t buckets = completed.num_buckets();
  for (std::size_t b = buckets > last_n ? buckets - last_n : 0; b < buckets;
       ++b)
    total += completed.at(b);
  return total;
}

/// Per-status completion counts across a run (shared by several drivers).
struct StatusTally {
  std::uint64_t completions = 0;
  std::uint64_t ok = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t other = 0;
};

/// Issues random single/multi-key gets and puts, recording a KvOperation
/// per completed command. Feed the result to check_kv_linearizable.
class RecordingKvDriver final : public core::ClientDriver {
 public:
  RecordingKvDriver(std::uint64_t num_keys, int max_ops,
                    std::vector<KvOperation>* history,
                    StatusTally* tally = nullptr, double multi_fraction = 0.4,
                    double write_fraction = 0.5)
      : num_keys_(num_keys),
        remaining_(max_ops),
        history_(history),
        tally_(tally),
        multi_fraction_(multi_fraction),
        write_fraction_(write_fraction) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime /*now*/) override {
    if (remaining_-- <= 0) return std::nullopt;
    core::CommandSpec spec;
    const bool multi = rng.chance(multi_fraction_);
    const std::uint64_t span = multi ? 2 + rng.uniform(0, 1) : 1;
    std::vector<std::uint64_t> keys;
    while (keys.size() < span) {
      const std::uint64_t key = rng.uniform(0, num_keys_ - 1);
      if (std::find(keys.begin(), keys.end(), key) == keys.end())
        keys.push_back(key);
    }
    for (std::uint64_t key : keys)
      spec.objects.emplace_back(ObjectId{key}, core::VertexId{key});
    const bool write = rng.chance(write_fraction_);
    spec.payload = sim::make_message<workloads::KvOp>(
        write ? workloads::KvOp::Kind::kPut : workloads::KvOp::Kind::kGet,
        rng.uniform(1, 1u << 30));
    spec.read_only = !write;
    return spec;
  }

  void on_result(const core::CommandSpec& spec, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime issued_at,
                 SimTime completed_at) override {
    if (tally_ != nullptr) {
      ++tally_->completions;
      if (status == core::ReplyStatus::kOk)
        ++tally_->ok;
      else if (status == core::ReplyStatus::kTimeout)
        ++tally_->timeouts;
      else
        ++tally_->other;
    }
    if (status != core::ReplyStatus::kOk) return;
    const auto* reply = dynamic_cast<const workloads::KvReply*>(payload.get());
    const auto* op = dynamic_cast<const workloads::KvOp*>(spec.payload.get());
    if (reply == nullptr || op == nullptr) return;
    KvOperation record;
    record.is_put = op->kind == workloads::KvOp::Kind::kPut;
    record.value = op->value;
    for (const auto& [obj, vertex] : spec.objects)
      record.keys.push_back(obj.value());
    record.observed = reply->values;
    record.invoke_time = issued_at;
    record.response_time = completed_at;
    history_->push_back(std::move(record));
  }

 private:
  std::uint64_t num_keys_;
  int remaining_;
  std::vector<KvOperation>* history_;
  StatusTally* tally_;
  double multi_fraction_;
  double write_fraction_;
};

/// Seeds a recorded history with instantaneous before-time-zero puts for
/// the preloaded values, so "absent" never aliases a legal read.
inline std::vector<KvOperation> with_initial_puts(
    const std::vector<KvOperation>& history, std::uint64_t keys,
    std::uint64_t base_value) {
  std::vector<KvOperation> full;
  full.reserve(history.size() + keys);
  for (std::uint64_t k = 0; k < keys; ++k) {
    KvOperation init;
    init.is_put = true;
    init.keys = {k};
    init.value = base_value + k;
    init.observed = {};  // unconstrained observation
    init.invoke_time = -2;
    init.response_time = -1;
    full.push_back(init);
  }
  full.insert(full.end(), history.begin(), history.end());
  return full;
}

}  // namespace dynastar::testutil
