// Chunked state transfer under faults: a recovering replica whose gap
// outruns its peers' retained logs pulls the last stable checkpoint as
// fixed-size chunks (paxos/messages.h §Chunked snapshot transfer). These
// tests drive the ISSUE's migration-under-fault scenarios end to end:
// multi-chunk installs complete and stay linearizable, a mid-transfer
// bandwidth collapse on a WAN topology delays but never wedges the pull,
// a sender crash mid-transfer is survived by redirecting chunk requests to
// another up-to-date peer, and the whole machinery is bit-deterministic
// per seed.
#include <gtest/gtest.h>

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/linearizability.h"
#include "common/metric_names.h"
#include "common/trace.h"
#include "core/system.h"
#include "sim/network.h"
#include "tests/lin_harness.h"
#include "tests/test_util.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

using testutil::config_for;

constexpr std::uint64_t kKeys = 16;
constexpr std::uint64_t kBaseValue = 1000;

// Per-key initial values matching testutil::with_initial_puts (key k starts
// at kBaseValue + k); testutil::preload would seed every key with the same
// value and make the seeded history lie about the initial state.
void preload(core::System& system) {
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const PartitionId p{k % system.config().num_partitions};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p,
                          workloads::KvObject(kBaseValue + k));
  }
  system.preload_assignment(assignment);
}

// Small checkpoints + a catch-up window of the same order: a replica that
// misses a few dozen decisions is below its peers' log floor and must pull
// a snapshot, and the stable checkpoint the chunk path serves is at most
// one interval stale (so the chunked branch, not the monolithic fallback,
// carries the install). Tiny chunks force real multi-chunk transfers out
// of the few-KiB test snapshots.
core::SystemConfig transfer_config(std::uint64_t seed,
                                   std::uint32_t replicas = 2) {
  auto config = config_for(core::ExecutionMode::kDynaStar, /*partitions=*/2);
  config.seed = seed;
  config.replicas_per_partition = replicas;
  config.paxos.checkpoint_interval = 16;
  config.paxos.catchup_window = 16;
  config.paxos.transfer_chunk_bytes = 256;
  // Unbounded retries: commands issued into the crash window must retry
  // until they land (a bounded budget would orphan executed-but-unacked
  // puts, which is an at-most-once question, not a transfer one).
  config.client_timeout_base = milliseconds(300);
  config.client_timeout_jitter = milliseconds(20);
  config.client_timeout_cap = seconds(2);
  config.client_max_attempts = 0;
  return config;
}

// Asserts linearizability; on failure, dumps the stuck operation and every
// operation touching its keys so the anomaly is diagnosable from the log.
void expect_linearizable(const std::vector<KvOperation>& full) {
  const auto res = check_kv_linearizable(full);
  EXPECT_TRUE(res.linearizable);
  if (res.linearizable || !res.stuck_operation) return;
  const auto dump = [&](std::size_t i) {
    const KvOperation& op = full[i];
    std::cerr << "  #" << i << (op.is_put ? " put " : " get ") << "keys=";
    for (auto k : op.keys) std::cerr << k << ",";
    std::cerr << " value=" << op.value << " observed=";
    for (const auto& o : op.observed)
      std::cerr << (o ? std::to_string(*o) : std::string("absent")) << ",";
    std::cerr << " t=[" << op.invoke_time << "," << op.response_time << "]\n";
  };
  const KvOperation& stuck = full[*res.stuck_operation];
  std::cerr << "stuck operation:\n";
  dump(*res.stuck_operation);
  std::cerr << "operations sharing a key:\n";
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (i == *res.stuck_operation) continue;
    bool shares = false;
    for (auto k : full[i].keys)
      for (auto sk : stuck.keys)
        if (k == sk) shares = true;
    if (shares) dump(i);
  }
}

struct CrashRecoverRun {
  std::vector<KvOperation> history;
  testutil::StatusTally tally;
  std::uint64_t expected = 0;
};

void add_recording_clients(core::System& system, CrashRecoverRun& run,
                           int clients, int ops) {
  run.expected = static_cast<std::uint64_t>(clients) * ops;
  for (int c = 0; c < clients; ++c) {
    system.add_client(std::make_unique<testutil::RecordingKvDriver>(
        kKeys, ops, &run.history, &run.tally));
  }
}

TEST(StateTransfer, ChunkedInstallCompletesAndIsLinearizable) {
  core::System system(transfer_config(/*seed=*/11),
                      workloads::kv_app_factory());
  system.world().trace().enable();
  preload(system);
  CrashRecoverRun run;
  add_recording_clients(system, run, /*clients=*/6, /*ops=*/150);

  // Take the follower down while commands are in flight, let its peers
  // decide far past checkpoint + catch-up window, then bring it back.
  system.run_until(milliseconds(20));
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).replicas[1];
  system.world().crash(victim);
  system.run_until(milliseconds(80));
  system.world().recover(victim);
  system.run_until(seconds(8));

  // The recovery went through the chunk protocol, not the monolithic path:
  // multiple chunks served, the transfer completed, and the trace carries
  // the state_transfer span.
  EXPECT_GE(system.metrics().counter(metric::kServerSnapshotInstalls), 1.0);
  EXPECT_GT(system.metrics().counter(metric::kTransferChunksSent), 1.0);
  bool saw_start = false, saw_end = false;
  for (const TraceEvent& ev : system.world().trace().events()) {
    if (ev.point == TracePoint::kStateTransferStart) saw_start = true;
    if (ev.point == TracePoint::kStateTransferEnd) saw_end = true;
  }
  EXPECT_TRUE(saw_start) << "no state_transfer_start trace event";
  EXPECT_TRUE(saw_end) << "no state_transfer_end trace event";

  EXPECT_EQ(run.tally.completions, run.expected) << "clients hung";
  const auto full =
      testutil::with_initial_puts(run.history, kKeys, kBaseValue);
  expect_linearizable(full);
}

TEST(StateTransfer, BandwidthCollapseMidTransferStillCompletes) {
  // WAN topology (2 sites, replicas striped across them) with the
  // inter-site bandwidth collapsed 10x over a window that spans the
  // recovery: the chunked install must finish anyway, and commands on the
  // unaffected partition must keep executing through the collapse.
  auto config = transfer_config(/*seed=*/12);
  config.net_sites = 2;
  core::System system(config, workloads::kv_app_factory());
  preload(system);
  CrashRecoverRun run;
  add_recording_clients(system, run, /*clients=*/6, /*ops=*/150);

  system.run_until(milliseconds(20));
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).replicas[1];
  system.world().crash(victim);
  system.run_until(milliseconds(80));
  // Collapse every profiled link right as the transfer starts; restore
  // two simulated seconds later.
  system.world().sim().schedule_at(milliseconds(85), [&system] {
    system.world().network().set_bandwidth_scale(0.1);
  });
  system.world().sim().schedule_at(seconds(2), [&system] {
    system.world().network().set_bandwidth_scale(1.0);
  });
  system.world().recover(victim);
  system.run_until(seconds(12));

  EXPECT_GE(system.metrics().counter(metric::kServerSnapshotInstalls), 1.0)
      << "the bandwidth collapse wedged the chunked install";
  EXPECT_GT(system.metrics().counter(metric::kTransferChunksSent), 1.0);
  // The link-capacity model engaged: inter-site traffic is accounted per
  // site pair.
  EXPECT_NE(system.metrics().find_series(metric::kNetworkBytesSent,
                                         {{"link", "s0->s1"}}),
            nullptr)
      << "no labeled inter-site byte accounting";

  EXPECT_EQ(run.tally.completions, run.expected) << "clients hung";
  const auto full =
      testutil::with_initial_puts(run.history, kKeys, kBaseValue);
  expect_linearizable(full);
}

TEST(StateTransfer, SenderCrashMidTransferResumesFromDifferentPeer) {
  // 3 replicas per group: the recovering replica's first chunk requests
  // probe the bootstrap leader (untried peers score +inf, topology order
  // breaks the tie) — which is down. The per-chunk retransmit timers must
  // penalize the silent peer and redirect to the surviving replica, which
  // serves an interchangeable manifest because checkpoint slots are
  // deterministic across the group.
  core::System system(transfer_config(/*seed=*/13, /*replicas=*/3),
                      workloads::kv_app_factory());
  preload(system);
  CrashRecoverRun run;
  add_recording_clients(system, run, /*clients=*/6, /*ops=*/150);

  const auto& group =
      system.topology().group(core::group_of(PartitionId{0}));
  const ProcessId victim = group.replicas[2];
  const ProcessId sender = group.replicas[0];

  system.run_until(milliseconds(20));
  system.world().crash(victim);
  system.run_until(milliseconds(80));
  // Kill the natural transfer source before the victim returns; the group
  // keeps deciding (acceptor majority is untouched, replica 1 leads).
  system.world().crash(sender);
  system.run_until(milliseconds(90));
  system.world().recover(victim);
  system.run_until(seconds(2));
  system.world().recover(sender);
  system.run_until(seconds(12));

  EXPECT_GE(system.metrics().counter(metric::kServerSnapshotInstalls), 1.0)
      << "recovery never completed a snapshot install";
  EXPECT_GE(system.metrics().counter(metric::kTransferChunksRetransmitted),
            1.0)
      << "no chunk was ever re-requested — the dead-sender redirect path "
         "was not exercised";

  EXPECT_EQ(run.tally.completions, run.expected) << "clients hung";
  const auto full =
      testutil::with_initial_puts(run.history, kKeys, kBaseValue);
  expect_linearizable(full);
}

// --- harness-driven sweeps: chunked recovery + WAN under chaos ---

testutil::LinScenario chunked_chaos_scenario(std::uint64_t seed) {
  testutil::LinScenario s;
  s.partitions = 2;
  s.system_seed = seed;
  s.chaos_seed = seed * 31 + 7;
  s.chaos = true;
  s.long_crashes = true;  // outages that outrun the catch-up window
  s.run_for = seconds(60);
  s.tune = [](core::SystemConfig& config) {
    config.paxos.checkpoint_interval = 16;
    config.paxos.catchup_window = 16;
    config.paxos.transfer_chunk_bytes = 512;
    config.net_sites = 2;
  };
  return s;
}

TEST(StateTransfer, ChunkedRecoveryUnderChaosMultiSeedSweep) {
  for (std::uint64_t seed : {3ull, 17ull, 29ull}) {
    const auto run = run_lin_scenario(chunked_chaos_scenario(seed));
    EXPECT_EQ(run.tally.completions, run.expected_ops)
        << "seed " << seed << ": clients hung under chaos";
    EXPECT_TRUE(run.lin.linearizable) << "seed " << seed;
    EXPECT_GE(run.snapshot_installs, 1.0)
        << "seed " << seed
        << ": the long crashes never forced a snapshot install";
  }
}

TEST(StateTransfer, SameSeedGivesBitIdenticalRuns) {
  // Chunk timers, EWMA updates, WAN queueing and the chaos nemesis all
  // draw from seeded streams: the full fingerprint (event count, series,
  // chaos log, history hash) must match across runs.
  const auto a = run_lin_scenario(chunked_chaos_scenario(17));
  const auto b = run_lin_scenario(chunked_chaos_scenario(17));
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_TRUE(a.lin.linearizable);
}

TEST(StateTransfer, ExecutionContinuesOnUnaffectedPartitionDuringTransfer) {
  // While partition 0's follower pulls chunks, partition 1 must keep
  // executing: its per-partition executed series may not go quiet for the
  // transfer's duration.
  core::System system(transfer_config(/*seed=*/14),
                      workloads::kv_app_factory());
  system.world().trace().enable();
  preload(system);
  CrashRecoverRun run;
  add_recording_clients(system, run, /*clients=*/6, /*ops=*/200);

  system.run_until(milliseconds(20));
  const ProcessId victim =
      system.topology().group(core::group_of(PartitionId{0})).replicas[1];
  system.world().crash(victim);
  system.run_until(milliseconds(80));
  system.world().recover(victim);
  system.run_until(seconds(8));

  SimTime start = 0, end = 0;
  for (const TraceEvent& ev : system.world().trace().events()) {
    if (ev.point == TracePoint::kStateTransferStart && start == 0)
      start = ev.time;
    if (ev.point == TracePoint::kStateTransferEnd && end == 0) end = ev.time;
  }
  ASSERT_GT(start, 0) << "no chunked transfer happened";
  ASSERT_GE(end, start) << "the transfer never completed";

  // The whole-system completed series keeps moving across the transfer
  // window: the second containing the transfer still completed commands.
  const auto* completed = system.metrics().find_series("completed");
  ASSERT_NE(completed, nullptr);
  const auto bucket =
      static_cast<std::size_t>(start / completed->bucket_width());
  ASSERT_LT(bucket, completed->num_buckets());
  EXPECT_GT(completed->at(bucket), 0.0)
      << "command execution stalled during the state transfer";
}

}  // namespace
}  // namespace dynastar
