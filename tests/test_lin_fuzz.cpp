// Seeded linearizability fuzzing: each seed deterministically derives a
// whole scenario — workload mix, execution mode, parallel-executor lanes,
// read leases, chaos nemesis, repartition churn — and the harness checks
// that every command completes and the observed history stays linearizable.
//
// The derivation is a pure function of the seed, so a failing seed is a
// one-line repro: LinFuzz/LinFuzz.SeededScenarioIsLinearizable/<seed>.
#include <gtest/gtest.h>

#include <string>

#include "tests/lin_harness.h"

namespace dynastar {
namespace {

using testutil::LinScenario;

/// splitmix64: cheap, well-mixed bits from a seed (deterministic; the sim's
/// own RNGs are seeded separately via system_seed / chaos_seed below).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

LinScenario scenario_for(std::uint64_t seed) {
  const std::uint64_t bits = mix(seed);
  LinScenario s;
  // Weight DynaStar: it owns the borrow/return + lease + repartition paths.
  switch (bits % 4) {
    case 0: s.mode = core::ExecutionMode::kSSMR; break;
    case 1: s.mode = core::ExecutionMode::kDSSMR; break;
    default: s.mode = core::ExecutionMode::kDynaStar; break;
  }
  s.partitions = 2 + ((bits >> 2) & 1);
  s.system_seed = 1 + seed;
  s.multi_fraction = 0.2 + 0.2 * ((bits >> 3) % 3);   // 0.2 / 0.4 / 0.6
  s.write_fraction = 0.3 + 0.2 * ((bits >> 5) % 3);   // 0.3 / 0.5 / 0.7
  s.read_leases = ((bits >> 7) & 1) != 0;  // harmless no-op under S-SMR
  s.exec_lanes = ((bits >> 8) & 1) != 0 ? 4 : 1;
  s.chaos = ((bits >> 9) & 1) != 0;
  s.chaos_seed = 100 + seed;
  s.repartition_mid_run =
      s.mode == core::ExecutionMode::kDynaStar && ((bits >> 10) & 1) != 0;
  s.clients = 3;
  s.ops_per_client = 25;
  s.run_for = seconds(45);
  return s;
}

class LinFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinFuzz, SeededScenarioIsLinearizable) {
  const std::uint64_t seed = GetParam();
  const LinScenario s = scenario_for(seed);
  SCOPED_TRACE("fuzz seed " + std::to_string(seed) + " mode " +
               std::to_string(static_cast<int>(s.mode)) + " leases " +
               std::to_string(s.read_leases) + " lanes " +
               std::to_string(s.exec_lanes) + " chaos " +
               std::to_string(s.chaos));

  const auto run = testutil::run_lin_scenario(s);

  // Liveness: every scripted command completed successfully by the horizon.
  EXPECT_EQ(run.tally.completions, run.expected_ops);
  EXPECT_EQ(run.tally.ok, run.expected_ops);
  ASSERT_EQ(run.history.size(), run.expected_ops);

  // Safety: the history admits a legal sequential witness.
  EXPECT_TRUE(run.lin.linearizable)
      << "non-linearizable fuzz history; stuck op index "
      << (run.lin.stuck_operation
              ? static_cast<long>(*run.lin.stuck_operation)
              : -1);
}

INSTANTIATE_TEST_SUITE_P(LinFuzz, LinFuzz,
                         ::testing::Range<std::uint64_t>(0, 32));

TEST(LinFuzzHarness, SameScenarioIsBitIdentical) {
  // The harness itself must be a pure function of the scenario, or a failing
  // fuzz seed would not reproduce. Exercise the most stateful combination:
  // chaos + leases + repartition churn.
  LinScenario s = scenario_for(3);
  s.mode = core::ExecutionMode::kDynaStar;
  s.read_leases = true;
  s.chaos = true;
  s.repartition_mid_run = true;
  const auto a = testutil::run_lin_scenario(s);
  const auto b = testutil::run_lin_scenario(s);
  EXPECT_EQ(a.fingerprint, b.fingerprint)
      << "lin harness run is not a pure function of its scenario";
}

TEST(LinFuzzHarness, LeasesActuallyEngageAcrossTheSweep) {
  // Guard against the sweep silently fuzzing nothing: at least one derived
  // scenario must execute commands off validated leases.
  double lease_reads = 0;
  for (std::uint64_t seed = 0; seed < 32 && lease_reads == 0; ++seed) {
    const LinScenario s = scenario_for(seed);
    if (!s.read_leases || s.mode == core::ExecutionMode::kSSMR) continue;
    lease_reads += testutil::run_lin_scenario(s).lease_reads;
  }
  EXPECT_GT(lease_reads, 0) << "no fuzz scenario ever took the lease path";
}

}  // namespace
}  // namespace dynastar
