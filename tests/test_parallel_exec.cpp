// Deterministic parallel command execution: conflict-graph construction,
// wave/lane scheduling, serial-equivalence of both backends (simulated
// lanes and the real std::thread pool), and the full-stack properties the
// feature must preserve — bit-determinism and linearizability with lanes
// enabled. The thread-backend tests here are also the TSan CI target.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/linearizability.h"
#include "common/metric_names.h"
#include "common/rng.h"
#include "core/parallel_exec.h"
#include "core/scenario.h"
#include "core/system.h"
#include "sim/message.h"
#include "tests/test_util.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

using core::ExecIntent;
using core::VertexId;
using testutil::RecordingKvDriver;

ExecIntent reads(std::initializer_list<std::uint64_t> vs) {
  ExecIntent intent;
  for (auto v : vs) intent.reads.emplace_back(v);
  return intent;
}

ExecIntent writes(std::initializer_list<std::uint64_t> vs) {
  ExecIntent intent;
  for (auto v : vs) intent.writes.emplace_back(v);
  return intent;
}

core::CommandPtr make_cmd(std::uint64_t id,
                          std::vector<std::uint64_t> keys, bool write,
                          std::uint64_t value) {
  std::vector<ObjectId> objects;
  std::vector<VertexId> vertices;
  for (auto k : keys) {
    objects.emplace_back(k);
    vertices.emplace_back(k);
  }
  auto payload = sim::make_message<workloads::KvOp>(
      write ? workloads::KvOp::Kind::kPut : workloads::KvOp::Kind::kGet,
      value);
  return sim::make_message<core::Command>(
      id, ProcessId{900}, core::CommandType::kAccess, std::move(objects),
      std::move(vertices), std::move(payload), /*read_only_hint=*/!write);
}

// ---------------------------------------------------------------------------
// Conflict graph edge cases.

TEST(ParallelExec, IntentDedupsAndSortsDuplicateVertices) {
  const auto cmd = make_cmd(1, {5, 5, 3, 5}, /*write=*/true, 7);
  const auto intent = core::intent_for(*cmd);
  ASSERT_EQ(intent.writes.size(), 2u);
  EXPECT_EQ(intent.writes[0], VertexId{3});
  EXPECT_EQ(intent.writes[1], VertexId{5});
  EXPECT_TRUE(intent.reads.empty());
}

TEST(ParallelExec, DuplicateVerticesProduceOneEdge) {
  // Duplicated declarations must not inflate the edge count.
  const auto graph =
      core::build_conflict_graph({writes({5, 5, 5}), writes({5, 5})});
  EXPECT_EQ(graph.commands, 2u);
  EXPECT_EQ(graph.edges, 1u);
  ASSERT_EQ(graph.preds[1].size(), 1u);
  EXPECT_EQ(graph.preds[1][0], 0u);
}

TEST(ParallelExec, ReadReadDoesNotConflict) {
  const auto graph = core::build_conflict_graph({reads({7}), reads({7})});
  EXPECT_EQ(graph.edges, 0u);
  const auto schedule = core::build_schedule(graph, 4);
  EXPECT_EQ(schedule.waves, 1u);
  EXPECT_EQ(schedule.wave_of[0], 0u);
  EXPECT_EQ(schedule.wave_of[1], 0u);
  // Same wave, distinct lanes (slot-order round-robin).
  EXPECT_EQ(schedule.lane_of[0], 0u);
  EXPECT_EQ(schedule.lane_of[1], 1u);
}

TEST(ParallelExec, WriteReadOrdersAcrossWaves) {
  // write(1); read(1): the read must wave-order after the write...
  auto graph = core::build_conflict_graph({writes({1}), reads({1})});
  EXPECT_EQ(graph.edges, 1u);
  auto schedule = core::build_schedule(graph, 4);
  EXPECT_EQ(schedule.wave_of[0], 0u);
  EXPECT_EQ(schedule.wave_of[1], 1u);
  // ...and symmetrically read(1); write(1) keeps slot order.
  graph = core::build_conflict_graph({reads({1}), writes({1})});
  EXPECT_EQ(graph.edges, 1u);
  schedule = core::build_schedule(graph, 4);
  EXPECT_EQ(schedule.wave_of[0], 0u);
  EXPECT_EQ(schedule.wave_of[1], 1u);
}

TEST(ParallelExec, EmptyBatchIsANoOp) {
  const auto graph = core::build_conflict_graph({});
  EXPECT_EQ(graph.commands, 0u);
  EXPECT_EQ(graph.edges, 0u);
  EXPECT_EQ(core::build_schedule(graph, 4).waves, 0u);

  core::ParallelExecutor exec(4, /*real_threads=*/false);
  const auto stats =
      exec.run({}, [](std::size_t) -> SimTime { return microseconds(1); });
  EXPECT_EQ(stats.commands, 0u);
  EXPECT_EQ(stats.makespan, 0);
}

TEST(ParallelExec, ScheduleIsDeterministic) {
  Rng rng(42);
  std::vector<ExecIntent> intents;
  for (int i = 0; i < 64; ++i) {
    ExecIntent intent;
    const bool ro = rng.chance(0.4);
    auto& side = ro ? intent.reads : intent.writes;
    const std::uint64_t span = 1 + rng.uniform(0, 2);
    for (std::uint64_t j = 0; j < span; ++j)
      side.emplace_back(rng.uniform(0, 15));
    intents.push_back(std::move(intent));
  }
  const auto a = core::build_schedule(core::build_conflict_graph(intents), 4);
  const auto b = core::build_schedule(core::build_conflict_graph(intents), 4);
  EXPECT_EQ(a.waves, b.waves);
  EXPECT_EQ(a.wave_of, b.wave_of);
  EXPECT_EQ(a.lane_of, b.lane_of);
}

TEST(ParallelExec, ThreadPoolRunsEveryItemExactlyOnce) {
  std::vector<ExecIntent> intents;
  for (std::uint64_t i = 0; i < 32; ++i) intents.push_back(writes({i}));
  core::ParallelExecutor exec(4, /*real_threads=*/true);
  std::vector<std::atomic<int>> hits(32);
  const auto stats = exec.run(intents, [&](std::size_t i) -> SimTime {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return microseconds(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(stats.commands, 32u);
  EXPECT_EQ(stats.conflict_edges, 0u);
  EXPECT_EQ(stats.waves, 1u);
  // 32 independent 1us items on 4 lanes: makespan is one lane's share.
  EXPECT_EQ(stats.makespan, microseconds(8));
  EXPECT_DOUBLE_EQ(stats.lane_occupancy, 1.0);
}

// ---------------------------------------------------------------------------
// Serial-equivalence replay: on every determinism seed, an N-lane schedule
// (both backends) must produce bit-identical state and replies to serial
// slot-order execution.

constexpr std::uint64_t kReplayKeys = 32;

std::vector<core::CommandPtr> random_batch(std::uint64_t seed,
                                           std::size_t count) {
  Rng rng(seed);
  std::vector<core::CommandPtr> cmds;
  for (std::size_t i = 0; i < count; ++i) {
    const bool write = rng.chance(0.5);
    const std::uint64_t span = 1 + rng.uniform(0, 2);
    std::vector<std::uint64_t> keys;
    while (keys.size() < span) {
      const std::uint64_t key = rng.uniform(0, kReplayKeys - 1);
      if (std::find(keys.begin(), keys.end(), key) == keys.end())
        keys.push_back(key);
    }
    cmds.push_back(make_cmd(i, keys, write, rng.uniform(1, 1u << 30)));
  }
  return cmds;
}

core::ObjectStore preloaded_store() {
  core::ObjectStore store;
  for (std::uint64_t k = 0; k < kReplayKeys; ++k)
    store.put(ObjectId{k}, VertexId{k},
              std::make_shared<workloads::KvObject>(1000 + k));
  return store;
}

std::vector<std::vector<std::optional<std::uint64_t>>> run_batch(
    const std::vector<core::CommandPtr>& cmds, core::ObjectStore& store,
    std::uint32_t lanes, bool real_threads) {
  workloads::KvApp app;
  std::vector<ExecIntent> intents;
  intents.reserve(cmds.size());
  for (const auto& cmd : cmds) intents.push_back(core::intent_for(*cmd));

  std::vector<core::ExecResult> results(cmds.size());
  core::ParallelExecutor exec(lanes, real_threads);
  std::shared_mutex guard;
  if (real_threads) store.set_concurrency_guard(&guard);
  exec.run(intents, [&](std::size_t i) -> SimTime {
    results[i] = app.execute(*cmds[i], store);
    return results[i].cpu_cost;
  });
  if (real_threads) store.set_concurrency_guard(nullptr);

  std::vector<std::vector<std::optional<std::uint64_t>>> observed;
  for (const auto& r : results) {
    const auto* reply = dynamic_cast<const workloads::KvReply*>(r.reply.get());
    observed.push_back(reply ? reply->values
                             : std::vector<std::optional<std::uint64_t>>{});
  }
  return observed;
}

std::vector<std::uint64_t> final_values(core::ObjectStore& store) {
  std::vector<std::uint64_t> values;
  for (std::uint64_t k = 0; k < kReplayKeys; ++k) {
    auto* obj = dynamic_cast<workloads::KvObject*>(store.find(ObjectId{k}));
    values.push_back(obj ? obj->value : UINT64_MAX);
  }
  return values;
}

TEST(ParallelExec, LaneScheduleReplaysBitIdenticalToSerial) {
  for (const std::uint64_t seed : {42ull, 1ull, 2ull, 9ull}) {
    const auto cmds = random_batch(seed, 300);
    auto serial_store = preloaded_store();
    auto sim_store = preloaded_store();
    auto thread_store = preloaded_store();

    const auto serial = run_batch(cmds, serial_store, 1, false);
    const auto sim4 = run_batch(cmds, sim_store, 4, false);
    const auto threads4 = run_batch(cmds, thread_store, 4, true);

    EXPECT_EQ(serial, sim4) << "sim backend diverged, seed " << seed;
    EXPECT_EQ(serial, threads4) << "thread backend diverged, seed " << seed;
    EXPECT_EQ(final_values(serial_store), final_values(sim_store))
        << "sim state diverged, seed " << seed;
    EXPECT_EQ(final_values(serial_store), final_values(thread_store))
        << "thread state diverged, seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Full stack with lanes enabled.

struct Fingerprint {
  double completed;
  double mpart;
  double exchanged;
  std::uint64_t events;

  bool operator==(const Fingerprint& other) const {
    return completed == other.completed && mpart == other.mpart &&
           exchanged == other.exchanged && events == other.events;
  }
};

Fingerprint fingerprint_of(core::System& system) {
  return Fingerprint{system.metrics().series(metric::kCompleted).total(),
                     system.metrics().series(metric::kMultiPartition).total(),
                     system.metrics().series(metric::kObjectsExchanged).total(),
                     system.world().sim().executed_events()};
}

std::unique_ptr<core::System> build_kv_system(std::uint64_t seed,
                                              std::uint32_t lanes,
                                              bool real_threads) {
  return core::ScenarioBuilder()
      .partitions(3)
      .seed(seed)
      .exec_lanes(lanes, real_threads)
      .tune([](core::SystemConfig& c) {
        c.repartition_hint_threshold = UINT64_MAX;
      })
      .app(workloads::kv_app_factory())
      .preload_kv(kReplayKeys, workloads::KvObject(0))
      .clients(6,
               [](std::size_t) {
                 return std::make_unique<workloads::RandomKvDriver>(
                     kReplayKeys, 0.5, 0.4);
               })
      .build();
}

TEST(ParallelExec, FullStackDeterministicWithLanes) {
  auto run_once = [] {
    auto system = build_kv_system(42, 4, /*real_threads=*/false);
    system->run_until(seconds(3));
    // Batches must actually form — otherwise this test is vacuous.
    EXPECT_GT(system->metrics().counter(metric::kExecBatches), 0.0);
    return fingerprint_of(*system);
  };
  EXPECT_TRUE(run_once() == run_once());
}

TEST(ParallelExec, ThreadBackendMatchesSimBackend) {
  // The thread pool changes which OS thread runs a command, never the
  // schedule or the modeled time, so the whole-run fingerprint must match
  // the simulated-lane backend exactly.
  auto run_with = [](bool real_threads) {
    auto system = build_kv_system(7, 4, real_threads);
    system->run_until(seconds(2));
    return fingerprint_of(*system);
  };
  EXPECT_TRUE(run_with(false) == run_with(true));
}

TEST(ParallelExec, LinearizableWithLanes) {
  for (const bool real_threads : {false, true}) {
    core::SystemConfig config;
    config.mode = core::ExecutionMode::kDynaStar;
    config.num_partitions = 3;
    config.seed = real_threads ? 12 : 11;
    config.repartitioning_enabled = true;
    config.repartition_hint_threshold = UINT64_MAX;
    config.exec_lanes = 4;
    config.exec_real_threads = real_threads;
    core::System system(config, workloads::kv_app_factory());
    constexpr std::uint64_t kKeys = 10;
    core::Assignment assignment;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      const PartitionId p{k % 3};
      assignment[VertexId{k}] = p;
      system.preload_object(ObjectId{k}, VertexId{k}, p,
                            workloads::KvObject(1000 + k));
    }
    system.preload_assignment(assignment);

    std::vector<KvOperation> history;
    for (int c = 0; c < 4; ++c) {
      system.add_client(
          std::make_unique<RecordingKvDriver>(kKeys, 60, &history));
    }
    system.run_until(seconds(20));

    ASSERT_GT(history.size(), 100u);
    const auto full = testutil::with_initial_puts(history, kKeys, 1000);
    const auto result = check_kv_linearizable(full);
    EXPECT_TRUE(result.linearizable)
        << "non-linearizable history with lanes; real_threads="
        << real_threads;
  }
}

}  // namespace
}  // namespace dynastar
