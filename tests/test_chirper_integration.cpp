// Chirper over the full stack: posts fan out to followers across
// partitions; repartitioning reduces the multi-partition rate.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workloads/chirper.h"
#include "workloads/social_graph.h"

namespace dynastar {
namespace {

namespace chirper = workloads::chirper;

core::SystemConfig chirper_config(core::ExecutionMode mode,
                                  std::uint32_t partitions) {
  core::SystemConfig config;
  config.mode = mode;
  config.num_partitions = partitions;
  config.repartitioning_enabled = mode == core::ExecutionMode::kDynaStar;
  config.repartition_hint_threshold = 1'000'000'000;
  return config;
}

TEST(ChirperIntegration, PostReachesFollowerTimelines) {
  auto graph = workloads::generate_social_graph(100, 3, 5);
  core::System system(chirper_config(core::ExecutionMode::kDynaStar, 2),
                      chirper::chirper_app_factory());
  chirper::setup(system, graph, chirper::Placement::kRandom);

  auto directory = chirper::make_directory(graph);
  auto zipf = std::make_shared<ZipfGenerator>(100, 0.95);
  chirper::WorkloadMix mix;
  mix.timeline_fraction = 0.5;
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<chirper::ChirperDriver>(directory, mix, zipf));
  }
  system.run_until(seconds(10));
  EXPECT_GT(system.metrics().series("completed").total(), 100.0);
  EXPECT_GT(system.metrics().series("mpart").total(), 0.0);
  EXPECT_GT(system.metrics().series("objects_exchanged").total(), 0.0);
}

TEST(ChirperIntegration, OptimizedPlacementCutsMultiPartitionRate) {
  auto graph = workloads::generate_social_graph(400, 4, 5);
  auto zipf = std::make_shared<ZipfGenerator>(400, 0.95);
  chirper::WorkloadMix mix;  // 85/15

  double mpart_rate[2];
  int idx = 0;
  for (auto placement :
       {chirper::Placement::kRandom, chirper::Placement::kOptimized}) {
    core::System system(chirper_config(core::ExecutionMode::kSSMR, 4),
                        chirper::chirper_app_factory());
    chirper::setup(system, graph, placement);
    auto directory = chirper::make_directory(graph);
    for (int c = 0; c < 6; ++c) {
      system.add_client(
          std::make_unique<chirper::ChirperDriver>(directory, mix, zipf));
    }
    system.run_until(seconds(10));
    const double executed = system.metrics().series("executed").total();
    const double mpart = system.metrics().series("mpart").total();
    mpart_rate[idx++] = executed > 0 ? mpart / executed : 1.0;
  }
  EXPECT_LT(mpart_rate[1], mpart_rate[0]);
}

TEST(ChirperIntegration, CelebrityScenarioRuns) {
  auto graph = workloads::generate_social_graph(200, 3, 5);
  auto config = chirper_config(core::ExecutionMode::kDynaStar, 2);
  config.repartition_hint_threshold = 5'000;
  core::System system(config, chirper::chirper_app_factory());
  chirper::setup(system, graph, chirper::Placement::kRandom);

  auto directory = chirper::make_directory(graph);
  auto zipf = std::make_shared<ZipfGenerator>(200, 0.95);
  chirper::WorkloadMix mix;
  mix.celebrity = 200;  // new user beyond the initial graph
  mix.celebrity_start = seconds(5);
  mix.follow_celebrity_prob = 0.05;
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<chirper::ChirperDriver>(directory, mix, zipf));
  }
  system.add_client(std::make_unique<chirper::CelebrityDriver>(
      directory, 200, seconds(5), milliseconds(50)));
  system.run_until(seconds(20));

  EXPECT_GT(system.metrics().series("completed").total(), 100.0);
  // The celebrity must have accumulated followers via follow commands.
  EXPECT_GT(directory->followers[200].size(), 0u);
}

}  // namespace
}  // namespace dynastar
