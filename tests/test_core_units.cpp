// Unit tests for core building blocks that don't need the full stack:
// ObjectStore, target choice, and protocol message invariants.
#include <gtest/gtest.h>

#include "core/object.h"
#include "core/protocol.h"
#include "core/server.h"
#include "workloads/kv.h"

namespace dynastar::core {
namespace {

using workloads::KvObject;

TEST(ObjectStore, PutFindTake) {
  ObjectStore store;
  store.put(ObjectId{1}, VertexId{10}, std::make_shared<KvObject>(5));
  ASSERT_TRUE(store.contains(ObjectId{1}));
  auto* obj = dynamic_cast<KvObject*>(store.find(ObjectId{1}));
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->value, 5u);
  EXPECT_EQ(store.vertex_of(ObjectId{1}), VertexId{10});

  auto taken = store.take(ObjectId{1});
  EXPECT_NE(taken, nullptr);
  EXPECT_FALSE(store.contains(ObjectId{1}));
  EXPECT_EQ(store.take(ObjectId{1}), nullptr);
}

TEST(ObjectStore, VertexIndexTracksMembership) {
  ObjectStore store;
  store.put(ObjectId{1}, VertexId{7}, std::make_shared<KvObject>(1));
  store.put(ObjectId{2}, VertexId{7}, std::make_shared<KvObject>(2));
  store.put(ObjectId{3}, VertexId{8}, std::make_shared<KvObject>(3));
  auto v7 = store.objects_of_vertex(VertexId{7});
  EXPECT_EQ(v7.size(), 2u);
  store.take(ObjectId{1});
  EXPECT_EQ(store.objects_of_vertex(VertexId{7}).size(), 1u);
  EXPECT_TRUE(store.objects_of_vertex(VertexId{99}).empty());
}

TEST(ObjectStore, PutRehomesVertex) {
  ObjectStore store;
  store.put(ObjectId{1}, VertexId{7}, std::make_shared<KvObject>(1));
  store.put(ObjectId{1}, VertexId{8}, std::make_shared<KvObject>(2));
  EXPECT_TRUE(store.objects_of_vertex(VertexId{7}).empty());
  EXPECT_EQ(store.objects_of_vertex(VertexId{8}).size(), 1u);
  EXPECT_EQ(store.vertex_of(ObjectId{1}), VertexId{8});
  EXPECT_EQ(store.size(), 1u);
}

TEST(ChooseTarget, MostObjectsWins) {
  std::vector<ObjectId> objects{ObjectId{1}, ObjectId{2}, ObjectId{3}};
  std::vector<PartitionId> owners{PartitionId{0}, PartitionId{1},
                                  PartitionId{1}};
  EXPECT_EQ(choose_target(objects, owners), PartitionId{1});
}

TEST(ChooseTarget, TieBreaksToLowestPartition) {
  std::vector<ObjectId> objects{ObjectId{1}, ObjectId{2}};
  std::vector<PartitionId> owners{PartitionId{3}, PartitionId{1}};
  EXPECT_EQ(choose_target(objects, owners), PartitionId{1});
}

TEST(ChooseTarget, SingleOwner) {
  std::vector<ObjectId> objects{ObjectId{1}};
  std::vector<PartitionId> owners{PartitionId{2}};
  EXPECT_EQ(choose_target(objects, owners), PartitionId{2});
}

TEST(GroupMapping, OracleIsGroupZero) {
  EXPECT_EQ(kOracleGroup, GroupId{0});
  EXPECT_EQ(group_of(PartitionId{0}), GroupId{1});
  EXPECT_EQ(partition_of(GroupId{3}), PartitionId{2});
}

TEST(Protocol, EnvelopeBytesCountPayloads) {
  std::vector<ObjectEnvelope> envelopes;
  envelopes.push_back({ObjectId{1}, VertexId{1},
                       std::make_shared<const KvObject>(1)});
  envelopes.push_back({ObjectId{2}, VertexId{2}, nullptr});  // absent object
  const auto bytes = envelopes_bytes(envelopes);
  EXPECT_GE(bytes, 24u * 2);
  VarTransfer transfer(1, 1, PartitionId{0}, envelopes);
  EXPECT_GE(transfer.size_bytes(), bytes);
}

TEST(Protocol, CommandSizeScalesWithOmega) {
  auto payload = sim::make_message<workloads::KvOp>(
      workloads::KvOp::Kind::kGet, 0);
  Command small(1, ProcessId{0}, CommandType::kAccess, {ObjectId{1}},
                {VertexId{1}}, payload);
  std::vector<ObjectId> many_objects(100, ObjectId{1});
  std::vector<VertexId> many_vertices(100, VertexId{1});
  Command large(2, ProcessId{0}, CommandType::kAccess, many_objects,
                many_vertices, payload);
  EXPECT_GT(large.size_bytes(), small.size_bytes());
}

TEST(Ids, StrongIdsHashAndCompare) {
  std::unordered_map<ObjectId, int> map;
  map[ObjectId{1}] = 1;
  map[ObjectId{2}] = 2;
  EXPECT_EQ(map.at(ObjectId{1}), 1);
  EXPECT_TRUE(ObjectId{1} < ObjectId{2});
  EXPECT_TRUE(ObjectId{2} != ObjectId{1});
  EXPECT_EQ(kNoPartition, PartitionId{UINT64_MAX});
}

}  // namespace
}  // namespace dynastar::core
