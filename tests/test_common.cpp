// Unit tests for common utilities: rng/zipf/nurand, histogram, metrics,
// and the linearizability checker itself.
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/linearizability.h"
#include "common/metrics.h"
#include "common/rng.h"

namespace dynastar {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform(0, 1'000'000), b.uniform(0, 1'000'000));
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(7);
  Rng a = parent.fork();
  Rng b = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0, 1'000'000) == b.uniform(0, 1'000'000)) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformBoundsInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(2, 4);
    EXPECT_GE(v, 2u);
    EXPECT_LE(v, 4u);
    saw_lo |= v == 2;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Zipf, SkewsTowardLowRanks) {
  ZipfGenerator zipf(1000, 0.95);
  Rng rng(11);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100'000; ++i) counts[zipf.next(rng)]++;
  // Rank 0 dominates; top 10 ranks get a large share.
  EXPECT_GT(counts[0], counts[100] * 5);
  int top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += counts[i];
  EXPECT_GT(top10, 100'000 / 4);
}

TEST(Zipf, CoversTheTail) {
  ZipfGenerator zipf(100, 0.95);
  Rng rng(13);
  std::vector<bool> seen(100, false);
  for (int i = 0; i < 200'000; ++i) seen[zipf.next(rng)] = true;
  int covered = 0;
  for (bool s : seen) covered += s;
  EXPECT_GT(covered, 90);
}

TEST(NuRand, StaysInRange) {
  NuRand nurand(255, 1, 3000, 123);
  Rng rng(17);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = nurand.next(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 3000u);
  }
}

TEST(Histogram, BasicStats) {
  Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.record(milliseconds(i));
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_NEAR(to_millis(histogram.percentile(0.5)), 50.0, 3.0);
  EXPECT_NEAR(to_millis(histogram.percentile(0.95)), 95.0, 4.0);
  EXPECT_NEAR(to_millis(static_cast<SimTime>(histogram.mean())), 50.5, 2.0);
  EXPECT_EQ(histogram.min(), milliseconds(1));
}

TEST(Histogram, PercentileOnEmpty) {
  Histogram histogram;
  EXPECT_EQ(histogram.percentile(0.99), 0);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(Histogram, MergeAndCdf) {
  Histogram a, b;
  for (int i = 0; i < 50; ++i) a.record(microseconds(10));
  for (int i = 0; i < 50; ++i) b.record(milliseconds(10));
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  auto cdf = a.cdf();
  ASSERT_GE(cdf.size(), 2u);
  EXPECT_NEAR(cdf.front().fraction, 0.5, 0.01);
  EXPECT_NEAR(cdf.back().fraction, 1.0, 1e-9);
  // Monotone.
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LE(cdf[i - 1].fraction, cdf[i].fraction);
  }
}

TEST(Histogram, LargeValuesKeepRelativeResolution) {
  Histogram histogram;
  histogram.record(seconds(100));
  const double err =
      std::abs(to_seconds(histogram.percentile(1.0)) - 100.0) / 100.0;
  EXPECT_LT(err, 0.05);
}

TEST(TimeSeries, BucketsByTime) {
  TimeSeries series(seconds(1));
  series.add(milliseconds(500));
  series.add(milliseconds(999));
  series.add(seconds(2) + milliseconds(1));
  EXPECT_EQ(series.at(0), 2.0);
  EXPECT_EQ(series.at(1), 0.0);
  EXPECT_EQ(series.at(2), 1.0);
  EXPECT_EQ(series.at(99), 0.0);  // untouched buckets read as zero
  EXPECT_EQ(series.total(), 3.0);
}

TEST(MetricsRegistry, NamedSeriesAndCounters) {
  MetricsRegistry metrics;
  metrics.series("a").add(0, 2.0);
  metrics.add_counter("c", 3.0);
  EXPECT_EQ(metrics.series("a").total(), 2.0);
  EXPECT_EQ(metrics.counter("c"), 3.0);
  EXPECT_EQ(metrics.counter("missing"), 0.0);
  EXPECT_EQ(metrics.find_series("missing"), nullptr);
}

// --- Linearizability checker ---

KvOperation put1(std::uint64_t key, std::uint64_t value, std::int64_t invoke,
                 std::int64_t response,
                 std::optional<std::uint64_t> observed = std::nullopt) {
  KvOperation op;
  op.is_put = true;
  op.keys = {key};
  op.value = value;
  op.observed = {observed};
  op.invoke_time = invoke;
  op.response_time = response;
  return op;
}

KvOperation get1(std::uint64_t key, std::optional<std::uint64_t> observed,
                 std::int64_t invoke, std::int64_t response) {
  KvOperation op;
  op.keys = {key};
  op.observed = {observed};
  op.invoke_time = invoke;
  op.response_time = response;
  return op;
}

TEST(Linearizability, AcceptsSequentialHistory) {
  std::vector<KvOperation> history{
      put1(1, 10, 0, 1),
      get1(1, 10, 2, 3),
      put1(1, 20, 4, 5, 10),
      get1(1, 20, 6, 7),
  };
  EXPECT_TRUE(check_kv_linearizable(history).linearizable);
}

TEST(Linearizability, RejectsStaleRead) {
  std::vector<KvOperation> history{
      put1(1, 10, 0, 1),
      get1(1, std::nullopt, 2, 3),  // reads "absent" after a completed put
  };
  auto result = check_kv_linearizable(history);
  EXPECT_FALSE(result.linearizable);
  EXPECT_TRUE(result.stuck_operation.has_value());
}

TEST(Linearizability, AcceptsConcurrentOverlap) {
  // Two overlapping puts (observations unconstrained); a later get may see
  // either write.
  KvOperation put_a;
  put_a.is_put = true;
  put_a.keys = {1};
  put_a.value = 10;
  put_a.invoke_time = 0;
  put_a.response_time = 10;
  KvOperation put_b = put_a;
  put_b.value = 20;
  put_b.invoke_time = 5;
  put_b.response_time = 15;
  std::vector<KvOperation> history{put_a, put_b, get1(1, 10, 20, 21)};
  EXPECT_TRUE(check_kv_linearizable(history).linearizable);
  history[2] = get1(1, 20, 20, 21);
  EXPECT_TRUE(check_kv_linearizable(history).linearizable);
  history[2] = get1(1, 99, 20, 21);  // neither write produced 99
  EXPECT_FALSE(check_kv_linearizable(history).linearizable);
}

TEST(Linearizability, RejectsCycleAcrossKeys) {
  // Multi-key op observes x's new value but y's old one while a concurrent
  // op wrote both -> impossible atomically if writer completed first.
  KvOperation writer;
  writer.is_put = true;
  writer.keys = {1, 2};
  writer.value = 9;
  writer.observed = {std::nullopt, std::nullopt};
  writer.invoke_time = 0;
  writer.response_time = 1;

  KvOperation reader;
  reader.keys = {1, 2};
  reader.observed = {std::optional<std::uint64_t>(9), std::nullopt};
  reader.invoke_time = 2;
  reader.response_time = 3;

  EXPECT_FALSE(check_kv_linearizable({writer, reader}).linearizable);
}

TEST(Linearizability, MultiKeyAtomicWriteAccepted) {
  KvOperation writer;
  writer.is_put = true;
  writer.keys = {1, 2};
  writer.value = 9;
  writer.observed = {std::nullopt, std::nullopt};
  writer.invoke_time = 0;
  writer.response_time = 1;

  KvOperation reader;
  reader.keys = {1, 2};
  reader.observed = {std::optional<std::uint64_t>(9),
                     std::optional<std::uint64_t>(9)};
  reader.invoke_time = 2;
  reader.response_time = 3;

  EXPECT_TRUE(check_kv_linearizable({writer, reader}).linearizable);
}

TEST(Linearizability, RealTimeOrderRespected) {
  // get returns old value AFTER a non-overlapping put completed: invalid.
  std::vector<KvOperation> history{
      put1(1, 1, 0, 1),
      put1(1, 2, 2, 3, 1),
      get1(1, 1, 10, 11),
  };
  EXPECT_FALSE(check_kv_linearizable(history).linearizable);
}

}  // namespace
}  // namespace dynastar
