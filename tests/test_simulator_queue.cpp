// Cross-checks the two-tier calendar event queue against a reference single
// binary heap (the kernel's previous event storage). Bit-determinism of the
// whole simulator rests on the queue reproducing the exact (time, seq) total
// order, so these tests drive both structures with identical randomized
// schedules and demand identical pop sequences — including far-future spill
// traffic and wheel wrap-around.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <random>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace dynastar::sim {
namespace {

using Key = std::pair<SimTime, std::uint64_t>;

/// The pre-calendar-queue event storage: one binary min-heap on (time, seq).
class ReferenceHeap {
 public:
  void push(SimTime time, std::uint64_t seq) { heap_.push(Key{time, seq}); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  Key pop() {
    Key top = heap_.top();
    heap_.pop();
    return top;
  }

 private:
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> heap_;
};

/// Drives EventQueue and ReferenceHeap with the same (time, seq) schedule
/// and checks the pop orders match element for element. Interleaves pushes
/// and pops the way the simulator does: pops advance a simulated clock, and
/// later pushes are clamped to it.
class QueueCrossCheck {
 public:
  void push(SimTime time) {
    time = std::max(time, now_);
    const std::uint64_t seq = next_seq_++;
    queue_.push(time, seq, [] {});
    reference_.push(time, seq);
  }

  /// Pops one event from both structures, asserts they agree, and advances
  /// the clock. Returns the popped key.
  Key pop_and_check() {
    EXPECT_FALSE(queue_.empty());
    EXPECT_FALSE(reference_.empty());
    Event event = queue_.pop();
    const Key expected = reference_.pop();
    EXPECT_EQ(event.time(), expected.first);
    EXPECT_EQ(event.seq(), expected.second);
    now_ = event.time();
    return expected;
  }

  void drain_and_check() {
    while (!reference_.empty()) pop_and_check();
    EXPECT_TRUE(queue_.empty());
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  EventQueue queue_;
  ReferenceHeap reference_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

constexpr SimTime kHorizon =
    static_cast<SimTime>(EventQueue::kNumBuckets) << EventQueue::kGranularityBits;

TEST(EventQueue, RandomizedScheduleMatchesReferenceHeap) {
  // 100k+ events with a latency spread shaped like the simulator's: mostly
  // near-future (link/service delays), a slice of mid-range timers, and a
  // tail of far-future events that exercises the spill heap.
  std::mt19937_64 rng(0xD15EA5E);
  QueueCrossCheck check;
  std::uniform_int_distribution<SimTime> near(0, microseconds(500));
  std::uniform_int_distribution<SimTime> mid(0, milliseconds(50));
  std::uniform_int_distribution<SimTime> far(0, milliseconds(400));
  std::uniform_int_distribution<int> shape(0, 99);
  std::uniform_int_distribution<int> burst(1, 8);

  int pushed = 0;
  const int kTotal = 120000;
  while (pushed < kTotal || check.pending() > 0) {
    if (pushed < kTotal) {
      const int n = burst(rng);
      for (int i = 0; i < n && pushed < kTotal; ++i, ++pushed) {
        const int s = shape(rng);
        SimTime delay;
        if (s < 80) {
          delay = near(rng);
        } else if (s < 95) {
          delay = mid(rng);
        } else {
          delay = far(rng);  // beyond the wheel horizon: spill path
        }
        check.push(check.now() + delay);
      }
    }
    // Pop a few so pushes interleave with cursor advances.
    for (int i = 0; i < 3 && check.pending() > 0; ++i) check.pop_and_check();
  }
  check.drain_and_check();
}

TEST(EventQueue, SameTimestampPopsInSeqOrderWithinAndAcrossTiers) {
  QueueCrossCheck check;
  // Duplicate timestamps on both sides of the horizon; seq must break ties.
  for (int round = 0; round < 50; ++round) {
    check.push(milliseconds(5));            // wheel
    check.push(milliseconds(5));            // wheel, same bucket
    check.push(milliseconds(400));          // spill (beyond horizon at t=0)
    check.push(milliseconds(400));          // spill, same timestamp
  }
  check.drain_and_check();
}

TEST(EventQueue, FarFutureSpillMigratesInOrder) {
  QueueCrossCheck check;
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<SimTime> far(kHorizon, 50 * kHorizon);
  // Everything starts in the spill heap; popping forces wheel-empty cursor
  // jumps and staged migration.
  for (int i = 0; i < 20000; ++i) check.push(far(rng));
  check.drain_and_check();
}

TEST(EventQueue, WheelWrapAroundKeepsOrder) {
  // March the clock across many multiples of the wheel span so bucket ring
  // indices wrap repeatedly while events are in flight.
  QueueCrossCheck check;
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<SimTime> jitter(0, kHorizon / 2);
  for (int step = 0; step < 200; ++step) {
    // Advance roughly 3/4 of the wheel span per step.
    const SimTime base = static_cast<SimTime>(step) * (3 * kHorizon / 4);
    for (int i = 0; i < 50; ++i) check.push(base + jitter(rng));
    while (check.pending() > 30) check.pop_and_check();
  }
  check.drain_and_check();
}

TEST(EventQueue, PushAtCursorTickDuringDrain) {
  // Pushing at exactly the popped event's time (the simulator's
  // schedule-at-now case) lands in the bucket being drained and must pop
  // after existing same-time events (higher seq) but before later times.
  QueueCrossCheck check;
  for (int i = 0; i < 10; ++i) check.push(milliseconds(1));
  for (int i = 0; i < 10; ++i) check.push(milliseconds(2));
  for (int i = 0; i < 15; ++i) {
    const Key popped = check.pop_and_check();
    check.push(popped.first);  // clamped push at the current drain time
  }
  check.drain_and_check();
}

}  // namespace
}  // namespace dynastar::sim
