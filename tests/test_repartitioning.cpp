// Repartitioning machinery: plan application, eager vs on-demand object
// relocation, epoch-held commands, oracle placement and rejection logic.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

using core::CommandSpec;
using core::CommandType;
using core::VertexId;
using workloads::KvOp;
using workloads::ScriptedKvDriver;

CommandSpec op(std::initializer_list<std::uint64_t> keys, KvOp::Kind kind,
               std::uint64_t value) {
  CommandSpec spec;
  for (auto k : keys) spec.objects.emplace_back(ObjectId{k}, VertexId{k});
  spec.payload = sim::make_message<KvOp>(kind, value);
  return spec;
}

core::SystemConfig base_config(bool eager) {
  core::SystemConfig config;
  config.num_partitions = 2;
  config.repartition_hint_threshold = UINT64_MAX;
  config.eager_plan_transfer = eager;
  return config;
}

void preload(core::System& system, std::uint64_t keys) {
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < keys; ++k) {
    const PartitionId p{k % 2};
    assignment[VertexId{k}] = p;
    system.preload_object(ObjectId{k}, VertexId{k}, p,
                          workloads::KvObject(100 + k));
  }
  system.preload_assignment(assignment);
}

class PlanTransferMode : public ::testing::TestWithParam<bool> {};

TEST_P(PlanTransferMode, DataSurvivesRepartitionAndStaysReadable) {
  const bool eager = GetParam();
  core::System system(base_config(eager), workloads::kv_app_factory());
  preload(system, 8);

  // Drive skewed load so METIS has something to chew on, then force plans.
  for (int c = 0; c < 4; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(8, 0.6, 0.5));
  }
  system.run_until(seconds(2));
  system.oracle(0).request_repartition();
  system.oracle(1).request_repartition();
  system.run_until(seconds(4));
  EXPECT_GE(system.metrics().series("oracle.plans_applied").total(), 1.0);

  // Fresh client reads every key; all values must still be reachable.
  std::vector<ScriptedKvDriver::Record> records;
  std::vector<CommandSpec> script;
  for (std::uint64_t k = 0; k < 8; ++k)
    script.push_back(op({k}, KvOp::Kind::kGet, 0));
  system.add_client(std::make_unique<ScriptedKvDriver>(script, &records));
  system.run_until(seconds(8));

  ASSERT_EQ(records.size(), 8u) << (eager ? "eager" : "on-demand");
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(records[k].status, core::ReplyStatus::kOk);
    ASSERT_EQ(records[k].observed.size(), 1u);
    ASSERT_TRUE(records[k].observed[0].has_value())
        << "key " << k << " lost across repartition";
  }
  // Servers' epochs advanced consistently.
  EXPECT_EQ(system.server(PartitionId{0}).epoch(),
            system.server(PartitionId{1}).epoch());
  EXPECT_GE(system.server(PartitionId{0}).epoch(), 1u);
}

INSTANTIATE_TEST_SUITE_P(EagerAndOnDemand, PlanTransferMode,
                         ::testing::Values(true, false));

TEST(Repartitioning, OnDemandShipsFewerVerticesAtPlanTime) {
  double handoffs[2];
  int idx = 0;
  for (bool eager : {true, false}) {
    core::System system(base_config(eager), workloads::kv_app_factory());
    preload(system, 64);
    // Touch only keys 0..7 (heavily co-accessed); keys 8..63 stay cold.
    // The plan colocates the hot clique, so cold vertices must move for
    // balance — eager ships them immediately, on-demand never does (they
    // are never accessed again).
    for (int c = 0; c < 4; ++c) {
      system.add_client(
          std::make_unique<workloads::RandomKvDriver>(8, 0.6, 0.5));
    }
    system.run_until(seconds(2));
    system.oracle(0).request_repartition();
    system.oracle(1).request_repartition();
    system.run_until(seconds(6));
    handoffs[idx++] = system.metrics().series("plan_handoffs").total();
  }
  EXPECT_GT(handoffs[0], 0.0);          // eager actually relocated state
  EXPECT_LT(handoffs[1], handoffs[0]);  // on-demand deferred the cold tail
}

TEST(Repartitioning, OracleRejectsUnknownVertices) {
  core::System system(base_config(true), workloads::kv_app_factory());
  preload(system, 4);
  std::vector<ScriptedKvDriver::Record> records;
  system.add_client(std::make_unique<ScriptedKvDriver>(
      std::vector<CommandSpec>{op({999}, KvOp::Kind::kGet, 0)}, &records));
  system.run_until(seconds(2));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].status, core::ReplyStatus::kNok);
}

TEST(Repartitioning, CreatePlacementRoundRobins) {
  core::System system(base_config(true), workloads::kv_app_factory());
  preload(system, 2);
  std::vector<ScriptedKvDriver::Record> records;
  std::vector<CommandSpec> script;
  for (std::uint64_t k = 100; k < 108; ++k) {
    CommandSpec create;
    create.type = CommandType::kCreate;
    create.objects.emplace_back(ObjectId{k}, VertexId{k});
    create.payload = sim::make_message<KvOp>(KvOp::Kind::kPut, k);
    script.push_back(create);
  }
  system.add_client(std::make_unique<ScriptedKvDriver>(script, &records));
  system.run_until(seconds(3));
  ASSERT_EQ(records.size(), 8u);
  for (const auto& record : records)
    EXPECT_EQ(record.status, core::ReplyStatus::kOk);
  // Round-robin placement: both partitions received objects.
  std::size_t p0 = system.server(PartitionId{0}).store().size();
  std::size_t p1 = system.server(PartitionId{1}).store().size();
  EXPECT_EQ(p0 + p1, 2u + 8u);
  EXPECT_GE(p0, 4u);
  EXPECT_GE(p1, 4u);
}

TEST(Repartitioning, DuplicateCreateRejected) {
  core::System system(base_config(true), workloads::kv_app_factory());
  preload(system, 2);
  CommandSpec create;
  create.type = CommandType::kCreate;
  create.objects.emplace_back(ObjectId{50}, VertexId{50});
  create.payload = sim::make_message<KvOp>(KvOp::Kind::kPut, 1);
  std::vector<ScriptedKvDriver::Record> records;
  system.add_client(std::make_unique<ScriptedKvDriver>(
      std::vector<CommandSpec>{create, create}, &records));
  system.run_until(seconds(3));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].status, core::ReplyStatus::kOk);
  EXPECT_EQ(records[1].status, core::ReplyStatus::kNok);
}

TEST(Repartitioning, DeleteRemovesVertexEverywhere) {
  core::System system(base_config(true), workloads::kv_app_factory());
  preload(system, 4);
  CommandSpec del;
  del.type = CommandType::kDelete;
  del.objects.emplace_back(ObjectId{1}, VertexId{1});
  del.payload = sim::make_message<KvOp>(KvOp::Kind::kGet, 0);
  std::vector<ScriptedKvDriver::Record> records;
  system.add_client(std::make_unique<ScriptedKvDriver>(
      std::vector<CommandSpec>{del, op({1}, KvOp::Kind::kGet, 0)}, &records));
  system.run_until(seconds(3));
  ASSERT_EQ(records.size(), 2u);
  // After the delete, the oracle no longer knows the vertex.
  EXPECT_EQ(records[1].status, core::ReplyStatus::kNok);
}

}  // namespace
}  // namespace dynastar
