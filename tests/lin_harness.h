// Reusable full-stack linearizability harness: one declarative scenario
// struct drives the complete system (atomic multicast, Paxos, borrow/return
// or read leases, optional repartition churn, optional chaos nemesis), runs
// recording KV clients against it, and checks the observed history for a
// legal sequential witness.
//
// Both the hand-picked regression suites (StackLinearizability, ReadLease)
// and the seeded fuzz sweep (LinFuzz) are thin wrappers over run_lin_scenario:
// anything expressible as a LinScenario gets the same liveness, safety, and
// determinism machinery for free.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/linearizability.h"
#include "core/system.h"
#include "sim/chaos.h"
#include "tests/test_util.h"
#include "workloads/kv.h"

namespace dynastar::testutil {

/// Declarative description of one linearizability run. Every field has a
/// deterministic effect: two runs of the same scenario are bit-identical
/// (asserted by LinFuzz.SameScenarioIsBitIdentical via `fingerprint`).
struct LinScenario {
  core::ExecutionMode mode = core::ExecutionMode::kDynaStar;
  std::uint32_t partitions = 3;
  std::uint64_t system_seed = 1;
  std::uint64_t keys = 10;
  /// Preloaded value for key k is `base_value + k` (nonzero so "absent"
  /// never aliases a legal read).
  std::uint64_t base_value = 1000;
  int clients = 4;
  int ops_per_client = 40;
  /// Workload mix fed to RecordingKvDriver.
  double multi_fraction = 0.4;
  double write_fraction = 0.5;
  /// Epoch-validated read leases (effective in DynaStar / DS-SMR only).
  bool read_leases = false;
  /// Intra-partition parallel executor lanes (1 = serial apply).
  std::uint32_t exec_lanes = 1;
  /// DynaStar only: issue repartition requests mid-run so plans (and with
  /// leases, wholesale lease invalidation) land while commands are in flight.
  bool repartition_mid_run = false;
  /// Arms the seeded nemesis (crashes, link cuts, drop bursts, latency
  /// spikes) on top of a lossy, duplicating network.
  bool chaos = false;
  std::uint64_t chaos_seed = 99;
  /// With chaos: multi-second outages that outrun the catch-up window, so
  /// recovery requires a snapshot install (pair with a small
  /// checkpoint_interval / catchup_window via `tune`).
  bool long_crashes = false;
  /// Simulated horizon; liveness asserts every scripted op completes by then.
  SimTime run_for = seconds(45);
  /// Escape hatch for scenario-specific config knobs.
  std::function<void(core::SystemConfig&)> tune;
};

/// Everything a test might assert on after a run.
struct LinRun {
  std::vector<KvOperation> history;
  StatusTally tally;
  std::uint64_t expected_ops = 0;
  LinearizabilityResult lin;
  /// Digest of the execution (event count, key series/counters, chaos log,
  /// history hash): equal fingerprints mean bit-identical runs.
  std::string fingerprint;
  std::size_t chaos_events = 0;
  double lease_reads = 0;
  double lease_fallbacks = 0;
  double snapshot_installs = 0;
};

inline std::uint64_t lin_fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t lin_history_hash(const std::vector<KvOperation>& history) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& op : history) {
    h = lin_fnv1a(h, op.is_put ? 1 : 0);
    h = lin_fnv1a(h, op.value);
    for (std::uint64_t k : op.keys) h = lin_fnv1a(h, k);
    for (const auto& o : op.observed) h = lin_fnv1a(h, o ? *o + 1 : 0);
    h = lin_fnv1a(h, static_cast<std::uint64_t>(op.invoke_time));
    h = lin_fnv1a(h, static_cast<std::uint64_t>(op.response_time));
  }
  return h;
}

inline LinRun run_lin_scenario(const LinScenario& s) {
  core::SystemConfig config;
  config.mode = s.mode;
  config.num_partitions = s.partitions;
  config.seed = s.system_seed;
  config.repartitioning_enabled =
      s.repartition_mid_run && s.mode == core::ExecutionMode::kDynaStar;
  config.repartition_hint_threshold = UINT64_MAX;
  config.read_leases = s.read_leases;
  config.exec_lanes = s.exec_lanes;
  if (s.chaos) {
    // Liveness under faults needs unbounded retries and a lossy network so
    // the at-most-once machinery is actually exercised.
    config.network.drop_probability = 0.015;
    config.network.duplicate_probability = 0.015;
    config.client_timeout_base = milliseconds(300);
    config.client_timeout_jitter = milliseconds(20);
    config.client_timeout_cap = seconds(2);
    config.client_max_attempts = 0;
  }
  if (s.tune) s.tune(config);

  core::System system(config, workloads::kv_app_factory());
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < s.keys; ++k) {
    const PartitionId p{k % config.num_partitions};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p,
                          workloads::KvObject(s.base_value + k));
  }
  system.preload_assignment(assignment);

  LinRun run;
  run.expected_ops =
      static_cast<std::uint64_t>(s.clients) * s.ops_per_client;
  for (int c = 0; c < s.clients; ++c) {
    system.add_client(std::make_unique<RecordingKvDriver>(
        s.keys, s.ops_per_client, &run.history, &run.tally, s.multi_fraction,
        s.write_fraction));
  }

  sim::ChaosInjector* injector = nullptr;
  sim::ChaosConfig chaos;
  if (s.chaos) {
    chaos.seed = s.chaos_seed;
    chaos.start = seconds(1);
    chaos.horizon = seconds(6);
    chaos.crash_groups.push_back(
        system.topology().group(core::kOracleGroup).replicas);
    std::vector<ProcessId> pool;
    for (std::uint32_t p = 0; p < config.num_partitions; ++p) {
      const auto& replicas =
          system.topology().group(core::group_of(PartitionId{p})).replicas;
      chaos.crash_groups.push_back(replicas);
      pool.insert(pool.end(), replicas.begin(), replicas.end());
    }
    if (s.long_crashes) {
      // Partition-server groups only: snapshot-install assertions are about
      // the *server* recovery path, so don't spend outages on the oracle.
      chaos.crash_groups.erase(chaos.crash_groups.begin());
      chaos.horizon = seconds(8);
      chaos.crash_events = 0;
      chaos.long_crash_events = 3;
      chaos.long_min_downtime = milliseconds(1500);
      chaos.long_max_downtime = milliseconds(2500);
    } else {
      chaos.crash_events = 4;
      chaos.min_downtime = milliseconds(300);
      chaos.max_downtime = milliseconds(800);
      chaos.link_pool = pool;
      chaos.link_cut_events = 2;
      chaos.max_cut = milliseconds(400);
      chaos.drop_burst_events = 2;
      chaos.burst_drop_probability = 0.15;
      chaos.latency_spike_events = 2;
      chaos.spike_latency = milliseconds(1);
      chaos.max_window = milliseconds(300);
    }
  }
  sim::ChaosInjector chaos_injector(system.world(), chaos);
  if (s.chaos) {
    injector = &chaos_injector;
    injector->arm();
  }

  if (s.repartition_mid_run && s.mode == core::ExecutionMode::kDynaStar) {
    system.run_until(milliseconds(300));
    system.oracle(0).request_repartition();
    system.oracle(1).request_repartition();
    system.run_until(milliseconds(900));
    system.oracle(0).request_repartition();
    system.oracle(1).request_repartition();
  }
  system.run_until(s.run_for);

  if (injector != nullptr) run.chaos_events = injector->events_injected();
  run.lease_reads = system.metrics().counter("server.lease_reads");
  run.lease_fallbacks = system.metrics().counter("server.lease_fallbacks");
  run.snapshot_installs = system.metrics().counter("server.snapshot_installs");

  std::ostringstream fp;
  fp << "events=" << system.world().sim().executed_events();
  for (const char* name :
       {"completed", "executed", "client.timeouts", "client.retransmits"}) {
    const auto* series = system.metrics().find_series(name);
    fp << ' ' << name << '=' << (series ? series->total() : 0.0);
  }
  for (const char* name :
       {"server.reply_cache_hits", "oracle.reply_cache_hits",
        "server.lease_grants", "server.lease_reads", "server.lease_fallbacks",
        "server.lease_revokes", "chaos.events"}) {
    fp << ' ' << name << '=' << system.metrics().counter(name);
  }
  fp << " history=" << run.history.size() << '/' << std::hex
     << lin_history_hash(run.history);
  if (injector != nullptr)
    for (const auto& line : injector->log()) fp << '|' << line;
  run.fingerprint = fp.str();

  const auto full = with_initial_puts(run.history, s.keys, s.base_value);
  run.lin = check_kv_linearizable(full);
  return run;
}

}  // namespace dynastar::testutil
