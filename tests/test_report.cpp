// Unit coverage for the observability data plumbing: TimeSeries and
// Histogram edge cases, the minimal Json value type (dump/parse round
// trips), and RunReport document structure.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/json.h"
#include "common/metric_names.h"
#include "common/report.h"

namespace dynastar {
namespace {

// --- TimeSeries -----------------------------------------------------------

TEST(TimeSeriesEdge, EmptySeriesReadsZero) {
  TimeSeries series;
  EXPECT_EQ(series.num_buckets(), 0u);
  EXPECT_EQ(series.at(0), 0.0);
  EXPECT_EQ(series.at(1000), 0.0);
  EXPECT_EQ(series.total(), 0.0);
}

TEST(TimeSeriesEdge, NegativeTimeClampsToFirstBucket) {
  TimeSeries series;
  series.add(-5, 2.0);
  EXPECT_EQ(series.at(0), 2.0);
  EXPECT_EQ(series.total(), 2.0);
}

TEST(TimeSeriesEdge, BucketBoundariesAreHalfOpen) {
  TimeSeries series(seconds(1));
  series.add(seconds(1) - 1, 1.0);  // last tick of bucket 0
  series.add(seconds(1), 1.0);      // first tick of bucket 1
  EXPECT_EQ(series.at(0), 1.0);
  EXPECT_EQ(series.at(1), 1.0);
  EXPECT_EQ(series.num_buckets(), 2u);
}

TEST(TimeSeriesEdge, SparseAddsZeroFillGaps) {
  TimeSeries series;
  series.add(seconds(5), 7.0);
  EXPECT_EQ(series.num_buckets(), 6u);
  for (std::size_t b = 0; b < 5; ++b) EXPECT_EQ(series.at(b), 0.0);
  EXPECT_EQ(series.at(5), 7.0);
}

// --- Histogram ------------------------------------------------------------

TEST(HistogramEdge, EmptyHistogramIsAllZero) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.min(), 0);
  EXPECT_EQ(hist.max(), 0);
  EXPECT_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.percentile(0.5), 0);
  EXPECT_TRUE(hist.cdf().empty());
}

TEST(HistogramEdge, NegativeSamplesClampToZero) {
  Histogram hist;
  hist.record(-100);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.min(), 0);
  EXPECT_EQ(hist.max(), 0);
  EXPECT_EQ(hist.percentile(1.0), 0);
}

TEST(HistogramEdge, SingleSampleQuantilesCollapse) {
  Histogram hist;
  hist.record(milliseconds(10));
  EXPECT_EQ(hist.count(), 1u);
  // Log-bucketing: ~3% relative resolution around the sample.
  EXPECT_NEAR(static_cast<double>(hist.percentile(0.0)),
              static_cast<double>(milliseconds(10)), 0.03 * milliseconds(10));
  EXPECT_EQ(hist.percentile(0.5), hist.percentile(0.99));
  EXPECT_EQ(hist.mean(), static_cast<double>(milliseconds(10)));
}

TEST(HistogramEdge, ClearResetsEverything) {
  Histogram hist;
  hist.record(123456);
  hist.clear();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.max(), 0);
  EXPECT_EQ(hist.percentile(0.9), 0);
}

// --- Json -----------------------------------------------------------------

TEST(JsonValue, DumpIsDeterministicAndSorted) {
  Json obj;
  obj["zeta"] = Json(1.0);
  obj["alpha"] = Json(true);
  obj["mid"] = Json("s");
  EXPECT_EQ(obj.dump(), R"({"alpha":true,"mid":"s","zeta":1})");
}

TEST(JsonValue, IntegersPrintWithoutFraction) {
  EXPECT_EQ(Json(std::uint64_t{42}).dump(), "42");
  EXPECT_EQ(Json(-17).dump(), "-17");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(JsonValue, StringEscapesRoundTrip) {
  const std::string original = "a\"b\\c\n\t\x01 d";
  const Json doc{Json::Array{Json(original)}};
  auto parsed = Json::parse(doc.dump());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());
  EXPECT_EQ(parsed->as_array()[0].as_string(), original);
}

TEST(JsonValue, ParseHandlesAllTypes) {
  auto parsed = Json::parse(
      R"({"n":null,"b":false,"x":3.25,"s":"hi","a":[1,2],"o":{"k":"v"}})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->find("n")->is_null());
  EXPECT_EQ(parsed->find("b")->as_bool(), false);
  EXPECT_EQ(parsed->find("x")->as_number(), 3.25);
  EXPECT_EQ(parsed->find("s")->as_string(), "hi");
  EXPECT_EQ(parsed->find("a")->as_array().size(), 2u);
  EXPECT_EQ(parsed->find("o")->find("k")->as_string(), "v");
  EXPECT_EQ(parsed->find("missing"), nullptr);
}

TEST(JsonValue, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("tru").has_value());
  EXPECT_FALSE(Json::parse("{} trailing").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
}

TEST(JsonValue, UnicodeEscapesDecodeToUtf8) {
  auto parsed = Json::parse(R"(["\u0041\u00e9"])");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_array()[0].as_string(), "A\xc3\xa9");
}

TEST(JsonValue, PrettyPrintRoundTrips) {
  Json doc;
  doc["list"] = Json(Json::Array{Json(1), Json(Json::Object{})});
  doc["flag"] = Json(true);
  auto reparsed = Json::parse(doc.dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, doc);
}

// --- RunReport ------------------------------------------------------------

Json sample_report() {
  MetricsRegistry metrics;
  metrics.series(metric::kCompleted).add(0, 2.0);
  metrics.series(metric::kServerExecuted, {{"partition", "0"}, {"replica", "0"}})
      .add(0, 2.0);
  metrics.histogram(metric::kLatency).record(milliseconds(3));
  metrics.add_counter(metric::kServerReplyCacheHits, 1.0);

  TraceCollector trace;
  trace.enable();
  // One command: issue at 0ms, route 1ms, deliver 2ms, execute 2ms,
  // reply 3ms, complete 4ms; plus one repartition and one chaos event.
  trace.record(TracePoint::kClientIssue, milliseconds(0), 1, 1, 9);
  trace.record(TracePoint::kClientRoute, milliseconds(1), 1, 1, 9);
  trace.record(TracePoint::kServerDeliver, milliseconds(2), 1, 1, 3);
  trace.record(TracePoint::kExecuteStart, milliseconds(2), 1, 1, 3);
  trace.record(TracePoint::kReplySent, milliseconds(3), 1, 1, 3);
  trace.record(TracePoint::kClientComplete, milliseconds(4), 1, 1, 9);
  trace.record(TracePoint::kPlanApplied, milliseconds(5), 1, 0, 0, UINT64_MAX);
  trace.record(TracePoint::kChaosEvent, milliseconds(6), 0, 0, 0);

  RunInfo info;
  info.workload = "kv";
  info.mode = "dynastar";
  info.seed = 7;
  info.duration_s = 1;
  info.partitions = 2;
  info.clients = 3;
  return build_run_report(metrics, trace, info);
}

TEST(RunReport, HasAllTopLevelSections) {
  const Json report = sample_report();
  for (const char* key : {"meta", "phases", "e2e", "series", "histograms",
                          "counters", "repartitions", "chaos"})
    EXPECT_NE(report.find(key), nullptr) << "missing section " << key;
  EXPECT_EQ(report.find("meta")->find("workload")->as_string(), "kv");
  EXPECT_EQ(report.find("meta")->find("trace_enabled")->as_bool(), true);
}

TEST(RunReport, PhaseMeansTelescopeToEndToEnd) {
  const Json report = sample_report();
  const Json* e2e = report.find("e2e");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->find("source")->as_string(), "trace");
  EXPECT_EQ(e2e->find("commands")->as_number(), 1.0);
  EXPECT_EQ(e2e->find("mean_ms")->as_number(), 4.0);

  double sum = 0;
  for (const Json& phase : report.find("phases")->as_array())
    sum += phase.find("mean_ms")->as_number();
  EXPECT_NEAR(sum, 4.0, 1e-9);
}

TEST(RunReport, TimelinesComeFromTrace) {
  const Json report = sample_report();
  const auto& repartitions = report.find("repartitions")->as_array();
  ASSERT_EQ(repartitions.size(), 1u);
  EXPECT_EQ(repartitions[0].find("epoch")->as_number(), 1.0);
  EXPECT_EQ(repartitions[0].find("partition")->as_string(), "oracle");
  EXPECT_EQ(report.find("chaos")->as_array().size(), 1u);
}

TEST(RunReport, JsonRoundTripsThroughParser) {
  const Json report = sample_report();
  auto reparsed = Json::parse(report.dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, report);
  // Labeled series names survive the round trip.
  EXPECT_NE(reparsed->find("series")->find(
                "server.executed{partition=0,replica=0}"),
            nullptr);
}

TEST(RunReport, WithoutTraceFallsBackToLatencyHistogram) {
  MetricsRegistry metrics;
  metrics.histogram(metric::kLatency).record(milliseconds(2));
  TraceCollector trace;  // disabled, empty
  const Json report = build_run_report(metrics, trace, RunInfo{});
  EXPECT_EQ(report.find("e2e")->find("source")->as_string(), "histogram");
  EXPECT_EQ(report.find("e2e")->find("commands")->as_number(), 1.0);
  EXPECT_TRUE(report.find("repartitions")->as_array().empty());
}

TEST(RunReport, CsvRenderingContainsPhaseAndSeriesRows) {
  const Json report = sample_report();
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  write_report_csv(report, tmp);
  std::fseek(tmp, 0, SEEK_SET);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), tmp));
  std::fclose(tmp);
  EXPECT_NE(text.find("section,key,index,value"), std::string::npos);
  EXPECT_NE(text.find("phase,order,mean_ms"), std::string::npos);
  EXPECT_NE(text.find("e2e,latency,mean_ms,4.000000"), std::string::npos);
  EXPECT_NE(text.find("series,completed,0,2.000000"), std::string::npos);
}

}  // namespace
}  // namespace dynastar
