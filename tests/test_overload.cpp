// Overload protection: bounded admission queues, Busy shedding, client
// retry budgets, and metastable-failure hardening under load surges.
//
// The scenarios drive the full DynaStar stack well past saturation with
// surge-only clients (open-loop bursts gated on the world surge flag), one
// of them coinciding with a crash-recovery snapshot install. The properties:
//   * goodput degrades gracefully — commands are shed with Busy replies at
//     admission instead of queueing without bound, and every scripted
//     command still completes successfully afterwards (no metastable
//     collapse);
//   * shedding happens strictly before execution, so linearizability and
//     at-most-once are preserved;
//   * a bounded retry budget turns sustained overload into a terminal
//     kOverloaded completion instead of an infinite retry storm;
//   * shed decisions ride the ordered log, so same-seed runs stay
//     bit-identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/linearizability.h"
#include "core/client.h"
#include "core/system.h"
#include "sim/chaos.h"
#include "tests/test_util.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

constexpr std::uint64_t kKeys = 12;
constexpr int kClients = 4;
constexpr int kOpsPerClient = 40;
constexpr std::size_t kSurgeClients = 32;

/// Preloads key k with value 1000 + k, matching
/// with_initial_puts(history, kKeys, 1000) in the linearizability checks.
/// (testutil::preload writes a flat value, which the synthetic initial
/// puts would contradict.)
void preload_per_key(core::System& system) {
  core::Assignment assignment;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const PartitionId p{k % system.config().num_partitions};
    assignment[core::VertexId{k}] = p;
    system.preload_object(ObjectId{k}, core::VertexId{k}, p,
                          workloads::KvObject(1000 + k));
  }
  system.preload_assignment(assignment);
}

struct OverloadRun {
  std::vector<KvOperation> history;
  testutil::StatusTally tally;
  std::vector<std::string> chaos_log;
  std::string fingerprint;
  double server_shed = 0;
  double oracle_shed = 0;
  double snapshot_installs = 0;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t history_hash(const std::vector<KvOperation>& history) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& op : history) {
    h = fnv1a(h, op.is_put ? 1 : 0);
    h = fnv1a(h, op.value);
    for (std::uint64_t k : op.keys) h = fnv1a(h, k);
    for (const auto& o : op.observed) h = fnv1a(h, o ? *o + 1 : 0);
    h = fnv1a(h, static_cast<std::uint64_t>(op.invoke_time));
    h = fnv1a(h, static_cast<std::uint64_t>(op.response_time));
  }
  return h;
}

/// Config with tight admission caps: a surge of extra closed-loop clients
/// overruns the caps, so the gates engage without inflating CPU costs.
core::SystemConfig overload_config(std::uint64_t seed,
                                   std::uint32_t partitions) {
  auto config = testutil::config_for(core::ExecutionMode::kDynaStar,
                                     partitions);
  config.seed = seed;
  config.client_timeout_base = milliseconds(300);
  config.client_timeout_jitter = milliseconds(20);
  config.client_timeout_cap = seconds(2);
  config.client_max_attempts = 0;  // retry forever: liveness is the property
  config.server_queue_cap = 8;
  config.oracle_inflight_cap = 16;
  return config;
}

OverloadRun run_surge_scenario(std::uint64_t system_seed,
                               std::uint64_t chaos_seed) {
  auto config = overload_config(system_seed, 3);
  config.network.drop_probability = 0.01;
  config.network.duplicate_probability = 0.01;
  // Small checkpoint/catch-up windows: the long crash below outruns its
  // peers' retained logs, so recovery REQUIRES a snapshot install — and the
  // recovery-pinned surge window lands right on top of it.
  config.paxos.checkpoint_interval = 32;
  config.paxos.catchup_window = 8;

  core::System system(config, workloads::kv_app_factory());
  preload_per_key(system);

  OverloadRun run;
  for (int c = 0; c < kClients; ++c) {
    system.add_client(std::make_unique<testutil::RecordingKvDriver>(
        kKeys, kOpsPerClient, &run.history, &run.tally));
  }
  for (std::size_t c = 0; c < kSurgeClients; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(kKeys, 0.5, 0.2),
        /*surge_only=*/true);
  }

  sim::ChaosConfig chaos;
  chaos.seed = chaos_seed;
  chaos.start = seconds(1);
  chaos.horizon = seconds(8);
  for (std::uint32_t p = 0; p < config.num_partitions; ++p) {
    chaos.crash_groups.push_back(
        system.topology().group(core::group_of(PartitionId{p})).replicas);
  }
  chaos.crash_events = 0;
  chaos.long_crash_events = 1;
  chaos.long_min_downtime = milliseconds(1500);
  chaos.long_max_downtime = milliseconds(2500);
  chaos.surge_events = 2;
  chaos.surge_min_duration = milliseconds(800);
  chaos.surge_max_duration = milliseconds(1500);
  chaos.surge_with_recovery = true;  // first burst lands on the recovery

  sim::ChaosInjector injector(system.world(), chaos);
  injector.arm();

  // Faults land in [1s, ~11.5s] and surge windows end by ~13s; the tail
  // gives the scripted clients calm time to drain their remaining retries.
  system.run_until(seconds(18));

  run.chaos_log = injector.log();
  run.server_shed = system.metrics().counter("server.shed");
  run.oracle_shed = system.metrics().counter("oracle.shed");
  run.snapshot_installs = system.metrics().counter("server.snapshot_installs");

  std::ostringstream fp;
  fp << "events=" << system.world().sim().executed_events();
  for (const char* name : {"completed", "executed", "client.timeouts",
                           "client.retransmits", "client.shed"}) {
    const auto* series = system.metrics().find_series(name);
    fp << ' ' << name << '=' << (series ? series->total() : 0.0);
  }
  for (const char* name :
       {"server.shed", "oracle.shed", "client.retries_exhausted",
        "server.snapshot_installs", "chaos.events"}) {
    fp << ' ' << name << '=' << system.metrics().counter(name);
  }
  fp << " history=" << run.history.size() << '/' << std::hex
     << history_hash(run.history);
  for (const auto& line : run.chaos_log) fp << '|' << line;
  run.fingerprint = fp.str();
  return run;
}

TEST(Overload, ShedsUnderSurgeAndRecovers) {
  const OverloadRun run = run_surge_scenario(/*system_seed=*/21,
                                             /*chaos_seed=*/77);

  // The nemesis produced both surge windows, one pinned to the recovery.
  std::size_t begins = 0, ends = 0;
  bool pinned = false;
  for (const auto& line : run.chaos_log) {
    if (line.find("surge begin") != std::string::npos) ++begins;
    if (line.find("surge end") != std::string::npos) ++ends;
    if (line.find("(at recovery)") != std::string::npos) pinned = true;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_TRUE(pinned) << "no surge window coincided with a crash recovery";
  EXPECT_GE(run.snapshot_installs, 1.0)
      << "the long crash never forced a snapshot install";

  // The admission gates engaged: the 2x surge was shed, not queued.
  EXPECT_GT(run.server_shed + run.oracle_shed, 0.0)
      << "saturation surge produced no Busy replies";

  // Liveness: every scripted command still completed successfully — Busy
  // retries (unbounded budget here) eventually got through after the surge.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kClients) * kOpsPerClient;
  EXPECT_EQ(run.tally.completions, expected)
      << "clients hung under overload";
  EXPECT_EQ(run.tally.ok, expected);
  EXPECT_EQ(run.tally.other, 0u);
  ASSERT_EQ(run.history.size(), expected);

  // Safety: shedding happens strictly before execution, so the surviving
  // history is still linearizable (duplicates answered from reply caches).
  const auto full = testutil::with_initial_puts(run.history, kKeys, 1000);
  const auto result = check_kv_linearizable(full);
  EXPECT_TRUE(result.linearizable)
      << "non-linearizable history with shedding enabled; stuck op "
      << (result.stuck_operation ? static_cast<long>(*result.stuck_operation)
                                 : -1);
}

TEST(Overload, SameSeedGivesBitIdenticalRuns) {
  // Shed decisions ride the ordered log (StartEntry.shed), so the whole
  // overload run — including which commands were shed — must be a pure
  // function of (config, seed).
  const OverloadRun a = run_surge_scenario(/*system_seed=*/21,
                                           /*chaos_seed=*/77);
  const OverloadRun b = run_surge_scenario(/*system_seed=*/21,
                                           /*chaos_seed=*/77);
  EXPECT_EQ(a.fingerprint, b.fingerprint)
      << "overload run is not a pure function of (config, seed)";
}

TEST(Overload, RetryBudgetExhaustionIsTerminal) {
  // Sustained (not transient) overload with a tiny retry budget and a
  // refill interval longer than the run: clients must fail fast with
  // kOverloaded instead of retrying forever.
  auto config = overload_config(/*seed=*/5, /*partitions=*/1);
  config.client_timeout_jitter = 0;
  config.server_queue_cap = 4;
  config.oracle_inflight_cap = 4;
  config.client_retry_budget = 2;
  config.client_retry_token_interval = seconds(100);  // no refill in-run

  core::System system(config, workloads::kv_app_factory());
  testutil::preload(system, kKeys, 1000);

  std::vector<KvOperation> history;
  testutil::StatusTally tally;
  constexpr int kLoadClients = 24;
  constexpr int kOps = 20;
  for (int c = 0; c < kLoadClients; ++c) {
    system.add_client(std::make_unique<testutil::RecordingKvDriver>(
        kKeys, kOps, &history, &tally));
  }
  system.run_until(seconds(5));

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kLoadClients) * kOps;
  EXPECT_EQ(tally.completions, expected)
      << "budget exhaustion must terminate commands, not hang them";
  EXPECT_GT(tally.other, 0u)
      << "sustained overload never exhausted a retry budget";
  EXPECT_EQ(system.metrics().counter("client.retries_exhausted"),
            static_cast<double>(tally.other))
      << "every non-ok/non-timeout completion should be a kOverloaded";
  EXPECT_GT(system.metrics().counter("server.shed") +
                system.metrics().counter("oracle.shed"),
            0.0);

  // Linearizability under shedding is covered by ShedsUnderSurgeAndRecovers;
  // a 24-client fully-concurrent history is intractable for the checker.
}

TEST(Overload, SurgeClientsIdleWithoutSurgeWindows) {
  // Without a surge window the surge-only clients must contribute zero
  // load — the run behaves exactly like one without them.
  auto config = overload_config(/*seed=*/9, /*partitions=*/2);
  core::System system(config, workloads::kv_app_factory());
  testutil::preload(system, kKeys, 1000);

  std::vector<KvOperation> history;
  testutil::StatusTally tally;
  system.add_client(std::make_unique<testutil::RecordingKvDriver>(
      kKeys, kOpsPerClient, &history, &tally));
  for (std::size_t c = 0; c < 8; ++c) {
    system.add_client(
        std::make_unique<workloads::RandomKvDriver>(kKeys, 0.5, 0.2),
        /*surge_only=*/true);
  }
  system.run_until(seconds(10));

  EXPECT_EQ(tally.completions,
            static_cast<std::uint64_t>(kOpsPerClient));
  // Only the recording client issued commands: completions == its ops.
  EXPECT_EQ(system.metrics().series("completed").total(),
            static_cast<double>(kOpsPerClient));
  EXPECT_EQ(system.metrics().counter("server.shed"), 0.0);
  EXPECT_EQ(system.metrics().counter("oracle.shed"), 0.0);
}

// --- pure backoff arithmetic (satellite: edge cases) ---

TEST(Overload, TimeoutBackoffCapsAtConfiguredCeiling) {
  core::SystemConfig config;
  config.client_timeout_base = milliseconds(100);
  config.client_timeout_multiplier = 2.0;
  config.client_timeout_cap = seconds(1);
  EXPECT_EQ(core::ClientCore::timeout_backoff(config, 1), milliseconds(100));
  EXPECT_EQ(core::ClientCore::timeout_backoff(config, 2), milliseconds(200));
  EXPECT_EQ(core::ClientCore::timeout_backoff(config, 4), milliseconds(800));
  // Attempt 5 would be 1600ms — capped.
  EXPECT_EQ(core::ClientCore::timeout_backoff(config, 5), seconds(1));
  // Far past the cap: no overflow, still the cap.
  EXPECT_EQ(core::ClientCore::timeout_backoff(config, 60), seconds(1));
}

TEST(Overload, TimeoutBackoffWithUnitMultiplierIsFlat) {
  // jitter = 0 + multiplier = 1 is the degenerate fixed-timeout config;
  // every attempt must wait exactly the base.
  core::SystemConfig config;
  config.client_timeout_base = milliseconds(250);
  config.client_timeout_multiplier = 1.0;
  config.client_timeout_jitter = 0;
  config.client_timeout_cap = seconds(4);
  for (std::uint32_t attempt = 1; attempt <= 16; ++attempt)
    EXPECT_EQ(core::ClientCore::timeout_backoff(config, attempt),
              milliseconds(250));
}

TEST(Overload, BusyBackoffNeverShortensBelowComputedFloor) {
  core::SystemConfig config;
  config.busy_retry_after_base = milliseconds(2);
  config.client_timeout_multiplier = 2.0;
  config.client_timeout_cap = seconds(1);
  // No hint: the exponential floor applies.
  EXPECT_EQ(core::ClientCore::busy_backoff(config, 1, 0), milliseconds(2));
  EXPECT_EQ(core::ClientCore::busy_backoff(config, 4, 0), milliseconds(16));
  // A longer server hint overrides the floor…
  EXPECT_EQ(core::ClientCore::busy_backoff(config, 1, milliseconds(10)),
            milliseconds(10));
  // …but a shorter hint never shortens the wait below it.
  EXPECT_EQ(core::ClientCore::busy_backoff(config, 4, milliseconds(5)),
            milliseconds(16));
  // The floor itself is capped.
  EXPECT_EQ(core::ClientCore::busy_backoff(config, 40, 0), seconds(1));
  // A hint beyond the cap still wins: the server knows its own queue.
  EXPECT_EQ(core::ClientCore::busy_backoff(config, 40, seconds(2)),
            seconds(2));
}

}  // namespace
}  // namespace dynastar
