// simctl: command-line driver for the DynaStar simulator.
//
// Runs one configuration of {workload, system, partitions, clients,
// duration, placement} and prints either a human summary or CSV time series
// (for plotting the paper's figures from custom sweeps). With --trace/--report
// it also exports the command-lifecycle trace and a RunReport JSON document
// (see docs/OBSERVABILITY.md). Systems are resolved through the baseline
// registry (src/baselines/registry.h), so --system accepts exactly the
// registered names and --help enumerates them.
//
// Examples:
//   simctl --workload=chirper --system=dynastar --partitions=4 --duration=30
//   simctl --workload=tpcc --system=ssmr --partitions=8 --clients=96
//          --placement=optimized --csv=series.csv
//   simctl --workload=kv --system=star --duration=5 --report=report.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/metric_names.h"
#include "common/report.h"
#include "core/scenario.h"
#include "sim/chaos.h"
#include "workloads/chirper.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"
#include "workloads/smallbank.h"
#include "workloads/social_graph.h"
#include "workloads/tpcc.h"

using namespace dynastar;

namespace {

struct Options {
  std::string workload = "chirper";   // kv | tpcc | chirper | smallbank
  std::string system = "dynastar";    // a baseline-registry name
  std::string placement = "random";   // random | optimized
  std::uint32_t partitions = 4;
  std::uint32_t clients = 0;          // 0 = 12 per partition
  std::uint32_t duration = 20;        // simulated seconds
  std::uint64_t seed = 1;
  std::uint32_t users = 4000;         // chirper graph size
  std::uint64_t keys = 1024;          // kv keyspace
  double timeline_fraction = 0.85;    // chirper mix
  std::uint64_t repartition_threshold = 60'000;
  std::string csv;                    // write per-second series here
  std::string trace_file;             // write lifecycle trace CSV here
  std::string report_json;            // write RunReport JSON here
  bool chaos = false;                 // arm the nemesis
  std::uint64_t chaos_seed = 42;
  std::int64_t catchup_window = -1;      // -1 = keep preset default
  std::int64_t checkpoint_interval = -1; // -1 = keep preset default
  std::string surge_spec;                // "N@START+DUR" (empty = no surge)
  std::int64_t queue_cap = -1;           // -1 = keep preset default (off)
  std::int64_t exec_lanes = -1;          // -1 = keep preset default (serial)
  std::string exec_backend = "sim";      // sim | threads
  std::int64_t read_leases = -1;         // -1 = keep preset default (off)
  std::string net;                       // "" = keep preset (lan) | wan:<N>dc
  std::uint64_t long_crashes = 0;        // chaos: long-downtime crash events
};

/// Parsed --surge=N@START+DUR: N extra surge-only clients active during
/// [START, START+DUR) simulated seconds.
struct SurgeSpec {
  std::uint32_t clients = 0;
  std::uint32_t start_s = 0;
  std::uint32_t duration_s = 0;
};

bool parse_surge(const std::string& spec, SurgeSpec* out) {
  return std::sscanf(spec.c_str(), "%u@%u+%u", &out->clients, &out->start_s,
                     &out->duration_s) == 3 &&
         out->clients > 0 && out->duration_s > 0;
}

/// One command-line flag: spelling, value placeholder, help line, and the
/// action run on its value. --help is generated from this table, so adding
/// a flag is one entry here and nothing else.
struct Flag {
  const char* name;   // including "--" and trailing "="
  const char* value;  // metavariable shown in --help
  std::string help;   // may embed generated text (e.g. the baseline names)
  std::function<void(const char*)> apply;
};

std::vector<Flag> flag_table(Options* o) {
  return {
      {"--workload=", "NAME", "kv | tpcc | chirper | smallbank",
       [o](const char* v) { o->workload = v; }},
      {"--system=", "NAME", baselines::baseline_names(),
       [o](const char* v) { o->system = v; }},
      {"--mode=", "NAME", "alias for --system",
       [o](const char* v) { o->system = v; }},
      {"--placement=", "NAME", "random | optimized initial placement",
       [o](const char* v) { o->placement = v; }},
      {"--partitions=", "N", "number of partitions",
       [o](const char* v) { o->partitions = std::atoi(v); }},
      {"--clients=", "N", "total clients (0 = 12 per partition)",
       [o](const char* v) { o->clients = std::atoi(v); }},
      {"--duration=", "SECONDS", "simulated run length",
       [o](const char* v) { o->duration = std::atoi(v); }},
      {"--seed=", "N", "root RNG seed",
       [o](const char* v) { o->seed = std::atoll(v); }},
      {"--users=", "N", "chirper social-graph size",
       [o](const char* v) { o->users = std::atoi(v); }},
      {"--keys=", "N", "kv keyspace / smallbank accounts",
       [o](const char* v) { o->keys = std::atoll(v); }},
      {"--timeline=", "F", "chirper timeline fraction of the mix",
       [o](const char* v) { o->timeline_fraction = std::atof(v); }},
      {"--threshold=", "N", "dynastar repartition hint threshold",
       [o](const char* v) { o->repartition_threshold = std::atoll(v); }},
      {"--csv=", "FILE", "write per-second series CSV",
       [o](const char* v) { o->csv = v; }},
      {"--trace=", "FILE", "write command-lifecycle trace CSV",
       [o](const char* v) { o->trace_file = v; }},
      {"--report=", "FILE", "write RunReport JSON",
       [o](const char* v) { o->report_json = v; }},
      {"--chaos=", "SEED", "arm the chaos nemesis with this seed",
       [o](const char* v) {
         o->chaos = true;
         o->chaos_seed = std::atoll(v);
       }},
      {"--catchup-window=", "SLOTS",
       "applied-log suffix retained for peer catch-up (0 = unbounded)",
       [o](const char* v) { o->catchup_window = std::atoll(v); }},
      {"--checkpoint-interval=", "SLOTS",
       "decided slots between durable checkpoints (0 = disabled)",
       [o](const char* v) { o->checkpoint_interval = std::atoll(v); }},
      {"--surge=", "N@START+DUR",
       "N surge clients active [START, START+DUR) seconds (e.g. 24@8+4)",
       [o](const char* v) { o->surge_spec = v; }},
      {"--queue-cap=", "N",
       "admission high-water mark for servers + oracle (0 = shedding off)",
       [o](const char* v) { o->queue_cap = std::atoll(v); }},
      {"--exec-lanes=", "N",
       "parallel-executor worker lanes per replica (1 = serial apply)",
       [o](const char* v) { o->exec_lanes = std::atoll(v); }},
      {"--exec-backend=", "NAME",
       "parallel-executor backend: sim (deterministic) | threads",
       [o](const char* v) { o->exec_backend = v; }},
      {"--read-leases=", "0|1",
       "serve read-only multi-partition commands from epoch-validated leases "
       "(dynastar / dssmr only)",
       [o](const char* v) { o->read_leases = std::atoll(v); }},
      {"--net=", "SPEC",
       "network topology: lan (default) | wan:<N>dc (N datacenters with "
       "bandwidth-modeled links)",
       [o](const char* v) { o->net = v; }},
      {"--long-crashes=", "N",
       "with --chaos: N crash events with multi-second downtime, forcing "
       "snapshot installs on recovery",
       [o](const char* v) { o->long_crashes = std::atoll(v); }},
  };
}

void usage(const std::vector<Flag>& flags) {
  std::puts("usage: simctl [flags]\n");
  for (const auto& flag : flags) {
    std::string spelling = std::string(flag.name) + flag.value;
    std::printf("  %-22s %s\n", spelling.c_str(), flag.help.c_str());
  }
  std::puts("  --help                 show this message");
}

bool parse(int argc, char** argv, const std::vector<Flag>& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(flags);
      std::exit(0);
    }
    bool matched = false;
    for (const auto& flag : flags) {
      const std::size_t n = std::strlen(flag.name);
      if (arg.compare(0, n, flag.name) == 0) {
        flag.apply(arg.c_str() + n);
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

core::SystemConfig make_config(const Options& options) {
  const baselines::Baseline* baseline = baselines::find_baseline(options.system);
  if (baseline == nullptr) {
    std::fprintf(stderr, "unknown system %s (expected %s)\n",
                 options.system.c_str(), baselines::baseline_names().c_str());
    std::exit(2);
  }
  core::SystemConfig config = baseline->config(options.partitions, options.seed);
  // The hint threshold only matters to the system that re-plans.
  if (config.mode == core::ExecutionMode::kDynaStar)
    config.repartition_hint_threshold = options.repartition_threshold;
  if (options.catchup_window >= 0)
    config.paxos.catchup_window =
        static_cast<paxos::Slot>(options.catchup_window);
  if (options.checkpoint_interval >= 0)
    config.paxos.checkpoint_interval =
        static_cast<paxos::Slot>(options.checkpoint_interval);
  if (options.queue_cap >= 0) {
    config.server_queue_cap = static_cast<std::size_t>(options.queue_cap);
    config.oracle_inflight_cap = static_cast<std::size_t>(options.queue_cap);
  }
  if (options.exec_lanes >= 0)
    config.exec_lanes = static_cast<std::uint32_t>(options.exec_lanes);
  if (options.read_leases >= 0) config.read_leases = options.read_leases != 0;
  if (options.exec_backend == "threads") {
    config.exec_real_threads = true;
  } else if (options.exec_backend != "sim") {
    std::fprintf(stderr, "unknown exec backend %s (expected sim|threads)\n",
                 options.exec_backend.c_str());
    std::exit(2);
  }
  return config;
}

std::unique_ptr<core::System> make_system(const Options& options,
                                          std::uint32_t clients,
                                          std::uint32_t surge_clients) {
  core::ScenarioBuilder builder;
  builder.config(make_config(options));
  if (!options.net.empty()) builder.net_preset(options.net);
  if (!options.trace_file.empty() || !options.report_json.empty())
    builder.trace();

  // Each workload contributes an app + preload + a driver factory; the
  // factory is shared by the regular clients and any --surge clients.
  core::ScenarioBuilder::DriverFactory factory;
  if (options.workload == "kv") {
    builder.app(workloads::kv_app_factory())
        .preload([&](core::System& system) {
          core::Assignment assignment;
          workloads::KvObject zero(0);
          Rng rng(options.seed);
          for (std::uint64_t k = 0; k < options.keys; ++k) {
            const PartitionId p{options.placement == "optimized"
                                    ? k % options.partitions
                                    : rng.uniform(0, options.partitions - 1)};
            assignment[core::VertexId{k}] = p;
            system.preload_object(ObjectId{k}, core::VertexId{k}, p, zero);
          }
          system.preload_assignment(assignment);
        });
    factory = [&](std::size_t) {
      return std::make_unique<workloads::RandomKvDriver>(options.keys, 0.5,
                                                         0.2);
    };
  } else if (options.workload == "tpcc") {
    workloads::tpcc::Scale scale;
    builder.app(workloads::tpcc::tpcc_app_factory(scale))
        .preload([&, scale](core::System& system) {
          workloads::tpcc::setup(
              system, scale, options.partitions,
              options.placement == "optimized"
                  ? workloads::tpcc::Placement::kWarehousePerPartition
                  : workloads::tpcc::Placement::kRandom,
              options.seed);
        });
    factory = [&, scale](std::size_t c) {
      return std::make_unique<workloads::tpcc::TpccDriver>(
          scale, options.partitions,
          static_cast<std::uint32_t>(c) % options.partitions + 1,
          static_cast<std::uint32_t>(c) / options.partitions % 10 + 1);
    };
  } else if (options.workload == "chirper") {
    auto graph = std::make_shared<workloads::SocialGraph>(
        workloads::generate_social_graph(options.users, 4, options.seed));
    auto directory = std::make_shared<workloads::chirper::Directory>(
        workloads::chirper::make_directory(*graph));
    auto zipf = std::make_shared<ZipfGenerator>(options.users, 0.95);
    workloads::chirper::WorkloadMix mix;
    mix.timeline_fraction = options.timeline_fraction;
    builder.app(workloads::chirper::chirper_app_factory())
        .preload([&, graph](core::System& system) {
          workloads::chirper::setup(
              system, *graph,
              options.placement == "optimized"
                  ? workloads::chirper::Placement::kOptimized
                  : workloads::chirper::Placement::kRandom,
              options.seed);
        });
    factory = [directory, mix, zipf](std::size_t) {
      return std::make_unique<workloads::chirper::ChirperDriver>(*directory,
                                                                 mix, zipf);
    };
  } else if (options.workload == "smallbank") {
    builder.app(workloads::smallbank::smallbank_app_factory())
        .preload([&](core::System& system) {
          workloads::smallbank::setup(
              system, static_cast<std::uint32_t>(options.keys));
        });
    factory = [&](std::size_t) {
      return std::make_unique<workloads::smallbank::SmallBankDriver>(
          static_cast<std::uint32_t>(options.keys));
    };
  } else {
    std::fprintf(stderr, "unknown workload %s\n", options.workload.c_str());
    return nullptr;
  }
  builder.clients(clients, factory);
  if (surge_clients > 0) builder.surge_clients(surge_clients, factory);
  return builder.build();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  const auto flags = flag_table(&options);
  if (!parse(argc, argv, flags)) {
    usage(flags);
    return 2;
  }
  const std::uint32_t clients =
      options.clients != 0 ? options.clients : options.partitions * 12;

  SurgeSpec surge;
  if (!options.surge_spec.empty() && !parse_surge(options.surge_spec, &surge)) {
    std::fprintf(stderr, "bad --surge spec: %s (want N@START+DUR)\n",
                 options.surge_spec.c_str());
    return 2;
  }

  auto system = make_system(options, clients, surge.clients);
  if (system == nullptr) {
    usage(flags);
    return 2;
  }

  if (surge.clients > 0) {
    sim::World& world = system->world();
    world.sim().schedule_at(seconds(surge.start_s),
                            [&world] { world.begin_surge(); });
    world.sim().schedule_at(seconds(surge.start_s + surge.duration_s),
                            [&world] { world.end_surge(); });
  }

  std::unique_ptr<sim::ChaosInjector> injector;
  if (options.chaos) {
    // Default nemesis over the deployed topology: crash/recover replicas
    // (at most one per group at a time) plus drop bursts and latency
    // spikes across the middle of the run.
    sim::ChaosConfig chaos;
    chaos.seed = options.chaos_seed;
    chaos.start = seconds(1);
    chaos.horizon = options.duration > 3 ? seconds(options.duration - 2)
                                         : seconds(1);
    chaos.crash_groups.push_back(
        system->topology().group(core::kOracleGroup).replicas);
    for (std::uint32_t p = 0; p < options.partitions; ++p) {
      const auto& replicas =
          system->topology().group(core::group_of(PartitionId{p})).replicas;
      chaos.crash_groups.push_back(replicas);
      chaos.link_pool.insert(chaos.link_pool.end(), replicas.begin(),
                             replicas.end());
    }
    chaos.crash_events = 2 + options.partitions;
    chaos.long_crash_events = options.long_crashes;
    chaos.link_cut_events = 2;
    chaos.drop_burst_events = 2;
    chaos.latency_spike_events = 2;
    if (!options.net.empty() && options.net != "lan") {
      // WAN runs get the bandwidth nemeses too: global collapses plus
      // per-link degrade windows over the same replica pool.
      chaos.bandwidth_drop_events = 2;
      chaos.link_degrade_events = 2;
    }
    injector = std::make_unique<sim::ChaosInjector>(system->world(), chaos);
    injector->arm();
  }

  system->run_until(seconds(options.duration));

  auto& metrics = system->metrics();
  const auto& completed = metrics.series(metric::kCompleted);
  const auto& mpart = metrics.series(metric::kMultiPartition);
  const auto& executed = metrics.series(metric::kExecuted);
  const auto& exchanged = metrics.series(metric::kObjectsExchanged);
  const auto* latency = metrics.find_histogram(metric::kLatency);

  std::printf("workload=%s system=%s partitions=%u clients=%u duration=%us seed=%llu\n",
              options.workload.c_str(), options.system.c_str(),
              options.partitions, clients, options.duration,
              static_cast<unsigned long long>(options.seed));
  std::printf("completed commands : %.0f (%.0f/s)\n", completed.total(),
              completed.total() / options.duration);
  const double exec_total = executed.total();
  std::printf("multi-partition    : %.1f%%\n",
              exec_total > 0 ? 100.0 * mpart.total() / exec_total : 0.0);
  std::printf("objects exchanged  : %.0f\n", exchanged.total());
  std::printf("plans applied      : %.0f\n",
              metrics.series(metric::kOraclePlansApplied).total());
  std::printf("client retries     : %.0f\n",
              metrics.series(metric::kClientRetries).total());
  std::printf("client timeouts    : %.0f (retransmits %.0f)\n",
              metrics.series(metric::kClientTimeouts).total(),
              metrics.series(metric::kClientRetransmits).total());
  std::printf("reply cache hits   : server %.0f, oracle %.0f\n",
              metrics.counter(metric::kServerReplyCacheHits),
              metrics.counter(metric::kOracleReplyCacheHits));
  std::printf("shed at admission  : server %.0f, oracle %.0f (budgets exhausted %.0f)\n",
              metrics.counter(metric::kServerShed),
              metrics.counter(metric::kOracleShed),
              metrics.counter(metric::kClientRetriesExhausted));
  if (injector != nullptr) {
    std::printf("chaos events       : %.0f\n",
                metrics.counter(metric::kChaosEvents));
    for (const auto& line : injector->log())
      std::printf("  chaos: %s\n", line.c_str());
  }
  if (latency != nullptr) {
    std::printf("latency avg/p95/p99: %.2f / %.2f / %.2f ms\n",
                to_millis(static_cast<SimTime>(latency->mean())),
                to_millis(latency->percentile(0.95)),
                to_millis(latency->percentile(0.99)));
  }
  const auto& trace = system->world().trace();
  if (trace.enabled()) {
    const auto breakdown = compute_phase_breakdown(trace);
    std::printf("phase means (ms)   :");
    for (const auto& phase : breakdown.phases)
      std::printf(" %s=%.2f", phase.name.c_str(), phase.mean_ns() / 1e6);
    std::printf(" (e2e %.2f over %llu cmds)\n", breakdown.e2e_mean_ns() / 1e6,
                static_cast<unsigned long long>(breakdown.commands));
  }

  if (!options.csv.empty()) {
    FILE* file = std::fopen(options.csv.c_str(), "w");
    if (file == nullptr) {
      std::perror("fopen");
      return 1;
    }
    std::fprintf(file,
                 "t,completed,mpart,objects_exchanged,oracle_queries,retries\n");
    const auto& queries = metrics.series(metric::kOracleQueries);
    const auto& retries = metrics.series(metric::kClientRetries);
    for (std::uint32_t t = 0; t < options.duration; ++t) {
      std::fprintf(file, "%u,%.0f,%.0f,%.0f,%.0f,%.0f\n", t, completed.at(t),
                   mpart.at(t), exchanged.at(t), queries.at(t), retries.at(t));
    }
    std::fclose(file);
    std::printf("per-second series written to %s\n", options.csv.c_str());
  }

  if (!options.trace_file.empty()) {
    FILE* file = std::fopen(options.trace_file.c_str(), "w");
    if (file == nullptr) {
      std::perror("fopen");
      return 1;
    }
    trace.write_csv(file);
    std::fclose(file);
    std::printf("lifecycle trace (%zu events) written to %s\n", trace.size(),
                options.trace_file.c_str());
  }

  if (!options.report_json.empty()) {
    RunInfo info;
    info.workload = options.workload;
    info.mode = options.system;
    info.seed = options.seed;
    info.duration_s = options.duration;
    info.partitions = options.partitions;
    info.clients = clients;
    const Json report = build_run_report(metrics, trace, info);
    if (!write_report_json(report, options.report_json)) {
      std::perror("fopen");
      return 1;
    }
    std::printf("run report written to %s\n", options.report_json.c_str());
  }
  return 0;
}
