// simctl: command-line driver for the DynaStar simulator.
//
// Runs one configuration of {workload, execution mode, partitions, clients,
// duration, placement} and prints either a human summary or CSV time series
// (for plotting the paper's figures from custom sweeps).
//
// Examples:
//   simctl --workload=chirper --mode=dynastar --partitions=4 --duration=30
//   simctl --workload=tpcc --mode=ssmr --partitions=8 --clients=96
//          --placement=optimized --csv=series.csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/presets.h"
#include "core/system.h"
#include "sim/chaos.h"
#include "workloads/chirper.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"
#include "workloads/smallbank.h"
#include "workloads/social_graph.h"
#include "workloads/tpcc.h"

using namespace dynastar;

namespace {

struct Options {
  std::string workload = "chirper";   // kv | tpcc | chirper | smallbank
  std::string mode = "dynastar";      // dynastar | ssmr | dssmr
  std::string placement = "random";   // random | optimized
  std::uint32_t partitions = 4;
  std::uint32_t clients = 0;          // 0 = 12 per partition
  std::uint32_t duration = 20;        // simulated seconds
  std::uint64_t seed = 1;
  std::uint32_t users = 4000;         // chirper graph size
  std::uint64_t keys = 1024;          // kv keyspace
  double timeline_fraction = 0.85;    // chirper mix
  std::uint64_t repartition_threshold = 60'000;
  std::string csv;                    // write per-second series here
  bool chaos = false;                 // arm the nemesis
  std::uint64_t chaos_seed = 42;
};

void usage() {
  std::puts(
      "usage: simctl [--workload=kv|tpcc|chirper|smallbank]\n"
      "              [--mode=dynastar|ssmr|dssmr]\n"
      "              [--placement=random|optimized] [--partitions=N]\n"
      "              [--clients=N] [--duration=SECONDS] [--seed=N]\n"
      "              [--users=N] [--keys=N] [--timeline=F]\n"
      "              [--threshold=N] [--csv=FILE] [--chaos=SEED]");
}

bool parse(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--workload=")) options->workload = v;
    else if (const char* v = value("--mode=")) options->mode = v;
    else if (const char* v = value("--placement=")) options->placement = v;
    else if (const char* v = value("--partitions=")) options->partitions = std::atoi(v);
    else if (const char* v = value("--clients=")) options->clients = std::atoi(v);
    else if (const char* v = value("--duration=")) options->duration = std::atoi(v);
    else if (const char* v = value("--seed=")) options->seed = std::atoll(v);
    else if (const char* v = value("--users=")) options->users = std::atoi(v);
    else if (const char* v = value("--keys=")) options->keys = std::atoll(v);
    else if (const char* v = value("--timeline=")) options->timeline_fraction = std::atof(v);
    else if (const char* v = value("--threshold=")) options->repartition_threshold = std::atoll(v);
    else if (const char* v = value("--csv=")) options->csv = v;
    else if (const char* v = value("--chaos=")) {
      options->chaos = true;
      options->chaos_seed = std::atoll(v);
    }
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

core::SystemConfig make_config(const Options& options) {
  core::SystemConfig config;
  if (options.mode == "dynastar") {
    config = baselines::dynastar_config(options.partitions, options.seed);
    config.repartition_hint_threshold = options.repartition_threshold;
  } else if (options.mode == "ssmr") {
    config = baselines::ssmr_config(options.partitions, options.seed);
  } else if (options.mode == "dssmr") {
    config = baselines::dssmr_config(options.partitions, options.seed);
  } else {
    std::fprintf(stderr, "unknown mode %s\n", options.mode.c_str());
    std::exit(2);
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, &options)) {
    usage();
    return 2;
  }
  const std::uint32_t clients =
      options.clients != 0 ? options.clients : options.partitions * 12;
  auto config = make_config(options);

  std::unique_ptr<core::System> system;
  if (options.workload == "kv") {
    system = std::make_unique<core::System>(config, workloads::kv_app_factory());
    core::Assignment assignment;
    workloads::KvObject zero(0);
    Rng rng(options.seed);
    for (std::uint64_t k = 0; k < options.keys; ++k) {
      const PartitionId p{options.placement == "optimized"
                              ? k % options.partitions
                              : rng.uniform(0, options.partitions - 1)};
      assignment[core::VertexId{k}] = p;
      system->preload_object(ObjectId{k}, core::VertexId{k}, p, zero);
    }
    system->preload_assignment(assignment);
    for (std::uint32_t c = 0; c < clients; ++c) {
      system->add_client(std::make_unique<workloads::RandomKvDriver>(
          options.keys, 0.5, 0.2));
    }
  } else if (options.workload == "tpcc") {
    workloads::tpcc::Scale scale;
    system = std::make_unique<core::System>(
        config, workloads::tpcc::tpcc_app_factory(scale));
    workloads::tpcc::setup(
        *system, scale, options.partitions,
        options.placement == "optimized"
            ? workloads::tpcc::Placement::kWarehousePerPartition
            : workloads::tpcc::Placement::kRandom,
        options.seed);
    for (std::uint32_t c = 0; c < clients; ++c) {
      system->add_client(std::make_unique<workloads::tpcc::TpccDriver>(
          scale, options.partitions, c % options.partitions + 1,
          c / options.partitions % 10 + 1));
    }
  } else if (options.workload == "chirper") {
    auto graph = workloads::generate_social_graph(options.users, 4, options.seed);
    system = std::make_unique<core::System>(
        config, workloads::chirper::chirper_app_factory());
    workloads::chirper::setup(*system, graph,
                              options.placement == "optimized"
                                  ? workloads::chirper::Placement::kOptimized
                                  : workloads::chirper::Placement::kRandom,
                              options.seed);
    auto directory = workloads::chirper::make_directory(graph);
    auto zipf = std::make_shared<ZipfGenerator>(options.users, 0.95);
    workloads::chirper::WorkloadMix mix;
    mix.timeline_fraction = options.timeline_fraction;
    for (std::uint32_t c = 0; c < clients; ++c) {
      system->add_client(std::make_unique<workloads::chirper::ChirperDriver>(
          directory, mix, zipf));
    }
  } else if (options.workload == "smallbank") {
    system = std::make_unique<core::System>(
        config, workloads::smallbank::smallbank_app_factory());
    workloads::smallbank::setup(
        *system, static_cast<std::uint32_t>(options.keys));
    for (std::uint32_t c = 0; c < clients; ++c) {
      system->add_client(std::make_unique<workloads::smallbank::SmallBankDriver>(
          static_cast<std::uint32_t>(options.keys)));
    }
  } else {
    std::fprintf(stderr, "unknown workload %s\n", options.workload.c_str());
    usage();
    return 2;
  }

  std::unique_ptr<sim::ChaosInjector> injector;
  if (options.chaos) {
    // Default nemesis over the deployed topology: crash/recover replicas
    // (at most one per group at a time) plus drop bursts and latency
    // spikes across the middle of the run.
    sim::ChaosConfig chaos;
    chaos.seed = options.chaos_seed;
    chaos.start = seconds(1);
    chaos.horizon = options.duration > 3 ? seconds(options.duration - 2)
                                         : seconds(1);
    chaos.crash_groups.push_back(
        system->topology().group(core::kOracleGroup).replicas);
    for (std::uint32_t p = 0; p < options.partitions; ++p) {
      const auto& replicas =
          system->topology().group(core::group_of(PartitionId{p})).replicas;
      chaos.crash_groups.push_back(replicas);
      chaos.link_pool.insert(chaos.link_pool.end(), replicas.begin(),
                             replicas.end());
    }
    chaos.crash_events = 2 + options.partitions;
    chaos.link_cut_events = 2;
    chaos.drop_burst_events = 2;
    chaos.latency_spike_events = 2;
    injector = std::make_unique<sim::ChaosInjector>(system->world(), chaos);
    injector->arm();
  }

  system->run_until(seconds(options.duration));

  auto& metrics = system->metrics();
  const auto& completed = metrics.series("completed");
  const auto& mpart = metrics.series("mpart");
  const auto& executed = metrics.series("executed");
  const auto& exchanged = metrics.series("objects_exchanged");
  const auto* latency = metrics.find_histogram("latency");

  std::printf("workload=%s mode=%s partitions=%u clients=%u duration=%us seed=%llu\n",
              options.workload.c_str(), options.mode.c_str(),
              options.partitions, clients, options.duration,
              static_cast<unsigned long long>(options.seed));
  std::printf("completed commands : %.0f (%.0f/s)\n", completed.total(),
              completed.total() / options.duration);
  const double exec_total = executed.total();
  std::printf("multi-partition    : %.1f%%\n",
              exec_total > 0 ? 100.0 * mpart.total() / exec_total : 0.0);
  std::printf("objects exchanged  : %.0f\n", exchanged.total());
  std::printf("plans applied      : %.0f\n",
              metrics.series("oracle.plans_applied").total());
  std::printf("client retries     : %.0f\n",
              metrics.series("client.retries").total());
  std::printf("client timeouts    : %.0f (retransmits %.0f)\n",
              metrics.series("client.timeouts").total(),
              metrics.series("client.retransmits").total());
  std::printf("reply cache hits   : server %.0f, oracle %.0f\n",
              metrics.counter("server.reply_cache_hits"),
              metrics.counter("oracle.reply_cache_hits"));
  if (injector != nullptr) {
    std::printf("chaos events       : %.0f\n", metrics.counter("chaos.events"));
    for (const auto& line : injector->log())
      std::printf("  chaos: %s\n", line.c_str());
  }
  if (latency != nullptr) {
    std::printf("latency avg/p95/p99: %.2f / %.2f / %.2f ms\n",
                to_millis(static_cast<SimTime>(latency->mean())),
                to_millis(latency->percentile(0.95)),
                to_millis(latency->percentile(0.99)));
  }

  if (!options.csv.empty()) {
    FILE* file = std::fopen(options.csv.c_str(), "w");
    if (file == nullptr) {
      std::perror("fopen");
      return 1;
    }
    std::fprintf(file,
                 "t,completed,mpart,objects_exchanged,oracle_queries,retries\n");
    const auto& queries = metrics.series("oracle.queries");
    const auto& retries = metrics.series("client.retries");
    for (std::uint32_t t = 0; t < options.duration; ++t) {
      std::fprintf(file, "%u,%.0f,%.0f,%.0f,%.0f,%.0f\n", t, completed.at(t),
                   mpart.at(t), exchanged.at(t), queries.at(t), retries.at(t));
    }
    std::fclose(file);
    std::printf("per-second series written to %s\n", options.csv.c_str());
  }
  return 0;
}
