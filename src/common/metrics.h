// Run-wide measurement: time-series counters and latency recording.
//
// The benchmark figures in the paper are either scalars (peak throughput),
// distributions (latency CDFs), or time series (throughput / moved objects /
// %multi-partition per second). MetricsRegistry supports all three without
// the protocols knowing what will be plotted.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/ids.h"

namespace dynastar {

/// One metric label as (key, value). Labels qualify a base metric name into
/// a per-node/per-partition series without inventing ad-hoc name prefixes.
using MetricLabel = std::pair<std::string, std::string>;

/// Canonical rendering of a labeled metric: name{k1=v1,k2=v2} with keys
/// sorted, so the same label set always maps to the same series.
std::string labeled_metric_name(const std::string& name,
                                std::initializer_list<MetricLabel> labels);

/// A counter sampled into fixed-width time buckets (defaults to one simulated
/// second), yielding a per-second rate series.
class TimeSeries {
 public:
  explicit TimeSeries(SimTime bucket_width = seconds(1))
      : bucket_width_(bucket_width) {}

  void add(SimTime now, double amount = 1.0);

  /// Value accumulated in bucket i (bucket i covers
  /// [i*width, (i+1)*width)). Buckets never touched read as 0.
  [[nodiscard]] double at(std::size_t bucket) const;
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] SimTime bucket_width() const { return bucket_width_; }
  [[nodiscard]] double total() const;

 private:
  SimTime bucket_width_;
  std::vector<double> buckets_;
};

/// Central sink for everything the benches report. One instance per run;
/// components hold a pointer and record into named series/histograms.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(SimTime bucket_width = seconds(1))
      : bucket_width_(bucket_width) {}

  /// Named counter series (created on first use).
  TimeSeries& series(const std::string& name);
  [[nodiscard]] const TimeSeries* find_series(const std::string& name) const;

  /// Labeled series: series("server.executed", {{"partition", "2"}}) is the
  /// series named server.executed{partition=2}.
  TimeSeries& series(const std::string& name,
                     std::initializer_list<MetricLabel> labels) {
    return series(labeled_metric_name(name, labels));
  }
  [[nodiscard]] const TimeSeries* find_series(
      const std::string& name,
      std::initializer_list<MetricLabel> labels) const {
    return find_series(labeled_metric_name(name, labels));
  }

  /// Named latency histogram (created on first use).
  Histogram& histogram(const std::string& name);
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  Histogram& histogram(const std::string& name,
                       std::initializer_list<MetricLabel> labels) {
    return histogram(labeled_metric_name(name, labels));
  }
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name,
      std::initializer_list<MetricLabel> labels) const {
    return find_histogram(labeled_metric_name(name, labels));
  }

  /// Plain scalar counters.
  void add_counter(const std::string& name, double amount = 1.0);
  [[nodiscard]] double counter(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, TimeSeries>& all_series() const {
    return series_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& all_histograms() const {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, double>& all_counters() const {
    return counters_;
  }

 private:
  SimTime bucket_width_;
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, double> counters_;
};

}  // namespace dynastar
