#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace dynastar {

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<Object>(value_);
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no Inf/NaN
    return;
  }
  // Integral values print without a fraction so ids/counts stay readable.
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    append_escaped(out, as_string());
  } else if (is_array()) {
    const Array& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const Json& v : arr) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += ']';
  } else {
    const Object& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, v] : obj) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      append_escaped(out, key);
      out += indent > 0 ? ": " : ":";
      v.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over the full grammar the dumper emits.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Json> run() {
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n': return literal("null") ? std::optional<Json>(Json(nullptr))
                                       : std::nullopt;
      case 't': return literal("true") ? std::optional<Json>(Json(true))
                                       : std::nullopt;
      case 'f': return literal("false") ? std::optional<Json>(Json(false))
                                        : std::nullopt;
      case '"': return parse_string();
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  std::optional<Json> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return std::nullopt;
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {  // 2-byte UTF-8 is all the exporter can need
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      eat_digits();
    }
    if (!digits) return std::nullopt;
    return Json(std::stod(text_.substr(start, pos_ - start)));
  }

  std::optional<Json> parse_array() {
    if (!consume('[')) return std::nullopt;
    Json::Array arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      arr.push_back(std::move(*value));
      if (consume(']')) return Json(std::move(arr));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> parse_object() {
    if (!consume('{')) return std::nullopt;
    Json::Object obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      auto value = parse_value();
      if (!value) return std::nullopt;
      obj.emplace(key->as_string(), std::move(*value));
      if (consume('}')) return Json(std::move(obj));
      if (!consume(',')) return std::nullopt;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text) {
  return Parser(text).run();
}

}  // namespace dynastar
