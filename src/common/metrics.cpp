#include "common/metrics.h"

#include <algorithm>
#include <numeric>

namespace dynastar {

std::string labeled_metric_name(const std::string& name,
                                std::initializer_list<MetricLabel> labels) {
  if (labels.size() == 0) return name;
  std::vector<MetricLabel> sorted(labels);
  std::sort(sorted.begin(), sorted.end());
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += '=';
    out += value;
  }
  out += '}';
  return out;
}

void TimeSeries::add(SimTime now, double amount) {
  if (now < 0) now = 0;
  const auto bucket = static_cast<std::size_t>(now / bucket_width_);
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0.0);
  buckets_[bucket] += amount;
}

double TimeSeries::at(std::size_t bucket) const {
  return bucket < buckets_.size() ? buckets_[bucket] : 0.0;
}

double TimeSeries::total() const {
  return std::accumulate(buckets_.begin(), buckets_.end(), 0.0);
}

TimeSeries& MetricsRegistry::series(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end())
    it = series_.emplace(name, TimeSeries(bucket_width_)).first;
  return it->second;
}

const TimeSeries* MetricsRegistry::find_series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::add_counter(const std::string& name, double amount) {
  counters_[name] += amount;
}

double MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

}  // namespace dynastar
