// Latency histogram with percentile and CDF queries.
//
// Log-bucketed (HDR-style) so recording is O(1) and memory is bounded
// regardless of sample count; resolution is ~1% relative error, ample for
// the avg / p95 / CDF series the paper's figures report.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace dynastar {

class Histogram {
 public:
  Histogram();

  /// Records one duration (negative values are clamped to zero).
  void record(SimTime value);

  /// Merges another histogram into this one.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] SimTime min() const;
  [[nodiscard]] SimTime max() const;
  [[nodiscard]] double mean() const;

  /// Value at quantile q in [0, 1]; 0 if the histogram is empty.
  [[nodiscard]] SimTime percentile(double q) const;

  /// Full CDF as (value, cumulative fraction) points, one per non-empty
  /// bucket — ready to print as a figure series.
  struct CdfPoint {
    SimTime value;
    double fraction;
  };
  [[nodiscard]] std::vector<CdfPoint> cdf() const;

  void clear();

 private:
  static std::size_t bucket_for(SimTime value);
  static SimTime bucket_midpoint(std::size_t bucket);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  SimTime min_ = kSimTimeNever;
  SimTime max_ = 0;
};

}  // namespace dynastar
