// Minimal JSON value type: enough for RunReport export and its round-trip
// tests, with no external dependency. Objects keep keys sorted (std::map),
// so dumping the same logical document always yields the same bytes —
// which is what lets tests compare reports from same-seed runs textually.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace dynastar {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(value_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(value_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(value_);
  }
  Array& as_array() { return std::get<Array>(value_); }
  Object& as_object() { return std::get<Object>(value_); }

  /// Object member access; null for missing keys / non-objects.
  [[nodiscard]] const Json* find(const std::string& key) const;
  Json& operator[](const std::string& key) {
    if (!is_object()) value_ = Object{};
    return std::get<Object>(value_)[key];
  }

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses a JSON document; nullopt on any syntax error. Numbers are
  /// doubles; \uXXXX escapes outside ASCII are preserved verbatim (the
  /// exporter never emits them).
  static std::optional<Json> parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace dynastar
