// RunReport: turns a finished run's MetricsRegistry + TraceCollector into a
// machine-readable report — per-phase latency breakdowns derived from the
// command-lifecycle trace, every metric series/histogram/counter, the
// repartition-epoch timeline, and chaos events.
//
// Phase model (docs/OBSERVABILITY.md): per completed command the trace
// yields monotone boundaries issue <= route(final attempt) <= oracle relay
// <= server delivery <= execute start <= reply sent <= complete; missing
// boundaries inherit their predecessor. The six phase durations telescope,
// so their sum is exactly the end-to-end latency — a property the CI smoke
// test asserts on the exported JSON.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace dynastar {

/// One lifecycle phase aggregated over all completed commands.
struct PhaseStats {
  std::string name;
  double total_ns = 0;   // summed over commands
  std::uint64_t count = 0;  // commands contributing (all completed commands)
  [[nodiscard]] double mean_ns() const {
    return count == 0 ? 0.0 : total_ns / static_cast<double>(count);
  }
};

/// Where each completed command's time went, phase by phase.
struct PhaseBreakdown {
  /// Fixed order: retry, resolve, order, coordinate, execute, reply.
  std::vector<PhaseStats> phases;
  std::uint64_t commands = 0;   // completed commands seen in the trace
  double e2e_total_ns = 0;      // sum of (complete - issue) over them
  [[nodiscard]] double e2e_mean_ns() const {
    return commands == 0 ? 0.0 : e2e_total_ns / static_cast<double>(commands);
  }
};

/// Derives the per-phase breakdown from a lifecycle trace. Commands without
/// a kClientComplete (still in flight at the end of the run) are skipped.
PhaseBreakdown compute_phase_breakdown(const TraceCollector& trace);

/// Caller-provided run identity embedded under the report's "meta" key.
struct RunInfo {
  std::string workload;
  std::string mode;
  std::uint64_t seed = 0;
  double duration_s = 0;
  std::uint64_t partitions = 0;
  std::uint64_t clients = 0;
};

/// Builds the full report document. Top-level keys: "meta", "phases",
/// "e2e", "series", "histograms", "counters", "repartitions", "chaos".
/// With tracing disabled, "phases"/"repartitions"/"chaos" are empty and
/// "e2e" falls back to the "latency" histogram.
Json build_run_report(const MetricsRegistry& metrics,
                      const TraceCollector& trace, const RunInfo& info);

/// Writes `report.dump(2)` to `path`; false on I/O failure.
bool write_report_json(const Json& report, const std::string& path);

/// Flat CSV rendering of a report (section,key,bucket/quantile,value rows),
/// for spreadsheet-side consumption of the same data.
void write_report_csv(const Json& report, std::FILE* out);

}  // namespace dynastar
