#include "common/logging.h"

namespace dynastar {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

}  // namespace dynastar
