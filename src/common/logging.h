// Minimal leveled logging. Disabled by default so tight simulation loops pay
// a single branch; benches and debugging sessions enable it explicitly.
#pragma once

#include <iostream>
#include <sstream>

namespace dynastar {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Global log threshold. Not thread-protected: the simulator is
/// single-threaded by design, and the level is set once at startup.
LogLevel& log_level();

namespace detail {
class LogLine {
 public:
  explicit LogLine(const char* tag) { stream_ << '[' << tag << "] "; }
  ~LogLine() {
    stream_ << '\n';
    std::cerr << stream_.str();
  }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dynastar

#define DYNASTAR_LOG(level, tag)                                \
  if (::dynastar::LogLevel::level < ::dynastar::log_level()) {} \
  else ::dynastar::detail::LogLine(tag)

#define LOG_TRACE DYNASTAR_LOG(kTrace, "TRACE")
#define LOG_DEBUG DYNASTAR_LOG(kDebug, "DEBUG")
#define LOG_INFO DYNASTAR_LOG(kInfo, "INFO")
#define LOG_WARN DYNASTAR_LOG(kWarn, "WARN")
