#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dynastar {

namespace {
// 64 exponent ranges x 32 linear sub-buckets: ~3% relative resolution.
constexpr std::size_t kSubBuckets = 32;
constexpr std::size_t kSubBucketBits = 5;
constexpr std::size_t kTotalBuckets = 64 * kSubBuckets;
}  // namespace

Histogram::Histogram() : buckets_(kTotalBuckets, 0) {}

std::size_t Histogram::bucket_for(SimTime value) {
  std::uint64_t v = value <= 0 ? 0 : static_cast<std::uint64_t>(value);
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - static_cast<int>(kSubBucketBits);
  const std::uint64_t sub = (v >> shift) & (kSubBuckets - 1);
  const std::size_t exp_index =
      static_cast<std::size_t>(msb) - kSubBucketBits + 1;
  return exp_index * kSubBuckets + static_cast<std::size_t>(sub);
}

SimTime Histogram::bucket_midpoint(std::size_t bucket) {
  if (bucket < kSubBuckets) return static_cast<SimTime>(bucket);
  const std::size_t exp_index = bucket / kSubBuckets;
  const std::uint64_t sub = bucket % kSubBuckets;
  const int shift = static_cast<int>(exp_index) - 1;
  const std::uint64_t lo = (kSubBuckets + sub) << shift;
  const std::uint64_t width = 1ULL << shift;
  return static_cast<SimTime>(lo + width / 2);
}

void Histogram::record(SimTime value) {
  if (value < 0) value = 0;
  buckets_[bucket_for(value)]++;
  ++count_;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kTotalBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

SimTime Histogram::min() const { return count_ == 0 ? 0 : min_; }
SimTime Histogram::max() const { return max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

SimTime Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kTotalBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) return bucket_midpoint(i);
    if (seen >= target) {
      // target fell on an empty bucket boundary; find next non-empty.
      for (std::size_t j = i; j < kTotalBuckets; ++j)
        if (buckets_[j] > 0) return bucket_midpoint(j);
    }
  }
  return max_;
}

std::vector<Histogram::CdfPoint> Histogram::cdf() const {
  std::vector<CdfPoint> points;
  if (count_ == 0) return points;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kTotalBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    points.push_back({bucket_midpoint(i),
                      static_cast<double>(seen) / static_cast<double>(count_)});
  }
  return points;
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = kSimTimeNever;
  max_ = 0;
}

}  // namespace dynastar
