#include "common/report.h"

#include <algorithm>
#include <unordered_map>

namespace dynastar {

namespace {

constexpr const char* kPhaseNames[] = {"retry",      "resolve", "order",
                                       "coordinate", "execute", "reply"};
constexpr std::size_t kNumPhases = 6;

/// Per-command boundary accumulator. Boundaries for the *final* attempt
/// only; multi-replica points keep the earliest (first replica to reach
/// the point defines when the phase ended).
struct CmdRec {
  SimTime issue = -1;
  SimTime complete = -1;
  std::uint32_t final_attempt = 0;
  SimTime route = -1;
  SimTime relay = -1;
  SimTime deliver = -1;
  SimTime execute = -1;
  SimTime reply = -1;
  bool done = false;
};

void keep_min(SimTime& slot, SimTime t) {
  if (slot < 0 || t < slot) slot = t;
}

}  // namespace

PhaseBreakdown compute_phase_breakdown(const TraceCollector& trace) {
  PhaseBreakdown out;
  out.phases.resize(kNumPhases);
  for (std::size_t i = 0; i < kNumPhases; ++i)
    out.phases[i].name = kPhaseNames[i];

  // Pass 1: completion marks which attempt is final per command.
  std::unordered_map<std::uint64_t, CmdRec> cmds;
  for (const TraceEvent& ev : trace.events()) {
    switch (ev.point) {
      case TracePoint::kClientIssue: {
        CmdRec& rec = cmds[ev.key];
        if (rec.issue < 0) rec.issue = ev.time;
        break;
      }
      case TracePoint::kClientComplete: {
        CmdRec& rec = cmds[ev.key];
        rec.complete = ev.time;
        rec.final_attempt = ev.attempt;
        rec.done = true;
        break;
      }
      default: break;
    }
  }

  // Pass 2: boundary points of the final attempt only. An earlier attempt's
  // time is charged to the "retry" phase wholesale.
  for (const TraceEvent& ev : trace.events()) {
    auto it = cmds.find(ev.key);
    if (it == cmds.end() || !it->second.done) continue;
    CmdRec& rec = it->second;
    if (ev.attempt != rec.final_attempt) continue;
    switch (ev.point) {
      case TracePoint::kClientRoute: keep_min(rec.route, ev.time); break;
      case TracePoint::kOracleRelay: keep_min(rec.relay, ev.time); break;
      case TracePoint::kServerDeliver: keep_min(rec.deliver, ev.time); break;
      case TracePoint::kExecuteStart: keep_min(rec.execute, ev.time); break;
      case TracePoint::kReplySent: keep_min(rec.reply, ev.time); break;
      default: break;
    }
  }

  for (const auto& [cmd_id, rec] : cmds) {
    if (!rec.done || rec.issue < 0) continue;
    // Monotone boundary chain; a missing boundary inherits its predecessor
    // (its phase then contributes zero), and clock-skew-free simulation
    // makes the max() a no-op in practice.
    SimTime bounds[kNumPhases + 1];
    bounds[0] = rec.issue;
    const SimTime raw[kNumPhases] = {rec.route,   rec.relay, rec.deliver,
                                     rec.execute, rec.reply, rec.complete};
    for (std::size_t i = 0; i < kNumPhases; ++i)
      bounds[i + 1] = std::max(bounds[i], raw[i] < 0 ? bounds[i] : raw[i]);
    // The last boundary is completion by construction (complete >= all).
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      out.phases[i].total_ns += static_cast<double>(bounds[i + 1] - bounds[i]);
      out.phases[i].count += 1;
    }
    out.commands += 1;
    out.e2e_total_ns += static_cast<double>(rec.complete - rec.issue);
  }
  return out;
}

namespace {

Json series_to_json(const TimeSeries& series) {
  Json::Array buckets;
  buckets.reserve(series.num_buckets());
  for (std::size_t i = 0; i < series.num_buckets(); ++i)
    buckets.emplace_back(series.at(i));
  Json::Object obj;
  obj.emplace("bucket_seconds", Json(to_seconds(series.bucket_width())));
  obj.emplace("values", Json(std::move(buckets)));
  obj.emplace("total", Json(series.total()));
  return Json(std::move(obj));
}

Json histogram_to_json(const Histogram& hist) {
  Json::Object obj;
  obj.emplace("count", Json(hist.count()));
  obj.emplace("mean_ms", Json(to_millis(static_cast<SimTime>(hist.mean()))));
  obj.emplace("p50_ms", Json(to_millis(hist.percentile(0.50))));
  obj.emplace("p95_ms", Json(to_millis(hist.percentile(0.95))));
  obj.emplace("p99_ms", Json(to_millis(hist.percentile(0.99))));
  obj.emplace("max_ms", Json(to_millis(hist.max())));
  return Json(std::move(obj));
}

}  // namespace

Json build_run_report(const MetricsRegistry& metrics,
                      const TraceCollector& trace, const RunInfo& info) {
  Json report{Json::Object{}};

  Json::Object meta;
  meta.emplace("workload", Json(info.workload));
  meta.emplace("mode", Json(info.mode));
  meta.emplace("seed", Json(info.seed));
  meta.emplace("duration_s", Json(info.duration_s));
  meta.emplace("partitions", Json(info.partitions));
  meta.emplace("clients", Json(info.clients));
  meta.emplace("trace_enabled", Json(trace.enabled()));
  meta.emplace("trace_events", Json(trace.size()));
  report["meta"] = Json(std::move(meta));

  // Phase breakdown (empty when tracing was off).
  const PhaseBreakdown breakdown = compute_phase_breakdown(trace);
  Json::Array phases;
  for (const PhaseStats& phase : breakdown.phases) {
    Json::Object obj;
    obj.emplace("name", Json(phase.name));
    obj.emplace("mean_ms",
                Json(to_millis(static_cast<SimTime>(phase.mean_ns()))));
    obj.emplace("total_ms",
                Json(to_millis(static_cast<SimTime>(phase.total_ns))));
    obj.emplace("count", Json(phase.count));
    phases.emplace_back(std::move(obj));
  }
  report["phases"] = Json(std::move(phases));

  Json::Object e2e;
  if (breakdown.commands > 0) {
    e2e.emplace("source", Json("trace"));
    e2e.emplace("commands", Json(breakdown.commands));
    e2e.emplace("mean_ms", Json(to_millis(static_cast<SimTime>(
                               breakdown.e2e_mean_ns()))));
  } else if (const Histogram* latency = metrics.find_histogram("latency")) {
    e2e.emplace("source", Json("histogram"));
    e2e.emplace("commands", Json(latency->count()));
    e2e.emplace("mean_ms",
                Json(to_millis(static_cast<SimTime>(latency->mean()))));
  } else {
    e2e.emplace("source", Json("none"));
    e2e.emplace("commands", Json(std::uint64_t{0}));
    e2e.emplace("mean_ms", Json(0.0));
  }
  report["e2e"] = Json(std::move(e2e));

  Json::Object series;
  for (const auto& [name, ts] : metrics.all_series())
    series.emplace(name, series_to_json(ts));
  report["series"] = Json(std::move(series));

  Json::Object histograms;
  for (const auto& [name, hist] : metrics.all_histograms())
    histograms.emplace(name, histogram_to_json(hist));
  report["histograms"] = Json(std::move(histograms));

  Json::Object counters;
  for (const auto& [name, value] : metrics.all_counters())
    counters.emplace(name, Json(value));
  report["counters"] = Json(std::move(counters));

  // Repartition-epoch timeline and chaos events, straight from the trace.
  Json::Array repartitions;
  Json::Array chaos;
  for (const TraceEvent& ev : trace.events()) {
    if (ev.point == TracePoint::kPlanApplied) {
      Json::Object obj;
      obj.emplace("t_ms", Json(to_millis(ev.time)));
      obj.emplace("epoch", Json(ev.key));
      obj.emplace("node", Json(ev.node));
      obj.emplace("partition", ev.detail == UINT64_MAX
                                   ? Json("oracle")
                                   : Json(ev.detail));
      repartitions.emplace_back(std::move(obj));
    } else if (ev.point == TracePoint::kChaosEvent) {
      Json::Object obj;
      obj.emplace("t_ms", Json(to_millis(ev.time)));
      obj.emplace("ordinal", Json(ev.key));
      chaos.emplace_back(std::move(obj));
    }
  }
  report["repartitions"] = Json(std::move(repartitions));
  report["chaos"] = Json(std::move(chaos));

  return report;
}

bool write_report_json(const Json& report, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const std::string text = report.dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size();
  std::fclose(out);
  return ok;
}

void write_report_csv(const Json& report, std::FILE* out) {
  std::fprintf(out, "section,key,index,value\n");
  if (const Json* phases = report.find("phases"); phases && phases->is_array()) {
    for (const Json& phase : phases->as_array()) {
      const Json* name = phase.find("name");
      const Json* mean = phase.find("mean_ms");
      if (name == nullptr || mean == nullptr) continue;
      std::fprintf(out, "phase,%s,mean_ms,%.6f\n", name->as_string().c_str(),
                   mean->as_number());
    }
  }
  if (const Json* e2e = report.find("e2e")) {
    if (const Json* mean = e2e->find("mean_ms"))
      std::fprintf(out, "e2e,latency,mean_ms,%.6f\n", mean->as_number());
  }
  if (const Json* counters = report.find("counters");
      counters && counters->is_object()) {
    for (const auto& [name, value] : counters->as_object())
      std::fprintf(out, "counter,%s,,%.6f\n", name.c_str(), value.as_number());
  }
  if (const Json* series = report.find("series");
      series && series->is_object()) {
    for (const auto& [name, obj] : series->as_object()) {
      const Json* values = obj.find("values");
      if (values == nullptr || !values->is_array()) continue;
      const auto& arr = values->as_array();
      for (std::size_t i = 0; i < arr.size(); ++i)
        std::fprintf(out, "series,%s,%zu,%.6f\n", name.c_str(), i,
                     arr[i].as_number());
    }
  }
}

}  // namespace dynastar
