// FlatMap: open-addressing hash map with linear probing over a single
// contiguous slot array.
//
// Drop-in replacement for the std::unordered_map uses on the hot lookup
// paths (the oracle location map / Assignment, client location caches,
// WorkloadGraph interning): one cache line per probe instead of a bucket
// pointer chase, no per-node allocation. Power-of-two capacity, byte-wise
// control array (empty / full / tombstone), max load factor 3/4 including
// tombstones.
//
// Semantics notes:
//  * erase(iterator) leaves a tombstone, so iterators to other elements
//    stay valid across erases (rehash on insert invalidates everything,
//    as with unordered_map).
//  * Iteration order is slot order — deterministic given the same sequence
//    of operations, which is what same-seed reproducibility needs.
//  * Keys and values must be default-constructible and cheap to move;
//    every intended use maps trivially-copyable ids to ids/weights.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace dynastar::common {

template <typename K, typename V, typename Hash = std::hash<K>>
class FlatMap {
 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = std::pair<K, V>;

  FlatMap() = default;

  template <bool Const>
  class Iter {
   public:
    using Map = std::conditional_t<Const, const FlatMap, FlatMap>;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;
    Iter(Map* map, std::size_t index) : map_(map), index_(index) {
      skip_to_full();
    }
    // const_iterator from iterator.
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& other)  // NOLINT(runtime/explicit)
        : map_(other.map_), index_(other.index_) {}

    reference operator*() const { return map_->slots_[index_]; }
    pointer operator->() const { return &map_->slots_[index_]; }

    Iter& operator++() {
      ++index_;
      skip_to_full();
      return *this;
    }
    Iter operator++(int) {
      Iter tmp = *this;
      ++*this;
      return tmp;
    }

    bool operator==(const Iter& other) const { return index_ == other.index_; }

   private:
    friend class FlatMap;
    void skip_to_full() {
      while (index_ < map_->ctrl_.size() && map_->ctrl_[index_] != kFull)
        ++index_;
    }
    Map* map_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, ctrl_.size()); }
  const_iterator begin() const {
    return const_iterator(this, 0);
  }
  const_iterator end() const {
    return const_iterator(this, ctrl_.size());
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    std::fill(ctrl_.begin(), ctrl_.end(), kEmpty);
    for (auto& slot : slots_) slot = value_type{};
    size_ = 0;
    used_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    // Grow until n fits under the 3/4 load cap.
    while (cap * 3 < n * 4) cap <<= 1;
    if (cap > ctrl_.size()) rehash(cap);
  }

  iterator find(const K& key) {
    const std::size_t i = find_index(key);
    return iterator(this, i == kNotFound ? ctrl_.size() : i);
  }
  const_iterator find(const K& key) const {
    const std::size_t i = find_index(key);
    return const_iterator(this, i == kNotFound ? ctrl_.size() : i);
  }

  [[nodiscard]] bool contains(const K& key) const {
    return find_index(key) != kNotFound;
  }
  [[nodiscard]] std::size_t count(const K& key) const {
    return contains(key) ? 1 : 0;
  }

  V& operator[](const K& key) {
    return slots_[insert_slot(key)].second;
  }

  V& at(const K& key) {
    const std::size_t i = find_index(key);
    assert(i != kNotFound && "FlatMap::at: missing key");
    return slots_[i].second;
  }
  const V& at(const K& key) const {
    const std::size_t i = find_index(key);
    assert(i != kNotFound && "FlatMap::at: missing key");
    return slots_[i].second;
  }

  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    return try_emplace(key, std::forward<Args>(args)...);
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    const std::size_t before = size_;
    const std::size_t i = insert_slot(key);
    const bool inserted = size_ != before;
    if (inserted) slots_[i].second = V(std::forward<Args>(args)...);
    return {iterator(this, i), inserted};
  }

  std::pair<iterator, bool> insert(const value_type& kv) {
    return try_emplace(kv.first, kv.second);
  }

  template <typename U>
  std::pair<iterator, bool> insert_or_assign(const K& key, U&& value) {
    const std::size_t before = size_;
    const std::size_t i = insert_slot(key);
    slots_[i].second = std::forward<U>(value);
    return {iterator(this, i), size_ != before};
  }

  std::size_t erase(const K& key) {
    const std::size_t i = find_index(key);
    if (i == kNotFound) return 0;
    erase_index(i);
    return 1;
  }

  iterator erase(iterator pos) {
    assert(pos.map_ == this && ctrl_[pos.index_] == kFull);
    erase_index(pos.index_);
    return iterator(this, pos.index_ + 1);
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTomb = 2;
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t mask() const { return ctrl_.size() - 1; }

  [[nodiscard]] std::size_t find_index(const K& key) const {
    if (ctrl_.empty()) return kNotFound;
    std::size_t i = Hash{}(key) & mask();
    for (;;) {
      if (ctrl_[i] == kEmpty) return kNotFound;
      if (ctrl_[i] == kFull && slots_[i].first == key) return i;
      i = (i + 1) & mask();
    }
  }

  /// Finds the slot for `key`, inserting (possibly reusing a tombstone and
  /// possibly rehashing) if absent. Returns the slot index.
  std::size_t insert_slot(const K& key) {
    if (ctrl_.empty()) rehash(kMinCapacity);
    std::size_t i = Hash{}(key) & mask();
    std::size_t first_tomb = kNotFound;
    for (;;) {
      if (ctrl_[i] == kEmpty) break;
      if (ctrl_[i] == kFull && slots_[i].first == key) return i;
      if (ctrl_[i] == kTomb && first_tomb == kNotFound) first_tomb = i;
      i = (i + 1) & mask();
    }
    if (first_tomb != kNotFound) {
      i = first_tomb;  // reuse the tombstone; used_ stays constant
    } else {
      ++used_;
    }
    ctrl_[i] = kFull;
    slots_[i].first = key;
    slots_[i].second = V{};
    ++size_;
    if (used_ * 4 > ctrl_.size() * 3) {
      rehash(ctrl_.size() * 2);
      return find_index(key);
    }
    return i;
  }

  void erase_index(std::size_t i) {
    ctrl_[i] = kTomb;
    slots_[i] = value_type{};  // drop any held resources
    --size_;
  }

  void rehash(std::size_t new_cap) {
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<value_type> old_slots = std::move(slots_);
    ctrl_.assign(new_cap, kEmpty);
    slots_.assign(new_cap, value_type{});
    size_ = 0;
    used_ = 0;
    for (std::size_t j = 0; j < old_ctrl.size(); ++j) {
      if (old_ctrl[j] != kFull) continue;
      std::size_t i = Hash{}(old_slots[j].first) & mask();
      while (ctrl_[i] != kEmpty) i = (i + 1) & mask();
      ctrl_[i] = kFull;
      slots_[i] = std::move(old_slots[j]);
      ++size_;
      ++used_;
    }
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<value_type> slots_;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live entries + tombstones
};

}  // namespace dynastar::common
