#include "common/linearizability.h"

#include <unordered_map>

namespace dynastar {

namespace {

// Backtracking search in the style of Wing & Gong: repeatedly pick a
// "minimal" pending operation (one no other pending operation precedes in
// real time), check it against the candidate sequential state, and recurse.
class Checker {
 public:
  explicit Checker(const std::vector<KvOperation>& history)
      : history_(history) {}

  LinearizabilityResult run() {
    done_.assign(history_.size(), false);
    if (search(0)) return {true, std::nullopt};
    LinearizabilityResult result;
    result.linearizable = false;
    result.stuck_operation = deepest_stuck_;
    return result;
  }

 private:
  bool is_minimal(std::size_t i) const {
    for (std::size_t j = 0; j < history_.size(); ++j) {
      if (done_[j] || j == i) continue;
      if (history_[j].response_time < history_[i].invoke_time) return false;
    }
    return true;
  }

  /// Applies op if its observations match `state_`; fills `undo` so the
  /// caller can revert. Returns false (leaving state untouched) otherwise.
  bool apply(const KvOperation& op,
             std::vector<std::optional<std::uint64_t>>* undo) {
    for (std::size_t k = 0; k < op.keys.size(); ++k) {
      auto it = state_.find(op.keys[k]);
      const std::optional<std::uint64_t> current =
          it == state_.end() ? std::nullopt
                             : std::optional<std::uint64_t>(it->second);
      if (k < op.observed.size() && current != op.observed[k]) return false;
    }
    if (op.is_put) {
      undo->reserve(op.keys.size());
      for (std::uint64_t key : op.keys) {
        auto it = state_.find(key);
        undo->push_back(it == state_.end()
                            ? std::nullopt
                            : std::optional<std::uint64_t>(it->second));
        state_[key] = op.value;
      }
    }
    return true;
  }

  void revert(const KvOperation& op,
              const std::vector<std::optional<std::uint64_t>>& undo) {
    if (!op.is_put) return;
    for (std::size_t k = op.keys.size(); k-- > 0;) {
      if (undo[k].has_value())
        state_[op.keys[k]] = *undo[k];
      else
        state_.erase(op.keys[k]);
    }
  }

  bool search(std::size_t placed) {
    if (placed == history_.size()) return true;
    for (std::size_t i = 0; i < history_.size(); ++i) {
      if (done_[i] || !is_minimal(i)) continue;
      std::vector<std::optional<std::uint64_t>> undo;
      if (apply(history_[i], &undo)) {
        done_[i] = true;
        if (search(placed + 1)) return true;
        done_[i] = false;
        revert(history_[i], undo);
      } else if (placed >= deepest_) {
        deepest_ = placed;
        deepest_stuck_ = i;
      }
    }
    return false;
  }

  const std::vector<KvOperation>& history_;
  std::vector<bool> done_;
  std::unordered_map<std::uint64_t, std::uint64_t> state_;
  std::size_t deepest_ = 0;
  std::optional<std::size_t> deepest_stuck_;
};

}  // namespace

LinearizabilityResult check_kv_linearizable(
    const std::vector<KvOperation>& history) {
  Checker checker(history);
  return checker.run();
}

}  // namespace dynastar
