#include "common/linearizability.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace dynastar {

namespace {

/// Order-independent 64-bit hash of a (key, value) register pair, so the
/// whole map hashes to the XOR of its pairs and updates incrementally.
std::uint64_t pair_hash(std::uint64_t key, std::uint64_t value) {
  std::uint64_t x = key * 0x9e3779b97f4a7c15ull ^ (value + 0x165667b19e3779f9ull);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Backtracking search in the style of Wing & Gong: repeatedly pick a
// "minimal" pending operation (one no other pending operation precedes in
// real time), check it against the candidate sequential state, and recurse.
// Memoized à la Lowe: a configuration is the set of placed operations plus
// the register state it produced; any configuration that once failed to
// extend to a full witness fails forever, so revisits are pruned. Histories
// with long overlapping retry windows (chaos runs) are exponential without
// this and near-linear with it.
class Checker {
 public:
  explicit Checker(const std::vector<KvOperation>& history)
      : history_(history) {}

  LinearizabilityResult run() {
    done_.assign(history_.size(), false);
    mask_.assign((history_.size() + 63) / 64, 0);
    if (search(0)) return {true, std::nullopt};
    LinearizabilityResult result;
    result.linearizable = false;
    result.stuck_operation = deepest_stuck_;
    return result;
  }

 private:
  bool is_minimal(std::size_t i) const {
    for (std::size_t j = 0; j < history_.size(); ++j) {
      if (done_[j] || j == i) continue;
      if (history_[j].response_time < history_[i].invoke_time) return false;
    }
    return true;
  }

  /// Applies op if its observations match `state_`; fills `undo` so the
  /// caller can revert. Returns false (leaving state untouched) otherwise.
  bool apply(const KvOperation& op,
             std::vector<std::optional<std::uint64_t>>* undo) {
    for (std::size_t k = 0; k < op.keys.size(); ++k) {
      auto it = state_.find(op.keys[k]);
      const std::optional<std::uint64_t> current =
          it == state_.end() ? std::nullopt
                             : std::optional<std::uint64_t>(it->second);
      if (k < op.observed.size() && current != op.observed[k]) return false;
    }
    if (op.is_put) {
      undo->reserve(op.keys.size());
      for (std::uint64_t key : op.keys) {
        auto it = state_.find(key);
        undo->push_back(it == state_.end()
                            ? std::nullopt
                            : std::optional<std::uint64_t>(it->second));
        if (it != state_.end()) state_hash_ ^= pair_hash(key, it->second);
        state_hash_ ^= pair_hash(key, op.value);
        state_[key] = op.value;
      }
    }
    return true;
  }

  void revert(const KvOperation& op,
              const std::vector<std::optional<std::uint64_t>>& undo) {
    if (!op.is_put) return;
    for (std::size_t k = op.keys.size(); k-- > 0;) {
      state_hash_ ^= pair_hash(op.keys[k], state_[op.keys[k]]);
      if (undo[k].has_value()) {
        state_hash_ ^= pair_hash(op.keys[k], *undo[k]);
        state_[op.keys[k]] = *undo[k];
      } else {
        state_.erase(op.keys[k]);
      }
    }
  }

  /// The memo key: exact placed-set bitmask plus the state hash.
  std::string config_key() const {
    std::string key;
    key.reserve(mask_.size() * 8 + 8);
    for (std::uint64_t word : mask_)
      key.append(reinterpret_cast<const char*>(&word), 8);
    key.append(reinterpret_cast<const char*>(&state_hash_), 8);
    return key;
  }

  bool search(std::size_t placed) {
    if (placed == history_.size()) return true;
    if (!visited_.insert(config_key()).second) return false;
    for (std::size_t i = 0; i < history_.size(); ++i) {
      if (done_[i] || !is_minimal(i)) continue;
      std::vector<std::optional<std::uint64_t>> undo;
      if (apply(history_[i], &undo)) {
        done_[i] = true;
        mask_[i / 64] |= 1ull << (i % 64);
        if (search(placed + 1)) return true;
        done_[i] = false;
        mask_[i / 64] &= ~(1ull << (i % 64));
        revert(history_[i], undo);
      } else if (placed >= deepest_) {
        deepest_ = placed;
        deepest_stuck_ = i;
      }
    }
    return false;
  }

  const std::vector<KvOperation>& history_;
  std::vector<bool> done_;
  std::vector<std::uint64_t> mask_;
  std::unordered_map<std::uint64_t, std::uint64_t> state_;
  std::uint64_t state_hash_ = 0;
  std::unordered_set<std::string> visited_;
  std::size_t deepest_ = 0;
  std::optional<std::size_t> deepest_stuck_;
};

}  // namespace

LinearizabilityResult check_kv_linearizable(
    const std::vector<KvOperation>& history) {
  Checker checker(history);
  return checker.run();
}

}  // namespace dynastar
