// Canonical metric names. Core, benches, tools, and tests all refer to
// these constants instead of scattering raw string literals; the exporter
// (common/report.h) documents the same names in its schema.
//
// Naming scheme (see docs/OBSERVABILITY.md):
//  * run-wide series/histograms use bare names ("completed", "latency");
//  * component-scoped ones are dotted ("oracle.queries", "client.retries");
//  * per-node variants add labels via MetricsRegistry's labeled overloads,
//    rendered as name{key=value,...} with keys sorted ("server.executed
//    {partition=2,replica=0}").
#pragma once

namespace dynastar::metric {

// --- client-side (recorded by every client) ---
inline constexpr const char* kCompleted = "completed";
inline constexpr const char* kCompletedMulti = "completed_multi";
inline constexpr const char* kLatency = "latency";
inline constexpr const char* kLatencySingle = "latency_single";
inline constexpr const char* kLatencyMulti = "latency_multi";
inline constexpr const char* kClientRetries = "client.retries";
inline constexpr const char* kClientTimeouts = "client.timeouts";
inline constexpr const char* kClientRetransmits = "client.retransmits";
/// Busy replies observed by clients (series; distinguishes shed from
/// timeout in the retry accounting).
inline constexpr const char* kClientShed = "client.shed";
/// Commands completed kOverloaded after the retry budget ran dry (counter).
inline constexpr const char* kClientRetriesExhausted =
    "client.retries_exhausted";

// --- partition servers (recorded by the primary replica) ---
inline constexpr const char* kExecuted = "executed";
inline constexpr const char* kMultiPartition = "mpart";
inline constexpr const char* kObjectsExchanged = "objects_exchanged";
inline constexpr const char* kServerRetries = "retries";
inline constexpr const char* kPlanApplied = "plan_applied";
inline constexpr const char* kPlanHandoffs = "plan_handoffs";
inline constexpr const char* kVerticesMovedOut = "vertices_moved_out";
inline constexpr const char* kVerticesMovedIn = "vertices_moved_in";
inline constexpr const char* kServerReplyCacheHits = "server.reply_cache_hits";
// Labeled per-node variants ({partition=P,replica=R}).
inline constexpr const char* kServerExecuted = "server.executed";
inline constexpr const char* kServerMultiPartition = "server.mpart";
inline constexpr const char* kServerObjectsExchanged =
    "server.objects_exchanged";
inline constexpr const char* kServerQueueDepth = "server.queue_depth";
/// Client-facing commands shed at admission (counter + per-node series).
inline constexpr const char* kServerShed = "server.shed";

// --- read leases (read_leases && DynaStar/DS-SMR only; all counters) ---
/// Lease grants sent by lenders (full + data-less).
inline constexpr const char* kServerLeaseGrants = "server.lease_grants";
/// Read-only multi-partition commands executed off validated leases.
inline constexpr const char* kServerLeaseReads = "server.lease_reads";
/// Lease validations that failed (epoch/version mismatch) and fell back to
/// the retry path.
inline constexpr const char* kServerLeaseFallbacks = "server.lease_fallbacks";
/// Lease revocations sent (lender-side writes/migrations + reader-side
/// failed validations).
inline constexpr const char* kServerLeaseRevokes = "server.lease_revokes";
/// Multi-partition relays the oracle served knowing the partitions will
/// coordinate via leases instead of borrow/return.
inline constexpr const char* kOracleLeaseRelays = "oracle.lease_relays";

// --- STAR asymmetric execution (mode == kStar only) ---
/// Epoch switches executed at the master (counter).
inline constexpr const char* kStarEpochs = "star.epochs";
/// Multi-partition commands executed in deferred epoch batches (counter).
inline constexpr const char* kStarDeferred = "star.deferred";

// --- intra-partition parallel executor (exec_lanes > 1 only) ---
/// Batches flushed through the conflict-graph executor (counter).
inline constexpr const char* kExecBatches = "executor.batches";
/// Commands executed via batches (counter; singles flushed alone count 1).
inline constexpr const char* kExecBatchedCommands =
    "executor.batched_commands";
/// Slot-order conflict edges across all batches (counter).
inline constexpr const char* kExecConflictEdges = "executor.conflict_edges";
/// Per-batch lane occupancy, serial_cost / (lanes * makespan) (series).
inline constexpr const char* kExecLaneOccupancy = "executor.lane_occupancy";

// --- recovery (checkpoints + snapshot state transfer) ---
inline constexpr const char* kServerCheckpoints = "server.checkpoints";
inline constexpr const char* kServerSnapshotInstalls =
    "server.snapshot_installs";
inline constexpr const char* kOracleCheckpoints = "oracle.checkpoints";
inline constexpr const char* kOracleSnapshotInstalls =
    "oracle.snapshot_installs";

// --- oracle ---
inline constexpr const char* kOracleQueries = "oracle.queries";
inline constexpr const char* kOracleRepartitions = "oracle.repartitions";
inline constexpr const char* kOraclePlansApplied = "oracle.plans_applied";
inline constexpr const char* kOracleReplyCacheHits = "oracle.reply_cache_hits";
/// Cache-miss lookups shed before classification (counter).
inline constexpr const char* kOracleShed = "oracle.shed";
/// Oracle admission depth (inbox + unacked relays + pending creates),
/// labeled {replica=R}.
inline constexpr const char* kOracleQueueDepth = "oracle.queue_depth";

// --- chunked state transfer (paxos snapshot installs + handoffs) ---
/// Chunks served to receivers (counter; sender side).
inline constexpr const char* kTransferChunksSent = "transfer.chunks_sent";
/// Chunk requests re-issued after a retransmit timeout (counter; receiver
/// side — includes re-requests redirected to a different peer).
inline constexpr const char* kTransferChunksRetransmitted =
    "transfer.chunks_retransmitted";

// --- network (per-link accounting; only links with a non-null resolved
// LinkProfile record it) ---
/// Bytes offered to a modeled link, labeled {link=sA->sB} for site-pair
/// resolved links and {link=pF->pT} for explicit per-link overrides.
inline constexpr const char* kNetworkBytesSent = "network.bytes_sent";

// --- chaos ---
inline constexpr const char* kChaosEvents = "chaos.events";

}  // namespace dynastar::metric
