#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace dynastar {

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform01() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

Rng Rng::fork() {
  // Mix two draws so children of consecutive forks are decorrelated.
  std::uint64_t s = engine_() * 0x9e3779b97f4a7c15ULL ^ engine_();
  return Rng(s);
}

namespace {
double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = zeta(n, theta);
  zeta2theta_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfGenerator::next(Rng& rng) const {
  double u = rng.uniform01();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto rank = static_cast<std::uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

std::uint64_t NuRand::next(Rng& rng) const {
  std::uint64_t r1 = rng.uniform(0, a_);
  std::uint64_t r2 = rng.uniform(x_, y_);
  return (((r1 | r2) + c_) % (y_ - x_ + 1)) + x_;
}

}  // namespace dynastar
