// Command-lifecycle tracing: a deterministic, allocation-light event
// collector recording where each command's time goes — client issue/retry,
// oracle relay, atomic-multicast ordering, borrow/return coordination,
// execution, reply — plus infrastructure events (multicast deliveries,
// Paxos decisions, plan applications, chaos injections).
//
// Design constraints (asserted by tests/test_observability.cpp):
//  * side-effect-free: recording never touches RNGs, timers, or protocol
//    state, so a traced run is event-for-event identical to an untraced one;
//  * bit-deterministic: events are appended in simulation order, so two
//    same-seed runs produce byte-identical traces;
//  * zero-cost when disabled: every hook is a single predictable branch on
//    `enabled()`; no arguments are materialized behind it.
//
// See docs/OBSERVABILITY.md for the span model and how phases are derived.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/ids.h"

namespace dynastar {

/// Where in a command's (or message's) lifecycle an event was recorded.
/// The meaning of `key`/`detail` depends on the point (see TraceEvent).
enum class TracePoint : std::uint8_t {
  // --- command lifecycle: key = cmd_id, attempt = client attempt ---
  kClientIssue,       // client created the command; detail = CommandType
  kClientRoute,       // client routed an attempt; detail = 1 if via oracle
  kClientRetry,       // re-route; detail = 0 timeout, 1 kRetry, 2 kBusy
  kOracleRelay,       // oracle replica delivered + relayed; detail = target
  kServerDeliver,     // ExecCommand a-delivered; detail = partition
  kExecuteStart,      // app execution begins; detail = partition
  kReplySent,         // CommandReply sent; detail = ReplyStatus
  kClientComplete,    // client observed the result; detail = ReplyStatus
  // --- borrow / return coordination: key = cmd_id ---
  kTransferSent,      // source shipped its variables; detail = target part.
  kTransferReceived,  // target received a transfer; detail = source part.
  kReturnSent,        // target returned variables; detail = dest partition
  kReturnReceived,    // source got its variables back; detail = sender part.
  // --- infrastructure: attempt = 0 ---
  kMcastDelivered,    // key = multicast uid, detail = group
  kPaxosDecided,      // key = delivery seq, detail = group
  kPlanApplied,       // key = epoch, detail = partition (oracle: UINT64_MAX)
  kChaosEvent,        // key = event ordinal
  // --- recovery: key = slot position, detail = partition (see §Recovery) ---
  kCheckpoint,        // durable checkpoint captured; key = checkpoint slot
  kRecoveryRestore,   // recovered node restored its checkpoint; key = slot
  kSnapshotInstall,   // lagging replica installed a peer snapshot; key = slot
  // --- chunked state transfer span: key = manifest slot, node = receiver ---
  kStateTransferStart,  // manifest accepted; detail = total chunks
  kStateTransferEnd,    // all chunks received + spliced; detail = retransmits
  // --- admission control: key = cmd_id, attempt = client attempt ---
  kAdmit,             // leader admitted past a configured gate; detail = depth
  kShed,              // shed delivery processed; detail = admission depth
  kBusyReply,         // Busy sent to the client; detail = retry_after (ns)
  // --- STAR asymmetric execution ---
  kStarEpoch,         // epoch switch applied; key = epoch, detail = batch size
  kExecParallel,      // parallel batch flushed; key = makespan ns,
                      // attempt = waves, detail = batch size
  // --- read leases: key = cmd_id (vertex for revokes), attempt = attempt ---
  kLeaseGrant,        // lender granted a lease; detail = target partition
  kLeaseRead,         // target executed off validated leases; detail = objects
  kLeaseFallback,     // lease validation failed; detail = stale vertex count
  kLeaseRevoke,       // lease dropped; key = vertex, detail = peer partition
};

/// One fixed-width trace record. 40 bytes, trivially copyable; the collector
/// is a flat vector of these so recording is an amortized bump-and-store.
struct TraceEvent {
  SimTime time = 0;
  std::uint64_t key = 0;     // cmd_id / uid / seq / epoch (see TracePoint)
  std::uint64_t node = 0;    // recording process id
  std::uint64_t detail = 0;  // point-specific (partition, status, ...)
  std::uint32_t attempt = 0;
  TracePoint point = TracePoint::kClientIssue;

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.time == b.time && a.key == b.key && a.node == b.node &&
           a.detail == b.detail && a.attempt == b.attempt &&
           a.point == b.point;
  }
};

/// Per-run event sink. One instance per sim::World; every protocol core
/// holds a pointer and records through it. Disabled by default.
class TraceCollector {
 public:
  [[nodiscard]] bool enabled() const { return enabled_; }
  void enable(bool on = true) { enabled_ = on; }

  void record(TracePoint point, SimTime time, std::uint64_t key,
              std::uint32_t attempt, std::uint64_t node,
              std::uint64_t detail = 0) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{time, key, node, detail, attempt, point});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Stable short name for a point ("client_issue", "oracle_relay", ...).
  static const char* point_name(TracePoint point);

  /// Writes the whole trace as CSV (one header + one row per event).
  void write_csv(std::FILE* out) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace dynastar
