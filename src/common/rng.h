// Deterministic random number generation for the simulation.
//
// All randomness in the system flows through seeded Rng instances so that a
// run is a pure function of its configuration — a prerequisite for the
// reproducible benchmark figures.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace dynastar {

/// A seeded pseudo-random source. Thin wrapper over mt19937_64 with the
/// distributions the workloads need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Exponentially distributed duration with the given mean.
  double exponential(double mean);

  /// Derives an independent child generator; used to give each simulated
  /// component its own stream without correlation.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipfian distribution over {0, ..., n-1} with exponent theta, using the
/// standard rejection-free inverse-CDF approximation (Gray et al.).
/// Used by Chirper clients (paper: rho = 0.95).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  /// Draws a rank in [0, n); rank 0 is the most popular item.
  std::uint64_t next(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// TPC-C NURand(A, x, y) non-uniform distribution (clause 2.1.6).
class NuRand {
 public:
  /// C is the per-run constant the spec draws once; pass any value.
  NuRand(std::uint64_t a, std::uint64_t x, std::uint64_t y, std::uint64_t c)
      : a_(a), x_(x), y_(y), c_(c) {}

  std::uint64_t next(Rng& rng) const;

 private:
  std::uint64_t a_, x_, y_, c_;
};

}  // namespace dynastar
