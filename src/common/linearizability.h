// Wing–Gong linearizability checker for key-value histories.
//
// Used by the property tests: full-stack runs record every client command's
// invocation/response times plus observed results, and the checker searches
// for a legal sequential witness that respects real-time order.
//
// Operations are multi-key read-modify-writes, matching the KV application:
// every operation observes the pre-state of all its keys; a put then writes
// `value` to all of them. This makes cross-partition commands (the borrow /
// return path) fully checkable. Exponential in the worst case; fine for
// test-sized histories (hundreds of ops).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace dynastar {

/// One completed client operation against the KV specification.
struct KvOperation {
  /// True: after observing, writes `value` to every key.
  bool is_put = false;
  std::vector<std::uint64_t> keys;
  std::uint64_t value = 0;
  /// Observed pre-state per key (nullopt = key absent), parallel to `keys`.
  std::vector<std::optional<std::uint64_t>> observed;
  /// Real-time window of the operation.
  std::int64_t invoke_time = 0;
  std::int64_t response_time = 0;
};

/// Result of a check, with a counterexample index when it fails.
struct LinearizabilityResult {
  bool linearizable = true;
  /// When not linearizable: the operation the search could never place.
  std::optional<std::size_t> stuck_operation;
};

/// Checks whether `history` is linearizable w.r.t. a per-key last-writer-wins
/// register map that starts with every key absent.
LinearizabilityResult check_kv_linearizable(
    const std::vector<KvOperation>& history);

}  // namespace dynastar
