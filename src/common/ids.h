// Strong identifier types shared across the DynaStar stack.
//
// Every distributed entity (process, group, partition, object, client) has
// its own id type so that interfaces are precisely typed (a PartitionId can
// never be passed where an ObjectId is expected).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace dynastar {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kSimTimeNever = INT64_MAX;

constexpr SimTime nanoseconds(std::int64_t n) { return n; }
constexpr SimTime microseconds(std::int64_t n) { return n * 1000; }
constexpr SimTime milliseconds(std::int64_t n) { return n * 1'000'000; }
constexpr SimTime seconds(std::int64_t n) { return n * 1'000'000'000; }

/// Converts a simulated duration to fractional seconds (for reporting).
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
/// Converts a simulated duration to fractional milliseconds (for reporting).
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / 1e6; }

/// A strongly typed integral identifier. `Tag` distinguishes unrelated id
/// spaces at compile time; the underlying representation is uint64.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) {
    return a.value_ >= b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  std::uint64_t value_ = 0;
};

struct ProcessTag {};
struct GroupTag {};
struct PartitionTag {};
struct ObjectTag {};
struct ClientTag {};

/// Identifies a single simulated process (replica, acceptor, client, ...).
using ProcessId = StrongId<ProcessTag>;
/// Identifies a multicast group (a set of replicas ordered by one Paxos).
using GroupId = StrongId<GroupTag>;
/// Identifies a state partition (shard). The oracle is partition-like but has
/// its own reserved GroupId, not a PartitionId.
using PartitionId = StrongId<PartitionTag>;
/// Identifies an application state variable (a PRObject in the paper).
using ObjectId = StrongId<ObjectTag>;
/// Identifies a client session.
using ClientId = StrongId<ClientTag>;

/// Sentinel meaning "no partition known".
inline constexpr PartitionId kNoPartition{UINT64_MAX};

}  // namespace dynastar

namespace std {
template <typename Tag>
struct hash<dynastar::StrongId<Tag>> {
  size_t operator()(dynastar::StrongId<Tag> id) const noexcept {
    // splitmix64 finalizer: cheap, well distributed even for dense ids.
    uint64_t x = id.value() + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};
}  // namespace std
