#include "common/trace.h"

namespace dynastar {

const char* TraceCollector::point_name(TracePoint point) {
  switch (point) {
    case TracePoint::kClientIssue: return "client_issue";
    case TracePoint::kClientRoute: return "client_route";
    case TracePoint::kClientRetry: return "client_retry";
    case TracePoint::kOracleRelay: return "oracle_relay";
    case TracePoint::kServerDeliver: return "server_deliver";
    case TracePoint::kExecuteStart: return "execute_start";
    case TracePoint::kReplySent: return "reply_sent";
    case TracePoint::kClientComplete: return "client_complete";
    case TracePoint::kTransferSent: return "transfer_sent";
    case TracePoint::kTransferReceived: return "transfer_received";
    case TracePoint::kReturnSent: return "return_sent";
    case TracePoint::kReturnReceived: return "return_received";
    case TracePoint::kMcastDelivered: return "mcast_delivered";
    case TracePoint::kPaxosDecided: return "paxos_decided";
    case TracePoint::kPlanApplied: return "plan_applied";
    case TracePoint::kChaosEvent: return "chaos_event";
    case TracePoint::kCheckpoint: return "checkpoint";
    case TracePoint::kRecoveryRestore: return "recovery_restore";
    case TracePoint::kSnapshotInstall: return "snapshot_install";
    case TracePoint::kStateTransferStart: return "state_transfer_start";
    case TracePoint::kStateTransferEnd: return "state_transfer_end";
    case TracePoint::kAdmit: return "admit";
    case TracePoint::kShed: return "shed";
    case TracePoint::kBusyReply: return "busy_reply";
    case TracePoint::kStarEpoch: return "star_epoch";
    case TracePoint::kExecParallel: return "exec_parallel";
    case TracePoint::kLeaseGrant: return "lease_grant";
    case TracePoint::kLeaseRead: return "lease_read";
    case TracePoint::kLeaseFallback: return "lease_fallback";
    case TracePoint::kLeaseRevoke: return "lease_revoke";
  }
  return "unknown";
}

void TraceCollector::write_csv(std::FILE* out) const {
  std::fprintf(out, "time_ns,point,key,attempt,node,detail\n");
  for (const TraceEvent& e : events_) {
    std::fprintf(out, "%lld,%s,%llu,%u,%llu,%llu\n",
                 static_cast<long long>(e.time), point_name(e.point),
                 static_cast<unsigned long long>(e.key), e.attempt,
                 static_cast<unsigned long long>(e.node),
                 static_cast<unsigned long long>(e.detail));
  }
}

}  // namespace dynastar
