#include "workloads/smallbank.h"

namespace dynastar::workloads::smallbank {

namespace {
CustomerAccounts* account(core::ObjectStore& store, ObjectId id) {
  return dynamic_cast<CustomerAccounts*>(store.find(id));
}
}  // namespace

core::ExecResult SmallBankApp::execute(const core::Command& cmd,
                                       core::ObjectStore& store) {
  auto reply = sim::make_mutable_message<Reply>();
  const auto* op = dynamic_cast<const Op*>(cmd.payload.get());
  if (op == nullptr || cmd.objects.empty()) {
    reply->ok = false;
    return {reply, microseconds(2)};
  }
  CustomerAccounts* a = account(store, cmd.objects[0]);
  CustomerAccounts* b =
      cmd.objects.size() > 1 ? account(store, cmd.objects[1]) : nullptr;
  if (a == nullptr) {
    reply->ok = false;
    return {reply, microseconds(2)};
  }

  switch (op->kind) {
    case Op::Kind::kBalance:
      reply->balance = a->checking + a->savings;
      return {reply, microseconds(4)};
    case Op::Kind::kDepositChecking:
      if (op->amount < 0) {
        reply->ok = false;
      } else {
        a->checking += op->amount;
        reply->balance = a->checking;
      }
      return {reply, microseconds(5)};
    case Op::Kind::kTransactSavings:
      if (a->savings + op->amount < 0) {
        reply->ok = false;  // would overdraw savings
      } else {
        a->savings += op->amount;
        reply->balance = a->savings;
      }
      return {reply, microseconds(5)};
    case Op::Kind::kWriteCheck: {
      // Overdraft allowed with a $1 penalty (SmallBank semantics).
      const double total = a->checking + a->savings;
      a->checking -= (op->amount > total) ? op->amount + 1.0 : op->amount;
      reply->balance = a->checking;
      return {reply, microseconds(6)};
    }
    case Op::Kind::kAmalgamate:
      if (b == nullptr) {
        reply->ok = false;
        return {reply, microseconds(3)};
      }
      b->checking += a->checking + a->savings;
      a->checking = 0;
      a->savings = 0;
      reply->balance = b->checking;
      return {reply, microseconds(8)};
    case Op::Kind::kSendPayment:
      if (b == nullptr || a->checking < op->amount) {
        reply->ok = false;
        return {reply, microseconds(3)};
      }
      a->checking -= op->amount;
      b->checking += op->amount;
      reply->balance = a->checking;
      return {reply, microseconds(8)};
  }
  reply->ok = false;
  return {reply, microseconds(2)};
}

core::ObjectPtr SmallBankApp::make_object(const core::Command& /*cmd*/) {
  return std::make_shared<CustomerAccounts>(0.0, 0.0);
}

void setup(core::System& system, std::uint32_t customers,
           double initial_checking, double initial_savings) {
  core::Assignment assignment;
  const std::uint32_t k = system.config().num_partitions;
  CustomerAccounts prototype(initial_checking, initial_savings);
  for (std::uint32_t c = 0; c < customers; ++c) {
    const PartitionId p{c % k};
    assignment[customer_vertex(c)] = p;
    system.preload_object(customer_object(c), customer_vertex(c), p, prototype);
  }
  system.preload_assignment(assignment);
}

std::uint32_t SmallBankDriver::pick_customer(Rng& rng) const {
  if (mix_.hotspot_size < customers_ && rng.chance(mix_.hotspot_fraction)) {
    return static_cast<std::uint32_t>(rng.uniform(0, mix_.hotspot_size - 1));
  }
  return static_cast<std::uint32_t>(rng.uniform(0, customers_ - 1));
}

std::optional<core::CommandSpec> SmallBankDriver::next(Rng& rng,
                                                       SimTime /*now*/) {
  auto op = sim::make_mutable_message<Op>();
  const double roll = rng.uniform01();
  double cumulative = mix_.balance;
  if (roll < cumulative) {
    op->kind = Op::Kind::kBalance;
  } else if (roll < (cumulative += mix_.deposit_checking)) {
    op->kind = Op::Kind::kDepositChecking;
    op->amount = 1.0 + rng.uniform01() * 99.0;
  } else if (roll < (cumulative += mix_.transact_savings)) {
    op->kind = Op::Kind::kTransactSavings;
    op->amount = rng.uniform01() * 100.0 - 20.0;  // mostly deposits
  } else if (roll < (cumulative += mix_.write_check)) {
    op->kind = Op::Kind::kWriteCheck;
    op->amount = 1.0 + rng.uniform01() * 50.0;
  } else if (roll < (cumulative += mix_.amalgamate)) {
    op->kind = Op::Kind::kAmalgamate;
  } else {
    op->kind = Op::Kind::kSendPayment;
    op->amount = 1.0 + rng.uniform01() * 5.0;
  }

  core::CommandSpec spec;
  const std::uint32_t a = pick_customer(rng);
  spec.objects.emplace_back(customer_object(a), customer_vertex(a));
  if (op->kind == Op::Kind::kAmalgamate || op->kind == Op::Kind::kSendPayment) {
    std::uint32_t b = pick_customer(rng);
    if (b == a) b = (b + 1) % customers_;
    spec.objects.emplace_back(customer_object(b), customer_vertex(b));
  }
  spec.read_only = op->kind == Op::Kind::kBalance;
  spec.payload = std::move(op);
  return spec;
}

}  // namespace dynastar::workloads::smallbank
