// Command-trace recording and replay.
//
// RecordingDriver wraps any ClientDriver and appends every issued command
// (with its issue time and outcome) to a Trace; ReplayDriver re-issues a
// recorded trace verbatim. Together they make any workload — including the
// random, Zipf-driven ones — repeatable across system configurations: the
// same trace can be replayed against DynaStar, S-SMR*, and DS-SMR for a
// command-for-command comparison.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/client.h"

namespace dynastar::workloads {

struct TraceEntry {
  core::CommandSpec spec;
  SimTime issued_at = 0;
  SimTime completed_at = 0;
  core::ReplyStatus status = core::ReplyStatus::kOk;
};

struct Trace {
  std::vector<TraceEntry> entries;

  [[nodiscard]] std::size_t size() const { return entries.size(); }
  [[nodiscard]] std::size_t ok_count() const {
    std::size_t n = 0;
    for (const auto& entry : entries)
      if (entry.status == core::ReplyStatus::kOk) ++n;
    return n;
  }
};

/// Wraps an inner driver, recording everything it issues.
class RecordingDriver final : public core::ClientDriver {
 public:
  RecordingDriver(std::unique_ptr<core::ClientDriver> inner, Trace* trace)
      : inner_(std::move(inner)), trace_(trace) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime now) override {
    return inner_->next(rng, now);
  }

  void on_result(const core::CommandSpec& spec, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime issued_at,
                 SimTime completed_at) override {
    trace_->entries.push_back(TraceEntry{spec, issued_at, completed_at, status});
    inner_->on_result(spec, status, payload, issued_at, completed_at);
  }

 private:
  std::unique_ptr<core::ClientDriver> inner_;
  Trace* trace_;
};

/// Replays a recorded trace. `paced` replays at the recorded issue times
/// (open loop); otherwise commands go back-to-back (closed loop).
class ReplayDriver final : public core::ClientDriver {
 public:
  ReplayDriver(std::shared_ptr<const Trace> trace, bool paced = false,
               Trace* sink = nullptr)
      : trace_(std::move(trace)), paced_(paced), sink_(sink) {}

  std::optional<core::CommandSpec> next(Rng& /*rng*/, SimTime now) override {
    if (index_ >= trace_->entries.size()) return std::nullopt;
    const TraceEntry& entry = trace_->entries[index_];
    if (paced_ && now < entry.issued_at) {
      return core::CommandSpec::pause_for(entry.issued_at - now);
    }
    ++index_;
    return entry.spec;
  }

  void on_result(const core::CommandSpec& spec, core::ReplyStatus status,
                 const sim::MessagePtr& /*payload*/, SimTime issued_at,
                 SimTime completed_at) override {
    if (sink_ != nullptr)
      sink_->entries.push_back(TraceEntry{spec, issued_at, completed_at, status});
  }

  [[nodiscard]] std::size_t replayed() const { return index_; }

 private:
  std::shared_ptr<const Trace> trace_;
  bool paced_;
  Trace* sink_;
  std::size_t index_ = 0;
};

}  // namespace dynastar::workloads
