// Chirper: the paper's Twitter-like social network service (§5.4).
//
// One PRObject (and one location-map vertex) per user. post writes the
// message reference into the timeline object of every follower — the
// multi-partition command that drives the entire social-network evaluation;
// timeline reads touch only the reader's own object; follow/unfollow touch
// two objects.
//
// Drivers know the (ground-truth) social graph — as in the paper's harness,
// where the workload generator owns the dataset — and use it to build each
// post's omega. Zipfian user selection with rho = 0.95 matches §6.4.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/app.h"
#include "core/client.h"
#include "core/object.h"
#include "core/system.h"
#include "sim/message.h"
#include "workloads/social_graph.h"

namespace dynastar::workloads::chirper {

inline ObjectId user_object(std::uint32_t user) { return ObjectId{user}; }
inline core::VertexId user_vertex(std::uint32_t user) {
  return core::VertexId{user};
}

/// A user's replicated state: their timeline plus counters.
class UserObject final : public core::PRObject {
 public:
  [[nodiscard]] std::unique_ptr<core::PRObject> clone() const override {
    return std::make_unique<UserObject>(*this);
  }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 48 + timeline.size() * 8;
  }
  [[nodiscard]] std::uint64_t digest() const override {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t ref : timeline) h = core::digest_mix(h, ref);
    h = core::digest_mix(h, posts);
    h = core::digest_mix(h, followers_count);
    h = core::digest_mix(h, following_count);
    return h;
  }

  static constexpr std::size_t kTimelineCap = 20;

  void append(std::uint64_t post_ref) {
    timeline.push_back(post_ref);
    if (timeline.size() > kTimelineCap)
      timeline.erase(timeline.begin());
  }

  std::vector<std::uint64_t> timeline;
  std::uint64_t posts = 0;
  std::uint32_t followers_count = 0;
  std::uint32_t following_count = 0;
};

struct ChirperOp final : sim::Message {
  enum class Kind : std::uint8_t { kPost, kTimeline, kFollow, kUnfollow };
  const char* type_name() const override { return "chirper.Op"; }
  Kind kind = Kind::kTimeline;
  std::uint32_t author = 0;   // post: whose message (objects[0])
  std::uint64_t post_ref = 0; // post: 140-char message reference
};

struct ChirperReply final : sim::Message {
  const char* type_name() const override { return "chirper.Reply"; }
  bool ok = true;
  std::uint32_t timeline_len = 0;
  std::uint64_t newest = 0;
};

class ChirperApp final : public core::AppStateMachine {
 public:
  core::ExecResult execute(const core::Command& cmd,
                           core::ObjectStore& store) override;
  core::ObjectPtr make_object(const core::Command& cmd) override;
};

inline core::AppFactory chirper_app_factory() {
  return [] { return std::make_unique<ChirperApp>(); };
}

// ---------------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------------

enum class Placement {
  kRandom,     // DynaStar's starting point in §6.4
  kOptimized,  // S-SMR*: METIS on the social graph, computed in advance
};

/// Creates all user objects and installs the initial assignment.
void setup(core::System& system, const SocialGraph& graph, Placement placement,
           std::uint64_t seed = 11);

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Mutable ground-truth follower lists shared by all drivers of a run.
using Directory = std::shared_ptr<SocialGraph>;

inline Directory make_directory(const SocialGraph& graph) {
  return std::make_shared<SocialGraph>(graph);
}

struct WorkloadMix {
  /// Fraction of timeline reads; the rest are posts (paper: 1.0 and 0.85).
  double timeline_fraction = 0.85;
  /// Fraction of commands that follow/unfollow a random pair (two-object,
  /// possibly cross-partition commands; §5.4). Taken off the top before the
  /// timeline/post split.
  double follow_fraction = 0.0;
  double zipf_theta = 0.95;
  /// Posts name at most this many follower timelines (bounds omega).
  std::uint32_t fanout_cap = 2000;
  /// Dynamic scenario (Fig. 6): after celebrity_start, each command first
  /// rolls to follow the celebrity user.
  std::optional<std::uint32_t> celebrity;
  SimTime celebrity_start = 0;
  double follow_celebrity_prob = 0.02;
};

class ChirperDriver final : public core::ClientDriver {
 public:
  ChirperDriver(Directory directory, WorkloadMix mix,
                std::shared_ptr<const ZipfGenerator> zipf)
      : directory_(std::move(directory)),
        mix_(mix),
        zipf_(std::move(zipf)) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime now) override;
  void on_result(const core::CommandSpec& spec, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime issued_at,
                 SimTime completed_at) override;

 private:
  Directory directory_;
  WorkloadMix mix_;
  std::shared_ptr<const ZipfGenerator> zipf_;
};

/// Fig. 6's celebrity: created at `start`, then posts continuously.
class CelebrityDriver final : public core::ClientDriver {
 public:
  CelebrityDriver(Directory directory, std::uint32_t user, SimTime start,
                  SimTime post_interval, std::uint32_t fanout_cap = 2000)
      : directory_(std::move(directory)),
        user_(user),
        start_(start),
        post_interval_(post_interval),
        fanout_cap_(fanout_cap) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime now) override;

 private:
  Directory directory_;
  std::uint32_t user_;
  SimTime start_;
  SimTime post_interval_;
  std::uint32_t fanout_cap_;
  bool created_ = false;
  std::uint64_t posts_ = 0;
};

/// Builds the omega of a post by `author` from the directory.
core::CommandSpec make_post_spec(const SocialGraph& directory,
                                 std::uint32_t author, std::uint64_t post_ref,
                                 std::uint32_t fanout_cap);

}  // namespace dynastar::workloads::chirper
