// SmallBank on DynaStar: the standard OLTP microbenchmark used across the
// SMR literature (Alomari et al., ICDE'08). Each customer has a checking
// and a savings account; four single-customer and two two-customer
// transaction types. The two-customer transactions (Amalgamate,
// SendPayment) are the cross-partition commands; the location-map vertex is
// the customer.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>

#include "core/app.h"
#include "core/client.h"
#include "core/object.h"
#include "core/system.h"
#include "sim/message.h"

namespace dynastar::workloads::smallbank {

/// One object per customer holding both balances.
class CustomerAccounts final : public core::PRObject {
 public:
  CustomerAccounts(double checking_balance, double savings_balance)
      : checking(checking_balance), savings(savings_balance) {}
  [[nodiscard]] std::unique_ptr<core::PRObject> clone() const override {
    return std::make_unique<CustomerAccounts>(*this);
  }
  [[nodiscard]] std::size_t size_bytes() const override { return 32; }
  [[nodiscard]] std::uint64_t digest() const override {
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = core::digest_mix(h, std::bit_cast<std::uint64_t>(checking));
    h = core::digest_mix(h, std::bit_cast<std::uint64_t>(savings));
    return h;
  }

  double checking;
  double savings;
};

inline ObjectId customer_object(std::uint32_t customer) {
  return ObjectId{customer};
}
inline core::VertexId customer_vertex(std::uint32_t customer) {
  return core::VertexId{customer};
}

struct Op final : sim::Message {
  enum class Kind : std::uint8_t {
    kBalance,         // read checking + savings           (1 customer)
    kDepositChecking, // checking += amount                (1 customer)
    kTransactSavings, // savings += amount (may reject)    (1 customer)
    kWriteCheck,      // checking -= amount (overdraft fee) (1 customer)
    kAmalgamate,      // move all of A's money to B        (2 customers)
    kSendPayment,     // checking A -> checking B          (2 customers)
  };
  const char* type_name() const override { return "smallbank.Op"; }
  Kind kind = Kind::kBalance;
  double amount = 0;
};

struct Reply final : sim::Message {
  const char* type_name() const override { return "smallbank.Reply"; }
  bool ok = true;
  double balance = 0;  // combined balance observed
};

class SmallBankApp final : public core::AppStateMachine {
 public:
  core::ExecResult execute(const core::Command& cmd,
                           core::ObjectStore& store) override;
  core::ObjectPtr make_object(const core::Command& cmd) override;
};

inline core::AppFactory smallbank_app_factory() {
  return [] { return std::make_unique<SmallBankApp>(); };
}

/// Creates `customers` accounts (round-robin placement) with the given
/// initial balances.
void setup(core::System& system, std::uint32_t customers,
           double initial_checking = 100.0, double initial_savings = 1000.0);

/// Standard SmallBank mix; `hotspot_fraction` of accesses hit the first
/// `hotspot_size` customers (the benchmark's classic contention knob).
struct Mix {
  double balance = 0.15;
  double deposit_checking = 0.15;
  double transact_savings = 0.15;
  double write_check = 0.25;
  double amalgamate = 0.15;
  double send_payment = 0.15;
  double hotspot_fraction = 0.9;
  std::uint32_t hotspot_size = 100;
};

class SmallBankDriver final : public core::ClientDriver {
 public:
  SmallBankDriver(std::uint32_t customers, Mix mix = {})
      : customers_(customers), mix_(mix) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime now) override;

 private:
  std::uint32_t pick_customer(Rng& rng) const;

  std::uint32_t customers_;
  Mix mix_;
};

}  // namespace dynastar::workloads::smallbank
