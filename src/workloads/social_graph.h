// Social graph substrate for the Chirper benchmark.
//
// The paper evaluates on the Higgs Twitter dataset (456,631 nodes, ~14.8M
// follower edges). That dataset is not redistributable and no network access
// exists here, so we substitute a preferential-attachment generator: it
// reproduces the properties the evaluation depends on — a heavy-tailed
// follower distribution (celebrities) and local community structure the
// partitioner can exploit. Node ids are ordered by age, so low ids are the
// high-degree "celebrities", which pairs naturally with Zipfian access.
#pragma once

#include <cstdint>
#include <vector>

namespace dynastar::workloads {

struct SocialGraph {
  /// followers[u] = users that follow u (their timelines receive u's posts).
  std::vector<std::vector<std::uint32_t>> followers;
  /// following[u] = users u follows.
  std::vector<std::vector<std::uint32_t>> following;

  [[nodiscard]] std::size_t num_users() const { return followers.size(); }
  [[nodiscard]] std::size_t num_edges() const;
  [[nodiscard]] std::uint32_t max_followers() const;
};

/// Barabási–Albert-style digraph: each new user follows `edges_per_node`
/// existing users chosen preferentially by follower count.
SocialGraph generate_social_graph(std::uint32_t num_users,
                                  std::uint32_t edges_per_node,
                                  std::uint64_t seed);

}  // namespace dynastar::workloads
