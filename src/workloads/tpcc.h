// TPC-C on DynaStar (paper §5.3).
//
// Every row is a PRObject; the location-map / workload-graph granularity is
// one vertex per warehouse (warehouse + stock rows) and one per district
// (district, customers, orders, history) — exactly the paper's modeling.
// "If a transaction requires objects from multiple districts, only those
// objects will be moved on demand, rather than the whole district."
//
// Documented deviations from the full spec (the paper's own Java harness is
// not specified at this level):
//  * Order lines are embedded in the order row (one object per order).
//  * The item catalog is read-only and treated as replicated constants.
//  * Delivery runs as ten single-district commands (one per district);
//    its reads resolve through objects co-homed with the district vertex.
//  * Stock-Level runs as two commands (order scan, then stock check), which
//    the spec explicitly allows at relaxed isolation.
//  * Table cardinalities are scaled down (configurable) so simulations fit
//    a laptop; access-skew distributions (NURand) are preserved.
#pragma once

#include <bit>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/app.h"
#include "core/client.h"
#include "core/object.h"
#include "core/system.h"
#include "sim/message.h"

namespace dynastar::workloads::tpcc {

// ---------------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------------

enum class Table : std::uint8_t {
  kWarehouse = 1,
  kDistrict,
  kCustomer,
  kStock,
  kOrder,
  kHistory,
};

/// Object id layout: [table:8][warehouse:16][district:8][number:32].
inline ObjectId oid(Table t, std::uint32_t w, std::uint32_t d,
                    std::uint32_t n) {
  return ObjectId{(static_cast<std::uint64_t>(t) << 56) |
                  (static_cast<std::uint64_t>(w) << 40) |
                  (static_cast<std::uint64_t>(d) << 32) | n};
}

/// Vertex per warehouse (stock + warehouse row).
inline core::VertexId warehouse_vertex(std::uint32_t w) {
  return core::VertexId{static_cast<std::uint64_t>(w) << 8};
}
/// Vertex per district (district, customers, orders, history). d in [1,10].
inline core::VertexId district_vertex(std::uint32_t w, std::uint32_t d) {
  return core::VertexId{(static_cast<std::uint64_t>(w) << 8) | d};
}

struct Scale {
  std::uint32_t districts_per_warehouse = 10;
  std::uint32_t customers_per_district = 60;   // spec: 3000
  std::uint32_t items = 2000;                  // spec: 100000
  /// NURand C constants (any value per spec clause 2.1.6.1).
  std::uint64_t c_customer = 123;
  std::uint64_t c_item = 987;
};

// ---------------------------------------------------------------------------
// Rows
// ---------------------------------------------------------------------------

struct WarehouseRow final : core::PRObject {
  double ytd = 0;
  double tax = 0.08;
  std::unique_ptr<core::PRObject> clone() const override {
    return std::make_unique<WarehouseRow>(*this);
  }
  std::size_t size_bytes() const override { return 48; }
  std::uint64_t digest() const override {
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = core::digest_mix(h, std::bit_cast<std::uint64_t>(ytd));
    h = core::digest_mix(h, std::bit_cast<std::uint64_t>(tax));
    return h;
  }
};

struct DistrictRow final : core::PRObject {
  std::uint32_t next_o_id = 1;
  std::uint32_t next_delivery_o_id = 1;
  double ytd = 0;
  double tax = 0.05;
  /// Ring of recent order ids (for Stock-Level's scan).
  std::vector<std::uint32_t> recent_orders;
  std::unique_ptr<core::PRObject> clone() const override {
    return std::make_unique<DistrictRow>(*this);
  }
  std::size_t size_bytes() const override {
    return 64 + recent_orders.size() * 4;
  }
  std::uint64_t digest() const override {
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = core::digest_mix(h, next_o_id);
    h = core::digest_mix(h, next_delivery_o_id);
    h = core::digest_mix(h, std::bit_cast<std::uint64_t>(ytd));
    h = core::digest_mix(h, std::bit_cast<std::uint64_t>(tax));
    for (std::uint32_t o : recent_orders) h = core::digest_mix(h, o);
    return h;
  }
};

struct CustomerRow final : core::PRObject {
  double balance = -10.0;
  double ytd_payment = 10.0;
  std::uint32_t payment_cnt = 1;
  std::uint32_t delivery_cnt = 0;
  std::unique_ptr<core::PRObject> clone() const override {
    return std::make_unique<CustomerRow>(*this);
  }
  std::size_t size_bytes() const override { return 64; }
  std::uint64_t digest() const override {
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = core::digest_mix(h, std::bit_cast<std::uint64_t>(balance));
    h = core::digest_mix(h, std::bit_cast<std::uint64_t>(ytd_payment));
    h = core::digest_mix(h, payment_cnt);
    h = core::digest_mix(h, delivery_cnt);
    return h;
  }
};

struct StockRow final : core::PRObject {
  std::uint32_t quantity = 50;
  std::uint32_t ytd = 0;
  std::uint32_t order_cnt = 0;
  std::uint32_t remote_cnt = 0;
  std::unique_ptr<core::PRObject> clone() const override {
    return std::make_unique<StockRow>(*this);
  }
  std::size_t size_bytes() const override { return 48; }
  std::uint64_t digest() const override {
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = core::digest_mix(h, quantity);
    h = core::digest_mix(h, ytd);
    h = core::digest_mix(h, order_cnt);
    h = core::digest_mix(h, remote_cnt);
    return h;
  }
};

struct OrderLine {
  std::uint32_t item;
  std::uint32_t supply_w;
  std::uint32_t quantity;
  double amount;
};

struct OrderRow final : core::PRObject {
  std::uint32_t c_id = 0;
  std::uint32_t carrier = 0;  // 0 = undelivered (still a "new order")
  std::vector<OrderLine> lines;
  std::unique_ptr<core::PRObject> clone() const override {
    return std::make_unique<OrderRow>(*this);
  }
  std::size_t size_bytes() const override { return 32 + lines.size() * 24; }
  std::uint64_t digest() const override {
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = core::digest_mix(h, c_id);
    h = core::digest_mix(h, carrier);
    for (const OrderLine& l : lines) {
      h = core::digest_mix(h, l.item);
      h = core::digest_mix(h, l.supply_w);
      h = core::digest_mix(h, l.quantity);
      h = core::digest_mix(h, std::bit_cast<std::uint64_t>(l.amount));
    }
    return h;
  }
};

struct HistoryRow final : core::PRObject {
  std::uint64_t entries = 0;
  double total = 0;
  std::unique_ptr<core::PRObject> clone() const override {
    return std::make_unique<HistoryRow>(*this);
  }
  std::size_t size_bytes() const override { return 24; }
  std::uint64_t digest() const override {
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = core::digest_mix(h, entries);
    h = core::digest_mix(h, std::bit_cast<std::uint64_t>(total));
    return h;
  }
};

// ---------------------------------------------------------------------------
// Transaction payloads and reply
// ---------------------------------------------------------------------------

struct NewOrderArgs final : sim::Message {
  const char* type_name() const override { return "tpcc.NewOrder"; }
  std::uint32_t w = 0, d = 0, c = 0;
  std::vector<OrderLine> lines;  // amount filled at execution
};

struct PaymentArgs final : sim::Message {
  const char* type_name() const override { return "tpcc.Payment"; }
  std::uint32_t w = 0, d = 0;
  std::uint32_t c_w = 0, c_d = 0, c = 0;
  double amount = 0;
};

struct OrderStatusArgs final : sim::Message {
  const char* type_name() const override { return "tpcc.OrderStatus"; }
  std::uint32_t w = 0, d = 0, c = 0;
  std::uint32_t o_id = 0;  // 0 = no known order, read customer only
};

struct DeliveryArgs final : sim::Message {
  const char* type_name() const override { return "tpcc.Delivery"; }
  std::uint32_t w = 0, d = 0, carrier = 1;
};

struct StockScanArgs final : sim::Message {
  const char* type_name() const override { return "tpcc.StockScan"; }
  std::uint32_t w = 0, d = 0, last_n = 20;
};

struct StockCheckArgs final : sim::Message {
  const char* type_name() const override { return "tpcc.StockCheck"; }
  std::uint32_t w = 0, threshold = 15;
};

struct TpccReply final : sim::Message {
  const char* type_name() const override { return "tpcc.Reply"; }
  std::size_t size_bytes() const override { return 32 + items.size() * 4; }
  bool ok = true;
  std::uint32_t o_id = 0;                // NewOrder: assigned order id
  std::vector<std::uint32_t> items;      // StockScan: recent item ids
  std::uint32_t low_stock = 0;           // StockCheck
  double balance = 0;                    // OrderStatus / Payment
};

// ---------------------------------------------------------------------------
// Application state machine
// ---------------------------------------------------------------------------

class TpccApp final : public core::AppStateMachine {
 public:
  explicit TpccApp(Scale scale) : scale_(scale) {}

  core::ExecResult execute(const core::Command& cmd,
                           core::ObjectStore& store) override;
  core::ObjectPtr make_object(const core::Command& cmd) override;

 private:
  Scale scale_;
};

inline core::AppFactory tpcc_app_factory(Scale scale) {
  return [scale] { return std::make_unique<TpccApp>(scale); };
}

// ---------------------------------------------------------------------------
// Setup and client driver
// ---------------------------------------------------------------------------

enum class Placement {
  /// One warehouse (and its districts) per partition — the paper's S-SMR*
  /// manual optimum and the steady-state DynaStar solution.
  kWarehousePerPartition,
  /// Vertices scattered uniformly at random (Fig. 2's starting point).
  kRandom,
};

/// Creates all rows and installs the initial assignment.
void setup(core::System& system, const Scale& scale,
           std::uint32_t num_warehouses, Placement placement,
           std::uint64_t seed = 7);

/// Standard-mix closed-loop TPC-C terminal.
class TpccDriver final : public core::ClientDriver {
 public:
  TpccDriver(Scale scale, std::uint32_t num_warehouses, std::uint32_t home_w,
             std::uint32_t home_d);

  std::optional<core::CommandSpec> next(Rng& rng, SimTime now) override;
  void on_result(const core::CommandSpec& spec, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime issued_at,
                 SimTime completed_at) override;

 private:
  core::CommandSpec make_new_order(Rng& rng);
  core::CommandSpec make_payment(Rng& rng);
  core::CommandSpec make_order_status(Rng& rng);
  void queue_delivery(Rng& rng);
  core::CommandSpec make_stock_scan(Rng& rng);

  std::uint32_t nurand_customer(Rng& rng) const;
  std::uint32_t nurand_item(Rng& rng) const;

  Scale scale_;
  std::uint32_t num_warehouses_;
  std::uint32_t home_w_;
  std::uint32_t home_d_;
  std::deque<core::CommandSpec> pending_;
  /// customer -> last order id this terminal created (for Order-Status).
  std::unordered_map<std::uint64_t, std::uint32_t> last_order_;
};

}  // namespace dynastar::workloads::tpcc
