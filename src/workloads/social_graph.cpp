#include "workloads/social_graph.h"

#include <algorithm>

#include "common/rng.h"

namespace dynastar::workloads {

std::size_t SocialGraph::num_edges() const {
  std::size_t total = 0;
  for (const auto& f : followers) total += f.size();
  return total;
}

std::uint32_t SocialGraph::max_followers() const {
  std::size_t best = 0;
  for (const auto& f : followers) best = std::max(best, f.size());
  return static_cast<std::uint32_t>(best);
}

SocialGraph generate_social_graph(std::uint32_t num_users,
                                  std::uint32_t edges_per_node,
                                  std::uint64_t seed) {
  SocialGraph graph;
  graph.followers.resize(num_users);
  graph.following.resize(num_users);
  if (num_users == 0) return graph;

  Rng rng(seed);
  // `targets` holds one entry per (follow received); sampling uniformly from
  // it implements preferential attachment by follower count.
  std::vector<std::uint32_t> targets;
  targets.reserve(static_cast<std::size_t>(num_users) * edges_per_node);
  targets.push_back(0);

  for (std::uint32_t u = 1; u < num_users; ++u) {
    const std::uint32_t m = std::min(edges_per_node, u);
    std::vector<std::uint32_t> chosen;
    chosen.reserve(m);
    int guard = 0;
    while (chosen.size() < m && guard < 200) {
      ++guard;
      // Mix preferential picks (heavy-tailed follower counts: celebrities)
      // with *local* picks among recently joined users (temporal
      // communities — the structure a graph partitioner exploits, present
      // in real social networks like the Higgs dataset).
      std::uint32_t candidate;
      if (rng.chance(0.5)) {
        candidate = targets[rng.uniform(0, targets.size() - 1)];
      } else {
        const std::uint32_t window = std::min<std::uint32_t>(u, 100);
        candidate =
            static_cast<std::uint32_t>(u - 1 - rng.uniform(0, window - 1));
      }
      if (candidate == u) continue;
      if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end())
        continue;
      chosen.push_back(candidate);
    }
    for (std::uint32_t followee : chosen) {
      graph.following[u].push_back(followee);
      graph.followers[followee].push_back(u);
      targets.push_back(followee);
    }
    targets.push_back(u);  // newcomers can be discovered too
  }
  return graph;
}

}  // namespace dynastar::workloads
