// Key-value application on top of DynaStar: the simplest PRObject /
// AppStateMachine pair. Used by the quickstart example and by the
// correctness tests (its histories feed the linearizability checker).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/app.h"
#include "core/client.h"
#include "core/object.h"
#include "sim/message.h"

namespace dynastar::workloads {

/// A 64-bit register.
class KvObject final : public core::PRObject {
 public:
  explicit KvObject(std::uint64_t v = 0) : value(v) {}
  [[nodiscard]] std::unique_ptr<core::PRObject> clone() const override {
    return std::make_unique<KvObject>(value);
  }
  [[nodiscard]] std::size_t size_bytes() const override { return 16; }
  [[nodiscard]] std::uint64_t digest() const override {
    return core::digest_mix(0xcbf29ce484222325ull, value);
  }

  std::uint64_t value;
};

/// Command payload: read all of omega, then (for writes) set every object
/// in omega to `value`. A multi-object put is the classic cross-partition
/// command ("x := y" family from the paper's §3).
struct KvOp final : sim::Message {
  enum class Kind : std::uint8_t { kGet, kPut };
  KvOp(Kind k, std::uint64_t v) : kind(k), value(v) {}
  const char* type_name() const override { return "kv.Op"; }
  Kind kind;
  std::uint64_t value;
};

/// Reply: the value of each omega object as observed before any write
/// (nullopt = object absent).
struct KvReply final : sim::Message {
  explicit KvReply(std::vector<std::optional<std::uint64_t>> vs)
      : values(std::move(vs)) {}
  const char* type_name() const override { return "kv.Reply"; }
  std::size_t size_bytes() const override { return 16 + values.size() * 9; }
  std::vector<std::optional<std::uint64_t>> values;
};

class KvApp final : public core::AppStateMachine {
 public:
  explicit KvApp(SimTime op_cost = microseconds(5)) : op_cost_(op_cost) {}

  core::ExecResult execute(const core::Command& cmd,
                           core::ObjectStore& store) override {
    const auto* op = dynamic_cast<const KvOp*>(cmd.payload.get());
    std::vector<std::optional<std::uint64_t>> observed;
    observed.reserve(cmd.objects.size());
    for (std::size_t i = 0; i < cmd.objects.size(); ++i) {
      auto* obj = dynamic_cast<KvObject*>(store.find(cmd.objects[i]));
      observed.push_back(obj ? std::optional<std::uint64_t>(obj->value)
                             : std::nullopt);
      if (op != nullptr && op->kind == KvOp::Kind::kPut) {
        if (obj == nullptr) {
          store.put(cmd.objects[i], cmd.vertices[i],
                    std::make_shared<KvObject>(op->value));
        } else {
          obj->value = op->value;
        }
      }
    }
    return core::ExecResult{sim::make_message<KvReply>(std::move(observed)),
                            op_cost_};
  }

  core::ObjectPtr make_object(const core::Command& cmd) override {
    const auto* op = dynamic_cast<const KvOp*>(cmd.payload.get());
    return std::make_shared<KvObject>(op ? op->value : 0);
  }

 private:
  SimTime op_cost_;
};

inline core::AppFactory kv_app_factory(SimTime op_cost = microseconds(5)) {
  return [op_cost] { return std::make_unique<KvApp>(op_cost); };
}

}  // namespace dynastar::workloads
