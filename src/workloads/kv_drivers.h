// Client drivers for the KV application: a scripted driver for tests and a
// random closed-loop driver for load generation.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/client.h"
#include "workloads/kv.h"

namespace dynastar::workloads {

/// Replays a fixed list of commands, recording each result.
class ScriptedKvDriver final : public core::ClientDriver {
 public:
  struct Record {
    core::CommandSpec spec;
    core::ReplyStatus status;
    std::vector<std::optional<std::uint64_t>> observed;
    SimTime issued_at = 0;
    SimTime completed_at = 0;
  };

  using DoneFn = std::function<void()>;

  explicit ScriptedKvDriver(std::vector<core::CommandSpec> script,
                            std::vector<Record>* sink = nullptr)
      : script_(script.begin(), script.end()), sink_(sink) {}

  std::optional<core::CommandSpec> next(Rng& /*rng*/, SimTime /*now*/) override {
    if (script_.empty()) return std::nullopt;
    auto spec = std::move(script_.front());
    script_.pop_front();
    return spec;
  }

  void on_result(const core::CommandSpec& spec, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime issued_at,
                 SimTime completed_at) override {
    if (sink_ == nullptr) return;
    Record record{spec, status, {}, issued_at, completed_at};
    if (auto* reply = dynamic_cast<const KvReply*>(payload.get()))
      record.observed = reply->values;
    sink_->push_back(std::move(record));
  }

 private:
  std::deque<core::CommandSpec> script_;
  std::vector<Record>* sink_;
};

/// Uniform random single- and multi-key operations over a fixed keyspace
/// (vertex == key). `multi_fraction` of commands touch `multi_span` keys.
class RandomKvDriver final : public core::ClientDriver {
 public:
  RandomKvDriver(std::uint64_t num_keys, double write_fraction,
                 double multi_fraction, std::uint64_t multi_span = 2)
      : num_keys_(num_keys),
        write_fraction_(write_fraction),
        multi_fraction_(multi_fraction),
        multi_span_(multi_span) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime /*now*/) override {
    core::CommandSpec spec;
    const bool write = rng.chance(write_fraction_);
    const bool multi = rng.chance(multi_fraction_);
    const std::uint64_t span = multi ? multi_span_ : 1;
    for (std::uint64_t i = 0; i < span; ++i) {
      const std::uint64_t key = rng.uniform(0, num_keys_ - 1);
      spec.objects.emplace_back(ObjectId{key}, core::VertexId{key});
    }
    spec.payload = sim::make_message<KvOp>(
        write ? KvOp::Kind::kPut : KvOp::Kind::kGet, rng.uniform(0, 1u << 30));
    spec.read_only = !write;
    return spec;
  }

 private:
  std::uint64_t num_keys_;
  double write_fraction_;
  double multi_fraction_;
  std::uint64_t multi_span_;
};

}  // namespace dynastar::workloads
