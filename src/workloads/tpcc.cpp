#include "workloads/tpcc.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"

namespace dynastar::workloads::tpcc {

namespace {

/// Item price is a pure function of the item id (read-only catalog).
double item_price(std::uint32_t item) {
  return 1.0 + static_cast<double>((item * 2654435761u) % 9900) / 100.0;
}

template <typename T>
T* row(core::ObjectStore& store, ObjectId id) {
  return dynamic_cast<T*>(store.find(id));
}

}  // namespace

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

core::ExecResult TpccApp::execute(const core::Command& cmd,
                                  core::ObjectStore& store) {
  auto reply = sim::make_mutable_message<TpccReply>();
  SimTime cost = microseconds(10);

  if (auto* args = dynamic_cast<const NewOrderArgs*>(cmd.payload.get())) {
    auto* warehouse = row<WarehouseRow>(store, oid(Table::kWarehouse, args->w, 0, 0));
    auto* district =
        row<DistrictRow>(store, oid(Table::kDistrict, args->w, args->d, 0));
    auto* customer = row<CustomerRow>(
        store, oid(Table::kCustomer, args->w, args->d, args->c));
    if (warehouse == nullptr || district == nullptr || customer == nullptr) {
      reply->ok = false;
      return {reply, cost};
    }
    const std::uint32_t o_id = district->next_o_id++;
    auto order = std::make_unique<OrderRow>();
    order->c_id = args->c;
    double total = 0;
    for (const OrderLine& line : args->lines) {
      auto* stock = row<StockRow>(
          store, oid(Table::kStock, line.supply_w, 0, line.item));
      if (stock != nullptr) {
        if (stock->quantity >= line.quantity + 10) {
          stock->quantity -= line.quantity;
        } else {
          stock->quantity = stock->quantity + 91 - line.quantity;
        }
        stock->ytd += line.quantity;
        stock->order_cnt += 1;
        if (line.supply_w != args->w) stock->remote_cnt += 1;
      }
      OrderLine filled = line;
      filled.amount = static_cast<double>(line.quantity) *
                      item_price(line.item) * (1.0 + warehouse->tax) *
                      (1.0 + district->tax);
      total += filled.amount;
      order->lines.push_back(filled);
    }
    district->recent_orders.push_back(o_id);
    if (district->recent_orders.size() > 32)
      district->recent_orders.erase(district->recent_orders.begin());
    store.put(oid(Table::kOrder, args->w, args->d, o_id),
              district_vertex(args->w, args->d), std::move(order));
    reply->o_id = o_id;
    reply->balance = total;
    cost = microseconds(25) + microseconds(2) * args->lines.size();
    return {reply, cost};
  }

  if (auto* args = dynamic_cast<const PaymentArgs*>(cmd.payload.get())) {
    auto* warehouse = row<WarehouseRow>(store, oid(Table::kWarehouse, args->w, 0, 0));
    auto* district =
        row<DistrictRow>(store, oid(Table::kDistrict, args->w, args->d, 0));
    auto* customer = row<CustomerRow>(
        store, oid(Table::kCustomer, args->c_w, args->c_d, args->c));
    auto* history =
        row<HistoryRow>(store, oid(Table::kHistory, args->w, args->d, 0));
    if (warehouse == nullptr || district == nullptr || customer == nullptr) {
      reply->ok = false;
      return {reply, cost};
    }
    warehouse->ytd += args->amount;
    district->ytd += args->amount;
    customer->balance -= args->amount;
    customer->ytd_payment += args->amount;
    customer->payment_cnt += 1;
    if (history != nullptr) {
      history->entries += 1;
      history->total += args->amount;
    }
    reply->balance = customer->balance;
    return {reply, microseconds(15)};
  }

  if (auto* args = dynamic_cast<const OrderStatusArgs*>(cmd.payload.get())) {
    auto* customer = row<CustomerRow>(
        store, oid(Table::kCustomer, args->w, args->d, args->c));
    if (customer == nullptr) {
      reply->ok = false;
      return {reply, cost};
    }
    reply->balance = customer->balance;
    if (args->o_id != 0) {
      auto* order =
          row<OrderRow>(store, oid(Table::kOrder, args->w, args->d, args->o_id));
      if (order != nullptr) reply->o_id = args->o_id;
    }
    return {reply, microseconds(8)};
  }

  if (auto* args = dynamic_cast<const DeliveryArgs*>(cmd.payload.get())) {
    // Oldest undelivered order of this district; all rows are co-homed with
    // the district vertex, so they are local at the executing partition.
    auto* district =
        row<DistrictRow>(store, oid(Table::kDistrict, args->w, args->d, 0));
    if (district == nullptr) {
      reply->ok = false;
      return {reply, cost};
    }
    while (district->next_delivery_o_id < district->next_o_id) {
      const std::uint32_t o_id = district->next_delivery_o_id;
      auto* order =
          row<OrderRow>(store, oid(Table::kOrder, args->w, args->d, o_id));
      if (order == nullptr) {
        // Created under a borrowed vertex and not yet visible here — this
        // cannot happen thanks to head-of-line blocking; skip defensively.
        district->next_delivery_o_id += 1;
        continue;
      }
      if (order->carrier != 0) {
        district->next_delivery_o_id += 1;
        continue;
      }
      order->carrier = args->carrier;
      double total = 0;
      for (const OrderLine& line : order->lines) total += line.amount;
      auto* customer = row<CustomerRow>(
          store, oid(Table::kCustomer, args->w, args->d, order->c_id));
      if (customer != nullptr) {
        customer->balance += total;
        customer->delivery_cnt += 1;
      }
      district->next_delivery_o_id += 1;
      reply->o_id = o_id;
      break;
    }
    return {reply, microseconds(20)};
  }

  if (auto* args = dynamic_cast<const StockScanArgs*>(cmd.payload.get())) {
    auto* district =
        row<DistrictRow>(store, oid(Table::kDistrict, args->w, args->d, 0));
    if (district == nullptr) {
      reply->ok = false;
      return {reply, cost};
    }
    std::size_t start = district->recent_orders.size() > args->last_n
                            ? district->recent_orders.size() - args->last_n
                            : 0;
    for (std::size_t i = start; i < district->recent_orders.size(); ++i) {
      auto* order = row<OrderRow>(
          store,
          oid(Table::kOrder, args->w, args->d, district->recent_orders[i]));
      if (order == nullptr) continue;
      for (const OrderLine& line : order->lines) reply->items.push_back(line.item);
    }
    std::sort(reply->items.begin(), reply->items.end());
    reply->items.erase(std::unique(reply->items.begin(), reply->items.end()),
                       reply->items.end());
    return {reply, microseconds(15)};
  }

  if (auto* args = dynamic_cast<const StockCheckArgs*>(cmd.payload.get())) {
    std::uint32_t low = 0;
    for (std::size_t i = 0; i < cmd.objects.size(); ++i) {
      auto* stock = row<StockRow>(store, cmd.objects[i]);
      if (stock != nullptr && stock->quantity < args->threshold) ++low;
    }
    reply->low_stock = low;
    return {reply, microseconds(5) +
                       microseconds(1) * static_cast<SimTime>(cmd.objects.size())};
  }

  reply->ok = false;
  return {reply, cost};
}

core::ObjectPtr TpccApp::make_object(const core::Command& /*cmd*/) {
  // TPC-C never issues client-level create(v) commands (all vertices are
  // preloaded); rows created inside transactions go through store.put.
  return std::make_shared<HistoryRow>();
}

// ---------------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------------

void setup(core::System& system, const Scale& scale,
           std::uint32_t num_warehouses, Placement placement,
           std::uint64_t seed) {
  Rng rng(seed);
  const std::uint32_t k = system.config().num_partitions;
  core::Assignment assignment;

  auto place = [&](core::VertexId v, std::uint32_t w) {
    PartitionId p = placement == Placement::kWarehousePerPartition
                        ? PartitionId{(w - 1) % k}
                        : PartitionId{rng.uniform(0, k - 1)};
    assignment[v] = p;
    return p;
  };

  for (std::uint32_t w = 1; w <= num_warehouses; ++w) {
    const PartitionId wp = place(warehouse_vertex(w), w);
    system.preload_object(oid(Table::kWarehouse, w, 0, 0), warehouse_vertex(w),
                          wp, WarehouseRow{});
    StockRow stock;
    for (std::uint32_t i = 1; i <= scale.items; ++i) {
      system.preload_object(oid(Table::kStock, w, 0, i), warehouse_vertex(w),
                            wp, stock);
    }
    for (std::uint32_t d = 1; d <= scale.districts_per_warehouse; ++d) {
      const PartitionId dp = place(district_vertex(w, d), w);
      system.preload_object(oid(Table::kDistrict, w, d, 0),
                            district_vertex(w, d), dp, DistrictRow{});
      system.preload_object(oid(Table::kHistory, w, d, 0),
                            district_vertex(w, d), dp, HistoryRow{});
      CustomerRow customer;
      for (std::uint32_t c = 1; c <= scale.customers_per_district; ++c) {
        system.preload_object(oid(Table::kCustomer, w, d, c),
                              district_vertex(w, d), dp, customer);
      }
    }
  }
  system.preload_assignment(assignment);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

TpccDriver::TpccDriver(Scale scale, std::uint32_t num_warehouses,
                       std::uint32_t home_w, std::uint32_t home_d)
    : scale_(scale),
      num_warehouses_(num_warehouses),
      home_w_(home_w),
      home_d_(home_d) {}

std::uint32_t TpccDriver::nurand_customer(Rng& rng) const {
  NuRand nu(255, 1, scale_.customers_per_district, scale_.c_customer);
  return static_cast<std::uint32_t>(nu.next(rng));
}

std::uint32_t TpccDriver::nurand_item(Rng& rng) const {
  NuRand nu(1023, 1, scale_.items, scale_.c_item);
  return static_cast<std::uint32_t>(nu.next(rng));
}

core::CommandSpec TpccDriver::make_new_order(Rng& rng) {
  auto args = sim::make_mutable_message<NewOrderArgs>();
  args->w = home_w_;
  args->d = home_d_;
  args->c = nurand_customer(rng);

  core::CommandSpec spec;
  spec.objects.emplace_back(oid(Table::kWarehouse, args->w, 0, 0),
                            warehouse_vertex(args->w));
  spec.objects.emplace_back(oid(Table::kDistrict, args->w, args->d, 0),
                            district_vertex(args->w, args->d));
  spec.objects.emplace_back(oid(Table::kCustomer, args->w, args->d, args->c),
                            district_vertex(args->w, args->d));

  const std::uint64_t num_lines = rng.uniform(5, 15);
  for (std::uint64_t l = 0; l < num_lines; ++l) {
    OrderLine line;
    line.item = nurand_item(rng);
    line.quantity = static_cast<std::uint32_t>(rng.uniform(1, 10));
    line.supply_w = home_w_;
    if (num_warehouses_ > 1 && rng.chance(0.01)) {
      do {
        line.supply_w =
            static_cast<std::uint32_t>(rng.uniform(1, num_warehouses_));
      } while (line.supply_w == home_w_);
    }
    line.amount = 0;
    spec.objects.emplace_back(oid(Table::kStock, line.supply_w, 0, line.item),
                              warehouse_vertex(line.supply_w));
    args->lines.push_back(line);
  }
  spec.payload = std::move(args);
  return spec;
}

core::CommandSpec TpccDriver::make_payment(Rng& rng) {
  auto args = sim::make_mutable_message<PaymentArgs>();
  args->w = home_w_;
  args->d = home_d_;
  args->amount = 1.0 + rng.uniform01() * 4999.0;
  if (num_warehouses_ > 1 && rng.chance(0.15)) {
    do {
      args->c_w = static_cast<std::uint32_t>(rng.uniform(1, num_warehouses_));
    } while (args->c_w == home_w_);
    args->c_d = static_cast<std::uint32_t>(
        rng.uniform(1, scale_.districts_per_warehouse));
  } else {
    args->c_w = home_w_;
    args->c_d = home_d_;
  }
  args->c = nurand_customer(rng);

  core::CommandSpec spec;
  spec.objects.emplace_back(oid(Table::kWarehouse, args->w, 0, 0),
                            warehouse_vertex(args->w));
  spec.objects.emplace_back(oid(Table::kDistrict, args->w, args->d, 0),
                            district_vertex(args->w, args->d));
  spec.objects.emplace_back(oid(Table::kHistory, args->w, args->d, 0),
                            district_vertex(args->w, args->d));
  spec.objects.emplace_back(oid(Table::kCustomer, args->c_w, args->c_d, args->c),
                            district_vertex(args->c_w, args->c_d));
  spec.payload = std::move(args);
  return spec;
}

core::CommandSpec TpccDriver::make_order_status(Rng& rng) {
  auto args = sim::make_mutable_message<OrderStatusArgs>();
  args->w = home_w_;
  args->d = home_d_;
  args->c = nurand_customer(rng);
  const std::uint64_t ckey =
      (static_cast<std::uint64_t>(args->w) << 40) |
      (static_cast<std::uint64_t>(args->d) << 32) | args->c;
  auto it = last_order_.find(ckey);
  args->o_id = it == last_order_.end() ? 0 : it->second;

  core::CommandSpec spec;
  spec.objects.emplace_back(oid(Table::kCustomer, args->w, args->d, args->c),
                            district_vertex(args->w, args->d));
  if (args->o_id != 0) {
    spec.objects.emplace_back(oid(Table::kOrder, args->w, args->d, args->o_id),
                              district_vertex(args->w, args->d));
  }
  spec.read_only = true;
  spec.payload = std::move(args);
  return spec;
}

void TpccDriver::queue_delivery(Rng& rng) {
  const auto carrier = static_cast<std::uint32_t>(rng.uniform(1, 10));
  for (std::uint32_t d = 1; d <= scale_.districts_per_warehouse; ++d) {
    auto args = sim::make_mutable_message<DeliveryArgs>();
    args->w = home_w_;
    args->d = d;
    args->carrier = carrier;
    core::CommandSpec spec;
    spec.objects.emplace_back(oid(Table::kDistrict, home_w_, d, 0),
                              district_vertex(home_w_, d));
    spec.payload = std::move(args);
    pending_.push_back(std::move(spec));
  }
}

core::CommandSpec TpccDriver::make_stock_scan(Rng& rng) {
  auto args = sim::make_mutable_message<StockScanArgs>();
  args->w = home_w_;
  args->d = home_d_;
  args->last_n = 20;
  (void)rng;
  core::CommandSpec spec;
  spec.objects.emplace_back(oid(Table::kDistrict, home_w_, home_d_, 0),
                            district_vertex(home_w_, home_d_));
  spec.read_only = true;
  spec.payload = std::move(args);
  return spec;
}

std::optional<core::CommandSpec> TpccDriver::next(Rng& rng, SimTime /*now*/) {
  if (!pending_.empty()) {
    auto spec = std::move(pending_.front());
    pending_.pop_front();
    return spec;
  }
  const double roll = rng.uniform01();
  if (roll < 0.45) return make_new_order(rng);
  if (roll < 0.88) return make_payment(rng);
  if (roll < 0.92) return make_order_status(rng);
  if (roll < 0.96) {
    queue_delivery(rng);
    auto spec = std::move(pending_.front());
    pending_.pop_front();
    return spec;
  }
  return make_stock_scan(rng);
}

void TpccDriver::on_result(const core::CommandSpec& spec,
                           core::ReplyStatus status,
                           const sim::MessagePtr& payload,
                           SimTime /*issued_at*/, SimTime /*completed_at*/) {
  if (status != core::ReplyStatus::kOk) return;
  const auto* reply = dynamic_cast<const TpccReply*>(payload.get());
  if (reply == nullptr) return;

  if (auto* args = dynamic_cast<const NewOrderArgs*>(spec.payload.get())) {
    const std::uint64_t ckey =
        (static_cast<std::uint64_t>(args->w) << 40) |
        (static_cast<std::uint64_t>(args->d) << 32) | args->c;
    if (reply->o_id != 0) last_order_[ckey] = reply->o_id;
    return;
  }
  if (dynamic_cast<const StockScanArgs*>(spec.payload.get()) != nullptr &&
      !reply->items.empty()) {
    // Phase 2: check the stock of the scanned items at the home warehouse.
    auto args = sim::make_mutable_message<StockCheckArgs>();
    args->w = home_w_;
    core::CommandSpec spec2;
    for (std::uint32_t item : reply->items) {
      spec2.objects.emplace_back(oid(Table::kStock, home_w_, 0, item),
                                 warehouse_vertex(home_w_));
    }
    spec2.payload = std::move(args);
    pending_.push_back(std::move(spec2));
  }
}

}  // namespace dynastar::workloads::tpcc
