#include "workloads/chirper.h"

#include <algorithm>

#include "partitioning/graph.h"
#include "partitioning/partitioner.h"

namespace dynastar::workloads::chirper {

core::ExecResult ChirperApp::execute(const core::Command& cmd,
                                     core::ObjectStore& store) {
  auto reply = sim::make_mutable_message<ChirperReply>();
  const auto* op = dynamic_cast<const ChirperOp*>(cmd.payload.get());
  if (op == nullptr) {
    reply->ok = false;
    return {reply, microseconds(2)};
  }

  switch (op->kind) {
    case ChirperOp::Kind::kPost: {
      for (std::size_t i = 0; i < cmd.objects.size(); ++i) {
        auto* user = dynamic_cast<UserObject*>(store.find(cmd.objects[i]));
        if (user == nullptr) continue;
        if (cmd.objects[i].value() == op->author) {
          user->posts += 1;
        } else {
          user->append(op->post_ref);
        }
      }
      return {reply, microseconds(4) +
                         nanoseconds(500) *
                             static_cast<SimTime>(cmd.objects.size())};
    }
    case ChirperOp::Kind::kTimeline: {
      auto* user = dynamic_cast<UserObject*>(store.find(cmd.objects.front()));
      if (user == nullptr) {
        reply->ok = false;
      } else {
        reply->timeline_len = static_cast<std::uint32_t>(user->timeline.size());
        if (!user->timeline.empty()) reply->newest = user->timeline.back();
      }
      return {reply, microseconds(3)};
    }
    case ChirperOp::Kind::kFollow:
    case ChirperOp::Kind::kUnfollow: {
      const int delta = op->kind == ChirperOp::Kind::kFollow ? 1 : -1;
      // objects[0] = follower, objects[1] = followee.
      if (auto* follower =
              dynamic_cast<UserObject*>(store.find(cmd.objects[0]))) {
        follower->following_count =
            static_cast<std::uint32_t>(
                std::max(0, static_cast<int>(follower->following_count) + delta));
      }
      if (cmd.objects.size() > 1) {
        if (auto* followee =
                dynamic_cast<UserObject*>(store.find(cmd.objects[1]))) {
          followee->followers_count = static_cast<std::uint32_t>(std::max(
              0, static_cast<int>(followee->followers_count) + delta));
        }
      }
      return {reply, microseconds(4)};
    }
  }
  reply->ok = false;
  return {reply, microseconds(2)};
}

core::ObjectPtr ChirperApp::make_object(const core::Command& /*cmd*/) {
  return std::make_shared<UserObject>();
}

void setup(core::System& system, const SocialGraph& graph, Placement placement,
           std::uint64_t seed) {
  const std::uint32_t k = system.config().num_partitions;
  const auto n = static_cast<std::uint32_t>(graph.num_users());
  std::vector<std::uint32_t> part_of(n, 0);

  if (placement == Placement::kRandom || k == 1) {
    Rng rng(seed);
    for (std::uint32_t u = 0; u < n; ++u)
      part_of[u] = static_cast<std::uint32_t>(rng.uniform(0, k - 1));
  } else {
    // S-SMR*: METIS on the follower graph, computed with full workload
    // knowledge before the run (paper §5.5).
    partitioning::GraphBuilder builder(n);
    for (std::uint32_t u = 0; u < n; ++u) {
      builder.set_vertex_weight(u, 1 + static_cast<std::int64_t>(
                                          graph.followers[u].size()));
      for (std::uint32_t f : graph.followers[u]) builder.add_edge(u, f, 1);
    }
    partitioning::PartitionerConfig config;
    config.seed = seed;
    auto result = partitioning::partition_graph(builder.build(), k, config);
    part_of = std::move(result.assignment);
  }

  core::Assignment assignment;
  assignment.reserve(n);
  UserObject prototype;
  for (std::uint32_t u = 0; u < n; ++u) {
    const PartitionId p{part_of[u]};
    assignment[user_vertex(u)] = p;
    prototype.followers_count =
        static_cast<std::uint32_t>(graph.followers[u].size());
    prototype.following_count =
        static_cast<std::uint32_t>(graph.following[u].size());
    system.preload_object(user_object(u), user_vertex(u), p, prototype);
  }
  system.preload_assignment(assignment);
}

core::CommandSpec make_post_spec(const SocialGraph& directory,
                                 std::uint32_t author, std::uint64_t post_ref,
                                 std::uint32_t fanout_cap) {
  core::CommandSpec spec;
  spec.objects.emplace_back(user_object(author), user_vertex(author));
  const auto& followers = directory.followers[author];
  const std::size_t fanout =
      std::min<std::size_t>(followers.size(), fanout_cap);
  for (std::size_t i = 0; i < fanout; ++i) {
    spec.objects.emplace_back(user_object(followers[i]),
                              user_vertex(followers[i]));
  }
  auto op = sim::make_mutable_message<ChirperOp>();
  op->kind = ChirperOp::Kind::kPost;
  op->author = author;
  op->post_ref = post_ref;
  spec.payload = std::move(op);
  return spec;
}

std::optional<core::CommandSpec> ChirperDriver::next(Rng& rng, SimTime now) {
  const auto n = static_cast<std::uint32_t>(directory_->num_users());
  const auto active = static_cast<std::uint32_t>(zipf_->next(rng));

  // Dynamic scenario: maybe follow the celebrity first (Fig. 6).
  if (mix_.celebrity.has_value() && now >= mix_.celebrity_start &&
      *mix_.celebrity < directory_->num_users() && active != *mix_.celebrity &&
      rng.chance(mix_.follow_celebrity_prob)) {
    const std::uint32_t celebrity = *mix_.celebrity;
    const auto& already = directory_->followers[celebrity];
    if (std::find(already.begin(), already.end(), active) == already.end()) {
      core::CommandSpec spec;
      spec.objects.emplace_back(user_object(active), user_vertex(active));
      spec.objects.emplace_back(user_object(celebrity),
                                user_vertex(celebrity));
      auto op = sim::make_mutable_message<ChirperOp>();
      op->kind = ChirperOp::Kind::kFollow;
      op->author = active;
      spec.payload = std::move(op);
      return spec;
    }
  }

  if (mix_.follow_fraction > 0 && n > 1 && rng.chance(mix_.follow_fraction)) {
    // Follow (or, if already following, unfollow) another Zipf-chosen user.
    std::uint32_t other = static_cast<std::uint32_t>(zipf_->next(rng));
    if (other == active) other = (other + 1) % n;
    const auto& already = directory_->following[active];
    const bool unfollow =
        std::find(already.begin(), already.end(), other) != already.end();
    core::CommandSpec spec;
    spec.objects.emplace_back(user_object(active), user_vertex(active));
    spec.objects.emplace_back(user_object(other), user_vertex(other));
    auto op = sim::make_mutable_message<ChirperOp>();
    op->kind =
        unfollow ? ChirperOp::Kind::kUnfollow : ChirperOp::Kind::kFollow;
    op->author = active;
    spec.payload = std::move(op);
    return spec;
  }

  if (rng.chance(mix_.timeline_fraction)) {
    core::CommandSpec spec;
    spec.objects.emplace_back(user_object(active), user_vertex(active));
    auto op = sim::make_mutable_message<ChirperOp>();
    op->kind = ChirperOp::Kind::kTimeline;
    spec.payload = std::move(op);
    spec.read_only = true;  // timeline reads; posts/follows write
    return spec;
  }
  return make_post_spec(*directory_, active,
                        (static_cast<std::uint64_t>(active) << 32) |
                            rng.uniform(0, UINT32_MAX),
                        mix_.fanout_cap);
}

void ChirperDriver::on_result(const core::CommandSpec& spec,
                              core::ReplyStatus status,
                              const sim::MessagePtr& /*payload*/,
                              SimTime /*issued_at*/, SimTime /*completed_at*/) {
  if (status != core::ReplyStatus::kOk) return;
  const auto* op = dynamic_cast<const ChirperOp*>(spec.payload.get());
  if (op == nullptr || spec.objects.size() < 2) return;
  const auto follower = static_cast<std::uint32_t>(spec.objects[0].first.value());
  const auto followee = static_cast<std::uint32_t>(spec.objects[1].first.value());
  if (op->kind == ChirperOp::Kind::kFollow) {
    auto& list = directory_->followers[followee];
    if (std::find(list.begin(), list.end(), follower) == list.end())
      list.push_back(follower);
    directory_->following[follower].push_back(followee);
  } else if (op->kind == ChirperOp::Kind::kUnfollow) {
    auto& list = directory_->followers[followee];
    list.erase(std::remove(list.begin(), list.end(), follower), list.end());
    auto& fol = directory_->following[follower];
    fol.erase(std::remove(fol.begin(), fol.end(), followee), fol.end());
  }
}

std::optional<core::CommandSpec> CelebrityDriver::next(Rng& rng,
                                                       SimTime now) {
  if (now < start_) {
    return core::CommandSpec::pause_for(
        std::min<SimTime>(start_ - now, milliseconds(200)));
  }
  if (!created_) {
    created_ = true;
    if (user_ >= directory_->num_users()) {
      directory_->followers.resize(user_ + 1);
      directory_->following.resize(user_ + 1);
    }
    core::CommandSpec spec;
    spec.type = core::CommandType::kCreate;
    spec.objects.emplace_back(user_object(user_), user_vertex(user_));
    auto op = sim::make_mutable_message<ChirperOp>();
    op->kind = ChirperOp::Kind::kPost;
    op->author = user_;
    spec.payload = std::move(op);
    return spec;
  }
  if (post_interval_ > 0 && rng.chance(0.5)) {
    // Pace the celebrity's stream a little so follows interleave.
    return core::CommandSpec::pause_for(post_interval_);
  }
  return make_post_spec(*directory_, user_,
                        (static_cast<std::uint64_t>(user_) << 32) | ++posts_,
                        fanout_cap_);
}

}  // namespace dynastar::workloads::chirper
