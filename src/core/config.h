// System-wide configuration for a DynaStar (or baseline) deployment.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "core/execution.h"
#include "partitioning/partitioner.h"
#include "paxos/replica.h"
#include "sim/network.h"

namespace dynastar::core {

struct SystemConfig {
  ExecutionMode mode = ExecutionMode::kDynaStar;

  std::uint32_t num_partitions = 4;
  std::uint32_t replicas_per_partition = 2;   // paper §6.1
  std::uint32_t acceptors_per_partition = 3;  // paper §6.1

  // --- DynaStar repartitioning ---
  /// False disables plans entirely (S-SMR always; DS-SMR has no plans).
  bool repartitioning_enabled = true;
  /// Algorithm 2 Task 4: recompute once `changes > threshold` hints arrive.
  std::uint64_t repartition_hint_threshold = 50'000;
  SimTime min_repartition_interval = seconds(20);
  /// Partitions a-mcast accumulated hints to the oracle every N executed
  /// commands. Count-based (not timer-based) so the report stream is a
  /// deterministic function of the partition's delivery order — all
  /// replicas emit identical reports.
  std::uint64_t hint_batch_commands = 200;
  /// Eager (Algorithm 3 Task 3) vs on-demand (§7) object relocation after a
  /// plan is delivered.
  bool eager_plan_transfer = true;
  /// Strict epoch validation: any command addressed under an older epoch is
  /// retried, even if its addressing is still correct (reproduces the
  /// paper's full cache invalidation on repartition, Fig. 8).
  bool strict_epoch_validation = true;
  /// Multiplies the workload graph's weights by this factor at every plan
  /// computation, so stale access patterns fade (1.0 = never forget).
  double workload_graph_decay = 1.0;

  // --- STAR asymmetric execution (mode == kStar only) ---
  /// The partition holding the full replica and executing deferred
  /// multi-partition commands at each epoch switch.
  std::uint32_t star_master_partition = 0;
  /// Master replicas poll their deferred queue at this interval and emit an
  /// epoch-switch marker when work is pending. Shorter = lower multi-command
  /// latency, more marker/update traffic.
  SimTime star_epoch_interval = milliseconds(1);

  // --- Client ---
  /// Maximum entries in a client's location cache (0 = unbounded). When
  /// full, a random resident entry is evicted.
  std::size_t client_cache_capacity = 0;

  // --- Client command timeouts / retransmission ---
  /// Timeout armed per outstanding command attempt; grows exponentially:
  /// min(cap, base * multiplier^(attempt-1)) + U[0, jitter].
  SimTime client_timeout_base = milliseconds(500);
  double client_timeout_multiplier = 2.0;
  SimTime client_timeout_jitter = milliseconds(50);
  SimTime client_timeout_cap = seconds(4);
  /// Attempts before the command completes with kTimeout (0 = retry forever).
  std::uint32_t client_max_attempts = 10;

  // --- Overload protection (0 = disabled; defaults keep behavior
  // bit-identical to a build without this subsystem) ---
  /// High-water mark for a partition server's admission queue (inbox +
  /// execution queue). Above it, the group leader orders client-facing
  /// ExecCommands as shed entries answered with kBusy instead of executing
  /// them. Protocol-internal traffic (borrows, returns, Paxos, multicast
  /// coordination, snapshots, plans) is never gated.
  std::size_t server_queue_cap = 0;
  /// High-water mark for the oracle's inflight set (inbox + unacked relays +
  /// pending creates). Above it, cache-miss lookups are shed before
  /// classification with a kBusy prophecy that still carries any cached
  /// locations, so a hot oracle degrades to a location cache.
  std::size_t oracle_inflight_cap = 0;
  /// Retry-after hint carried in Busy replies: base + depth * per_item.
  SimTime busy_retry_after_base = milliseconds(2);
  SimTime busy_retry_after_per_item = microseconds(50);
  /// Client retry budget for Busy replies: a token bucket holding at most
  /// `client_retry_budget` tokens, refilled one per
  /// `client_retry_token_interval`. Each Busy-triggered retry spends one
  /// token; an empty bucket completes the command kOverloaded. 0 disables
  /// (Busy retries are then unbounded, like timeouts with max_attempts=0).
  std::uint32_t client_retry_budget = 0;
  SimTime client_retry_token_interval = milliseconds(250);

  // --- Read leases (DynaStar / DS-SMR; off by default so runs are
  // bit-identical to a build without the subsystem) ---
  /// Serve read-only multi-partition commands from epoch-validated leased
  /// copies instead of borrow/return: lenders grant (and keep serving),
  /// readers validate lender epoch + per-vertex version at execute time and
  /// fall back to the borrow path via kRetry on any mismatch. Leases are
  /// volatile (cleared by plan epochs and crash-recovery).
  bool read_leases = false;

  // --- Oracle plan computation model ---
  /// Simulated METIS runtime: base + per (V+E) element cost.
  SimTime plan_compute_base = milliseconds(50);
  double plan_compute_ns_per_element = 200.0;
  partitioning::PartitionerConfig partitioner;

  // --- Intra-partition parallel execution (core/parallel_exec.h) ---
  // Defaults keep behavior bit-identical to the serial apply path.
  /// Worker lanes for the deterministic conflict-graph executor; 1 disables
  /// batching entirely (the serial path is untouched).
  std::uint32_t exec_lanes = 1;
  /// Execute batches on a real std::thread lane pool instead of simulated
  /// lanes. State evolution and sim timing are identical; only host wall
  /// clock changes. Meant for wall-clock bench numbers.
  bool exec_real_threads = false;
  /// Micro-batch window: a delivered command waits at most this long for
  /// companions before the executor flushes.
  SimTime exec_batch_window = microseconds(200);
  /// Flush as soon as this many commands are pending.
  std::size_t exec_batch_max = 64;

  // --- WAN topology (0 sites = the uniform latency-only LAN model, which
  // keeps every existing run bit-identical) ---
  /// Number of simulated datacenters. When > 0, System stripes each group's
  /// replicas and acceptors (and clients, in spawn order) across sites
  /// round-robin and installs the two site-pair profiles below, so every
  /// Paxos group spans sites — quorums and state transfers cross the WAN.
  std::uint32_t net_sites = 0;
  /// Links between processes in the same datacenter: fat and near.
  /// Default 10 Gb/s, 50 us propagation, 16 MiB queue.
  sim::LinkProfile intra_site_profile{/*bandwidth_bytes_per_sec=*/1'250'000'000,
                                      /*propagation=*/microseconds(50),
                                      /*queue_bytes=*/16 * 1024 * 1024};
  /// Links between datacenters: thin and far. Default 100 Mb/s, 20 ms
  /// propagation, 4 MiB queue.
  sim::LinkProfile inter_site_profile{/*bandwidth_bytes_per_sec=*/12'500'000,
                                      /*propagation=*/milliseconds(20),
                                      /*queue_bytes=*/4 * 1024 * 1024};

  // --- Node CPU costs (drive saturation / peak throughput) ---
  SimTime server_service_time = microseconds(4);
  SimTime oracle_service_time = microseconds(3);
  SimTime acceptor_service_time = microseconds(2);
  SimTime client_service_time = microseconds(1);

  paxos::ReplicaConfig paxos;
  sim::NetworkConfig network;
  std::uint64_t seed = 1;
};

}  // namespace dynastar::core
