#include "core/oracle.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/metric_names.h"
#include "partitioning/partitioner.h"

namespace dynastar::core {

namespace {
constexpr SimTime kRequestCost = microseconds(2);

std::uint64_t oracle_uid(std::uint64_t purpose, std::uint64_t counter) {
  std::uint64_t x = 0x5bd1e995ULL * (purpose + 1) + counter;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x | (1ULL << 62);
}
}  // namespace

OracleCore::OracleCore(sim::Env& env, const paxos::Topology& topology,
                       const SystemConfig& config, MetricsRegistry* metrics,
                       bool record_metrics, TraceCollector* trace)
    : env_(env),
      topology_(topology),
      config_(config),
      metrics_(metrics),
      record_metrics_(record_metrics),
      trace_(trace),
      member_(env, topology, kOracleGroup, config.paxos),
      plan_sender_(env, topology) {
  const auto& replicas = topology.group(kOracleGroup).replicas;
  for (std::size_t i = 0; i < replicas.size(); ++i)
    if (replicas[i] == env.self()) replica_label_ = std::to_string(i);
  member_.set_trace(trace);
  member_.set_deliver(
      [this](const multicast::McastData& data) { on_adeliver(data); });
  if (config_.oracle_inflight_cap > 0) {
    // Oracle self-protection: shed client lookups before classification when
    // the inflight set crosses the cap, so a hot oracle degrades to serving
    // cached locations instead of collapsing. Group-sender traffic (hints,
    // plans, relayed deletes) is exempt via the sender-key check; multi-group
    // messages are never gated by the member.
    member_.set_admission_gate([this](const multicast::McastData& data) {
      if (data.sender >= (1ULL << 40)) return false;
      const auto* req =
          dynamic_cast<const OracleRequest*>(data.payload.get());
      if (req == nullptr) return false;
      const std::size_t depth = queue_depth();
      if (depth < config_.oracle_inflight_cap) {
        if (trace_)
          trace_->record(TracePoint::kAdmit, env_.now(), req->cmd->cmd_id,
                         req->attempt, env_.self().value(), depth);
        return false;
      }
      return true;
    });
    member_.set_shed_deliver(
        [this](const multicast::McastData& data) { on_shed_deliver(data); });
  }
  member_.replica().set_checkpoint_hook([this] { on_checkpoint_boundary(); });
  member_.replica().set_snapshot_provider([this] {
    return sim::make_message<OracleSnapshotMsg>(capture_snapshot());
  });
  member_.replica().set_snapshot_installer([this](const sim::MessagePtr& m) {
    const auto* snap = dynamic_cast<const OracleSnapshotMsg*>(m.get());
    if (snap == nullptr || !snap->state) return false;
    restore_snapshot(*snap->state);
    if (metrics_) metrics_->add_counter(metric::kOracleSnapshotInstalls);
    if (trace_)
      trace_->record(TracePoint::kSnapshotInstall, env_.now(),
                     snap->state->member.replica.next_deliver_slot, 0,
                     env_.self().value(), /*oracle=*/UINT64_MAX);
    return true;
  });
  // Chunked transfers serve the stable checkpoint snapshot (identical across
  // the group at a given slot), letting a lagging oracle replica resume a
  // transfer from any up-to-date peer. See PartitionServerCore for details.
  member_.replica().set_stable_snapshot_provider([this]() -> sim::MessagePtr {
    if (!stable_snapshot_) return nullptr;
    return sim::make_message<OracleSnapshotMsg>(stable_snapshot_);
  });
  member_.replica().set_metrics(metrics_);
}

void OracleCore::start() {
  member_.start();
  arm_plan_repair_timer();
}

void OracleCore::on_checkpoint_boundary() {
  SnapshotPtr snap = capture_snapshot();
  stable_snapshot_ = snap;
  if (checkpoint_sink_) checkpoint_sink_(std::move(snap));
  if (metrics_) metrics_->add_counter(metric::kOracleCheckpoints);
  if (trace_)
    trace_->record(TracePoint::kCheckpoint, env_.now(),
                   member_.replica().last_checkpoint_slot(), 0,
                   env_.self().value(), /*oracle=*/UINT64_MAX);
}

OracleCore::SnapshotPtr OracleCore::capture_snapshot() const {
  auto snap = std::make_shared<Snapshot>();
  snap->member = member_.capture_state();
  snap->plan_sender = plan_sender_.capture();
  snap->map = map_;
  snap->epoch = epoch_;
  snap->graph = graph_;
  snap->pending_creates = pending_creates_;
  snap->relay_cache = relay_cache_;
  snap->changes = changes_;
  snap->create_round_robin = create_round_robin_;
  snap->relays_emitted = relays_emitted_;
  return snap;
}

void OracleCore::restore_snapshot(const Snapshot& snapshot) {
  member_.restore_state(snapshot.member);
  plan_sender_.restore(snapshot.plan_sender);
  map_ = snapshot.map;
  epoch_ = snapshot.epoch;
  graph_ = snapshot.graph;
  pending_creates_ = snapshot.pending_creates;
  relay_cache_ = snapshot.relay_cache;
  changes_ = snapshot.changes;
  create_round_robin_ = snapshot.create_round_robin;
  relays_emitted_ = snapshot.relays_emitted;
  // The adopted state's checkpoint history belongs to the peer; our next
  // boundary repopulates the stable snapshot.
  stable_snapshot_ = nullptr;
  // Replica-local plan state: any computation in flight at the crash is
  // gone (its timer died with the old incarnation); reset the latch so a
  // later hint delivery can trigger a plan again.
  computing_ = false;
  repartition_requested_ = false;
  last_plan_time_ = env_.now();
}

void OracleCore::start_recovered() {
  if (trace_)
    trace_->record(TracePoint::kRecoveryRestore, env_.now(),
                   member_.replica().next_deliver_slot(), 0,
                   env_.self().value(), /*oracle=*/UINT64_MAX);
  member_.start_recovered();
  // Re-drive unacked PlanMsg sends immediately, then keep the repair cadence.
  plan_sender_.retransmit_unacked();
  arm_plan_repair_timer();
}

void OracleCore::arm_plan_repair_timer() {
  // PlanMsg multicasts go out via the replica-local plan_sender_; re-drive
  // any that a destination group never acknowledged.
  env_.start_timer(milliseconds(100), [this] {
    plan_sender_.retransmit_unacked();
    arm_plan_repair_timer();
  });
}

void OracleCore::preload_assignment(AssignmentPtr assignment, Epoch epoch) {
  map_ = *assignment;
  epoch_ = epoch;
  for (const auto& [vertex, partition] : map_) graph_.add_vertex(vertex.value(), 0);
}

void OracleCore::preload_vertex(VertexId v, std::int64_t weight) {
  graph_.add_vertex(v.value(), weight);
}

bool OracleCore::handle(ProcessId from, const sim::MessagePtr& msg) {
  if (member_.handle(from, msg)) return true;
  // McastAcks for this replica's own PlanMsg sends (or late duplicates of
  // acks the member already pruned).
  return plan_sender_.handle(msg);
}

PartitionId OracleCore::lookup(VertexId v) const {
  auto pending = pending_creates_.find(v);
  if (pending != pending_creates_.end()) return pending->second;
  auto it = map_.find(v);
  return it == map_.end() ? kNoPartition : it->second;
}

void OracleCore::on_adeliver(const multicast::McastData& data) {
  if (metrics_) {
    // Admission depth sampled at each delivery (mirrors the servers'
    // server.queue_depth series; mean per bucket = sum / delivery count).
    metrics_->series(metric::kOracleQueueDepth, {{"replica", replica_label_}})
        .add(env_.now(), static_cast<double>(queue_depth()));
  }
  if (auto req = sim::dyn_ref_cast<const OracleRequest>(data.payload)) {
    on_request(*req);
  } else if (auto exec =
                 sim::dyn_ref_cast<const ExecCommand>(data.payload)) {
    on_create_apply(*exec);
  } else if (auto hint =
                 sim::dyn_ref_cast<const HintReport>(data.payload)) {
    on_hint(*hint);
  } else if (auto update = sim::dyn_ref_cast<const LocationUpdate>(
                 data.payload)) {
    on_location_update(*update);
  } else if (auto plan = sim::dyn_ref_cast<const PlanMsg>(data.payload)) {
    on_plan(*plan);
  }
}

void OracleCore::send_prophecy(
    const OracleRequest& request, ReplyStatus status, PartitionId target,
    std::vector<std::pair<VertexId, PartitionId>> locations,
    SimTime retry_after) {
  env_.send_message(request.cmd->client,
                    sim::make_message<Prophecy>(
                        request.cmd->cmd_id, request.attempt, status, target,
                        epoch_, std::move(locations), retry_after));
}

void OracleCore::on_shed_deliver(const multicast::McastData& data) {
  auto req = sim::dyn_ref_cast<const OracleRequest>(data.payload);
  if (!req) return;
  const std::size_t depth = queue_depth();
  if (trace_)
    trace_->record(TracePoint::kShed, env_.now(), req->cmd->cmd_id,
                   req->attempt, env_.self().value(), depth);
  // Degraded service: answer from the location map without classifying or
  // relaying. The kBusy prophecy still refreshes the client's cache with
  // every resolvable vertex, so the retry can often go partition-direct and
  // skip the hot oracle entirely.
  std::vector<std::pair<VertexId, PartitionId>> locations;
  for (VertexId v : req->cmd->vertices) {
    const PartitionId p = lookup(v);
    if (p != kNoPartition) locations.emplace_back(v, p);
  }
  const SimTime retry_after =
      config_.busy_retry_after_base +
      static_cast<SimTime>(depth) * config_.busy_retry_after_per_item;
  if (trace_)
    trace_->record(TracePoint::kBusyReply, env_.now(), req->cmd->cmd_id,
                   req->attempt, env_.self().value(),
                   static_cast<std::uint64_t>(retry_after));
  send_prophecy(*req, ReplyStatus::kBusy, kNoPartition, std::move(locations),
                retry_after);
  if (record_metrics_ && metrics_) metrics_->add_counter(metric::kOracleShed);
}

void OracleCore::on_request(const OracleRequest& request) {
  env_.consume_cpu(kRequestCost);
  if (record_metrics_ && metrics_)
    metrics_->series(metric::kOracleQueries).add(env_.now(), 1.0);

  const Command& cmd = *request.cmd;

  if (cmd.type == CommandType::kCreate) {
    const VertexId vertex = cmd.vertices.front();
    PartitionId target = lookup(vertex);
    if (target == kNoPartition) {
      // "Random" placement (Algorithm 2 line 6) — round robin is random
      // w.r.t. the workload and, critically, deterministic across replicas.
      target = PartitionId{create_round_robin_++ % config_.num_partitions};
      pending_creates_.emplace(vertex, target);
    }
    // Retransmitted creates resolve to the already-placed vertex, so the
    // same target is addressed again and its reply cache answers. STAR also
    // addresses the master partition, which applies the create silently to
    // keep its full replica complete.
    std::vector<PartitionId> dests{target};
    std::vector<GroupId> groups{kOracleGroup, group_of(target)};
    if (config_.mode == ExecutionMode::kStar) {
      const PartitionId master{config_.star_master_partition};
      if (master != target) {
        dests.push_back(master);
        std::sort(dests.begin(), dests.end());
        groups.push_back(group_of(master));
      }
    }
    auto exec = sim::make_message<ExecCommand>(
        request.cmd, std::move(dests), std::vector<PartitionId>{target},
        target, epoch_, request.attempt);
    relay_cache_[cmd.client.value()] = exec;
    if (trace_)
      trace_->record(TracePoint::kOracleRelay, env_.now(), cmd.cmd_id,
                     request.attempt, env_.self().value(), target.value());
    member_.amcast_as_group(oracle_uid(/*purpose=*/1, ++relays_emitted_),
                            std::move(groups), exec);
    send_prophecy(request, ReplyStatus::kOk, target, {{vertex, target}});
    return;
  }

  // Access / delete: every vertex must exist.
  std::vector<PartitionId> owners;
  owners.reserve(cmd.vertices.size());
  std::vector<std::pair<VertexId, PartitionId>> locations;
  for (VertexId v : cmd.vertices) {
    const PartitionId p = lookup(v);
    if (p == kNoPartition) {
      // A vertex can be un-resolvable because an earlier attempt of this
      // very command already executed its delete. Re-relay with the original
      // addressing (under the fresh attempt) so the target's reply cache
      // answers; the prophecy carries no locations — the pinned addressing
      // must not seed the client's cache.
      auto cached = relay_cache_.find(cmd.client.value());
      if (cached != relay_cache_.end() &&
          cached->second->cmd->cmd_id == cmd.cmd_id) {
        const ExecCommand& prev = *cached->second;
        if (record_metrics_ && metrics_)
          metrics_->add_counter(metric::kOracleReplyCacheHits);
        if (trace_)
          trace_->record(TracePoint::kOracleRelay, env_.now(), cmd.cmd_id,
                         request.attempt, env_.self().value(),
                         prev.target.value());
        std::vector<GroupId> groups;
        groups.reserve(prev.dests.size() + 1);
        for (PartitionId d : prev.dests) groups.push_back(group_of(d));
        if (cmd.type == CommandType::kDelete) groups.push_back(kOracleGroup);
        member_.amcast_as_group(
            oracle_uid(/*purpose=*/1, ++relays_emitted_), std::move(groups),
            sim::make_message<ExecCommand>(prev.cmd, prev.dests,
                                                prev.owners, prev.target,
                                                prev.epoch, request.attempt));
        send_prophecy(request, ReplyStatus::kOk, prev.target, {});
        return;
      }
      send_prophecy(request, ReplyStatus::kNok, kNoPartition, {});
      return;
    }
    owners.push_back(p);
    locations.emplace_back(v, p);
  }
  // The mode seam: DynaStar/S-SMR*/DS-SMR address the distinct owners; STAR
  // additionally pins the master (singles) or defers to it (multi-owner).
  Route route =
      route_command(config_.mode, PartitionId{config_.star_master_partition},
                    cmd.objects, owners);

  std::vector<GroupId> groups;
  groups.reserve(route.dests.size() + 1);
  for (PartitionId p : route.dests) groups.push_back(group_of(p));
  if (cmd.type == CommandType::kDelete) groups.push_back(kOracleGroup);

  auto exec = sim::make_message<ExecCommand>(
      request.cmd, std::move(route.dests), std::move(owners), route.target,
      epoch_, request.attempt);
  relay_cache_[cmd.client.value()] = exec;
  // Lease-aware serving: the partitions decide lease eligibility from the
  // relay itself (same predicate both sides), so the oracle only accounts
  // for it — these relays resolve without any borrow/return traffic.
  if (record_metrics_ && metrics_ && config_.read_leases &&
      mode_supports_leases(config_.mode) && exec->dests.size() > 1 &&
      is_read_only(cmd))
    metrics_->add_counter(metric::kOracleLeaseRelays);
  if (trace_)
    trace_->record(TracePoint::kOracleRelay, env_.now(), cmd.cmd_id,
                   request.attempt, env_.self().value(), route.target.value());
  member_.amcast_as_group(oracle_uid(/*purpose=*/1, ++relays_emitted_),
                          std::move(groups), exec);
  send_prophecy(request, ReplyStatus::kOk, route.target, std::move(locations));
}

void OracleCore::on_create_apply(const ExecCommand& exec) {
  // Task 2/5: our own copy of a relayed create or delete.
  const VertexId vertex = exec.cmd->vertices.front();
  if (exec.cmd->type == CommandType::kCreate) {
    map_[vertex] = exec.target;
    graph_.add_vertex(vertex.value(), 1);
    pending_creates_.erase(vertex);
  } else if (exec.cmd->type == CommandType::kDelete) {
    map_.erase(vertex);
    graph_.remove_vertex(vertex.value());
  }
}

void OracleCore::on_hint(const HintReport& hint) {
  std::uint64_t delta = 0;
  for (const auto& [vertex, weight] : hint.vertex_weights) {
    graph_.add_vertex(vertex, weight);
    delta += static_cast<std::uint64_t>(weight);
  }
  for (const auto& [a, b, weight] : hint.edges)
    graph_.add_edge(a, b, weight);
  changes_ += delta;
  maybe_trigger_repartition();
}

void OracleCore::on_location_update(const LocationUpdate& update) {
  for (const auto& [vertex, partition] : update.moves) map_[vertex] = partition;
}

void OracleCore::maybe_trigger_repartition() {
  if (!config_.repartitioning_enabled || computing_) return;
  if (!repartition_requested_ && changes_ < config_.repartition_hint_threshold)
    return;
  // Cooldown between plans. This check reads the replica-local clock, so the
  // two oracle replicas may disagree about a borderline trigger — that is
  // safe: plans are deduplicated by epoch at every receiver, so at most one
  // plan per epoch ever applies.
  if (!repartition_requested_ &&
      env_.now() - last_plan_time_ < config_.min_repartition_interval) {
    return;
  }
  repartition_requested_ = false;
  changes_ = 0;
  computing_ = true;
  last_plan_time_ = env_.now();

  // Age the workload graph so the plan tracks *current* access patterns
  // (deterministic: applied at the same log position on every replica).
  if (config_.workload_graph_decay < 1.0)
    graph_.decay(config_.workload_graph_decay);

  // Deterministic snapshot at this log position: graph + current map. The
  // partitioner itself runs "in the background" (paper §5.2): the oracle
  // keeps serving; completion is modeled as a timer proportional to the
  // graph size, with per-replica jitter (first finisher's plan wins).
  auto snapshot = std::make_shared<partitioning::WorkloadGraph::Compact>(
      graph_.compact());
  const Epoch candidate = epoch_ + 1;
  const auto elements = static_cast<double>(snapshot->graph.num_vertices() +
                                            2 * snapshot->graph.num_edges());
  SimTime delay =
      config_.plan_compute_base +
      static_cast<SimTime>(elements * config_.plan_compute_ns_per_element);
  delay += static_cast<SimTime>(
      env_.random().uniform(0, static_cast<std::uint64_t>(delay / 10 + 1)));
  env_.start_timer(delay, [this, candidate, snapshot] {
    finish_repartition(candidate, snapshot);
  });
  if (record_metrics_ && metrics_)
    metrics_->series(metric::kOracleRepartitions).add(env_.now(), 1.0);
}

void OracleCore::finish_repartition(
    Epoch candidate,
    std::shared_ptr<partitioning::WorkloadGraph::Compact> snapshot) {
  if (epoch_ >= candidate) return;  // another replica's plan landed first

  const std::uint32_t k = config_.num_partitions;
  partitioning::PartitionerConfig pconfig = config_.partitioner;
  pconfig.seed = candidate;  // deterministic across replicas
  auto result = partitioning::partition_graph(snapshot->graph, k, pconfig);

  // Relabel parts to agree with the current map as much as possible so the
  // plan moves the minimum number of vertices.
  std::vector<std::uint32_t> previous(snapshot->ids.size(), 0);
  for (std::size_t i = 0; i < snapshot->ids.size(); ++i) {
    auto it = map_.find(VertexId{snapshot->ids[i]});
    previous[i] =
        it == map_.end() ? 0 : static_cast<std::uint32_t>(it->second.value());
  }
  auto relabeled = partitioning::remap_to_minimize_moves(
      snapshot->graph, k, previous, std::move(result.assignment));

  auto assignment = std::make_shared<Assignment>();
  auto moves = std::make_shared<std::vector<VertexMove>>();
  assignment->reserve(snapshot->ids.size());
  for (std::size_t i = 0; i < snapshot->ids.size(); ++i) {
    const VertexId vertex{snapshot->ids[i]};
    const PartitionId new_owner{relabeled[i]};
    assignment->emplace(vertex, new_owner);
    auto it = map_.find(vertex);
    const PartitionId old_owner = it == map_.end() ? kNoPartition : it->second;
    if (old_owner != new_owner && old_owner != kNoPartition)
      moves->push_back(VertexMove{vertex, old_owner, new_owner});
  }

  std::vector<GroupId> all_groups;
  all_groups.reserve(config_.num_partitions + 1);
  all_groups.push_back(kOracleGroup);
  for (std::uint32_t p = 0; p < config_.num_partitions; ++p)
    all_groups.push_back(group_of(PartitionId{p}));
  plan_sender_.amcast(std::move(all_groups),
                      sim::make_message<PlanMsg>(candidate, std::move(assignment),
                                                 std::move(moves)));
  LOG_INFO << "oracle replica " << env_.self() << " finished plan epoch "
           << candidate << " cut=" << result.edge_cut
           << " imbalance=" << result.achieved_imbalance;
}

void OracleCore::on_plan(const PlanMsg& plan) {
  if (plan.epoch <= epoch_) return;  // the other replica's duplicate
  for (const auto& [vertex, partition] : *plan.assignment)
    map_[vertex] = partition;
  epoch_ = plan.epoch;
  computing_ = false;
  last_plan_time_ = env_.now();
  if (trace_)
    trace_->record(TracePoint::kPlanApplied, env_.now(), plan.epoch, 0,
                   env_.self().value(), /*oracle=*/UINT64_MAX);
  if (record_metrics_ && metrics_)
    metrics_->series(metric::kOraclePlansApplied).add(env_.now(), 1.0);
}

}  // namespace dynastar::core
