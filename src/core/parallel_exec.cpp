#include "core/parallel_exec.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace dynastar::core {
namespace {

void sorted_unique(std::vector<VertexId>& v) {
  std::sort(v.begin(), v.end(),
            [](VertexId a, VertexId b) { return a.value() < b.value(); });
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

bool intersects(const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].value() < b[j].value())
      ++i;
    else if (b[j].value() < a[i].value())
      ++j;
    else
      return true;
  }
  return false;
}

bool conflicts(const ExecIntent& a, const ExecIntent& b) {
  // Read-read never conflicts; any pair involving a write to a shared
  // vertex does.
  return intersects(a.writes, b.writes) || intersects(a.writes, b.reads) ||
         intersects(a.reads, b.writes);
}

}  // namespace

ExecIntent intent_for(const Command& cmd) {
  ExecIntent intent;
  // Shared read-only predicate with the lease path: only kAccess commands
  // can be reads (creates/deletes always write, whatever the hint says).
  if (is_read_only(cmd))
    intent.reads = cmd.vertices;
  else
    intent.writes = cmd.vertices;
  sorted_unique(intent.reads);
  sorted_unique(intent.writes);
  return intent;
}

ConflictGraph build_conflict_graph(const std::vector<ExecIntent>& intents) {
  ConflictGraph graph;
  graph.commands = intents.size();
  graph.preds.resize(intents.size());
  for (std::size_t i = 1; i < intents.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (conflicts(intents[i], intents[j])) {
        graph.preds[i].push_back(static_cast<std::uint32_t>(j));
        ++graph.edges;
      }
    }
  }
  return graph;
}

LaneSchedule build_schedule(const ConflictGraph& graph, std::uint32_t lanes) {
  LaneSchedule sched;
  sched.lanes = std::max<std::uint32_t>(1, lanes);
  const std::size_t n = graph.commands;
  sched.wave_of.resize(n, 0);
  sched.lane_of.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t wave = 0;
    for (std::uint32_t j : graph.preds[i])
      wave = std::max(wave, sched.wave_of[j] + 1);
    sched.wave_of[i] = wave;
    sched.waves = std::max(sched.waves, wave + 1);
  }
  // Slot-order round-robin within each wave: deterministic and balanced.
  std::vector<std::uint32_t> next_lane(sched.waves, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t& cursor = next_lane[sched.wave_of[i]];
    sched.lane_of[i] = cursor;
    cursor = (cursor + 1) % sched.lanes;
  }
  return sched;
}

/// Persistent worker pool for the real-thread backend: lanes-1 workers plus
/// the calling thread (which always runs lane 0). run_wave hands each worker
/// its closure under the mutex and blocks until all of them finish, so
/// everything a worker wrote happens-before the caller's next read.
class ParallelExecutor::LanePool {
 public:
  explicit LanePool(std::uint32_t lanes) {
    assigned_.resize(lanes > 0 ? lanes - 1 : 0, nullptr);
    for (std::size_t w = 0; w + 1 < lanes; ++w)
      workers_.emplace_back([this, w] { worker_loop(w); });
  }

  ~LanePool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++generation_;
    }
    wake_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  /// fns[0] runs on the calling thread, fns[k>0] on worker k-1. Empty
  /// slots (no work for that lane this wave) stay null.
  void run_wave(std::vector<std::function<void()>>& fns) {
    std::size_t active = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t w = 0; w < assigned_.size(); ++w) {
        const std::size_t lane = w + 1;
        assigned_[w] = lane < fns.size() && fns[lane] ? &fns[lane] : nullptr;
        if (assigned_[w] != nullptr) ++active;
      }
      pending_ = active;
      ++generation_;
    }
    if (active > 0) wake_cv_.notify_all();
    if (!fns.empty() && fns[0]) fns[0]();
    if (active > 0) {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return pending_ == 0; });
    }
  }

 private:
  void worker_loop(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
      std::function<void()>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = assigned_[index];
      }
      if (fn != nullptr) {
        (*fn)();
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::vector<std::function<void()>*> assigned_;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

ParallelExecutor::ParallelExecutor(std::uint32_t lanes, bool real_threads)
    : lanes_(std::max<std::uint32_t>(1, lanes)), real_threads_(real_threads) {}

ParallelExecutor::~ParallelExecutor() = default;

BatchStats ParallelExecutor::run(
    const std::vector<ExecIntent>& intents,
    const std::function<SimTime(std::size_t)>& execute_item) {
  BatchStats stats;
  const std::size_t n = intents.size();
  stats.commands = n;
  if (n == 0) return stats;

  const ConflictGraph graph = build_conflict_graph(intents);
  const LaneSchedule sched = build_schedule(graph, lanes_);
  stats.conflict_edges = graph.edges;
  stats.waves = sched.waves;

  std::vector<SimTime> costs(n, 0);
  if (!real_threads_ || lanes_ <= 1 || n == 1) {
    // Simulated lanes: slot-order execution is trivially serial-equivalent;
    // the schedule only shapes the CPU-time accounting below.
    for (std::size_t i = 0; i < n; ++i) costs[i] = execute_item(i);
  } else {
    if (!pool_) pool_ = std::make_unique<LanePool>(lanes_);
    // items[wave][lane] = slot-ordered item indices.
    std::vector<std::vector<std::vector<std::uint32_t>>> items(
        sched.waves, std::vector<std::vector<std::uint32_t>>(lanes_));
    for (std::size_t i = 0; i < n; ++i)
      items[sched.wave_of[i]][sched.lane_of[i]].push_back(
          static_cast<std::uint32_t>(i));
    for (std::uint32_t wave = 0; wave < sched.waves; ++wave) {
      std::vector<std::function<void()>> lane_fns(lanes_);
      for (std::uint32_t lane = 0; lane < lanes_; ++lane) {
        const auto& mine = items[wave][lane];
        if (mine.empty()) continue;
        lane_fns[lane] = [&mine, &costs, &execute_item] {
          for (std::uint32_t i : mine) costs[i] = execute_item(i);
        };
      }
      pool_->run_wave(lane_fns);
    }
  }

  // Deterministic parallel-time accounting from the actual per-item costs:
  // each wave costs its busiest lane; waves are sequential.
  std::vector<SimTime> lane_time(lanes_, 0);
  for (std::uint32_t wave = 0; wave < sched.waves; ++wave) {
    std::fill(lane_time.begin(), lane_time.end(), 0);
    SimTime span = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (sched.wave_of[i] != wave) continue;
      SimTime& t = lane_time[sched.lane_of[i]];
      t += costs[i];
      span = std::max(span, t);
      stats.serial_cost += costs[i];
    }
    stats.makespan += span;
  }
  const double capacity =
      static_cast<double>(lanes_) * static_cast<double>(stats.makespan);
  stats.lane_occupancy =
      capacity > 0 ? static_cast<double>(stats.serial_cost) / capacity : 1.0;
  return stats;
}

}  // namespace dynastar::core
