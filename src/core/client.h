// ClientCore: DynaStar's client-side library (Algorithm 1 + the location
// cache of §4.3). Runs a closed loop: issue one command, wait for its
// reply, issue the next. Commands whose vertices are all cached are
// multicast straight to the involved partitions; everything else (creates,
// cache misses, retries) goes through the oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/config.h"
#include "core/protocol.h"
#include "core/types.h"
#include "multicast/client.h"
#include "paxos/topology.h"
#include "sim/env.h"

namespace dynastar::core {

/// What the application wants executed next. A spec with an empty `objects`
/// list is a *pause*: the client idles for `pause` and asks again.
struct CommandSpec {
  CommandType type = CommandType::kAccess;
  /// omega with home vertices: (object, vertex) pairs.
  std::vector<std::pair<ObjectId, VertexId>> objects;
  sim::MessagePtr payload;
  /// Declares the command mutates nothing (see Command::read_only).
  bool read_only = false;
  SimTime pause = milliseconds(10);

  static CommandSpec pause_for(SimTime duration) {
    CommandSpec spec;
    spec.pause = duration;
    return spec;
  }
};

/// Application-side command generator; one per client.
class ClientDriver {
 public:
  virtual ~ClientDriver() = default;
  /// Next command to issue, or nullopt to stop this client.
  virtual std::optional<CommandSpec> next(Rng& rng, SimTime now) = 0;
  /// Result callback (payload may be null; status kNok = rejected).
  /// `issued_at` / `completed_at` bound the operation in simulated time
  /// (retries included), which linearizability tests rely on.
  virtual void on_result(const CommandSpec& spec, ReplyStatus status,
                         const sim::MessagePtr& payload, SimTime issued_at,
                         SimTime completed_at) {
    (void)spec;
    (void)status;
    (void)payload;
    (void)issued_at;
    (void)completed_at;
  }
};

class ClientCore {
 public:
  ClientCore(sim::Env& env, const paxos::Topology& topology,
             const SystemConfig& config, std::unique_ptr<ClientDriver> driver,
             MetricsRegistry* metrics, TraceCollector* trace = nullptr,
             bool surge_only = false);

  void start();
  bool handle(ProcessId from, const sim::MessagePtr& msg);

  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t oracle_queries() const { return oracle_queries_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t busy_replies() const { return busy_replies_; }
  [[nodiscard]] std::uint64_t overloaded() const { return overloaded_; }

  // --- pure backoff arithmetic (unit-tested in isolation) ---
  /// Timeout backoff for `attempt` (1-based), jitter excluded:
  /// min(cap, base * multiplier^(attempt-1)).
  [[nodiscard]] static SimTime timeout_backoff(const SystemConfig& config,
                                               std::uint32_t attempt);
  /// Wait before re-routing after the `busy_streak`-th consecutive Busy
  /// (1-based) on one command: the server's retry-after hint, floored by an
  /// exponential client-side backoff — the hint can only lengthen the wait,
  /// never shorten it below min(cap, busy_base * multiplier^(streak-1)).
  [[nodiscard]] static SimTime busy_backoff(const SystemConfig& config,
                                            std::uint32_t busy_streak,
                                            SimTime retry_after_hint);

 private:
  struct Outstanding {
    CommandSpec spec;
    CommandPtr cmd;
    std::uint32_t attempt = 1;
    SimTime start_time = 0;
    bool multi = false;
    PartitionId target = kNoPartition;
    std::uint32_t busy_streak = 0;  // consecutive Busy replies this command
  };

  void issue_next();
  void route(bool force_oracle);
  void arm_command_timer();
  void on_command_timeout(std::uint64_t cmd_id, std::uint32_t attempt);
  void on_prophecy(const Prophecy& msg);
  void on_reply(const CommandReply& msg);
  void on_busy(SimTime retry_after);
  /// Spends one retry-budget token (lazy token-bucket refill); false means
  /// the budget is exhausted and the command must complete kOverloaded.
  bool spend_retry_token();
  void complete(ReplyStatus status, const sim::MessagePtr& payload);

  sim::Env& env_;
  const paxos::Topology& topology_;
  const SystemConfig& config_;
  std::unique_ptr<ClientDriver> driver_;
  MetricsRegistry* metrics_;
  TraceCollector* trace_;

  multicast::McastClient sender_;

  common::FlatMap<VertexId, PartitionId> cache_;
  Epoch cache_epoch_ = 0;

  std::optional<Outstanding> outstanding_;
  std::uint64_t next_cmd_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t oracle_queries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t busy_replies_ = 0;
  std::uint64_t overloaded_ = 0;

  /// Surge-only clients issue commands only while the world-level surge flag
  /// is raised; otherwise they idle on a short poll timer. Used by the chaos
  /// injector and benches to model open-loop load bursts.
  bool surge_only_ = false;

  /// Retry-budget token bucket (disabled when client_retry_budget == 0).
  /// Refilled lazily at one token per client_retry_token_interval.
  std::uint64_t retry_tokens_ = 0;
  SimTime last_refill_ = 0;
};

}  // namespace dynastar::core
