// Protocol payloads exchanged between DynaStar clients, the oracle, and
// partition servers. Payloads travel either inside atomic multicasts
// (ordered) or as direct sends (unordered coordination: variable exchange,
// replies, handoffs).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/flat_map.h"
#include <utility>
#include <vector>

#include "core/object.h"
#include "core/types.h"
#include "sim/message.h"

namespace dynastar::core {

/// An object in flight between partitions. `object` is an immutable clone;
/// a null object means "the id was requested but does not exist".
struct ObjectEnvelope {
  ObjectId id;
  VertexId vertex;
  std::shared_ptr<const PRObject> object;
};

inline std::size_t envelopes_bytes(const std::vector<ObjectEnvelope>& objs) {
  std::size_t total = 0;
  for (const auto& env : objs)
    total += 24 + (env.object ? env.object->size_bytes() : 0);
  return total;
}

// ---------------------------------------------------------------------------
// Ordered payloads (inside atomic multicasts)
// ---------------------------------------------------------------------------

/// Client -> oracle group: resolve and relay this command (cache miss,
/// create, or retry path).
struct OracleRequest final : sim::Message {
  OracleRequest(CommandPtr c, std::uint32_t a) : cmd(std::move(c)), attempt(a) {}
  const char* type_name() const override { return "core.OracleRequest"; }
  std::size_t size_bytes() const override { return cmd->size_bytes(); }
  CommandPtr cmd;
  /// Client-side resubmission counter; disambiguates retried commands in
  /// every dedupe key downstream.
  std::uint32_t attempt;
};

/// Oracle or cache-hitting client -> involved partitions: execute `cmd` at
/// `target`; `dests` is the full addressing the sender computed and `epoch`
/// the plan epoch it used.
struct ExecCommand final : sim::Message {
  ExecCommand(CommandPtr c, std::vector<PartitionId> d,
              std::vector<PartitionId> owners_by_vertex, PartitionId t, Epoch e,
              std::uint32_t a)
      : cmd(std::move(c)),
        dests(std::move(d)),
        owners(std::move(owners_by_vertex)),
        target(t),
        epoch(e),
        attempt(a) {}
  const char* type_name() const override { return "core.ExecCommand"; }
  std::size_t size_bytes() const override {
    return 32 + dests.size() * 8 + owners.size() * 8 + cmd->size_bytes();
  }
  CommandPtr cmd;
  std::vector<PartitionId> dests;
  /// Sender's believed owner of cmd->vertices[i] (parallel array); servers
  /// validate these claims against their own map.
  std::vector<PartitionId> owners;
  PartitionId target;
  Epoch epoch;
  std::uint32_t attempt;
};

/// Partition group -> oracle group: accumulated workload-graph observations
/// (Task 4 hints): vertex access weights and co-access edge weights.
struct HintReport final : sim::Message {
  HintReport(PartitionId p,
             std::vector<std::pair<std::uint64_t, std::int64_t>> vs,
             std::vector<std::tuple<std::uint64_t, std::uint64_t, std::int64_t>> es)
      : from(p), vertex_weights(std::move(vs)), edges(std::move(es)) {}
  const char* type_name() const override { return "core.HintReport"; }
  std::size_t size_bytes() const override {
    return 32 + vertex_weights.size() * 16 + edges.size() * 24;
  }
  PartitionId from;
  std::vector<std::pair<std::uint64_t, std::int64_t>> vertex_weights;
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::int64_t>> edges;
};

/// Location assignment: vertex -> partition. Shared so a plan multicast to
/// every group references one allocation.
// Flat open-addressing map: the oracle probes this on every command.
using Assignment = common::FlatMap<VertexId, PartitionId>;
using AssignmentPtr = std::shared_ptr<const Assignment>;

/// One vertex relocation in a plan.
struct VertexMove {
  VertexId vertex;
  PartitionId from;
  PartitionId to;
};
using MoveListPtr = std::shared_ptr<const std::vector<VertexMove>>;

/// Oracle replica -> all groups + oracle: a freshly computed partitioning
/// plan. The first delivered plan with a given epoch wins; duplicates from
/// other oracle replicas are ignored. `moves` is the diff against the
/// oracle's previous map — servers need the old owner explicitly because a
/// vertex created since their last plan is absent from their local map.
struct PlanMsg final : sim::Message {
  PlanMsg(Epoch e, AssignmentPtr a, MoveListPtr m)
      : epoch(e), assignment(std::move(a)), moves(std::move(m)) {}
  const char* type_name() const override { return "core.PlanMsg"; }
  std::size_t size_bytes() const override {
    return 32 + assignment->size() * 16 + moves->size() * 24;
  }
  Epoch epoch;
  AssignmentPtr assignment;
  MoveListPtr moves;
};

/// DS-SMR only: partition group -> oracle group, permanent relocations
/// caused by a multi-partition command.
struct LocationUpdate final : sim::Message {
  explicit LocationUpdate(std::vector<std::pair<VertexId, PartitionId>> m)
      : moves(std::move(m)) {}
  const char* type_name() const override { return "core.LocationUpdate"; }
  std::size_t size_bytes() const override { return 16 + moves.size() * 16; }
  std::vector<std::pair<VertexId, PartitionId>> moves;
};

/// STAR only: master replica -> all partition groups, "switch to epoch
/// `epoch` here". Log-ordered like a PlanMsg: any master replica may emit
/// it (timer-driven, so emission is replica-local), the first delivered
/// marker for an epoch wins and duplicates are ignored, so every replica
/// of every partition phase-switches at the same point of its delivery
/// order.
struct StarEpochMsg final : sim::Message {
  explicit StarEpochMsg(Epoch e) : epoch(e) {}
  const char* type_name() const override { return "core.StarEpochMsg"; }
  Epoch epoch;
};

// ---------------------------------------------------------------------------
// Direct (unordered) messages
// ---------------------------------------------------------------------------

/// Oracle replica -> client: the prophecy (§4.1). On kOk the client waits
/// for the target partition's reply; `locations` refreshes the client's
/// cache.
struct Prophecy final : sim::Message {
  Prophecy(std::uint64_t id, std::uint32_t a, ReplyStatus s, PartitionId t,
           Epoch e, std::vector<std::pair<VertexId, PartitionId>> locs,
           SimTime retry = 0)
      : cmd_id(id),
        attempt(a),
        status(s),
        target(t),
        epoch(e),
        locations(std::move(locs)),
        retry_after(retry) {}
  const char* type_name() const override { return "core.Prophecy"; }
  std::size_t size_bytes() const override {
    return 40 + locations.size() * 16;
  }
  std::uint64_t cmd_id;
  std::uint32_t attempt;
  ReplyStatus status;
  PartitionId target;
  Epoch epoch;
  std::vector<std::pair<VertexId, PartitionId>> locations;
  /// On kBusy: server-computed minimum wait before the client retries.
  SimTime retry_after;
};

/// Partition replica -> client: execution result (kOk) or kRetry when the
/// command's addressing was computed against a stale epoch/map.
struct CommandReply final : sim::Message {
  CommandReply(std::uint64_t id, std::uint32_t a, ReplyStatus s,
               sim::MessagePtr p, SimTime retry = 0)
      : cmd_id(id),
        attempt(a),
        status(s),
        payload(std::move(p)),
        retry_after(retry) {}
  const char* type_name() const override { return "core.CommandReply"; }
  std::size_t size_bytes() const override {
    return 24 + (payload ? payload->size_bytes() : 0);
  }
  std::uint64_t cmd_id;
  std::uint32_t attempt;
  ReplyStatus status;
  sim::MessagePtr payload;
  /// On kBusy: server-computed minimum wait before the client retries.
  SimTime retry_after;
};

/// Source partition replica -> target partition replicas: the omega objects
/// the source holds, for one command (DynaStar borrow; S-SMR copy).
struct VarTransfer final : sim::Message {
  VarTransfer(std::uint64_t id, std::uint32_t a, PartitionId f,
              std::vector<ObjectEnvelope> o)
      : cmd_id(id), attempt(a), from(f), objects(std::move(o)) {}
  const char* type_name() const override { return "core.VarTransfer"; }
  std::size_t size_bytes() const override {
    return 32 + envelopes_bytes(objects);
  }
  std::uint64_t cmd_id;
  std::uint32_t attempt;
  PartitionId from;
  std::vector<ObjectEnvelope> objects;
};

/// Target partition replica -> source replicas: borrowed objects coming
/// home after execution (includes objects the execution created for
/// borrowed vertices).
struct VarReturn final : sim::Message {
  VarReturn(std::uint64_t id, std::uint32_t a, PartitionId f,
            std::vector<ObjectEnvelope> o)
      : cmd_id(id), attempt(a), from(f), objects(std::move(o)) {}
  const char* type_name() const override { return "core.VarReturn"; }
  std::size_t size_bytes() const override {
    return 32 + envelopes_bytes(objects);
  }
  std::uint64_t cmd_id;
  std::uint32_t attempt;
  PartitionId from;
  std::vector<ObjectEnvelope> objects;
};

/// Old owner -> new owner (plan application): all objects of one vertex.
struct ObjectHandoff final : sim::Message {
  ObjectHandoff(Epoch e, PartitionId f, VertexId v,
                std::vector<ObjectEnvelope> o)
      : epoch(e), from(f), vertex(v), objects(std::move(o)) {}
  const char* type_name() const override { return "core.ObjectHandoff"; }
  std::size_t size_bytes() const override {
    return 40 + envelopes_bytes(objects);
  }
  Epoch epoch;
  PartitionId from;
  VertexId vertex;
  std::vector<ObjectEnvelope> objects;
};

/// One frame of a chunked ObjectHandoff. Large handoffs are split so they
/// share WAN pipes fairly instead of occupying a link for the whole payload
/// (the FIFO bandwidth model serializes transmissions per link). As with
/// StateChunk, the simulator substitutes a shared ref for serialized bytes:
/// every frame carries the full handoff while only `payload_bytes` occupy
/// the wire, and the receiver splices it in once all frames arrived.
struct HandoffChunk final : sim::Message {
  HandoffChunk(Epoch e, PartitionId f, VertexId v, std::uint32_t idx,
               std::uint32_t chunks, std::uint32_t bytes, sim::MessagePtr h)
      : epoch(e),
        from(f),
        vertex(v),
        index(idx),
        total_chunks(chunks),
        payload_bytes(bytes),
        handoff(std::move(h)) {}
  const char* type_name() const override { return "core.HandoffChunk"; }
  std::size_t size_bytes() const override { return 48 + payload_bytes; }
  Epoch epoch;
  PartitionId from;
  VertexId vertex;
  std::uint32_t index;
  std::uint32_t total_chunks;
  std::uint32_t payload_bytes;
  sim::MessagePtr handoff;
};

/// New owner -> old owner (on-demand plan mode): send me vertex `vertex`.
struct FetchVertex final : sim::Message {
  FetchVertex(Epoch e, PartitionId f, VertexId v)
      : epoch(e), from(f), vertex(v) {}
  const char* type_name() const override { return "core.FetchVertex"; }
  Epoch epoch;
  PartitionId from;
  VertexId vertex;
};

/// STAR only: master replica -> one non-master partition's replicas, the
/// post-batch state of every vertex owned by that partition which the
/// deferred batch of `epoch` touched. Non-masters block at the epoch's
/// marker until this arrives, then install it and switch — so their state
/// at the switch equals the master's, regardless of marker/update race.
struct StarEpochUpdate final : sim::Message {
  StarEpochUpdate(Epoch e, PartitionId f,
                  std::vector<std::pair<VertexId, std::vector<ObjectEnvelope>>> v)
      : epoch(e), from(f), vertices(std::move(v)) {}
  const char* type_name() const override { return "core.StarEpochUpdate"; }
  std::size_t size_bytes() const override {
    std::size_t total = 32;
    for (const auto& [vertex, objs] : vertices) total += 8 + envelopes_bytes(objs);
    return total;
  }
  Epoch epoch;
  PartitionId from;
  std::vector<std::pair<VertexId, std::vector<ObjectEnvelope>>> vertices;
};

/// One leased vertex inside a LeaseGrant. `objects` empty means the lender
/// believes the reader already holds a live lease on `vertex` at `version`
/// (data-less refresh); non-empty carries a full cloned copy and installs or
/// refreshes the reader-side lease.
struct LeaseEntry {
  VertexId vertex;
  /// Lender-side mutation counter for the vertex at grant time. A reader
  /// validates a data-less grant only if its installed lease carries the
  /// same version (and epoch); any write, borrow, or handoff on the lender
  /// bumps the counter and invalidates outstanding copies.
  std::uint64_t version = 0;
  std::vector<ObjectEnvelope> objects;
};

/// Lender (non-target) replica -> target replicas: lease-protected copies of
/// the omega vertices the lender owns, for one read-only multi-partition
/// command. Unlike VarTransfer, the authoritative copies stay home and the
/// lender does not block — the grant is positioned in the lender's delivery
/// order at the command's slot, which is what serializes the read against
/// lender-side writes.
struct LeaseGrant final : sim::Message {
  LeaseGrant(std::uint64_t id, std::uint32_t a, PartitionId f, Epoch e,
             std::vector<LeaseEntry> en)
      : cmd_id(id), attempt(a), from(f), epoch(e), entries(std::move(en)) {}
  const char* type_name() const override { return "core.LeaseGrant"; }
  std::size_t size_bytes() const override {
    std::size_t total = 40;
    for (const auto& entry : entries)
      total += 16 + envelopes_bytes(entry.objects);
    return total;
  }
  std::uint64_t cmd_id;
  std::uint32_t attempt;
  PartitionId from;
  /// Lender's plan epoch at grant time; the reader rejects the grant (and
  /// falls back to borrow/return via kRetry) unless it matches its own.
  Epoch epoch;
  std::vector<LeaseEntry> entries;
};

/// Either direction: drop the lease bookkeeping for these vertices.
/// Lender -> reader on writes/migration/delete (the reader forgets its
/// copies); reader -> lender on failed validation or local invalidation
/// (the lender forgets the holder, so the next grant ships full data).
/// Purely an optimization for freshness — validation never trusts a revoke
/// having arrived, only epoch+version agreement at execute time.
struct LeaseRevoke final : sim::Message {
  LeaseRevoke(PartitionId f, std::vector<VertexId> v)
      : from(f), vertices(std::move(v)) {}
  const char* type_name() const override { return "core.LeaseRevoke"; }
  std::size_t size_bytes() const override { return 16 + vertices.size() * 8; }
  PartitionId from;
  std::vector<VertexId> vertices;
};

/// Involved partition -> other involved partitions: I rejected this command
/// (stale addressing); do not wait for my variables.
struct AbortNotice final : sim::Message {
  AbortNotice(std::uint64_t id, std::uint32_t a, PartitionId f)
      : cmd_id(id), attempt(a), from(f) {}
  const char* type_name() const override { return "core.AbortNotice"; }
  std::uint64_t cmd_id;
  std::uint32_t attempt;
  PartitionId from;
};

}  // namespace dynastar::core
