// ScenarioBuilder: fluent construction of a complete benchmark/test
// deployment. Replaces the hand-rolled config + preload-loop + add-client
// boilerplate that every bench and system test used to repeat:
//
//   auto system = core::ScenarioBuilder()
//                     .execution_mode(core::ExecutionMode::kDynaStar)
//                     .partitions(4)
//                     .app(workloads::kv_app_factory())
//                     .preload_kv(1024, workloads::KvObject(0))
//                     .clients(16, [&](std::size_t) {
//                       return std::make_unique<workloads::RandomKvDriver>(
//                           1024, 0.5, 0.1);
//                     })
//                     .build();
//   system->run_until(seconds(30));
//
// The product is a plain core::System — the old surface remains the way to
// drive and inspect a run; the builder only removes setup boilerplate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "core/object.h"
#include "core/system.h"

namespace dynastar::core {

class ScenarioBuilder {
 public:
  /// Per-client driver factory; called once per client with its index.
  using DriverFactory = std::function<std::unique_ptr<ClientDriver>(std::size_t)>;

  ScenarioBuilder& execution_mode(ExecutionMode m) {
    config_.mode = m;
    return *this;
  }
  /// Replaces the whole config with a registered baseline's ("dynastar",
  /// "ssmr", "dssmr", "star"), keeping the current partition count and seed.
  /// Aborts on an unknown name. Defined in src/baselines/registry.cpp —
  /// callers must link dynastar_baselines (every bench/test/tool does).
  ScenarioBuilder& system_preset(std::string_view name);
  ScenarioBuilder& partitions(std::uint32_t n) {
    config_.num_partitions = n;
    return *this;
  }
  ScenarioBuilder& seed(std::uint64_t s) {
    config_.seed = s;
    return *this;
  }
  /// Enables/disables repartitioning; disabling also raises the hint
  /// threshold so no plan can ever trigger (the common test setup).
  ScenarioBuilder& repartitioning(bool enabled);
  /// Applied-log suffix (in slots) a replica retains beyond its last stable
  /// checkpoint for peer catch-up; a peer lagging further than this pulls a
  /// full snapshot instead. 0 = retain everything.
  ScenarioBuilder& catchup_window(paxos::Slot slots) {
    config_.paxos.catchup_window = slots;
    return *this;
  }
  /// Decided slots between durable checkpoints (bounds both recovery replay
  /// and retained-log memory). 0 disables periodic checkpoints.
  ScenarioBuilder& checkpoint_interval(paxos::Slot slots) {
    config_.paxos.checkpoint_interval = slots;
    return *this;
  }
  /// Enables the deterministic intra-partition parallel executor with
  /// `lanes` worker lanes (1 = serial apply, the default). With
  /// `real_threads`, batches execute on a std::thread lane pool for
  /// wall-clock numbers; state evolution is identical either way.
  ScenarioBuilder& exec_lanes(std::uint32_t lanes, bool real_threads = false) {
    config_.exec_lanes = lanes;
    config_.exec_real_threads = real_threads;
    return *this;
  }
  /// Network topology preset: "lan" (the default uniform latency-only
  /// model) or "wan:<N>dc" (e.g. "wan:3dc") — N simulated datacenters with
  /// fat intra-site and thin, far inter-site links; replicas, acceptors and
  /// clients are striped across sites. Aborts on an unknown spec.
  ScenarioBuilder& net_preset(std::string_view spec);
  /// Installs a site-pair LinkProfile override on the built system's
  /// network, on top of whatever net_preset configured. Applied in build(),
  /// in registration order.
  ScenarioBuilder& link_profile(std::uint32_t from_site, std::uint32_t to_site,
                                const sim::LinkProfile& profile) {
    site_profiles_.push_back(SiteProfile{from_site, to_site, profile});
    return *this;
  }
  /// Serves read-only multi-partition commands from epoch-validated lease
  /// copies instead of borrow/return (DynaStar and DS-SMR modes only; a
  /// no-op elsewhere and off by default).
  ScenarioBuilder& read_leases(bool on = true) {
    config_.read_leases = on;
    return *this;
  }
  /// Arbitrary knobs not worth a dedicated builder method.
  ScenarioBuilder& tune(const std::function<void(SystemConfig&)>& fn) {
    fn(config_);
    return *this;
  }
  /// Replaces the whole config (then continue overriding fluently).
  ScenarioBuilder& config(SystemConfig config) {
    config_ = std::move(config);
    return *this;
  }
  [[nodiscard]] const SystemConfig& current_config() const { return config_; }

  /// Application state-machine factory (required before build()).
  ScenarioBuilder& app(AppFactory factory) {
    app_factory_ = std::move(factory);
    return *this;
  }

  /// Preloads `keys` clones of `prototype` as objects 0..keys-1 (vertex k =
  /// object k) placed round-robin across partitions, and installs the
  /// matching epoch-0 assignment.
  ScenarioBuilder& preload_kv(std::uint64_t keys, const PRObject& prototype);

  /// Custom preload hook (Chirper/TPC-C style setup); runs after
  /// preload_kv, in registration order, before clients are added.
  ScenarioBuilder& preload(std::function<void(System&)> fn);

  /// Adds `count` clients; `factory(i)` supplies each driver.
  ScenarioBuilder& clients(std::size_t count, DriverFactory factory);

  /// Adds `count` surge-only clients: they issue commands only while the
  /// world's surge flag is raised (ChaosInjector surge windows or explicit
  /// World::begin_surge), modeling an open-loop load burst.
  ScenarioBuilder& surge_clients(std::size_t count, DriverFactory factory);

  /// Enables admission control on both tiers: sets the partition servers'
  /// admission-queue high-water mark and the oracle's inflight cap to `n`.
  /// 0 disables shedding (the default).
  ScenarioBuilder& queue_cap(std::size_t n) {
    config_.server_queue_cap = n;
    config_.oracle_inflight_cap = n;
    return *this;
  }

  /// Arms the world's lifecycle TraceCollector from the start of the run.
  ScenarioBuilder& trace(bool enabled = true) {
    trace_ = enabled;
    return *this;
  }

  /// Constructs the System and applies preloads/clients/tracing. The
  /// builder can be reused afterwards (state is retained, not consumed).
  [[nodiscard]] std::unique_ptr<System> build() const;

 private:
  struct KvPreload {
    std::uint64_t keys = 0;
    ObjectPtr prototype;
  };
  struct ClientBatch {
    std::size_t count = 0;
    DriverFactory factory;
    bool surge_only = false;
  };
  struct SiteProfile {
    std::uint32_t from_site = 0;
    std::uint32_t to_site = 0;
    sim::LinkProfile profile;
  };

  SystemConfig config_;
  AppFactory app_factory_;
  std::vector<KvPreload> kv_preloads_;
  std::vector<std::function<void(System&)>> preload_fns_;
  std::vector<ClientBatch> client_batches_;
  std::vector<SiteProfile> site_profiles_;
  bool trace_ = false;
};

}  // namespace dynastar::core
