// AppStateMachine: the deterministic application logic a partition replica
// runs (the paper's PartitionStateMachine, §5.2). The server logic is
// written without knowledge of the partitioning scheme: by the time
// execute() runs, the DynaStar library has gathered every object in omega
// into `store` (borrowing from remote partitions as needed).
#pragma once

#include <functional>
#include <memory>

#include "core/object.h"
#include "core/types.h"
#include "sim/message.h"

namespace dynastar::core {

struct ExecResult {
  /// Application-level reply payload sent to the client (may be null).
  sim::MessagePtr reply;
  /// CPU time the execution costs the replica (drives saturation).
  SimTime cpu_cost = microseconds(10);
};

/// Objects created by execute() for command omega's vertices are recorded
/// through this interface so the library can route them home if their
/// vertex was borrowed.
class AppStateMachine {
 public:
  virtual ~AppStateMachine() = default;

  /// Executes `cmd` against `store`. Must be deterministic: every replica
  /// of the partition runs the same sequence of executes on the same store
  /// state. Objects in omega that do not exist appear as absent in the
  /// store; the application decides how to reply.
  virtual ExecResult execute(const Command& cmd, ObjectStore& store) = 0;

  /// Builds the initial object for a create(v) command.
  virtual ObjectPtr make_object(const Command& cmd) = 0;
};

using AppFactory = std::function<std::unique_ptr<AppStateMachine>()>;

}  // namespace dynastar::core
