#include "core/scenario.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace dynastar::core {

ScenarioBuilder& ScenarioBuilder::net_preset(std::string_view spec) {
  if (spec == "lan") {
    config_.net_sites = 0;
    return *this;
  }
  unsigned sites = 0;
  char tail = 0;
  const std::string s(spec);
  if (std::sscanf(s.c_str(), "wan:%udc%c", &sites, &tail) == 1 && sites > 0) {
    config_.net_sites = sites;
    return *this;
  }
  std::fprintf(stderr, "ScenarioBuilder: bad net preset %s (want lan|wan:<N>dc)\n",
               s.c_str());
  std::abort();
}

ScenarioBuilder& ScenarioBuilder::repartitioning(bool enabled) {
  config_.repartitioning_enabled = enabled;
  if (!enabled) config_.repartition_hint_threshold = UINT64_MAX;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::preload_kv(std::uint64_t keys,
                                             const PRObject& prototype) {
  kv_preloads_.push_back(KvPreload{keys, ObjectPtr(prototype.clone())});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::preload(std::function<void(System&)> fn) {
  preload_fns_.push_back(std::move(fn));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::clients(std::size_t count,
                                          DriverFactory factory) {
  client_batches_.push_back(
      ClientBatch{count, std::move(factory), /*surge_only=*/false});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::surge_clients(std::size_t count,
                                                DriverFactory factory) {
  client_batches_.push_back(
      ClientBatch{count, std::move(factory), /*surge_only=*/true});
  return *this;
}

std::unique_ptr<System> ScenarioBuilder::build() const {
  assert(app_factory_ && "ScenarioBuilder: .app(factory) is required");
  auto system = std::make_unique<System>(config_, app_factory_);

  // Site-pair overrides land after System installed the preset profiles,
  // so they win for the pairs they name.
  for (const SiteProfile& sp : site_profiles_)
    system->world().network().set_site_profile(sp.from_site, sp.to_site,
                                               sp.profile);

  for (const KvPreload& preload : kv_preloads_) {
    Assignment assignment;
    for (std::uint64_t k = 0; k < preload.keys; ++k) {
      const PartitionId p{k % config_.num_partitions};
      assignment[VertexId{k}] = p;
      system->preload_object(ObjectId{k}, VertexId{k}, p, *preload.prototype);
    }
    system->preload_assignment(assignment);
  }
  for (const auto& fn : preload_fns_) fn(*system);

  std::size_t index = 0;
  for (const ClientBatch& batch : client_batches_) {
    for (std::size_t i = 0; i < batch.count; ++i)
      system->add_client(batch.factory(index++), batch.surge_only);
  }

  if (trace_) system->world().trace().enable();
  return system;
}

}  // namespace dynastar::core
