#include "core/system.h"

#include <cassert>

#include "common/metric_names.h"

namespace dynastar::core {

System::System(SystemConfig config, AppFactory app_factory)
    : config_(std::move(config)),
      world_(config_.network, config_.seed),
      app_factory_(std::move(app_factory)) {
  // Pre-register the overload counters so every run report carries them —
  // the report schema check requires their presence even when zero.
  world_.metrics().add_counter(metric::kServerShed, 0.0);
  world_.metrics().add_counter(metric::kOracleShed, 0.0);
  world_.metrics().add_counter(metric::kClientRetriesExhausted, 0.0);
  world_.metrics().add_counter(metric::kTransferChunksSent, 0.0);
  world_.metrics().add_counter(metric::kTransferChunksRetransmitted, 0.0);
  if (config_.mode == ExecutionMode::kStar) {
    world_.metrics().add_counter(metric::kStarEpochs, 0.0);
    world_.metrics().add_counter(metric::kStarDeferred, 0.0);
  }
  if (config_.exec_lanes > 1) {
    world_.metrics().add_counter(metric::kExecBatches, 0.0);
    world_.metrics().add_counter(metric::kExecBatchedCommands, 0.0);
    world_.metrics().add_counter(metric::kExecConflictEdges, 0.0);
  }
  if (config_.read_leases && mode_supports_leases(config_.mode)) {
    world_.metrics().add_counter(metric::kServerLeaseGrants, 0.0);
    world_.metrics().add_counter(metric::kServerLeaseReads, 0.0);
    world_.metrics().add_counter(metric::kServerLeaseFallbacks, 0.0);
    world_.metrics().add_counter(metric::kServerLeaseRevokes, 0.0);
    world_.metrics().add_counter(metric::kOracleLeaseRelays, 0.0);
  }
  const std::uint32_t replicas = config_.replicas_per_partition;
  const std::uint32_t acceptors = config_.acceptors_per_partition;
  const std::uint32_t groups = config_.num_partitions + 1;  // + oracle

  // Process ids are assigned in spawn order; lay the topology out first so
  // the cores (constructed inside the nodes) can resolve peers immediately.
  std::uint64_t next_id = 0;
  for (std::uint32_t g = 0; g < groups; ++g) {
    paxos::GroupDef def;
    def.id = GroupId{g};
    for (std::uint32_t r = 0; r < replicas; ++r)
      def.replicas.push_back(ProcessId{next_id++});
    for (std::uint32_t a = 0; a < acceptors; ++a)
      def.acceptors.push_back(ProcessId{next_id++});
    topology_.add_group(std::move(def));
  }

  // Oracle group (group 0).
  for (std::uint32_t r = 0; r < replicas; ++r) {
    auto& node = world_.spawn<OracleNode>(topology_, config_,
                                          /*record_metrics=*/r == 0);
    oracle_nodes_.push_back(&node);
  }
  for (std::uint32_t a = 0; a < acceptors; ++a) {
    auto& node = world_.spawn<paxos::AcceptorNode>(GroupId{0});
    node.set_message_service_time(config_.acceptor_service_time);
    acceptors_.push_back(&node);
  }

  // Partition groups.
  server_nodes_.resize(config_.num_partitions);
  for (std::uint32_t p = 0; p < config_.num_partitions; ++p) {
    for (std::uint32_t r = 0; r < replicas; ++r) {
      auto& node = world_.spawn<ServerNode>(topology_, PartitionId{p}, config_,
                                            app_factory_,
                                            /*record_metrics=*/r == 0);
      server_nodes_[p].push_back(&node);
    }
    for (std::uint32_t a = 0; a < acceptors; ++a) {
      auto& node = world_.spawn<paxos::AcceptorNode>(GroupId{p + 1});
      node.set_message_service_time(config_.acceptor_service_time);
      acceptors_.push_back(&node);
    }
  }

  // Sanity: the computed ids must match what spawn handed out.
  for (std::uint32_t g = 0; g < groups; ++g) {
    const auto& def = topology_.group(GroupId{g});
    for ([[maybe_unused]] ProcessId pid : def.replicas)
      assert(world_.find(pid) != nullptr);
    for ([[maybe_unused]] ProcessId pid : def.acceptors)
      assert(world_.find(pid) != nullptr);
  }

  // WAN topology: stripe every group across the configured sites so quorums
  // and state transfers cross inter-datacenter links, then install the
  // site-pair profiles (explicit per-link overrides still win over these).
  if (config_.net_sites > 0) {
    sim::Network& net = world_.network();
    for (std::uint32_t g = 0; g < groups; ++g) {
      const auto& def = topology_.group(GroupId{g});
      for (std::size_t i = 0; i < def.replicas.size(); ++i)
        net.set_site(def.replicas[i],
                     static_cast<std::uint32_t>(i) % config_.net_sites);
      for (std::size_t i = 0; i < def.acceptors.size(); ++i)
        net.set_site(def.acceptors[i],
                     static_cast<std::uint32_t>(i) % config_.net_sites);
    }
    for (std::uint32_t i = 0; i < config_.net_sites; ++i)
      for (std::uint32_t j = 0; j < config_.net_sites; ++j)
        if (i != j) net.set_site_profile(i, j, config_.inter_site_profile);
    for (std::uint32_t i = 0; i < config_.net_sites; ++i)
      net.set_site_profile(i, i, config_.intra_site_profile);
  }
}

ClientNode& System::add_client(std::unique_ptr<ClientDriver> driver,
                               bool surge_only) {
  auto& node = world_.spawn<ClientNode>(topology_, config_, std::move(driver),
                                        surge_only);
  if (config_.net_sites > 0)
    world_.network().set_site(
        node.id(),
        static_cast<std::uint32_t>(clients_.size()) % config_.net_sites);
  clients_.push_back(&node);
  return node;
}

void System::preload_object(ObjectId id, VertexId vertex, PartitionId partition,
                            const PRObject& object) {
  for (ServerNode* node : server_nodes_[partition.value()])
    node->core().preload_object(id, vertex, ObjectPtr(object.clone()));
  // STAR: the master partition is a full replica, so preloaded state must
  // exist there too (the run keeps it fresh by addressing every command to
  // the master as well).
  const PartitionId master{config_.star_master_partition};
  if (config_.mode == ExecutionMode::kStar && partition != master) {
    for (ServerNode* node : server_nodes_[master.value()])
      node->core().preload_object(id, vertex, ObjectPtr(object.clone()));
  }
}

void System::preload_assignment(const Assignment& assignment) {
  auto shared = std::make_shared<const Assignment>(assignment);
  for (OracleNode* node : oracle_nodes_)
    node->core().preload_assignment(shared, /*epoch=*/0);
  for (auto& replicas : server_nodes_)
    for (ServerNode* node : replicas)
      node->core().preload_assignment(shared, /*epoch=*/0);
}

}  // namespace dynastar::core
