#include "core/client.h"

#include <algorithm>
#include <cmath>

#include "common/metric_names.h"
#include "core/server.h"  // group_of, kOracleGroup

namespace dynastar::core {

namespace {
/// How often an idle surge-only client re-checks the world surge flag.
constexpr SimTime kSurgePollInterval = milliseconds(1);
}  // namespace

ClientCore::ClientCore(sim::Env& env, const paxos::Topology& topology,
                       const SystemConfig& config,
                       std::unique_ptr<ClientDriver> driver,
                       MetricsRegistry* metrics, TraceCollector* trace,
                       bool surge_only)
    : env_(env),
      topology_(topology),
      config_(config),
      driver_(std::move(driver)),
      metrics_(metrics),
      trace_(trace),
      sender_(env, topology),
      surge_only_(surge_only),
      retry_tokens_(config.client_retry_budget) {}

void ClientCore::start() { issue_next(); }

SimTime ClientCore::timeout_backoff(const SystemConfig& config,
                                    std::uint32_t attempt) {
  const double scaled =
      static_cast<double>(config.client_timeout_base) *
      std::pow(config.client_timeout_multiplier,
               static_cast<double>(attempt - 1));
  if (scaled < static_cast<double>(config.client_timeout_cap))
    return static_cast<SimTime>(scaled);
  return config.client_timeout_cap;
}

SimTime ClientCore::busy_backoff(const SystemConfig& config,
                                 std::uint32_t busy_streak,
                                 SimTime retry_after_hint) {
  // Client-side exponential floor: the server's hint reflects *its* queue,
  // but a client that keeps getting shed must still back off on its own so
  // synchronized retries cannot re-saturate a recovering server.
  const double scaled =
      static_cast<double>(config.busy_retry_after_base) *
      std::pow(config.client_timeout_multiplier,
               static_cast<double>(busy_streak - 1));
  SimTime floor = config.client_timeout_cap;
  if (scaled < static_cast<double>(config.client_timeout_cap))
    floor = static_cast<SimTime>(scaled);
  return std::max(floor, retry_after_hint);
}

void ClientCore::issue_next() {
  // Surge-only clients only generate load while the surge flag is up; while
  // it is down they idle without consuming driver commands or RNG draws.
  if (surge_only_ && !env_.surge_active()) {
    env_.start_timer(kSurgePollInterval, [this] { issue_next(); });
    return;
  }
  auto spec = driver_->next(env_.random(), env_.now());
  if (!spec.has_value()) return;  // client done
  if (spec->objects.empty()) {
    env_.start_timer(spec->pause, [this] { issue_next(); });
    return;
  }

  std::vector<ObjectId> objects;
  std::vector<VertexId> vertices;
  objects.reserve(spec->objects.size());
  vertices.reserve(spec->objects.size());
  for (const auto& [obj, vertex] : spec->objects) {
    objects.push_back(obj);
    vertices.push_back(vertex);
  }
  const std::uint64_t cmd_id = (env_.self().value() << 32) | ++next_cmd_;
  auto cmd = sim::make_message<Command>(
      cmd_id, env_.self(), spec->type, std::move(objects), std::move(vertices),
      spec->payload, spec->read_only);
  outstanding_ = Outstanding{std::move(*spec), std::move(cmd), 1, env_.now(),
                             false};
  if (trace_)
    trace_->record(TracePoint::kClientIssue, env_.now(), cmd_id, 1,
                   env_.self().value(),
                   static_cast<std::uint64_t>(outstanding_->cmd->type));
  route(/*force_oracle=*/false);
}

void ClientCore::route(bool force_oracle) {
  Outstanding& out = *outstanding_;
  const Command& cmd = *out.cmd;

  bool use_oracle = force_oracle || cmd.type != CommandType::kAccess;
  std::vector<PartitionId> owners;
  if (!use_oracle) {
    owners.reserve(cmd.vertices.size());
    for (VertexId v : cmd.vertices) {
      auto it = cache_.find(v);
      if (it == cache_.end()) {
        use_oracle = true;
        break;
      }
      owners.push_back(it->second);
    }
  }

  if (use_oracle) {
    ++oracle_queries_;
    if (trace_)
      trace_->record(TracePoint::kClientRoute, env_.now(), cmd.cmd_id,
                     out.attempt, env_.self().value(), /*via oracle=*/1);
    sender_.amcast({kOracleGroup}, sim::make_message<OracleRequest>(
                                       out.cmd, out.attempt));
    arm_command_timer();
    return;
  }

  // The mode seam: the cache-hit path computes the same addressing as the
  // oracle would (STAR pins the master; the partitioned modes address the
  // distinct owners).
  Route r = route_command(config_.mode,
                          PartitionId{config_.star_master_partition},
                          cmd.objects, owners);
  out.multi = r.multi;
  out.target = r.target;

  if (trace_)
    trace_->record(TracePoint::kClientRoute, env_.now(), cmd.cmd_id,
                   out.attempt, env_.self().value(), /*via oracle=*/0);
  std::vector<GroupId> groups;
  groups.reserve(r.dests.size());
  for (PartitionId p : r.dests) groups.push_back(group_of(p));
  sender_.amcast(std::move(groups),
                 sim::make_message<ExecCommand>(out.cmd, std::move(r.dests),
                                                std::move(owners), r.target,
                                                cache_epoch_, out.attempt));
  arm_command_timer();
}

void ClientCore::arm_command_timer() {
  if (config_.client_timeout_base <= 0) return;  // timeouts disabled
  const Outstanding& out = *outstanding_;
  // Exponential backoff with jitter, capped:
  // min(cap, base * multiplier^(attempt-1)) + U[0, jitter].
  SimTime delay = timeout_backoff(config_, out.attempt);
  if (config_.client_timeout_jitter > 0)
    delay += static_cast<SimTime>(env_.random().uniform(
        0, static_cast<std::uint64_t>(config_.client_timeout_jitter)));
  const std::uint64_t cmd_id = out.cmd->cmd_id;
  const std::uint32_t attempt = out.attempt;
  env_.start_timer(delay, [this, cmd_id, attempt] {
    on_command_timeout(cmd_id, attempt);
  });
}

void ClientCore::on_command_timeout(std::uint64_t cmd_id,
                                    std::uint32_t attempt) {
  // The timer belongs to one specific (command, attempt); anything else —
  // completion, a kRetry-driven re-route — already superseded it.
  if (!outstanding_.has_value() || outstanding_->cmd->cmd_id != cmd_id ||
      outstanding_->attempt != attempt) {
    return;
  }
  ++timeouts_;
  if (metrics_) metrics_->series(metric::kClientTimeouts).add(env_.now(), 1.0);
  if (config_.client_max_attempts != 0 &&
      outstanding_->attempt >= config_.client_max_attempts) {
    complete(ReplyStatus::kTimeout, nullptr);
    return;
  }
  ++retransmits_;
  if (metrics_)
    metrics_->series(metric::kClientRetransmits).add(env_.now(), 1.0);
  if (trace_)
    trace_->record(TracePoint::kClientRetry, env_.now(), cmd_id, attempt,
                   env_.self().value(), /*timeout=*/0);
  // First re-drive any multicast send a destination group never received —
  // a FIFO-ordered group cannot admit this client's *new* sends behind a
  // lost one — then re-resolve through the oracle under a fresh attempt.
  sender_.retransmit_unacked();
  ++outstanding_->attempt;
  cache_.clear();
  route(/*force_oracle=*/true);
}

bool ClientCore::handle(ProcessId /*from*/, const sim::MessagePtr& msg) {
  if (sender_.handle(msg)) return true;
  if (auto* prophecy = dynamic_cast<const Prophecy*>(msg.get())) {
    on_prophecy(*prophecy);
    return true;
  }
  if (auto* reply = dynamic_cast<const CommandReply*>(msg.get())) {
    on_reply(*reply);
    return true;
  }
  return false;
}

void ClientCore::on_prophecy(const Prophecy& msg) {
  if (!outstanding_.has_value() || msg.cmd_id != outstanding_->cmd->cmd_id ||
      msg.attempt != outstanding_->attempt) {
    return;  // stale or duplicate (the other oracle replica's copy)
  }
  if (msg.epoch > cache_epoch_) {
    cache_.clear();
    cache_epoch_ = msg.epoch;
  }
  if (msg.epoch == cache_epoch_) {
    for (const auto& [vertex, partition] : msg.locations) {
      if (config_.client_cache_capacity != 0 &&
          cache_.size() >= config_.client_cache_capacity &&
          !cache_.contains(vertex)) {
        // Evict an arbitrary resident entry (hash order ~ random).
        cache_.erase(cache_.begin());
      }
      cache_[vertex] = partition;
    }
  }
  if (msg.status == ReplyStatus::kNok) {
    complete(ReplyStatus::kNok, nullptr);
    return;
  }
  if (msg.status == ReplyStatus::kBusy) {
    // A shedding oracle still answers from its location map (degraded
    // service), so the cache refresh above already happened: the retry can
    // often go partition-direct and skip the hot oracle entirely.
    on_busy(msg.retry_after);
    return;
  }
  outstanding_->target = msg.target;
  outstanding_->multi = msg.locations.size() > 1 &&
                        [&] {
                          for (const auto& [v, p] : msg.locations)
                            if (p != msg.locations.front().second) return true;
                          return false;
                        }();
  // kOk: now wait for the target partition's CommandReply.
}

void ClientCore::on_reply(const CommandReply& msg) {
  if (!outstanding_.has_value() || msg.cmd_id != outstanding_->cmd->cmd_id ||
      msg.attempt != outstanding_->attempt) {
    return;  // duplicate replica reply or reply for a superseded attempt
  }
  if (msg.status == ReplyStatus::kRetry) {
    // Stale addressing: flush the cache and go through the oracle (§4.3).
    ++retries_;
    if (metrics_) metrics_->series(metric::kClientRetries).add(env_.now(), 1.0);
    if (trace_)
      trace_->record(TracePoint::kClientRetry, env_.now(), msg.cmd_id,
                     msg.attempt, env_.self().value(), /*kRetry reply=*/1);
    cache_.clear();
    ++outstanding_->attempt;
    route(/*force_oracle=*/true);
    return;
  }
  if (msg.status == ReplyStatus::kBusy) {
    on_busy(msg.retry_after);
    return;
  }
  complete(msg.status, msg.payload);
}

bool ClientCore::spend_retry_token() {
  if (config_.client_retry_budget == 0) return true;  // budget disabled
  const SimTime interval = config_.client_retry_token_interval;
  if (interval > 0) {
    const std::uint64_t earned =
        static_cast<std::uint64_t>(env_.now() - last_refill_) /
        static_cast<std::uint64_t>(interval);
    if (earned > 0) {
      retry_tokens_ = std::min<std::uint64_t>(config_.client_retry_budget,
                                              retry_tokens_ + earned);
      last_refill_ += static_cast<SimTime>(earned) * interval;
    }
  }
  if (retry_tokens_ == 0) return false;
  --retry_tokens_;
  return true;
}

void ClientCore::on_busy(SimTime retry_after) {
  Outstanding& out = *outstanding_;
  ++busy_replies_;
  ++out.busy_streak;
  if (metrics_) metrics_->series(metric::kClientShed).add(env_.now(), 1.0);
  if (trace_)
    trace_->record(TracePoint::kClientRetry, env_.now(), out.cmd->cmd_id,
                   out.attempt, env_.self().value(), /*kBusy reply=*/2);
  if (!spend_retry_token()) {
    // Budget exhausted: fail fast instead of adding retry pressure. The
    // command was shed before execution, so kOverloaded is a clean no-op.
    ++overloaded_;
    if (metrics_) metrics_->add_counter(metric::kClientRetriesExhausted);
    complete(ReplyStatus::kOverloaded, nullptr);
    return;
  }
  // Bump the attempt immediately so the old attempt's timeout timer and any
  // straggler replies are invalidated while we wait out the backoff.
  ++out.attempt;
  const SimTime delay = busy_backoff(config_, out.busy_streak, retry_after);
  const std::uint64_t cmd_id = out.cmd->cmd_id;
  const std::uint32_t attempt = out.attempt;
  // No cache clear: Busy means overload, not stale addressing. The retry
  // re-routes normally and may hit the partitions directly via the cache.
  env_.start_timer(delay, [this, cmd_id, attempt] {
    if (!outstanding_.has_value() || outstanding_->cmd->cmd_id != cmd_id ||
        outstanding_->attempt != attempt) {
      return;
    }
    route(/*force_oracle=*/false);
  });
}

void ClientCore::complete(ReplyStatus status, const sim::MessagePtr& payload) {
  Outstanding out = std::move(*outstanding_);
  outstanding_.reset();
  ++completed_;
  // Under DS-SMR a successful multi-partition command permanently moved
  // omega to the target; the client saw the move, so it updates its cache.
  if (config_.mode == ExecutionMode::kDSSMR && status == ReplyStatus::kOk &&
      out.multi && out.target != kNoPartition) {
    for (const auto& [obj, vertex] : out.spec.objects)
      cache_[vertex] = out.target;
  }
  // Deleted vertices must not be addressed from the cache again.
  if (out.cmd->type == CommandType::kDelete && status == ReplyStatus::kOk) {
    for (const auto& [obj, vertex] : out.spec.objects) cache_.erase(vertex);
  }
  if (trace_)
    trace_->record(TracePoint::kClientComplete, env_.now(), out.cmd->cmd_id,
                   out.attempt, env_.self().value(),
                   static_cast<std::uint64_t>(status));
  if (metrics_) {
    const SimTime latency = env_.now() - out.start_time;
    metrics_->series(metric::kCompleted).add(env_.now(), 1.0);
    if (out.multi)
      metrics_->series(metric::kCompletedMulti).add(env_.now(), 1.0);
    metrics_->histogram(metric::kLatency).record(latency);
    metrics_
        ->histogram(out.multi ? metric::kLatencyMulti : metric::kLatencySingle)
        .record(latency);
  }
  driver_->on_result(out.spec, status, payload, out.start_time, env_.now());
  issue_next();
}

}  // namespace dynastar::core
