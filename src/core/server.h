// PartitionServerCore: one replica of one state partition.
//
// Implements Algorithm 3 of the paper plus the mechanics the paper leaves to
// the implementation: epoch-tagged addressing validation, a FIFO execution
// queue driven by the group's atomic-multicast delivery order (which is what
// makes the borrow/return waits deadlock-free — acyclic multicast order
// means all partitions process shared commands in a consistent relative
// order), non-blocking partitioning-plan application, and the S-SMR / DS-SMR
// baseline execution modes.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/app.h"
#include "core/config.h"
#include "core/object.h"
#include "core/parallel_exec.h"
#include "core/protocol.h"
#include "core/types.h"
#include "multicast/client.h"
#include "multicast/member.h"
#include "paxos/topology.h"
#include "sim/env.h"
#include "sim/reliable.h"

namespace dynastar::core {

/// Maps partition ids to multicast groups: the oracle is group 0, partition
/// p is group p+1.
inline GroupId group_of(PartitionId p) { return GroupId{p.value() + 1}; }
inline PartitionId partition_of(GroupId g) { return PartitionId{g.value() - 1}; }
constexpr GroupId kOracleGroup{0};

class PartitionServerCore {
 public:
  /// A full copy of the replica's volatile state at a slot boundary: the
  /// multicast + Paxos position, retained reliable sends, object store
  /// (deep-copied), borrow/lend bookkeeping, and the at-most-once reply
  /// cache. Immutable once captured; shared between the node's durable
  /// checkpoint slot and in-flight snapshot transfers.
  struct Snapshot;
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  PartitionServerCore(sim::Env& env, const paxos::Topology& topology,
                      PartitionId partition, const SystemConfig& config,
                      std::unique_ptr<AppStateMachine> app,
                      MetricsRegistry* metrics, bool record_metrics,
                      TraceCollector* trace = nullptr);

  void start();

  /// Receives the snapshot captured at each checkpoint boundary; the owning
  /// node stores it as the replica's durable checkpoint.
  void set_checkpoint_sink(std::function<void(SnapshotPtr)> sink) {
    checkpoint_sink_ = std::move(sink);
  }

  /// Captures the complete volatile state (deep-copying mutable objects).
  [[nodiscard]] SnapshotPtr capture_snapshot() const;

  /// Replaces all volatile state with a snapshot's contents. Used both when
  /// a recovering node restores its durable checkpoint and when a live
  /// replica installs a peer snapshot.
  void restore_snapshot(const Snapshot& snapshot);

  /// Rejoins the group after restore_snapshot() on a fresh incarnation:
  /// re-arms timers and proactively pulls the missing log suffix.
  void start_recovered();

  /// Handles multicast/paxos traffic and the direct coordination messages.
  bool handle(ProcessId from, const sim::MessagePtr& msg);

  // --- pre-run state loading (benchmark setup; not part of the protocol) ---
  void preload_object(ObjectId id, VertexId vertex, ObjectPtr object);
  void preload_assignment(AssignmentPtr assignment, Epoch epoch);

  [[nodiscard]] PartitionId partition() const { return partition_; }
  [[nodiscard]] Epoch epoch() const { return epoch_; }
  [[nodiscard]] const ObjectStore& store() const { return store_; }
  multicast::MemberCore& member() { return member_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

 private:
  /// Dedupe key for per-command coordination: (cmd_id, attempt).
  using CmdKey = std::pair<std::uint64_t, std::uint32_t>;
  using ExecCommandPtr = sim::Ref<const ExecCommand>;
  using PlanMsgPtr = sim::Ref<const PlanMsg>;

  struct QueueItem {
    ExecCommandPtr exec;  // exactly one of exec/plan/star set
    PlanMsgPtr plan;
    sim::Ref<const StarEpochMsg> star;
  };

  enum class Classification { kReady, kBlocked, kFuture, kStale, kInvalid };

  // Delivery / queue pump.
  void on_adeliver(const multicast::McastData& data);
  void on_shed_deliver(const multicast::McastData& data);
  /// Load signal driving the admission gate: messages still waiting in the
  /// node's CPU queue plus the execution queue. The protocol queue alone
  /// stays near zero under saturation (it drains synchronously at
  /// delivery) — the real backlog accumulates in the inbox.
  [[nodiscard]] std::size_t admission_depth() const;
  void pump();
  bool dispatch_direct(ProcessId from, const sim::MessagePtr& msg);
  bool serve_cached_duplicate(const ExecCommand& ec);
  void remember_reply(const ExecCommand& ec, ReplyStatus status,
                      const sim::MessagePtr& payload);
  Classification classify(const ExecCommand& ec);
  bool objects_available(const ExecCommand& ec, bool claimed_mine_only);
  bool transfers_ready_for_ssmr(const ExecCommand& ec);
  void execute_create(const ExecCommand& ec);
  void execute_delete(const ExecCommand& ec);
  void execute_target(const ExecCommand& ec);
  void execute_non_target(const ExecCommand& ec);
  void execute_ssmr(const ExecCommand& ec);
  void reject(const ExecCommand& ec, bool notify_peers);
  void apply_plan(const PlanMsg& plan);

  // Intra-partition parallel execution (config_.exec_lanes > 1). Ready
  // single-destination accesses accumulate in exec_pending_ and execute as
  // one conflict-graph-scheduled batch; everything that must observe or
  // mutate state in slot order flushes the batch first.
  [[nodiscard]] bool exec_batchable(const ExecCommand& ec) const;
  void exec_enqueue(const ExecCommandPtr& ec);
  /// Schedules and executes one batch (conflict graph -> lanes), charging
  /// the schedule makespan to the sim CPU and emitting executor metrics.
  void run_exec_batch(const std::vector<ExecCommandPtr>& batch,
                      std::vector<ExecResult>& results);
  void flush_exec_batch();

  // STAR asymmetric execution (config_.mode == kStar).
  [[nodiscard]] PartitionId star_master() const {
    return PartitionId{config_.star_master_partition};
  }
  [[nodiscard]] bool is_star_master() const {
    return config_.mode == ExecutionMode::kStar && partition_ == star_master();
  }
  void arm_star_epoch_timer();
  void maybe_emit_star_marker();
  void execute_star_single(const ExecCommand& ec);
  /// Master, at a marker's log position: execute every deferred
  /// multi-partition command against the full replica and ship each other
  /// partition's touched vertices as a StarEpochUpdate.
  void star_execute_batch(Epoch epoch);
  /// Non-master, at a marker's log position: install the master's update.
  void apply_star_update(const StarEpochUpdate& update);
  void on_star_update(const sim::Ref<const StarEpochUpdate>& msg);

  // Read leases (config_.read_leases && mode_supports_leases(config_.mode)).
  // Lender side: grant_lease ships lease-protected copies at the command's
  // slot without taking anything out of the store and without blocking.
  // Reader side: the target waits for one grant per peer, then validates
  // every grant's epoch + per-vertex version at execute time and falls back
  // to the borrow path (kRetry) on any mismatch.
  [[nodiscard]] bool lease_eligible(const ExecCommand& ec) const;
  void grant_lease(const ExecCommand& ec);
  [[nodiscard]] bool lease_grants_complete(const ExecCommand& ec);
  void execute_leased_read(const ExecCommand& ec);
  /// Lender-side hook on every authoritative mutation of `vertex` (write,
  /// borrow out, handoff out, delete, permanent move): bumps the vertex's
  /// lease version and revokes outstanding holder copies. No-op while
  /// leases are disabled, keeping lease-off runs bit-identical.
  void note_vertex_mutation(VertexId vertex);

  // Direct message handlers.
  void on_var_transfer(const VarTransfer& msg);
  void on_var_return(const sim::Ref<const VarReturn>& msg);
  void on_handoff(const ObjectHandoff& msg);
  void on_handoff_chunk(const sim::Ref<const HandoffChunk>& msg);
  void on_fetch(const FetchVertex& msg);
  void on_abort(const AbortNotice& msg);
  void on_lease_grant(const sim::Ref<const LeaseGrant>& msg);
  void on_lease_revoke(const LeaseRevoke& msg);

  // Helpers.
  void send_to_partition(PartitionId p, sim::MessagePtr msg);
  void send_handoff_if_possible(VertexId vertex);
  /// Sends a repartitioning handoff to `to`, split into bandwidth-friendly
  /// HandoffChunk frames when it exceeds the configured transfer chunk size
  /// (the same knob that chunks snapshot installs).
  void send_handoff(PartitionId to, sim::Ref<const ObjectHandoff> handoff);
  void insert_envelopes(const std::vector<ObjectEnvelope>& envelopes);
  std::vector<ObjectEnvelope> extract_vertex(VertexId vertex);
  void record_hints(const Command& cmd, bool multi_partition);
  void maybe_emit_hints();
  void note_objects_exchanged(double count);
  void note_command_metrics(const ExecCommand& ec, bool multi_partition);
  void send_reply(const ExecCommand& ec, ReplyStatus status,
                  sim::MessagePtr payload);
  void trace_cmd(TracePoint point, const ExecCommand& ec,
                 std::uint64_t detail);
  [[nodiscard]] bool is_primary_replica() const;
  void on_checkpoint_boundary();
  [[nodiscard]] std::vector<ProcessId> reliable_peers() const;

  sim::Env& env_;
  const paxos::Topology& topology_;
  PartitionId partition_;
  const SystemConfig& config_;
  std::unique_ptr<AppStateMachine> app_;
  MetricsRegistry* metrics_;
  bool record_metrics_;
  TraceCollector* trace_;
  std::function<void(SnapshotPtr)> checkpoint_sink_;
  /// The snapshot captured at the last checkpoint boundary — what chunked
  /// state transfers serve. All replicas checkpoint at identical slots, so
  /// this is interchangeable across the group for a given manifest slot.
  SnapshotPtr stable_snapshot_;
  /// Labels identifying this replica in per-node metrics.
  std::string partition_label_;
  std::string replica_label_;

  multicast::MemberCore member_;
  /// Ack+retransmit channel for the direct (non-multicast) coordination
  /// messages; a lost VarTransfer/VarReturn/ObjectHandoff would otherwise
  /// block a partition's queue head forever.
  sim::ReliableLink reliable_;

  // At-most-once execution: the latest authoritative (kOk/kNok) reply per
  // client. One entry per client — the closed-loop client has at most one
  // outstanding command, and per-client cmd_ids increase monotonically, so
  // the latest reply is the only one a retransmission can still ask for.
  struct CachedReply {
    std::uint64_t cmd_id = 0;
    ReplyStatus status = ReplyStatus::kOk;
    sim::MessagePtr payload;
  };
  std::unordered_map<std::uint64_t, CachedReply> reply_cache_;

  ObjectStore store_;
  Assignment map_;
  Epoch epoch_ = 0;

  // FIFO execution queue in a-delivery order; `blocked_` true while the head
  // waits for transfers / returns / handoffs.
  std::deque<QueueItem> queue_;
  bool blocked_ = false;

  // Parallel-executor state (null / empty when exec_lanes <= 1). Pending
  // commands were popped from queue_ but not yet applied; every checkpoint
  // capture and snapshot hand-off flushes first, so the batch is never part
  // of durable state (Snapshot deliberately has no counterpart fields).
  std::unique_ptr<ParallelExecutor> exec_;
  std::deque<ExecCommandPtr> exec_pending_;
  std::unordered_set<std::uint64_t> exec_pending_clients_;
  bool exec_flush_armed_ = false;
  std::shared_mutex exec_store_mutex_;  // installed only during thread batches

  // Commands delivered before the plan their addressing was computed
  // against; re-enqueued when that plan is applied.
  std::deque<ExecCommandPtr> future_;

  // Target-side: transfers received per command (may arrive early).
  struct TransferState {
    std::map<PartitionId, std::vector<ObjectEnvelope>> received;
    std::set<PartitionId> aborted;
  };
  std::map<CmdKey, TransferState> transfers_;

  // Source-side: objects currently lent out, per command.
  struct LendRecord {
    PartitionId borrower;
    std::vector<VertexId> vertices;
  };
  std::map<CmdKey, LendRecord> lends_;
  std::unordered_set<ObjectId> lent_objects_;
  std::unordered_map<VertexId, int> lent_vertex_count_;
  std::set<CmdKey> returns_seen_;
  // A return can outrun this replica's own processing of the command: the
  // peer source replica's transfer drives the target, whose return lands
  // here before we lent anything. Hold it until the lend record exists.
  std::map<CmdKey, sim::Ref<const VarReturn>> early_returns_;
  std::set<CmdKey> sent_transfers_;  // non-target: vars already shipped
  std::set<CmdKey> ssmr_sent_;
  // Target-side: commands already executed or rejected, with the sources
  // whose transfers were consumed (or already bounced). A late transfer
  // from any *other* source is bounced straight back; duplicates from an
  // already-consumed source are dropped (bouncing those would resurrect
  // pre-execution object state at the source).
  std::map<CmdKey, std::set<PartitionId>> resolved_;

  // Plan-application state.
  std::unordered_map<VertexId, PartitionId> awaited_;      // inbound moves
  std::unordered_map<VertexId, PartitionId> obligations_;  // outbound moves
  std::unordered_set<VertexId> fetch_requested_;  // on-demand: asked sources
  std::unordered_set<VertexId> fetch_wanted_;     // on-demand src: send when free
  std::set<std::pair<Epoch, std::uint64_t>> handoffs_seen_;
  std::vector<sim::Ref<const ObjectHandoff>> handoff_buffer_;
  /// Reassembly of chunked handoffs, keyed by (epoch, vertex). Snapshotted:
  /// the reliable link acks each chunk on processing, so a partial assembly
  /// alive at checkpoint time must survive restore or the acked-but-unspliced
  /// chunks would never be retransmitted.
  struct HandoffAssembly {
    std::uint32_t total_chunks = 0;
    std::set<std::uint32_t> have;
    sim::MessagePtr handoff;  // full ObjectHandoff, spliced at completion
  };
  std::map<std::pair<Epoch, std::uint64_t>, HandoffAssembly> handoff_assembly_;

  // Workload-graph hints accumulated since the last report (deterministic
  // across replicas: driven purely by executed commands).
  std::map<std::uint64_t, std::int64_t> hint_vertices_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::int64_t> hint_edges_;
  std::uint64_t commands_since_hint_ = 0;
  std::uint64_t hint_emissions_ = 0;

  std::uint64_t location_updates_emitted_ = 0;  // DS-SMR uid counter

  // Read-lease state. The leased copies and holder records are *volatile by
  // design*: a lease is only ever trusted after epoch+version validation, so
  // losing them costs one fallback round-trip, never correctness. They are
  // deliberately absent from Snapshot and cleared on restore (a regression
  // test pins this). Two maps are snapshotted, for different reasons:
  //  * lease_grants_ is per-command coordination like transfers_ (a target
  //    blocked at the queue head on already-acked grants would deadlock
  //    without it);
  //  * lease_versions_ must stay MONOTONE across a recovery within an
  //    epoch. Snapshotting makes it a pure function of the applied log, so
  //    all replicas of a group agree on every version number; a recovered
  //    replica restarting its counters at zero could re-issue a version the
  //    group already used for different data, and a stale installed copy
  //    would then validate spuriously.
  struct InstalledLease {
    PartitionId lender;
    Epoch epoch = 0;
    std::uint64_t version = 0;
    std::vector<ObjectEnvelope> objects;
  };
  /// Reader side: installed lease copy per remote vertex.
  std::unordered_map<VertexId, InstalledLease> leases_;
  /// Lender side: mutation counter per owned vertex (absent = 0).
  std::unordered_map<VertexId, std::uint64_t> lease_versions_;
  /// Lender side: partitions believed to hold a live copy of the vertex.
  std::unordered_map<VertexId, std::set<PartitionId>> lease_holders_;
  /// Target side: grants received per command (may arrive early).
  std::map<CmdKey, std::map<PartitionId, sim::Ref<const LeaseGrant>>>
      lease_grants_;

  // DS-SMR: state needed to roll an aborted permanent move back. Entries
  // for committed moves are never revisited (the target commits exactly
  // once) and are retained for the run's lifetime.
  struct MoveRecord {
    std::vector<std::pair<VertexId, PartitionId>> previous_owner;
  };
  std::map<CmdKey, MoveRecord> dssmr_moves_;

  // STAR state. The epoch-switch markers are emitted by master replicas via
  // a per-replica McastClient (timer emission is replica-local, like the
  // oracle's plan_sender_) and deduplicated by epoch at every receiver, so
  // the first delivered marker defines each group's switch position.
  multicast::McastClient star_sender_;
  Epoch star_epoch_ = 0;
  /// Highest epoch this replica has emitted a marker for; replica-local
  /// (deliberately not snapshotted) — it only throttles duplicate emission.
  Epoch star_marker_inflight_ = 0;
  /// Master: multi-partition commands awaiting the next epoch switch, in
  /// delivery order. Non-masters never queue here (they are not addressed).
  std::deque<ExecCommandPtr> star_deferred_;
  /// Non-master: per-epoch updates that arrived before (or while blocked at)
  /// the epoch's marker. First sender wins; monotone epochs only.
  std::map<Epoch, sim::Ref<const StarEpochUpdate>> star_updates_;
};

/// Defined out of line so it can name the core's private bookkeeping types.
struct PartitionServerCore::Snapshot {
  multicast::MemberCore::State member;
  sim::ReliableLink::State reliable;

  std::unordered_map<std::uint64_t, CachedReply> reply_cache;
  ObjectStore store;  // deep-copied on capture AND restore
  Assignment map;
  Epoch epoch = 0;
  std::deque<QueueItem> queue;
  bool blocked = false;
  std::deque<ExecCommandPtr> future;
  std::map<CmdKey, TransferState> transfers;
  std::map<CmdKey, LendRecord> lends;
  std::unordered_set<ObjectId> lent_objects;
  std::unordered_map<VertexId, int> lent_vertex_count;
  std::set<CmdKey> returns_seen;
  std::map<CmdKey, sim::Ref<const VarReturn>> early_returns;
  std::set<CmdKey> sent_transfers;
  std::set<CmdKey> ssmr_sent;
  std::map<CmdKey, std::set<PartitionId>> resolved;
  std::map<CmdKey, std::map<PartitionId, sim::Ref<const LeaseGrant>>>
      lease_grants;
  std::unordered_map<VertexId, std::uint64_t> lease_versions;
  std::unordered_map<VertexId, PartitionId> awaited;
  std::unordered_map<VertexId, PartitionId> obligations;
  std::unordered_set<VertexId> fetch_requested;
  std::unordered_set<VertexId> fetch_wanted;
  std::set<std::pair<Epoch, std::uint64_t>> handoffs_seen;
  std::vector<sim::Ref<const ObjectHandoff>> handoff_buffer;
  std::map<std::pair<Epoch, std::uint64_t>, HandoffAssembly> handoff_assembly;
  std::map<std::uint64_t, std::int64_t> hint_vertices;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::int64_t> hint_edges;
  std::uint64_t commands_since_hint = 0;
  std::uint64_t hint_emissions = 0;
  std::uint64_t location_updates_emitted = 0;
  std::map<CmdKey, MoveRecord> dssmr_moves;
  multicast::McastClient::State star_sender;
  Epoch star_epoch = 0;
  std::deque<ExecCommandPtr> star_deferred;
  std::map<Epoch, sim::Ref<const StarEpochUpdate>> star_updates;
};

/// Carrier for a server snapshot travelling as an InstallSnapshotResp
/// payload. The snapshot is immutable; receivers deep-copy on install.
struct ServerSnapshotMsg final : sim::Message {
  explicit ServerSnapshotMsg(PartitionServerCore::SnapshotPtr s)
      : state(std::move(s)) {}
  const char* type_name() const override { return "core.ServerSnapshot"; }
  std::size_t size_bytes() const override {
    return 256 + (state ? state->store.total_bytes() : 0);
  }
  PartitionServerCore::SnapshotPtr state;
};

}  // namespace dynastar::core
