// Simulated nodes hosting the DynaStar cores: partition server replicas,
// oracle replicas, and clients. Each node is one sim::Process (one queueing
// CPU) whose messages are dispatched into the layered cores.
#pragma once

#include <memory>

#include "core/client.h"
#include "core/config.h"
#include "core/oracle.h"
#include "core/server.h"
#include "sim/process.h"

namespace dynastar::core {

class ServerNode final : public sim::Process {
 public:
  ServerNode(ProcessId id, sim::World& world, const paxos::Topology& topology,
             PartitionId partition, const SystemConfig& config,
             std::unique_ptr<AppStateMachine> app, bool record_metrics)
      : sim::Process(id, world),
        core_(*this, topology, partition, config, std::move(app),
              &world.metrics(), record_metrics, &world.trace()) {
    set_message_service_time(config.server_service_time);
  }

  void on_start() override { core_.start(); }
  void on_recover() override { core_.on_recover(); }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    core_.handle(from, msg);
  }

  PartitionServerCore& core() { return core_; }

 private:
  PartitionServerCore core_;
};

class OracleNode final : public sim::Process {
 public:
  OracleNode(ProcessId id, sim::World& world, const paxos::Topology& topology,
             const SystemConfig& config, bool record_metrics)
      : sim::Process(id, world),
        core_(*this, topology, config, &world.metrics(), record_metrics,
              &world.trace()) {
    set_message_service_time(config.oracle_service_time);
  }

  void on_start() override { core_.start(); }
  void on_recover() override { core_.on_recover(); }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    core_.handle(from, msg);
  }

  OracleCore& core() { return core_; }

 private:
  OracleCore core_;
};

class ClientNode final : public sim::Process {
 public:
  ClientNode(ProcessId id, sim::World& world, const paxos::Topology& topology,
             const SystemConfig& config, std::unique_ptr<ClientDriver> driver)
      : sim::Process(id, world),
        core_(*this, topology, config, std::move(driver), &world.metrics(),
              &world.trace()) {
    set_message_service_time(config.client_service_time);
  }

  void on_start() override { core_.start(); }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    core_.handle(from, msg);
  }

  ClientCore& core() { return core_; }

 private:
  ClientCore core_;
};

}  // namespace dynastar::core
