// Simulated nodes hosting the DynaStar cores: partition server replicas,
// oracle replicas, and clients. Each node is one sim::Process (one queueing
// CPU) whose messages are dispatched into the layered cores.
#pragma once

#include <memory>

#include "core/client.h"
#include "core/config.h"
#include "core/oracle.h"
#include "core/server.h"
#include "sim/process.h"

namespace dynastar::core {

/// Hosts one PartitionServerCore plus the replica's *durable* checkpoint
/// (modeled like paxos::AcceptorStorage: the one thing that survives a
/// crash). The core itself is volatile — on_crash destroys it, and recovery
/// rebuilds a fresh core from the checkpoint plus log replay.
class ServerNode final : public sim::Process {
 public:
  ServerNode(ProcessId id, sim::World& world, const paxos::Topology& topology,
             PartitionId partition, const SystemConfig& config,
             AppFactory app_factory, bool record_metrics)
      : sim::Process(id, world),
        topology_(topology),
        partition_(partition),
        config_(config),
        app_factory_(std::move(app_factory)),
        record_metrics_(record_metrics) {
    set_message_service_time(config.server_service_time);
    rebuild();
  }

  void on_start() override {
    // Durable slot-0 checkpoint: covers preloaded objects/assignment, so a
    // crash before the first boundary still restores the initial state.
    checkpoint_ = core_->capture_snapshot();
    core_->start();
  }

  void on_crash() override { core_.reset(); }

  void on_recover() override {
    rebuild();
    if (checkpoint_) core_->restore_snapshot(*checkpoint_);
    core_->start_recovered();
  }

  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    core_->handle(from, msg);
  }

  PartitionServerCore& core() { return *core_; }
  [[nodiscard]] PartitionServerCore::SnapshotPtr checkpoint() const {
    return checkpoint_;
  }

 private:
  void rebuild() {
    // Fresh app instance from the factory: AppStateMachine holds no state
    // outside the ObjectStore (by contract), so a new one is equivalent.
    core_ = std::make_unique<PartitionServerCore>(
        *this, topology_, partition_, config_, app_factory_(),
        &world().metrics(), record_metrics_, &world().trace());
    core_->set_checkpoint_sink([this](PartitionServerCore::SnapshotPtr snap) {
      checkpoint_ = std::move(snap);
    });
  }

  const paxos::Topology& topology_;
  PartitionId partition_;
  const SystemConfig& config_;
  AppFactory app_factory_;
  bool record_metrics_;
  std::unique_ptr<PartitionServerCore> core_;  // volatile (dies on crash)
  PartitionServerCore::SnapshotPtr checkpoint_;  // durable
};

/// Oracle analog of ServerNode: volatile core + durable checkpoint.
class OracleNode final : public sim::Process {
 public:
  OracleNode(ProcessId id, sim::World& world, const paxos::Topology& topology,
             const SystemConfig& config, bool record_metrics)
      : sim::Process(id, world),
        topology_(topology),
        config_(config),
        record_metrics_(record_metrics) {
    set_message_service_time(config.oracle_service_time);
    rebuild();
  }

  void on_start() override {
    checkpoint_ = core_->capture_snapshot();
    core_->start();
  }

  void on_crash() override { core_.reset(); }

  void on_recover() override {
    rebuild();
    if (checkpoint_) core_->restore_snapshot(*checkpoint_);
    core_->start_recovered();
  }

  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    core_->handle(from, msg);
  }

  OracleCore& core() { return *core_; }
  [[nodiscard]] OracleCore::SnapshotPtr checkpoint() const {
    return checkpoint_;
  }

 private:
  void rebuild() {
    core_ = std::make_unique<OracleCore>(*this, topology_, config_,
                                         &world().metrics(), record_metrics_,
                                         &world().trace());
    core_->set_checkpoint_sink(
        [this](OracleCore::SnapshotPtr snap) { checkpoint_ = std::move(snap); });
  }

  const paxos::Topology& topology_;
  const SystemConfig& config_;
  bool record_metrics_;
  std::unique_ptr<OracleCore> core_;  // volatile (dies on crash)
  OracleCore::SnapshotPtr checkpoint_;  // durable
};

class ClientNode final : public sim::Process {
 public:
  ClientNode(ProcessId id, sim::World& world, const paxos::Topology& topology,
             const SystemConfig& config, std::unique_ptr<ClientDriver> driver,
             bool surge_only = false)
      : sim::Process(id, world),
        core_(*this, topology, config, std::move(driver), &world.metrics(),
              &world.trace(), surge_only) {
    set_message_service_time(config.client_service_time);
  }

  void on_start() override { core_.start(); }
  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    core_.handle(from, msg);
  }

  ClientCore& core() { return core_; }

 private:
  ClientCore core_;
};

}  // namespace dynastar::core
