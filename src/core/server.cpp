#include "core/server.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "common/metric_names.h"

namespace dynastar::core {

namespace {
/// CPU charged for packing/unpacking one relocated object.
constexpr SimTime kPerObjectMoveCost = nanoseconds(500);

/// Deterministic uid for group-emitted multicasts, namespaced by purpose.
std::uint64_t group_uid(GroupId g, std::uint64_t purpose,
                        std::uint64_t counter) {
  std::uint64_t x = g.value() * 0x9e3779b97f4a7c15ULL + purpose;
  x ^= counter + 0xbf58476d1ce4e5b9ULL + (x << 6) + (x >> 2);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return x | (1ULL << 63);  // avoid colliding with client uids
}

/// STAR: true when the command spans more than one owner (its addressing is
/// {master} only, and the master executes it at the next epoch switch).
/// dests.size() can't distinguish this — a master-owned single is also
/// addressed to exactly {master}.
bool star_multi_owner(const ExecCommand& ec) {
  for (PartitionId o : ec.owners)
    if (o != ec.owners.front()) return true;
  return false;
}
}  // namespace

PartitionServerCore::PartitionServerCore(
    sim::Env& env, const paxos::Topology& topology, PartitionId partition,
    const SystemConfig& config, std::unique_ptr<AppStateMachine> app,
    MetricsRegistry* metrics, bool record_metrics, TraceCollector* trace)
    : env_(env),
      topology_(topology),
      partition_(partition),
      config_(config),
      app_(std::move(app)),
      metrics_(metrics),
      record_metrics_(record_metrics),
      trace_(trace),
      partition_label_(std::to_string(partition.value())),
      member_(env, topology, group_of(partition), config.paxos),
      reliable_(env),
      star_sender_(env, topology) {
  const auto& replicas = topology.group(group_of(partition)).replicas;
  for (std::size_t i = 0; i < replicas.size(); ++i)
    if (replicas[i] == env.self()) replica_label_ = std::to_string(i);
  member_.set_trace(trace);
  member_.set_deliver(
      [this](const multicast::McastData& data) { on_adeliver(data); });
  if (config_.server_queue_cap > 0) {
    // Admission gate (leader-side): shed client-facing single-partition
    // ExecCommands when the admission depth crosses the high-water mark.
    // Protocol-internal traffic is exempt — group-sender multicasts (oracle
    // relays, plans, hints) carry sender keys >= 2^40, and multi-group
    // messages are never gated by the member (see MemberCore::GateFn).
    member_.set_admission_gate([this](const multicast::McastData& data) {
      if (data.sender >= (1ULL << 40)) return false;
      const auto* exec = dynamic_cast<const ExecCommand*>(data.payload.get());
      if (exec == nullptr) return false;
      const std::size_t depth = admission_depth();
      if (depth < config_.server_queue_cap) {
        if (trace_)
          trace_->record(TracePoint::kAdmit, env_.now(), exec->cmd->cmd_id,
                         exec->attempt, env_.self().value(), depth);
        return false;
      }
      return true;
    });
    member_.set_shed_deliver(
        [this](const multicast::McastData& data) { on_shed_deliver(data); });
  }
  member_.replica().set_checkpoint_hook([this] { on_checkpoint_boundary(); });
  member_.replica().set_snapshot_provider([this] {
    // The pending executor batch is volatile, never snapshotted state:
    // apply it so the snapshot sits at a state the log reproduces.
    flush_exec_batch();
    return sim::make_message<ServerSnapshotMsg>(capture_snapshot());
  });
  member_.replica().set_snapshot_installer([this](const sim::MessagePtr& m) {
    const auto* snap = dynamic_cast<const ServerSnapshotMsg*>(m.get());
    if (snap == nullptr || !snap->state) return false;
    restore_snapshot(*snap->state);
    if (metrics_) metrics_->add_counter(metric::kServerSnapshotInstalls);
    if (trace_)
      trace_->record(TracePoint::kSnapshotInstall, env_.now(),
                     snap->state->member.replica.next_deliver_slot, 0,
                     env_.self().value(), partition_.value());
    return true;
  });
  // Chunked transfers serve the last checkpoint-boundary snapshot (stable
  // across the group at identical slots) rather than a fresh tip capture, so
  // any up-to-date peer can answer chunk pulls for the same manifest.
  member_.replica().set_stable_snapshot_provider([this]() -> sim::MessagePtr {
    if (!stable_snapshot_) return nullptr;
    return sim::make_message<ServerSnapshotMsg>(stable_snapshot_);
  });
  member_.replica().set_metrics(metrics_);
  if (config_.exec_lanes > 1)
    exec_ = std::make_unique<ParallelExecutor>(config_.exec_lanes,
                                               config_.exec_real_threads);
}

void PartitionServerCore::start() {
  member_.start();
  if (is_star_master()) arm_star_epoch_timer();
}

std::vector<ProcessId> PartitionServerCore::reliable_peers() const {
  // Every process that may hold (or need) retained direct coordination
  // messages for us: the replicas of every partition group but ourselves.
  // The oracle group exchanges no ReliableLink traffic.
  std::vector<ProcessId> peers;
  for (std::uint32_t p = 0; p < config_.num_partitions; ++p) {
    for (ProcessId replica :
         topology_.group(group_of(PartitionId{p})).replicas) {
      if (replica != env_.self()) peers.push_back(replica);
    }
  }
  return peers;
}

void PartitionServerCore::on_checkpoint_boundary() {
  // Boundaries are slot-count driven, so every replica flushes its pending
  // executor batch at the same log position — checkpoints stay identical
  // across replicas even though batch windows are timer-local.
  flush_exec_batch();
  // One capture feeds both the durability sink and the chunked-transfer
  // stable snapshot: the Snapshot is immutable once built, so sharing the
  // pointer costs nothing beyond the capture the sink forced anyway.
  SnapshotPtr snap = capture_snapshot();
  stable_snapshot_ = snap;
  if (checkpoint_sink_) checkpoint_sink_(std::move(snap));
  // Tell peers which of their retained sends this durable checkpoint covers.
  reliable_.note_checkpoint(env_.now(), reliable_peers());
  if (metrics_) metrics_->add_counter(metric::kServerCheckpoints);
  if (trace_)
    trace_->record(TracePoint::kCheckpoint, env_.now(),
                   member_.replica().last_checkpoint_slot(), 0,
                   env_.self().value(), partition_.value());
}

PartitionServerCore::SnapshotPtr PartitionServerCore::capture_snapshot()
    const {
  auto snap = std::make_shared<Snapshot>();
  snap->member = member_.capture_state();
  snap->reliable = reliable_.capture();
  snap->reply_cache = reply_cache_;
  snap->store = store_.deep_copy();
  snap->map = map_;
  snap->epoch = epoch_;
  snap->queue = queue_;
  snap->blocked = blocked_;
  snap->future = future_;
  snap->transfers = transfers_;
  snap->lends = lends_;
  snap->lent_objects = lent_objects_;
  snap->lent_vertex_count = lent_vertex_count_;
  snap->returns_seen = returns_seen_;
  snap->early_returns = early_returns_;
  snap->sent_transfers = sent_transfers_;
  snap->ssmr_sent = ssmr_sent_;
  snap->resolved = resolved_;
  // Per-command lease-grant coordination is snapshotted like transfers_ (a
  // restored target blocked at the queue head on already-acked grants would
  // otherwise wait forever). Version counters are captured so they stay
  // monotone across recovery (see the member comment in server.h); the
  // leased copies and holder records are volatile by design and
  // deliberately absent here.
  snap->lease_grants = lease_grants_;
  snap->lease_versions = lease_versions_;
  snap->awaited = awaited_;
  snap->obligations = obligations_;
  snap->fetch_requested = fetch_requested_;
  snap->fetch_wanted = fetch_wanted_;
  snap->handoffs_seen = handoffs_seen_;
  snap->handoff_buffer = handoff_buffer_;
  snap->handoff_assembly = handoff_assembly_;
  snap->hint_vertices = hint_vertices_;
  snap->hint_edges = hint_edges_;
  snap->commands_since_hint = commands_since_hint_;
  snap->hint_emissions = hint_emissions_;
  snap->location_updates_emitted = location_updates_emitted_;
  snap->dssmr_moves = dssmr_moves_;
  snap->star_sender = star_sender_.capture();
  snap->star_epoch = star_epoch_;
  snap->star_deferred = star_deferred_;
  snap->star_updates = star_updates_;
  return snap;
}

void PartitionServerCore::restore_snapshot(const Snapshot& snapshot) {
  member_.restore_state(snapshot.member);
  reliable_.restore(snapshot.reliable, reliable_peers());
  reply_cache_ = snapshot.reply_cache;
  store_ = snapshot.store.deep_copy();
  map_ = snapshot.map;
  epoch_ = snapshot.epoch;
  queue_ = snapshot.queue;
  blocked_ = snapshot.blocked;
  future_ = snapshot.future;
  transfers_ = snapshot.transfers;
  lends_ = snapshot.lends;
  lent_objects_ = snapshot.lent_objects;
  lent_vertex_count_ = snapshot.lent_vertex_count;
  returns_seen_ = snapshot.returns_seen;
  early_returns_ = snapshot.early_returns;
  sent_transfers_ = snapshot.sent_transfers;
  ssmr_sent_ = snapshot.ssmr_sent;
  resolved_ = snapshot.resolved;
  lease_grants_ = snapshot.lease_grants;
  lease_versions_ = snapshot.lease_versions;
  // Leases are volatile: installed copies and holder records die with the
  // incarnation (a regression test pins that they are not in the snapshot).
  // Restored data-less grants then fail validation, fall back to kRetry,
  // and the retry is served fresh full grants.
  leases_.clear();
  lease_holders_.clear();
  awaited_ = snapshot.awaited;
  obligations_ = snapshot.obligations;
  fetch_requested_ = snapshot.fetch_requested;
  fetch_wanted_ = snapshot.fetch_wanted;
  handoffs_seen_ = snapshot.handoffs_seen;
  handoff_buffer_ = snapshot.handoff_buffer;
  handoff_assembly_ = snapshot.handoff_assembly;
  // The adopted state's checkpoint history belongs to the peer; our next
  // boundary (forced right after install) repopulates the stable snapshot.
  stable_snapshot_ = nullptr;
  hint_vertices_ = snapshot.hint_vertices;
  hint_edges_ = snapshot.hint_edges;
  commands_since_hint_ = snapshot.commands_since_hint;
  hint_emissions_ = snapshot.hint_emissions;
  location_updates_emitted_ = snapshot.location_updates_emitted;
  dssmr_moves_ = snapshot.dssmr_moves;
  star_sender_.restore(snapshot.star_sender);
  star_epoch_ = snapshot.star_epoch;
  star_deferred_ = snapshot.star_deferred;
  star_updates_ = snapshot.star_updates;
  // Replica-local marker throttle: any marker in flight at the crash died
  // with the old incarnation's timer; the next timer tick may re-emit.
  star_marker_inflight_ = snapshot.star_epoch;
  // Live snapshot install: a pending executor batch refers to log positions
  // the installed state already covers (the peer executed those slots), so
  // applying it now would double-execute. Drop it; the peer's replies stand.
  exec_pending_.clear();
  exec_pending_clients_.clear();
}

void PartitionServerCore::start_recovered() {
  if (trace_)
    trace_->record(TracePoint::kRecoveryRestore, env_.now(),
                   member_.replica().next_deliver_slot(), 0,
                   env_.self().value(), partition_.value());
  member_.start_recovered();
  if (is_star_master()) {
    // Re-drive unacked marker sends immediately, then keep the epoch cadence.
    star_sender_.retransmit_unacked();
    arm_star_epoch_timer();
  }
}

bool PartitionServerCore::is_primary_replica() const {
  return topology_.group(group_of(partition_)).replicas.front() == env_.self();
}

void PartitionServerCore::preload_object(ObjectId id, VertexId vertex,
                                         ObjectPtr object) {
  store_.put(id, vertex, std::move(object));
}

void PartitionServerCore::preload_assignment(AssignmentPtr assignment,
                                             Epoch epoch) {
  map_ = *assignment;
  epoch_ = epoch;
}

bool PartitionServerCore::handle(ProcessId from, const sim::MessagePtr& msg) {
  if (member_.handle(from, msg)) return true;
  sim::MessagePtr inner;
  if (reliable_.handle(from, msg, &inner)) {
    if (inner) dispatch_direct(from, inner);
    return true;
  }
  // McastAcks for this replica's own epoch-marker sends (STAR), or for an
  // entry the member already pruned (late duplicate).
  if (star_sender_.handle(msg)) return true;
  if (dynamic_cast<const multicast::McastAck*>(msg.get()) != nullptr)
    return true;
  return dispatch_direct(from, msg);
}

bool PartitionServerCore::dispatch_direct(ProcessId /*from*/,
                                          const sim::MessagePtr& msg) {
  if (auto* m = dynamic_cast<const VarTransfer*>(msg.get())) {
    on_var_transfer(*m);
    return true;
  }
  if (auto m = sim::dyn_ref_cast<const VarReturn>(msg)) {
    on_var_return(m);
    return true;
  }
  if (auto* m = dynamic_cast<const ObjectHandoff*>(msg.get())) {
    on_handoff(*m);
    return true;
  }
  if (auto m = sim::dyn_ref_cast<const HandoffChunk>(msg)) {
    on_handoff_chunk(m);
    return true;
  }
  if (auto* m = dynamic_cast<const FetchVertex*>(msg.get())) {
    on_fetch(*m);
    return true;
  }
  if (auto m = sim::dyn_ref_cast<const StarEpochUpdate>(msg)) {
    on_star_update(m);
    return true;
  }
  if (auto* m = dynamic_cast<const AbortNotice*>(msg.get())) {
    on_abort(*m);
    return true;
  }
  if (auto m = sim::dyn_ref_cast<const LeaseGrant>(msg)) {
    on_lease_grant(m);
    return true;
  }
  if (auto* m = dynamic_cast<const LeaseRevoke*>(msg.get())) {
    on_lease_revoke(*m);
    return true;
  }
  return false;
}

void PartitionServerCore::send_to_partition(PartitionId p,
                                            sim::MessagePtr msg) {
  for (ProcessId replica : topology_.group(group_of(p)).replicas)
    reliable_.send(replica, msg);
}

// ---------------------------------------------------------------------------
// Delivery and the execution queue
// ---------------------------------------------------------------------------

void PartitionServerCore::on_adeliver(const multicast::McastData& data) {
  if (auto exec = sim::dyn_ref_cast<const ExecCommand>(data.payload)) {
    trace_cmd(TracePoint::kServerDeliver, *exec, partition_.value());
    queue_.push_back(QueueItem{std::move(exec), nullptr, nullptr});
  } else if (auto plan =
                 sim::dyn_ref_cast<const PlanMsg>(data.payload)) {
    queue_.push_back(QueueItem{nullptr, std::move(plan), nullptr});
  } else if (auto star =
                 sim::dyn_ref_cast<const StarEpochMsg>(data.payload)) {
    queue_.push_back(QueueItem{nullptr, nullptr, std::move(star)});
  } else {
    return;  // oracle-only payloads multicast to every group are ignored here
  }
  if (metrics_) {
    // Admission depth sampled at each delivery; mean depth per bucket is
    // this sum divided by that bucket's delivery count (see
    // common/report.cpp). Per-node labeled series are recorded by every
    // replica (no double counting: the labels make each node's series
    // distinct).
    metrics_
        ->series(metric::kServerQueueDepth, {{"partition", partition_label_},
                                             {"replica", replica_label_}})
        .add(env_.now(), static_cast<double>(admission_depth()));
  }
  if (!blocked_) pump();
}

std::size_t PartitionServerCore::admission_depth() const {
  return env_.inbox_depth() + queue_.size() + exec_pending_.size();
}

void PartitionServerCore::on_shed_deliver(const multicast::McastData& data) {
  auto exec = sim::dyn_ref_cast<const ExecCommand>(data.payload);
  if (!exec) return;
  const std::size_t depth = admission_depth();
  trace_cmd(TracePoint::kShed, *exec, depth);
  // At-most-once first: a retransmission of an already-executed command is
  // answered from the reply cache even under shedding — never with Busy,
  // which would send the client into a retry loop for a finished command.
  if (serve_cached_duplicate(*exec)) return;
  const SimTime retry_after =
      config_.busy_retry_after_base +
      static_cast<SimTime>(depth) * config_.busy_retry_after_per_item;
  trace_cmd(TracePoint::kBusyReply, *exec,
            static_cast<std::uint64_t>(retry_after));
  env_.send_message(exec->cmd->client, sim::make_message<CommandReply>(
                                           exec->cmd->cmd_id, exec->attempt,
                                           ReplyStatus::kBusy, nullptr,
                                           retry_after));
  if (metrics_) {
    if (record_metrics_) metrics_->add_counter(metric::kServerShed);
    metrics_
        ->series(metric::kServerShed, {{"partition", partition_label_},
                                       {"replica", replica_label_}})
        .add(env_.now());
  }
}

void PartitionServerCore::pump() {
  while (!queue_.empty()) {
    blocked_ = false;
    QueueItem& item = queue_.front();
    if (item.plan) {
      PlanMsgPtr plan = item.plan;
      queue_.pop_front();
      // Plans relocate vertices; pending accesses precede them in slot order.
      flush_exec_batch();
      apply_plan(*plan);
      continue;
    }
    if (item.star) {
      sim::Ref<const StarEpochMsg> marker = item.star;
      if (marker->epoch <= star_epoch_) {
        // The other master replica's copy of an already-applied switch.
        queue_.pop_front();
        continue;
      }
      // The epoch batch (master) / update splice (non-master) mutates state
      // in slot order; pending singles precede the marker.
      flush_exec_batch();
      if (is_star_master()) {
        queue_.pop_front();
        star_execute_batch(marker->epoch);
        continue;
      }
      auto update = star_updates_.find(marker->epoch);
      if (update == star_updates_.end()) {
        // The marker's log position is the switch point, but the master's
        // state update travels the direct plane and may still be in flight.
        blocked_ = true;
        return;
      }
      sim::Ref<const StarEpochUpdate> state = update->second;
      star_updates_.erase(update);
      queue_.pop_front();
      apply_star_update(*state);
      star_epoch_ = marker->epoch;
      continue;
    }
    ExecCommandPtr ec = item.exec;
    // A retransmission whose original still waits in the pending batch
    // would pass the duplicate check below (no cached reply yet) and
    // execute twice: flush first so the original lands in the cache.
    if (!exec_pending_.empty() &&
        exec_pending_clients_.contains(ec->cmd->client.value()))
      flush_exec_batch();
    if (serve_cached_duplicate(*ec)) {
      queue_.pop_front();
      continue;
    }
    if (ec->cmd->type == CommandType::kCreate) {
      // A pending access must observe pre-create state (slot order).
      flush_exec_batch();
      execute_create(*ec);
      queue_.pop_front();
      continue;
    }
    if (ec->cmd->type == CommandType::kDelete) {
      // A pending access may read the vertex this delete removes.
      flush_exec_batch();
      execute_delete(*ec);
      queue_.pop_front();
      continue;
    }
    if (config_.mode == ExecutionMode::kStar && star_multi_owner(*ec)) {
      // Multi-partition command: only the master group is addressed; defer
      // it (in delivery order) to the next epoch switch, where it executes
      // against the full replica without borrow/return round-trips.
      star_deferred_.push_back(ec);
      queue_.pop_front();
      continue;
    }
    const CmdKey key{ec->cmd->cmd_id, ec->attempt};
    switch (classify(*ec)) {
      case Classification::kFuture:
        future_.push_back(ec);
        queue_.pop_front();
        continue;
      case Classification::kStale:
        // Consistent at every involved partition (commands and plans are
        // ordered by the atomic multicast), so no abort notices needed.
        reject(*ec, /*notify_peers=*/false);
        queue_.pop_front();
        continue;
      case Classification::kInvalid:
        if (config_.mode == ExecutionMode::kStar) {
          // Deterministic at owner and master (their verdicts are a function
          // of the same pairwise-ordered delivery sequence); only the owner
          // replies, and there are no transfers to abort.
          if (ec->target == partition_) reject(*ec, /*notify_peers=*/false);
        } else {
          reject(*ec, /*notify_peers=*/true);
        }
        queue_.pop_front();
        continue;
      case Classification::kBlocked:
        // Serial execution would have applied the pending commands before
        // waiting here; do the same so their replies aren't held hostage.
        flush_exec_batch();
        blocked_ = true;
        return;
      case Classification::kReady:
        break;
    }

    if (exec_ && exec_batchable(*ec)) {
      exec_enqueue(ec);
      queue_.pop_front();
      continue;
    }
    // Everything below observes or mutates state in slot order (borrows,
    // transfers, multi-partition execution): flush pending work first.
    flush_exec_batch();

    if (config_.mode == ExecutionMode::kStar) {
      execute_star_single(*ec);
      queue_.pop_front();
      continue;
    }

    const bool multi = ec->dests.size() > 1;
    if (config_.mode == ExecutionMode::kSSMR) {
      if (multi && !transfers_ready_for_ssmr(*ec)) {
        blocked_ = true;
        return;
      }
      execute_ssmr(*ec);
      queue_.pop_front();
      continue;
    }

    if (ec->target == partition_) {
      if (lease_eligible(*ec)) {
        execute_leased_read(*ec);
        queue_.pop_front();
        continue;
      }
      execute_target(*ec);
      queue_.pop_front();
      continue;
    }

    // Non-target lender on the lease fast path: grant at this slot and move
    // on — no objects leave the store and nothing blocks, which is the whole
    // latency win over borrow/return.
    if (lease_eligible(*ec)) {
      grant_lease(*ec);
      queue_.pop_front();
      continue;
    }

    // Non-target involved partition. Send our variables exactly once, then
    // (DynaStar) block until they come home (Algorithm 3 line 17).
    if (!sent_transfers_.contains(key)) execute_non_target(*ec);
    if (config_.mode == ExecutionMode::kDynaStar && lends_.contains(key)) {
      blocked_ = true;
      return;
    }
    sent_transfers_.erase(key);
    queue_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Intra-partition parallel execution (core/parallel_exec.h)
// ---------------------------------------------------------------------------

bool PartitionServerCore::exec_batchable(const ExecCommand& ec) const {
  // Only plain accesses whose whole execution is local: no transfers to
  // consume, no variables to ship, no bookkeeping keyed by slot order.
  if (ec.cmd->type != CommandType::kAccess) return false;
  if (config_.mode == ExecutionMode::kStar) return !star_multi_owner(ec);
  if (config_.mode == ExecutionMode::kSSMR) return ec.dests.size() == 1;
  return ec.dests.size() == 1 && ec.target == partition_;
}

void PartitionServerCore::exec_enqueue(const ExecCommandPtr& ec) {
  exec_pending_.push_back(ec);
  exec_pending_clients_.insert(ec->cmd->client.value());
  if (exec_pending_.size() >= config_.exec_batch_max) {
    flush_exec_batch();
    return;
  }
  if (!exec_flush_armed_) {
    exec_flush_armed_ = true;
    env_.start_timer(config_.exec_batch_window, [this] {
      exec_flush_armed_ = false;
      flush_exec_batch();
    });
  }
}

void PartitionServerCore::run_exec_batch(const std::vector<ExecCommandPtr>& batch,
                                         std::vector<ExecResult>& results) {
  results.resize(batch.size());
  std::vector<ExecIntent> intents;
  intents.reserve(batch.size());
  for (const ExecCommandPtr& ec : batch) intents.push_back(intent_for(*ec->cmd));
  // Trace in slot order up front: worker lanes must not touch the
  // collector, and consume_cpu does not advance now() within an event, so
  // these records match what interleaved serial execution would emit.
  for (const ExecCommandPtr& ec : batch)
    trace_cmd(TracePoint::kExecuteStart, *ec, partition_.value());
  const bool threaded =
      exec_->real_threads() && exec_->lanes() > 1 && batch.size() > 1;
  if (threaded) store_.set_concurrency_guard(&exec_store_mutex_);
  const BatchStats stats = exec_->run(intents, [&](std::size_t i) {
    results[i] = app_->execute(*batch[i]->cmd, store_);
    return results[i].cpu_cost;
  });
  if (threaded) store_.set_concurrency_guard(nullptr);
  // The batch charges its schedule makespan, not the serial sum — this is
  // where simulated lanes model the speedup (deterministically: the
  // schedule and costs are pure functions of the decided commands).
  env_.consume_cpu(stats.makespan);
  if (record_metrics_ && metrics_) {
    metrics_->add_counter(metric::kExecBatches);
    metrics_->add_counter(metric::kExecBatchedCommands,
                          static_cast<double>(stats.commands));
    metrics_->add_counter(metric::kExecConflictEdges,
                          static_cast<double>(stats.conflict_edges));
    metrics_->series(metric::kExecLaneOccupancy)
        .add(env_.now(), stats.lane_occupancy);
  }
  if (trace_)
    trace_->record(TracePoint::kExecParallel, env_.now(),
                   static_cast<std::uint64_t>(stats.makespan), stats.waves,
                   env_.self().value(), stats.commands);
}

void PartitionServerCore::flush_exec_batch() {
  if (exec_pending_.empty()) return;
  std::vector<ExecCommandPtr> batch(exec_pending_.begin(), exec_pending_.end());
  exec_pending_.clear();
  exec_pending_clients_.clear();
  std::vector<ExecResult> results;
  run_exec_batch(batch, results);
  // Commit effects in slot order: replies, caches, hints, metrics.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const ExecCommand& ec = *batch[i];
    if (!is_read_only(*ec.cmd)) {
      std::set<VertexId> mutated;
      for (VertexId v : ec.cmd->vertices)
        if (mutated.insert(v).second) note_vertex_mutation(v);
    }
    sim::MessagePtr reply_payload = std::move(results[i].reply);
    remember_reply(ec, ReplyStatus::kOk, reply_payload);
    // STAR: the master applies other owners' singles silently.
    const bool silent =
        config_.mode == ExecutionMode::kStar && ec.target != partition_;
    if (!silent) {
      send_reply(ec, ReplyStatus::kOk, std::move(reply_payload));
      note_command_metrics(ec, /*multi=*/false);
    }
    if (config_.mode == ExecutionMode::kDynaStar)
      record_hints(*ec.cmd, /*multi_partition=*/false);
  }
}

void PartitionServerCore::trace_cmd(TracePoint point, const ExecCommand& ec,
                                    std::uint64_t detail) {
  if (trace_)
    trace_->record(point, env_.now(), ec.cmd->cmd_id, ec.attempt,
                   env_.self().value(), detail);
}

void PartitionServerCore::send_reply(const ExecCommand& ec, ReplyStatus status,
                                     sim::MessagePtr payload) {
  trace_cmd(TracePoint::kReplySent, ec, static_cast<std::uint64_t>(status));
  env_.send_message(ec.cmd->client,
                    sim::make_message<CommandReply>(ec.cmd->cmd_id, ec.attempt,
                                                    status,
                                                    std::move(payload)));
}

void PartitionServerCore::remember_reply(const ExecCommand& ec,
                                         ReplyStatus status,
                                         const sim::MessagePtr& payload) {
  auto& entry = reply_cache_[ec.cmd->client.value()];
  if (entry.cmd_id > ec.cmd->cmd_id) return;  // never regress
  entry = CachedReply{ec.cmd->cmd_id, status, payload};
}

bool PartitionServerCore::serve_cached_duplicate(const ExecCommand& ec) {
  // At-most-once: a retransmitted command whose earlier attempt already
  // executed here must not execute again. cmd_ids are monotone per client,
  // so cached >= delivered means the delivered command (or a successor)
  // already produced its authoritative reply.
  auto it = reply_cache_.find(ec.cmd->client.value());
  if (it == reply_cache_.end() || it->second.cmd_id < ec.cmd->cmd_id)
    return false;
  if (it->second.cmd_id == ec.cmd->cmd_id) {
    send_reply(ec, it->second.status, it->second.payload);
    if (record_metrics_ && metrics_)
      metrics_->add_counter(metric::kServerReplyCacheHits);
  }
  // cached > delivered: the client already moved past this command (it can
  // only have timed out), so executing it now would violate session order —
  // suppress it silently. Either way, clean up this attempt's coordination
  // state like reject() does, so peers that shipped variables for the
  // duplicate attempt get them bounced home.
  const CmdKey key{ec.cmd->cmd_id, ec.attempt};
  if (config_.mode == ExecutionMode::kSSMR) {
    transfers_.erase(key);
    ssmr_sent_.erase(key);
    return true;
  }
  if (config_.mode == ExecutionMode::kStar) {
    // No transfers ever ship under STAR, so there is nothing to bounce (and
    // no resolved_ entry to create — star singles have two dests but the
    // peer is the silently-applying master, not a variable source).
    return true;
  }
  if (ec.dests.size() > 1 && ec.target == partition_) {
    // Lenders re-grant for a duplicate attempt (they have no reply cache
    // entry for it); drop the orphaned grants with the attempt.
    lease_grants_.erase(key);
    auto& sources = resolved_[key];
    auto tstate = transfers_.find(key);
    if (tstate != transfers_.end()) {
      for (auto& [source, envelopes] : tstate->second.received) {
        sources.insert(source);
        trace_cmd(TracePoint::kReturnSent, ec, source.value());
        send_to_partition(source,
                          sim::make_message<VarReturn>(ec.cmd->cmd_id,
                                                       ec.attempt, partition_,
                                                       envelopes));
      }
      transfers_.erase(tstate);
    }
  }
  return true;
}

PartitionServerCore::Classification PartitionServerCore::classify(
    const ExecCommand& ec) {
  const CmdKey key{ec.cmd->cmd_id, ec.attempt};

  if (ec.epoch > epoch_) return Classification::kFuture;

  if (config_.mode == ExecutionMode::kDynaStar &&
      config_.strict_epoch_validation) {
    if (ec.epoch < epoch_) return Classification::kStale;
  } else if (config_.mode != ExecutionMode::kSSMR) {
    // Claims validation (DS-SMR, or DynaStar in relaxed mode): the sender's
    // believed owners must agree with this partition's map for every vertex
    // it claims here and every vertex we actually own.
    for (std::size_t i = 0; i < ec.cmd->vertices.size(); ++i) {
      const VertexId v = ec.cmd->vertices[i];
      auto it = map_.find(v);
      const bool claimed_mine = ec.owners[i] == partition_;
      const bool actually_mine = it != map_.end() && it->second == partition_;
      if (claimed_mine != actually_mine) return Classification::kInvalid;
    }
  }

  // A peer may have rejected this command; the target resolves that in
  // execute_target / execute_non_target. For blocking decisions an abort
  // counts as "ready to proceed to cleanup".
  const auto tstate = transfers_.find(key);
  const bool aborted =
      tstate != transfers_.end() && !tstate->second.aborted.empty();

  if (!objects_available(ec, /*claimed_mine_only=*/true))
    return Classification::kBlocked;

  if (config_.mode == ExecutionMode::kStar) {
    // Star singles never wait for transfers: the owner and the master each
    // execute on the state they hold. (Without this the two-dest addressing
    // below would wait for a VarTransfer nobody ships.)
    return Classification::kReady;
  }

  const bool multi = ec.dests.size() > 1;
  if (multi && ec.target == partition_ &&
      config_.mode != ExecutionMode::kSSMR && !aborted) {
    if (lease_eligible(ec)) {
      // Lease fast path: wait for one grant per peer instead of transfers
      // (every peer computes lease_eligible identically from the same
      // ExecCommand and config, so no VarTransfer ever ships here).
      return lease_grants_complete(ec) ? Classification::kReady
                                       : Classification::kBlocked;
    }
    // Target: wait for every other involved partition's transfer.
    std::size_t received =
        tstate == transfers_.end() ? 0 : tstate->second.received.size();
    if (received + 1 < ec.dests.size()) {
      // The sends from peers happen when they reach this command; we may
      // also need to send nothing (we are target) — just wait.
      return Classification::kBlocked;
    }
  }
  return Classification::kReady;
}

bool PartitionServerCore::transfers_ready_for_ssmr(const ExecCommand& ec) {
  const CmdKey key{ec.cmd->cmd_id, ec.attempt};
  // S-SMR: every involved partition ships copies to every other one, then
  // each executes the whole command locally. Send once, then wait.
  if (!ssmr_sent_.contains(key)) {
    ssmr_sent_.insert(key);
    std::vector<ObjectEnvelope> mine;
    for (std::size_t i = 0; i < ec.cmd->objects.size(); ++i) {
      if (ec.owners[i] != partition_) continue;
      const ObjectId id = ec.cmd->objects[i];
      const PRObject* obj = store_.find(id);
      mine.push_back(ObjectEnvelope{
          id, ec.cmd->vertices[i],
          obj ? std::shared_ptr<const PRObject>(obj->clone()) : nullptr});
    }
    env_.consume_cpu(kPerObjectMoveCost *
                     static_cast<SimTime>(mine.size() + 1));
    auto msg = sim::make_message<VarTransfer>(ec.cmd->cmd_id, ec.attempt,
                                              partition_, std::move(mine));
    for (PartitionId dest : ec.dests) {
      if (dest == partition_) continue;
      trace_cmd(TracePoint::kTransferSent, ec, dest.value());
      send_to_partition(dest, msg);
    }
    if (record_metrics_ && metrics_) {
      note_objects_exchanged(static_cast<double>(
          std::count(ec.owners.begin(), ec.owners.end(), partition_)));
    }
  }
  const auto tstate = transfers_.find(key);
  const std::size_t received =
      tstate == transfers_.end() ? 0 : tstate->second.received.size();
  return received + 1 >= ec.dests.size();
}

bool PartitionServerCore::objects_available(const ExecCommand& ec,
                                            bool /*claimed_mine_only*/) {
  bool available = true;
  for (std::size_t i = 0; i < ec.cmd->objects.size(); ++i) {
    if (ec.owners[i] != partition_) continue;
    const VertexId v = ec.cmd->vertices[i];
    auto awaited = awaited_.find(v);
    if (awaited != awaited_.end()) {
      available = false;
      if (!config_.eager_plan_transfer && !fetch_requested_.contains(v)) {
        fetch_requested_.insert(v);
        send_to_partition(awaited->second, sim::make_message<FetchVertex>(
                                               epoch_, partition_, v));
      }
      continue;
    }
    if (lent_objects_.contains(ec.cmd->objects[i])) available = false;
  }
  return available;
}

// ---------------------------------------------------------------------------
// Execution paths
// ---------------------------------------------------------------------------

void PartitionServerCore::execute_target(const ExecCommand& ec) {
  const CmdKey key{ec.cmd->cmd_id, ec.attempt};
  auto tstate = transfers_.find(key);

  // Peer rejection: return whatever arrived and tell the client to retry.
  if (tstate != transfers_.end() && !tstate->second.aborted.empty()) {
    auto& sources = resolved_[key];
    for (const auto& [source, envelopes] : tstate->second.received)
      sources.insert(source);
    for (auto& [source, envelopes] : tstate->second.received) {
      trace_cmd(TracePoint::kReturnSent, ec, source.value());
      send_to_partition(source,
                        sim::make_message<VarReturn>(ec.cmd->cmd_id, ec.attempt,
                                                     partition_, envelopes));
    }
    transfers_.erase(tstate);
    send_reply(ec, ReplyStatus::kRetry, nullptr);
    return;
  }

  const bool multi = ec.dests.size() > 1;
  if (multi) {
    auto& sources = resolved_[key];
    if (tstate != transfers_.end())
      for (const auto& [source, envelopes] : tstate->second.received)
        sources.insert(source);
  }
  std::size_t borrowed_objects = 0;

  if (multi && tstate != transfers_.end()) {
    for (const auto& [source, envelopes] : tstate->second.received) {
      insert_envelopes(envelopes);
      borrowed_objects += envelopes.size();
    }
  }
  env_.consume_cpu(kPerObjectMoveCost *
                   static_cast<SimTime>(borrowed_objects));

  trace_cmd(TracePoint::kExecuteStart, ec, partition_.value());
  ExecResult result = app_->execute(*ec.cmd, store_);
  env_.consume_cpu(result.cpu_cost);

  // A write against our own vertices invalidates any leased copies of them.
  if (!is_read_only(*ec.cmd)) {
    std::set<VertexId> mutated;
    for (std::size_t i = 0; i < ec.cmd->vertices.size(); ++i)
      if (ec.owners[i] == partition_ && mutated.insert(ec.cmd->vertices[i]).second)
        note_vertex_mutation(ec.cmd->vertices[i]);
  }

  sim::MessagePtr reply_payload = std::move(result.reply);
  remember_reply(ec, ReplyStatus::kOk, reply_payload);
  send_reply(ec, ReplyStatus::kOk, std::move(reply_payload));

  if (multi) {
    if (config_.mode == ExecutionMode::kDynaStar) {
      // Return every borrowed vertex (with any objects the execution
      // created under it) to its owner.
      std::map<PartitionId, std::vector<ObjectEnvelope>> by_owner;
      std::set<VertexId> done;
      for (std::size_t i = 0; i < ec.cmd->vertices.size(); ++i) {
        if (ec.owners[i] == partition_) continue;
        const VertexId v = ec.cmd->vertices[i];
        if (!done.insert(v).second) continue;
        auto envelopes = extract_vertex(v);
        auto& sink = by_owner[ec.owners[i]];
        sink.insert(sink.end(), std::make_move_iterator(envelopes.begin()),
                    std::make_move_iterator(envelopes.end()));
      }
      std::size_t returned = 0;
      for (auto& [owner, envelopes] : by_owner) {
        returned += envelopes.size();
        trace_cmd(TracePoint::kReturnSent, ec, owner.value());
        send_to_partition(owner, sim::make_message<VarReturn>(
                                     ec.cmd->cmd_id, ec.attempt, partition_,
                                     std::move(envelopes)));
      }
      if (record_metrics_ && metrics_)
        note_objects_exchanged(static_cast<double>(returned));
    } else if (config_.mode == ExecutionMode::kDSSMR) {
      // Permanent relocation: keep the objects, take ownership of the
      // vertices, and tell the oracle.
      std::vector<std::pair<VertexId, PartitionId>> moves;
      std::set<VertexId> done;
      for (std::size_t i = 0; i < ec.cmd->vertices.size(); ++i) {
        const VertexId v = ec.cmd->vertices[i];
        if (!done.insert(v).second) continue;
        map_[v] = partition_;
        if (ec.owners[i] != partition_) moves.emplace_back(v, partition_);
      }
      if (!moves.empty()) {
        member_.amcast_as_group(
            group_uid(group_of(partition_), /*purpose=*/2,
                      ++location_updates_emitted_),
            {kOracleGroup},
            sim::make_message<LocationUpdate>(std::move(moves)));
      }
    }
    transfers_.erase(key);
  }

  if (config_.mode == ExecutionMode::kDynaStar) record_hints(*ec.cmd, multi);
  note_command_metrics(ec, multi);
}

void PartitionServerCore::execute_create(const ExecCommand& ec) {
  // Creates introduce a vertex no plan can reference yet, so they are
  // executable regardless of the epoch (Algorithm 2, Tasks 2/3).
  const ObjectId id = ec.cmd->objects.front();
  const VertexId vertex = ec.cmd->vertices.front();
  // STAR: creates are also addressed to the master, which applies them
  // silently (records the owner, not itself, and leaves replying to the
  // owner) so its full replica tracks every vertex.
  const bool silent =
      config_.mode == ExecutionMode::kStar && ec.target != partition_;
  trace_cmd(TracePoint::kExecuteStart, ec, partition_.value());
  if (store_.contains(id)) {
    remember_reply(ec, ReplyStatus::kNok, nullptr);
    if (!silent) send_reply(ec, ReplyStatus::kNok, nullptr);
    return;
  }
  store_.put(id, vertex, app_->make_object(*ec.cmd));
  note_vertex_mutation(vertex);
  map_[vertex] =
      config_.mode == ExecutionMode::kStar ? ec.target : partition_;
  remember_reply(ec, ReplyStatus::kOk, nullptr);
  if (!silent) {
    send_reply(ec, ReplyStatus::kOk, nullptr);
    note_command_metrics(ec, /*multi=*/false);
  }
  if (config_.mode == ExecutionMode::kDynaStar)
    record_hints(*ec.cmd, /*multi_partition=*/false);
}

void PartitionServerCore::execute_delete(const ExecCommand& ec) {
  // delete(v): drop every object homed at the vertex and forget the
  // mapping. The oracle removed the vertex from its own map/graph when it
  // delivered its copy of this multicast (it is a destination).
  const VertexId vertex = ec.cmd->vertices.front();
  const bool silent =
      config_.mode == ExecutionMode::kStar && ec.target != partition_;
  trace_cmd(TracePoint::kExecuteStart, ec, partition_.value());
  for (ObjectId id : store_.objects_of_vertex(vertex)) store_.take(id);
  note_vertex_mutation(vertex);
  map_.erase(vertex);
  remember_reply(ec, ReplyStatus::kOk, nullptr);
  if (!silent) {
    send_reply(ec, ReplyStatus::kOk, nullptr);
    note_command_metrics(ec, /*multi=*/false);
  }
}

void PartitionServerCore::execute_non_target(const ExecCommand& ec) {
  const CmdKey key{ec.cmd->cmd_id, ec.attempt};

  // If a peer already rejected this command, skip it entirely.
  auto tstate = transfers_.find(key);
  if (tstate != transfers_.end() && !tstate->second.aborted.empty()) {
    transfers_.erase(tstate);
    return;
  }
  sent_transfers_.insert(key);

  // Ship every omega object we own to the target (a move: the objects leave
  // this partition until returned — or forever under DS-SMR).
  std::vector<ObjectEnvelope> mine;
  LendRecord lend{ec.target, {}};
  std::set<VertexId> vertex_set;
  for (std::size_t i = 0; i < ec.cmd->objects.size(); ++i) {
    if (ec.owners[i] != partition_) continue;
    const ObjectId id = ec.cmd->objects[i];
    const VertexId v = ec.cmd->vertices[i];
    ObjectPtr obj = store_.take(id);
    mine.push_back(ObjectEnvelope{
        id, v, std::shared_ptr<const PRObject>(std::move(obj))});
    vertex_set.insert(v);
  }
  lend.vertices.assign(vertex_set.begin(), vertex_set.end());
  // The objects leave this store and the borrower may write them: any
  // outstanding leased copies are stale from this slot on.
  for (VertexId v : vertex_set) note_vertex_mutation(v);
  env_.consume_cpu(kPerObjectMoveCost * static_cast<SimTime>(mine.size() + 1));

  if (record_metrics_ && metrics_)
    note_objects_exchanged(static_cast<double>(mine.size()));

  if (config_.mode == ExecutionMode::kDSSMR) {
    // Record the previous owners so an aborted move (a peer partition with
    // a stale claim rejected the command; the target bounces our objects
    // back) can be rolled back — otherwise the objects and the map entry
    // would be lost forever.
    MoveRecord record;
    std::set<VertexId> done;
    for (std::size_t i = 0; i < ec.cmd->vertices.size(); ++i) {
      const VertexId v = ec.cmd->vertices[i];
      if (!done.insert(v).second) continue;
      auto it = map_.find(v);
      record.previous_owner.emplace_back(
          v, it == map_.end() ? kNoPartition : it->second);
      map_[v] = ec.target;
    }
    dssmr_moves_.emplace(key, std::move(record));
    trace_cmd(TracePoint::kTransferSent, ec, ec.target.value());
    send_to_partition(ec.target,
                      sim::make_message<VarTransfer>(ec.cmd->cmd_id, ec.attempt,
                                                     partition_, std::move(mine)));
    // A peer replica's transfer may already have driven the target; if its
    // (abort) return beat us here, consume it now.
    if (auto early = early_returns_.find(key); early != early_returns_.end()) {
      auto held = early->second;
      early_returns_.erase(early);
      on_var_return(held);
    }
    return;  // permanent move: nothing comes back unless the move aborts
  }

  // DynaStar: record the lend before sending so a (same-event) return
  // cannot race past the bookkeeping.
  for (const auto& env : mine) lent_objects_.insert(env.id);
  for (VertexId v : lend.vertices) lent_vertex_count_[v]++;
  lends_.emplace(key, std::move(lend));
  trace_cmd(TracePoint::kTransferSent, ec, ec.target.value());
  send_to_partition(ec.target,
                    sim::make_message<VarTransfer>(ec.cmd->cmd_id, ec.attempt,
                                                   partition_, std::move(mine)));
  // A peer replica's transfer may already have driven the target; if its
  // return beat us here, consume it now so we don't block on it forever.
  if (auto early = early_returns_.find(key); early != early_returns_.end()) {
    auto held = early->second;
    early_returns_.erase(early);
    on_var_return(held);
  }
}

// ---------------------------------------------------------------------------
// Read leases (borrow-free read-only multi-partition commands)
// ---------------------------------------------------------------------------

bool PartitionServerCore::lease_eligible(const ExecCommand& ec) const {
  // Every involved partition evaluates this identically (same ExecCommand,
  // same SystemConfig), so lenders grant exactly when the target waits for
  // grants and the borrow machinery is bypassed symmetrically.
  return config_.read_leases && mode_supports_leases(config_.mode) &&
         ec.dests.size() > 1 && is_read_only(*ec.cmd);
}

void PartitionServerCore::grant_lease(const ExecCommand& ec) {
  const CmdKey key{ec.cmd->cmd_id, ec.attempt};
  // A peer already rejected this command: the target will answer kRetry and
  // drop any grants, so don't create a holder record it will never install.
  auto tstate = transfers_.find(key);
  if (tstate != transfers_.end() && !tstate->second.aborted.empty()) {
    transfers_.erase(tstate);
    return;
  }
  std::vector<LeaseEntry> entries;
  std::set<VertexId> done;
  std::size_t copied = 0;
  for (std::size_t i = 0; i < ec.cmd->vertices.size(); ++i) {
    if (ec.owners[i] != partition_) continue;
    const VertexId v = ec.cmd->vertices[i];
    if (!done.insert(v).second) continue;
    std::uint64_t version = 0;
    if (auto it = lease_versions_.find(v); it != lease_versions_.end())
      version = it->second;
    auto& holders = lease_holders_[v];
    if (holders.contains(ec.target)) {
      // The reader already holds a copy no mutation invalidated since it was
      // shipped: a data-less refresh pins it to this slot's version.
      entries.push_back(LeaseEntry{v, version, {}});
      continue;
    }
    LeaseEntry entry{v, version, {}};
    for (ObjectId id : store_.objects_of_vertex(v)) {
      const PRObject* obj = store_.find(id);
      entry.objects.push_back(ObjectEnvelope{
          id, v,
          obj ? std::shared_ptr<const PRObject>(obj->clone()) : nullptr});
      ++copied;
    }
    holders.insert(ec.target);
    entries.push_back(std::move(entry));
  }
  env_.consume_cpu(kPerObjectMoveCost * static_cast<SimTime>(copied + 1));
  trace_cmd(TracePoint::kLeaseGrant, ec, ec.target.value());
  send_to_partition(ec.target, sim::make_message<LeaseGrant>(
                                   ec.cmd->cmd_id, ec.attempt, partition_,
                                   epoch_, std::move(entries)));
  if (record_metrics_ && metrics_) {
    metrics_->add_counter(metric::kServerLeaseGrants);
    note_objects_exchanged(static_cast<double>(copied));
  }
}

bool PartitionServerCore::lease_grants_complete(const ExecCommand& ec) {
  const auto it = lease_grants_.find(CmdKey{ec.cmd->cmd_id, ec.attempt});
  const std::size_t received = it == lease_grants_.end() ? 0 : it->second.size();
  return received + 1 >= ec.dests.size();
}

void PartitionServerCore::execute_leased_read(const ExecCommand& ec) {
  const CmdKey key{ec.cmd->cmd_id, ec.attempt};

  // Peer rejection (DS-SMR claims mismatch): nothing was borrowed, so there
  // is nothing to bounce — drop the grants and tell the client to retry.
  auto tstate = transfers_.find(key);
  if (tstate != transfers_.end() && !tstate->second.aborted.empty()) {
    transfers_.erase(tstate);
    lease_grants_.erase(key);
    resolved_[key];
    send_reply(ec, ReplyStatus::kRetry, nullptr);
    return;
  }

  // Validate every grant at execute time. A grant proves "at this command's
  // slot in the lender's delivery order, vertex v was at `version` under
  // `epoch`"; the read is correct iff the copy we hold matches that exactly.
  bool valid = true;
  std::uint64_t stale_vertices = 0;
  std::map<PartitionId, std::vector<VertexId>> stale;
  auto gstate = lease_grants_.find(key);
  if (gstate != lease_grants_.end()) {
    for (const auto& [from, grant] : gstate->second) {
      for (const LeaseEntry& entry : grant->entries) {
        const auto lease = leases_.find(entry.vertex);
        const bool ok = grant->epoch == epoch_ && lease != leases_.end() &&
                        lease->second.lender == from &&
                        lease->second.epoch == epoch_ &&
                        lease->second.version == entry.version;
        if (!ok) {
          valid = false;
          ++stale_vertices;
          stale[from].push_back(entry.vertex);
        }
      }
    }
  }

  if (!valid) {
    // Fall back to the retry path: drop the stale copies and revoke
    // upstream so each lender forgets this holder — the retried attempt is
    // then served fresh full grants and cannot loop on the same mismatch.
    for (auto& [lender, vertices] : stale) {
      for (VertexId v : vertices) {
        const auto lease = leases_.find(v);
        if (lease != leases_.end() && lease->second.lender == lender)
          leases_.erase(lease);
        if (trace_)
          trace_->record(TracePoint::kLeaseRevoke, env_.now(), v.value(),
                         ec.attempt, env_.self().value(), lender.value());
      }
      if (record_metrics_ && metrics_)
        metrics_->add_counter(metric::kServerLeaseRevokes,
                              static_cast<double>(vertices.size()));
      send_to_partition(lender, sim::make_message<LeaseRevoke>(
                                    partition_, std::move(vertices)));
    }
    lease_grants_.erase(key);
    resolved_[key];
    trace_cmd(TracePoint::kLeaseFallback, ec, stale_vertices);
    if (record_metrics_ && metrics_) {
      metrics_->add_counter(metric::kServerLeaseFallbacks);
      metrics_->series(metric::kServerRetries).add(env_.now(), 1.0);
    }
    send_reply(ec, ReplyStatus::kRetry, nullptr);
    return;
  }

  // Splice the leased copies in, execute, splice them out again. The app
  // only reads (lease_eligible requires the read-only classification), so
  // removing exactly the spliced ids restores the store bit-for-bit.
  std::vector<ObjectId> spliced;
  std::set<VertexId> done;
  for (std::size_t i = 0; i < ec.cmd->vertices.size(); ++i) {
    if (ec.owners[i] == partition_) continue;
    const VertexId v = ec.cmd->vertices[i];
    if (!done.insert(v).second) continue;
    const auto lease = leases_.find(v);
    if (lease == leases_.end()) continue;  // validated above; defensive
    for (const ObjectEnvelope& env : lease->second.objects) {
      if (!env.object) continue;
      store_.put(env.id, env.vertex, ObjectPtr(env.object->clone()));
      spliced.push_back(env.id);
    }
  }
  env_.consume_cpu(kPerObjectMoveCost * static_cast<SimTime>(spliced.size()));

  trace_cmd(TracePoint::kExecuteStart, ec, partition_.value());
  ExecResult result = app_->execute(*ec.cmd, store_);
  env_.consume_cpu(result.cpu_cost);
  sim::MessagePtr reply_payload = std::move(result.reply);
  remember_reply(ec, ReplyStatus::kOk, reply_payload);
  send_reply(ec, ReplyStatus::kOk, std::move(reply_payload));
  for (ObjectId id : spliced) store_.take(id);

  lease_grants_.erase(key);
  resolved_[key];  // late grants from a lender's other replica are dropped
  trace_cmd(TracePoint::kLeaseRead, ec, spliced.size());
  if (record_metrics_ && metrics_)
    metrics_->add_counter(metric::kServerLeaseReads);
  if (config_.mode == ExecutionMode::kDynaStar)
    record_hints(*ec.cmd, /*multi_partition=*/true);
  note_command_metrics(ec, /*multi=*/true);
}

void PartitionServerCore::note_vertex_mutation(VertexId vertex) {
  if (!config_.read_leases || !mode_supports_leases(config_.mode)) return;
  ++lease_versions_[vertex];
  auto holders = lease_holders_.find(vertex);
  if (holders == lease_holders_.end()) return;
  for (PartitionId holder : holders->second) {
    if (trace_)
      trace_->record(TracePoint::kLeaseRevoke, env_.now(), vertex.value(), 0,
                     env_.self().value(), holder.value());
    send_to_partition(holder, sim::make_message<LeaseRevoke>(
                                  partition_, std::vector<VertexId>{vertex}));
    if (record_metrics_ && metrics_)
      metrics_->add_counter(metric::kServerLeaseRevokes);
  }
  lease_holders_.erase(holders);
}

void PartitionServerCore::on_lease_grant(
    const sim::Ref<const LeaseGrant>& msg) {
  const CmdKey key{msg->cmd_id, msg->attempt};
  if (resolved_.contains(key)) return;  // late duplicate; already answered
  auto& grants = lease_grants_[key];
  if (!grants.emplace(msg->from, msg).second) return;  // other replica's copy
  // Install the winning grant's full entries. Recording and installing must
  // be one atomic step: after a partial-group recovery a lender's replicas
  // can disagree on holder records (one ships full data where the other
  // ships a data-less refresh), and validating one replica's recorded grant
  // against another replica's install could bounce the retry path forever.
  for (const LeaseEntry& entry : msg->entries) {
    if (entry.objects.empty()) continue;
    leases_[entry.vertex] =
        InstalledLease{msg->from, msg->epoch, entry.version, entry.objects};
  }
  if (blocked_) {
    blocked_ = false;
    pump();
  }
}

void PartitionServerCore::on_lease_revoke(const LeaseRevoke& msg) {
  for (VertexId v : msg.vertices) {
    // Reader role: drop our installed copy if it came from the sender.
    const auto lease = leases_.find(v);
    if (lease != leases_.end() && lease->second.lender == msg.from)
      leases_.erase(lease);
    // Lender role: the sender no longer holds a copy of our vertex, so the
    // next grant to it must ship full data.
    const auto holders = lease_holders_.find(v);
    if (holders != lease_holders_.end()) {
      holders->second.erase(msg.from);
      if (holders->second.empty()) lease_holders_.erase(holders);
    }
  }
}

void PartitionServerCore::execute_ssmr(const ExecCommand& ec) {
  const CmdKey key{ec.cmd->cmd_id, ec.attempt};
  const bool multi = ec.dests.size() > 1;
  if (multi) {
    auto tstate = transfers_.find(key);
    if (tstate != transfers_.end()) {
      for (const auto& [source, envelopes] : tstate->second.received)
        insert_envelopes(envelopes);
    }
  }

  trace_cmd(TracePoint::kExecuteStart, ec, partition_.value());
  ExecResult result = app_->execute(*ec.cmd, store_);
  env_.consume_cpu(result.cpu_cost);
  sim::MessagePtr reply_payload = std::move(result.reply);
  remember_reply(ec, ReplyStatus::kOk, reply_payload);
  send_reply(ec, ReplyStatus::kOk, std::move(reply_payload));

  if (multi) {
    // Drop the copies of remote vertices; keep only our own updated state.
    std::set<VertexId> done;
    for (std::size_t i = 0; i < ec.cmd->vertices.size(); ++i) {
      if (ec.owners[i] == partition_) continue;
      const VertexId v = ec.cmd->vertices[i];
      if (!done.insert(v).second) continue;
      for (ObjectId id : store_.objects_of_vertex(v)) store_.take(id);
    }
    transfers_.erase(key);
    ssmr_sent_.erase(key);
  }
  note_command_metrics(ec, multi);
}

// ---------------------------------------------------------------------------
// STAR asymmetric execution
// ---------------------------------------------------------------------------

void PartitionServerCore::arm_star_epoch_timer() {
  env_.start_timer(config_.star_epoch_interval, [this] {
    maybe_emit_star_marker();
    arm_star_epoch_timer();
  });
}

void PartitionServerCore::maybe_emit_star_marker() {
  // Re-drive marker multicasts a destination group never acked, then emit
  // the next epoch's marker if deferred work is waiting and the previous
  // marker already applied. Emission is replica-local (each master replica
  // runs its own timer); receivers dedupe by epoch, first delivered wins —
  // exactly the PlanMsg discipline.
  star_sender_.retransmit_unacked();
  if (star_deferred_.empty()) return;
  if (star_marker_inflight_ > star_epoch_) return;
  star_marker_inflight_ = star_epoch_ + 1;
  std::vector<GroupId> groups;
  groups.reserve(config_.num_partitions);
  for (std::uint32_t p = 0; p < config_.num_partitions; ++p)
    groups.push_back(group_of(PartitionId{p}));
  star_sender_.amcast(std::move(groups),
                      sim::make_message<StarEpochMsg>(star_epoch_ + 1));
}

void PartitionServerCore::execute_star_single(const ExecCommand& ec) {
  // Both the owner (the target) and the master deliver the command; each
  // executes on its own copy so the master's full replica stays fresh, but
  // only the owner replies and records metrics. Both cache the reply, so a
  // retransmission is answered from either side.
  trace_cmd(TracePoint::kExecuteStart, ec, partition_.value());
  ExecResult result = app_->execute(*ec.cmd, store_);
  env_.consume_cpu(result.cpu_cost);
  sim::MessagePtr reply_payload = std::move(result.reply);
  remember_reply(ec, ReplyStatus::kOk, reply_payload);
  if (ec.target == partition_) {
    send_reply(ec, ReplyStatus::kOk, std::move(reply_payload));
    note_command_metrics(ec, /*multi=*/false);
  }
}

void PartitionServerCore::star_execute_batch(Epoch epoch) {
  star_epoch_ = epoch;
  auto deferred = std::move(star_deferred_);
  star_deferred_.clear();
  // Vertices owned by other partitions that this batch read or wrote; their
  // post-batch state ships to the owners below.
  std::map<PartitionId, std::set<VertexId>> touched;
  std::uint64_t executed = 0;
  // Runnable commands accumulate into chunks the conflict-graph executor
  // runs as one batch (serial without exec_, preserving the original
  // behavior). A second command from the same client — a retransmitted
  // attempt — closes the chunk, so the duplicate check below always sees
  // the first attempt's cached reply.
  std::vector<ExecCommandPtr> chunk;
  std::unordered_set<std::uint64_t> chunk_clients;
  auto finish = [&](const ExecCommandPtr& ec, sim::MessagePtr reply_payload) {
    remember_reply(*ec, ReplyStatus::kOk, reply_payload);
    send_reply(*ec, ReplyStatus::kOk, std::move(reply_payload));
    for (std::size_t i = 0; i < ec->cmd->vertices.size(); ++i) {
      if (ec->owners[i] == partition_ || ec->owners[i] == kNoPartition)
        continue;
      touched[ec->owners[i]].insert(ec->cmd->vertices[i]);
    }
    note_command_metrics(*ec, /*multi=*/true);
    ++executed;
  };
  auto run_chunk = [&] {
    if (chunk.empty()) return;
    if (exec_ && chunk.size() > 1) {
      std::vector<ExecResult> results;
      run_exec_batch(chunk, results);
      for (std::size_t i = 0; i < chunk.size(); ++i)
        finish(chunk[i], std::move(results[i].reply));
    } else {
      for (const ExecCommandPtr& ec : chunk) {
        trace_cmd(TracePoint::kExecuteStart, *ec, partition_.value());
        ExecResult result = app_->execute(*ec->cmd, store_);
        env_.consume_cpu(result.cpu_cost);
        finish(ec, std::move(result.reply));
      }
    }
    chunk.clear();
    chunk_clients.clear();
  };
  for (const ExecCommandPtr& ec : deferred) {
    if (chunk_clients.contains(ec->cmd->client.value())) run_chunk();
    if (serve_cached_duplicate(*ec)) continue;
    // Re-validate the sender's ownership claims against the master's map at
    // the switch position — a vertex deleted (or re-homed by a create race)
    // since the addressing was computed makes the command stale. Execution
    // never touches map_, so verdicts are chunk-order independent.
    bool valid = true;
    for (std::size_t i = 0; i < ec->cmd->vertices.size(); ++i) {
      auto it = map_.find(ec->cmd->vertices[i]);
      const PartitionId actual = it == map_.end() ? kNoPartition : it->second;
      if (actual != ec->owners[i]) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      reject(*ec, /*notify_peers=*/false);
      continue;
    }
    chunk.push_back(ec);
    chunk_clients.insert(ec->cmd->client.value());
  }
  run_chunk();

  // Ship every non-master partition its touched vertices' post-batch state.
  // Empty updates are sent too: non-masters block at the marker until their
  // update arrives, whatever it contains.
  std::size_t shipped = 0;
  for (std::uint32_t p = 0; p < config_.num_partitions; ++p) {
    const PartitionId dest{p};
    if (dest == partition_) continue;
    std::vector<std::pair<VertexId, std::vector<ObjectEnvelope>>> vertices;
    if (auto it = touched.find(dest); it != touched.end()) {
      vertices.reserve(it->second.size());
      for (VertexId v : it->second) {
        std::vector<ObjectEnvelope> envs;
        for (ObjectId id : store_.objects_of_vertex(v)) {
          const PRObject* obj = store_.find(id);
          envs.push_back(ObjectEnvelope{
              id, v,
              obj ? std::shared_ptr<const PRObject>(obj->clone()) : nullptr});
        }
        shipped += envs.size();
        vertices.emplace_back(v, std::move(envs));
      }
    }
    send_to_partition(dest, sim::make_message<StarEpochUpdate>(
                                epoch, partition_, std::move(vertices)));
  }
  env_.consume_cpu(kPerObjectMoveCost * static_cast<SimTime>(shipped + 1));
  if (record_metrics_ && metrics_) {
    note_objects_exchanged(static_cast<double>(shipped));
    metrics_->add_counter(metric::kStarEpochs);
    metrics_->add_counter(metric::kStarDeferred,
                          static_cast<double>(executed));
  }
  if (trace_)
    trace_->record(TracePoint::kStarEpoch, env_.now(), epoch, 0,
                   env_.self().value(), deferred.size());
}

void PartitionServerCore::apply_star_update(const StarEpochUpdate& update) {
  std::size_t received = 0;
  for (const auto& [vertex, envelopes] : update.vertices) {
    // Replace the vertex's whole state with the master's post-batch state —
    // objects the batch deleted must disappear here too.
    for (ObjectId id : store_.objects_of_vertex(vertex)) store_.take(id);
    insert_envelopes(envelopes);
    received += envelopes.size();
  }
  env_.consume_cpu(kPerObjectMoveCost * static_cast<SimTime>(received));
  if (trace_)
    trace_->record(TracePoint::kStarEpoch, env_.now(), update.epoch, 0,
                   env_.self().value(), update.vertices.size());
}

void PartitionServerCore::on_star_update(
    const sim::Ref<const StarEpochUpdate>& msg) {
  if (msg->epoch <= star_epoch_) return;  // duplicate of an applied epoch
  star_updates_.emplace(msg->epoch, msg);  // first sender replica wins
  if (blocked_) {
    blocked_ = false;
    pump();
  }
}

void PartitionServerCore::reject(const ExecCommand& ec, bool notify_peers) {
  if (ec.target == partition_ && config_.mode != ExecutionMode::kStar) {
    auto& sources = resolved_[CmdKey{ec.cmd->cmd_id, ec.attempt}];
    auto tstate = transfers_.find(CmdKey{ec.cmd->cmd_id, ec.attempt});
    if (tstate != transfers_.end())
      for (const auto& [source, envelopes] : tstate->second.received)
        sources.insert(source);
  }
  send_reply(ec, ReplyStatus::kRetry, nullptr);
  if (record_metrics_ && metrics_)
    metrics_->series(metric::kServerRetries).add(env_.now(), 1.0);
  const CmdKey key{ec.cmd->cmd_id, ec.attempt};
  lease_grants_.erase(key);
  if (notify_peers) {
    auto notice =
        sim::make_message<AbortNotice>(ec.cmd->cmd_id, ec.attempt, partition_);
    for (PartitionId dest : ec.dests) {
      if (dest != partition_) send_to_partition(dest, notice);
    }
  }
  // Return anything that already arrived for this command.
  auto tstate = transfers_.find(key);
  if (tstate != transfers_.end()) {
    for (auto& [source, envelopes] : tstate->second.received) {
      trace_cmd(TracePoint::kReturnSent, ec, source.value());
      send_to_partition(source,
                        sim::make_message<VarReturn>(ec.cmd->cmd_id, ec.attempt,
                                                     partition_, envelopes));
    }
    transfers_.erase(tstate);
  }
}

// ---------------------------------------------------------------------------
// Plan application (repartitioning)
// ---------------------------------------------------------------------------

void PartitionServerCore::apply_plan(const PlanMsg& plan) {
  if (plan.epoch <= epoch_) return;  // duplicate from the other oracle replica

  std::size_t moved_out = 0, moved_in = 0;
  for (const VertexMove& move : *plan.moves) {
    if (move.from == move.to) continue;
    if (move.from == partition_) {
      obligations_[move.vertex] = move.to;
      ++moved_out;
    } else if (move.to == partition_) {
      awaited_[move.vertex] = move.from;
      ++moved_in;
    }
  }
  // Switch the map and epoch before sending handoffs so forwarded vertices
  // carry the new view.
  for (const auto& [vertex, new_owner] : *plan.assignment)
    map_[vertex] = new_owner;
  epoch_ = plan.epoch;
  fetch_requested_.clear();
  // A plan epoch invalidates every lease wholesale: readers' installed
  // copies carry the old epoch (validation would reject them anyway), our
  // holder records are dropped so post-plan grants ship full data, and the
  // per-vertex versions may reset — validation is epoch AND version, and
  // the epoch just changed.
  leases_.clear();
  lease_versions_.clear();
  lease_holders_.clear();

  if (config_.eager_plan_transfer) {
    // Algorithm 3 Task 3: ship everything now (deferred when lent out).
    std::vector<VertexId> to_send;
    to_send.reserve(obligations_.size());
    for (const auto& [vertex, owner] : obligations_) to_send.push_back(vertex);
    for (VertexId v : to_send) send_handoff_if_possible(v);
  }

  if (trace_)
    trace_->record(TracePoint::kPlanApplied, env_.now(), plan.epoch, 0,
                   env_.self().value(), partition_.value());
  if (record_metrics_ && metrics_) {
    metrics_->series(metric::kPlanApplied).add(env_.now(), 1.0);
    metrics_->add_counter(metric::kVerticesMovedOut,
                          static_cast<double>(moved_out));
    metrics_->add_counter(metric::kVerticesMovedIn,
                          static_cast<double>(moved_in));
  }

  // Process handoffs that raced ahead of the plan.
  auto buffered = std::move(handoff_buffer_);
  handoff_buffer_.clear();
  for (const auto& msg : buffered) on_handoff(*msg);

  // Re-enqueue the commands that were waiting for this epoch, ahead of
  // everything delivered after the plan.
  for (auto it = future_.rbegin(); it != future_.rend(); ++it)
    queue_.push_front(QueueItem{*it, nullptr, nullptr});
  future_.clear();
}

void PartitionServerCore::send_handoff_if_possible(VertexId vertex) {
  auto it = obligations_.find(vertex);
  if (it == obligations_.end()) return;
  auto lent = lent_vertex_count_.find(vertex);
  if (lent != lent_vertex_count_.end() && lent->second > 0) {
    fetch_wanted_.insert(vertex);  // send as soon as the lend returns
    return;
  }
  if (!config_.eager_plan_transfer && !fetch_wanted_.contains(vertex)) {
    // On-demand mode: only ship once the new owner asked.
    return;
  }
  note_vertex_mutation(vertex);  // the vertex is leaving this partition
  auto envelopes = extract_vertex(vertex);
  env_.consume_cpu(kPerObjectMoveCost *
                   static_cast<SimTime>(envelopes.size() + 1));
  if (record_metrics_ && metrics_) {
    note_objects_exchanged(static_cast<double>(envelopes.size()));
    metrics_->series(metric::kPlanHandoffs)
        .add(env_.now(), static_cast<double>(envelopes.size()));
  }
  send_handoff(it->second,
               sim::make_message<ObjectHandoff>(epoch_, partition_, vertex,
                                                std::move(envelopes)));
  fetch_wanted_.erase(vertex);
  obligations_.erase(it);
}

void PartitionServerCore::send_handoff(PartitionId to,
                                       sim::Ref<const ObjectHandoff> handoff) {
  const std::size_t chunk = config_.paxos.transfer_chunk_bytes;
  const std::size_t total_bytes = handoff->size_bytes();
  if (chunk == 0 || total_bytes <= chunk) {
    send_to_partition(to, handoff);
    return;
  }
  const auto total_chunks =
      static_cast<std::uint32_t>((total_bytes + chunk - 1) / chunk);
  for (std::uint32_t i = 0; i < total_chunks; ++i) {
    const auto payload = static_cast<std::uint32_t>(
        std::min(chunk, total_bytes - static_cast<std::size_t>(i) * chunk));
    send_to_partition(to, sim::make_message<HandoffChunk>(
                              handoff->epoch, handoff->from, handoff->vertex,
                              i, total_chunks, payload, handoff));
    if (metrics_) metrics_->add_counter(metric::kTransferChunksSent);
  }
}

void PartitionServerCore::on_handoff_chunk(
    const sim::Ref<const HandoffChunk>& msg) {
  // Chunks of an already-spliced (or already-superseded) handoff: the
  // dedup set on the full-handoff path covers completed assemblies too,
  // since completion inserts into it via on_handoff.
  if (handoffs_seen_.contains({msg->epoch, msg->vertex.value()})) return;
  auto& asmbl = handoff_assembly_[{msg->epoch, msg->vertex.value()}];
  asmbl.total_chunks = msg->total_chunks;
  if (!asmbl.handoff) asmbl.handoff = msg->handoff;
  if (!asmbl.have.insert(msg->index).second) return;  // duplicate frame
  if (asmbl.have.size() < asmbl.total_chunks) return;
  sim::MessagePtr full = std::move(asmbl.handoff);
  handoff_assembly_.erase({msg->epoch, msg->vertex.value()});
  if (auto* h = dynamic_cast<const ObjectHandoff*>(full.get())) on_handoff(*h);
}

void PartitionServerCore::on_handoff(const ObjectHandoff& msg) {
  if (msg.epoch > epoch_) {
    handoff_buffer_.push_back(sim::make_message<ObjectHandoff>(msg));
    return;
  }
  if (!handoffs_seen_.insert({msg.epoch, msg.vertex.value()}).second) return;
  insert_envelopes(msg.objects);
  awaited_.erase(msg.vertex);
  fetch_requested_.erase(msg.vertex);
  // The vertex may already be obliged onward (it moved again while in
  // flight); forward immediately.
  if (obligations_.contains(msg.vertex)) {
    if (!config_.eager_plan_transfer) fetch_wanted_.insert(msg.vertex);
    send_handoff_if_possible(msg.vertex);
  }
  if (!blocked_) return;
  blocked_ = false;
  pump();
}

void PartitionServerCore::on_fetch(const FetchVertex& msg) {
  if (!obligations_.contains(msg.vertex)) return;  // already shipped
  fetch_wanted_.insert(msg.vertex);
  send_handoff_if_possible(msg.vertex);
}

// ---------------------------------------------------------------------------
// Direct message handlers
// ---------------------------------------------------------------------------

void PartitionServerCore::on_var_transfer(const VarTransfer& msg) {
  const CmdKey key{msg.cmd_id, msg.attempt};
  // A transfer can arrive after this target already resolved the command
  // (a peer's abort raced ahead of the source's objects). Bounce it home
  // immediately or the source would wait (or lose its objects) forever.
  // Duplicates from sources whose transfer was already consumed are
  // dropped instead.
  if (auto res = resolved_.find(key); res != resolved_.end()) {
    if (res->second.insert(msg.from).second) {
      if (trace_)
        trace_->record(TracePoint::kReturnSent, env_.now(), msg.cmd_id,
                       msg.attempt, env_.self().value(), msg.from.value());
      send_to_partition(msg.from, sim::make_message<VarReturn>(
                                      msg.cmd_id, msg.attempt, partition_,
                                      msg.objects));
    }
    return;
  }
  auto& state = transfers_[key];
  auto [it, inserted] = state.received.emplace(msg.from, msg.objects);
  (void)it;
  if (!inserted) return;  // duplicate from the source's other replica
  if (trace_)
    trace_->record(TracePoint::kTransferReceived, env_.now(), msg.cmd_id,
                   msg.attempt, env_.self().value(), msg.from.value());
  if (blocked_) {
    blocked_ = false;
    pump();
  }
}

void PartitionServerCore::on_var_return(
    const sim::Ref<const VarReturn>& msg_ptr) {
  const VarReturn& msg = *msg_ptr;
  const CmdKey key{msg.cmd_id, msg.attempt};
  if (returns_seen_.contains(key)) return;  // other replica's copy

  if (config_.mode == ExecutionMode::kDSSMR) {
    // A return only happens when the move aborted: restore objects and map.
    auto move = dssmr_moves_.find(key);
    if (move == dssmr_moves_.end()) {
      early_returns_[key] = msg_ptr;  // outran our own lend; hold it
      return;
    }
    returns_seen_.insert(key);
    early_returns_.erase(key);
    if (trace_)
      trace_->record(TracePoint::kReturnReceived, env_.now(), msg.cmd_id,
                     msg.attempt, env_.self().value(), msg.from.value());
    insert_envelopes(msg.objects);
    for (const auto& [vertex, previous] : move->second.previous_owner) {
      note_vertex_mutation(vertex);  // rolled back: contents changed hands
      if (previous == kNoPartition)
        map_.erase(vertex);
      else
        map_[vertex] = previous;
    }
    dssmr_moves_.erase(move);
    if (blocked_) {
      blocked_ = false;
      pump();
    }
    return;
  }

  auto it = lends_.find(key);
  if (it == lends_.end()) {
    early_returns_[key] = msg_ptr;  // outran our own lend; hold it
    return;
  }
  returns_seen_.insert(key);
  early_returns_.erase(key);
  if (trace_)
    trace_->record(TracePoint::kReturnReceived, env_.now(), msg.cmd_id,
                   msg.attempt, env_.self().value(), msg.from.value());
  insert_envelopes(msg.objects);
  for (VertexId v : it->second.vertices) {
    auto cnt = lent_vertex_count_.find(v);
    if (cnt != lent_vertex_count_.end() && --cnt->second == 0)
      lent_vertex_count_.erase(cnt);
  }
  // Objects are home again.
  for (const auto& env : msg.objects) lent_objects_.erase(env.id);
  // Any ids lent but not present in the return (deleted by the execution)
  // must still be released.
  std::vector<VertexId> vertices = it->second.vertices;
  lends_.erase(it);
  for (VertexId v : vertices) {
    if (obligations_.contains(v)) send_handoff_if_possible(v);
  }
  if (blocked_) {
    blocked_ = false;
    pump();
  }
}

void PartitionServerCore::on_abort(const AbortNotice& msg) {
  auto& state = transfers_[CmdKey{msg.cmd_id, msg.attempt}];
  if (!state.aborted.insert(msg.from).second) return;
  if (blocked_) {
    blocked_ = false;
    pump();
  }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void PartitionServerCore::insert_envelopes(
    const std::vector<ObjectEnvelope>& envelopes) {
  for (const auto& env : envelopes) {
    if (!env.object) continue;  // the object did not exist at the source
    store_.put(env.id, env.vertex, ObjectPtr(env.object->clone()));
  }
}

std::vector<ObjectEnvelope> PartitionServerCore::extract_vertex(
    VertexId vertex) {
  std::vector<ObjectEnvelope> envelopes;
  for (ObjectId id : store_.objects_of_vertex(vertex)) {
    ObjectPtr obj = store_.take(id);
    envelopes.push_back(ObjectEnvelope{
        id, vertex, std::shared_ptr<const PRObject>(std::move(obj))});
  }
  return envelopes;
}

void PartitionServerCore::record_hints(const Command& cmd,
                                       bool /*multi_partition*/) {
  // Vertex weights ~ access counts; edges between co-accessed vertices.
  // Large omegas (a celebrity post) contribute a star around the first
  // vertex instead of a full clique to keep hint volume linear.
  std::vector<std::uint64_t> unique;
  for (VertexId v : cmd.vertices) unique.push_back(v.value());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  for (std::uint64_t v : unique) hint_vertices_[v] += 1;
  if (unique.size() <= 8) {
    for (std::size_t i = 0; i < unique.size(); ++i)
      for (std::size_t j = i + 1; j < unique.size(); ++j)
        hint_edges_[{unique[i], unique[j]}] += 1;
  } else {
    const std::uint64_t hub = cmd.vertices.front().value();
    for (std::uint64_t v : unique) {
      if (v == hub) continue;
      auto key = std::minmax(hub, v);
      hint_edges_[{key.first, key.second}] += 1;
    }
  }
  if (++commands_since_hint_ >= config_.hint_batch_commands) maybe_emit_hints();
}

void PartitionServerCore::maybe_emit_hints() {
  commands_since_hint_ = 0;
  if (hint_vertices_.empty()) return;
  std::vector<std::pair<std::uint64_t, std::int64_t>> vs(
      hint_vertices_.begin(), hint_vertices_.end());
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::int64_t>> es;
  es.reserve(hint_edges_.size());
  for (const auto& [edge, w] : hint_edges_)
    es.emplace_back(edge.first, edge.second, w);
  hint_vertices_.clear();
  hint_edges_.clear();
  member_.amcast_as_group(
      group_uid(group_of(partition_), /*purpose=*/1, ++hint_emissions_),
      {kOracleGroup},
      sim::make_message<HintReport>(partition_, std::move(vs), std::move(es)));
}

void PartitionServerCore::note_objects_exchanged(double count) {
  if (!record_metrics_ || metrics_ == nullptr || count <= 0) return;
  const SimTime now = env_.now();
  metrics_->series(metric::kObjectsExchanged).add(now, count);
  metrics_
      ->series(metric::kServerObjectsExchanged,
               {{"partition", partition_label_}, {"replica", replica_label_}})
      .add(now, count);
}

void PartitionServerCore::note_command_metrics(
    [[maybe_unused]] const ExecCommand& ec, bool multi) {
  if (!record_metrics_ || !metrics_) return;
  const SimTime now = env_.now();
  metrics_->series(metric::kExecuted).add(now, 1.0);
  metrics_
      ->series(metric::kServerExecuted,
               {{"partition", partition_label_}, {"replica", replica_label_}})
      .add(now, 1.0);
  if (multi) {
    metrics_->series(metric::kMultiPartition).add(now, 1.0);
    metrics_
        ->series(metric::kServerMultiPartition,
                 {{"partition", partition_label_}, {"replica", replica_label_}})
        .add(now, 1.0);
  }
}

}  // namespace dynastar::core
