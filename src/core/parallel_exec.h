// Deterministic intra-partition parallel command execution (P-SMR style).
//
// Commands already declare their full vertex sets for the borrow protocol,
// which is exactly the dependency information Rethinking State-Machine
// Replication for Parallelism uses to execute non-conflicting commands
// concurrently: two commands conflict iff their vertex sets intersect and
// they are not both read-only. Per batch of decided commands we build that
// conflict graph and derive a wave schedule from slot order + conflict edges
// alone (never wall clock):
//
//   wave(i) = 0 if i has no conflicting predecessor in slot order,
//             1 + max(wave(j)) over conflicting predecessors j < i otherwise
//
// and round-robin the commands of each wave across N lanes in slot order.
// Every replica computes the same schedule from the same decided prefix, so
// the schedule itself is replicated state — no coordination needed.
//
// Two backends share the scheduler:
//  - simulated lanes (default): commands run in slot order on the sim
//    thread (trivially serial-equivalent), and the batch charges the
//    *schedule makespan* to the sim CPU instead of the serial sum. Runs
//    stay bit-deterministic and replayable.
//  - a real std::thread lane pool (`exec_real_threads`): waves execute with
//    a barrier between them; within a wave commands are pairwise
//    non-conflicting, so the result is equivalent to slot order. Used for
//    wall-clock bench numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "core/types.h"

namespace dynastar::core {

/// Sorted, deduplicated read/write vertex sets of one command.
struct ExecIntent {
  std::vector<VertexId> reads;
  std::vector<VertexId> writes;
};

/// Derives the intent from a command's declared vertex set: read-only
/// commands read every vertex they name, everything else writes them.
[[nodiscard]] ExecIntent intent_for(const Command& cmd);

/// Conflict graph over one batch, edges restricted to slot-order
/// predecessors (i conflicts with some j < i).
struct ConflictGraph {
  std::size_t commands = 0;
  std::size_t edges = 0;
  /// preds[i] = conflicting j < i, ascending.
  std::vector<std::vector<std::uint32_t>> preds;
};

[[nodiscard]] ConflictGraph build_conflict_graph(
    const std::vector<ExecIntent>& intents);

/// Deterministic wave/lane assignment for a conflict graph.
struct LaneSchedule {
  std::uint32_t lanes = 1;
  std::uint32_t waves = 0;
  std::vector<std::uint32_t> wave_of;
  std::vector<std::uint32_t> lane_of;
};

[[nodiscard]] LaneSchedule build_schedule(const ConflictGraph& graph,
                                          std::uint32_t lanes);

/// Accounting for one executed batch.
struct BatchStats {
  std::size_t commands = 0;
  std::size_t conflict_edges = 0;
  std::uint32_t waves = 0;
  /// Sum of per-command CPU costs (what serial execution would charge).
  SimTime serial_cost = 0;
  /// Schedule cost: sum over waves of the busiest lane in that wave.
  SimTime makespan = 0;
  /// serial_cost / (lanes * makespan) — 1.0 means perfectly packed lanes.
  double lane_occupancy = 1.0;
};

/// Batch executor: owns the lane count, the backend choice, and (lazily)
/// the real-thread pool. `run` executes every item exactly once and returns
/// the deterministic schedule accounting.
class ParallelExecutor {
 public:
  ParallelExecutor(std::uint32_t lanes, bool real_threads);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  [[nodiscard]] std::uint32_t lanes() const { return lanes_; }
  [[nodiscard]] bool real_threads() const { return real_threads_; }

  /// Executes one batch. `execute_item(i)` must run item i and return its
  /// CPU cost; with the thread backend it may be called from worker threads
  /// (concurrently only for items with no conflict edge between them).
  BatchStats run(const std::vector<ExecIntent>& intents,
                 const std::function<SimTime(std::size_t)>& execute_item);

 private:
  class LanePool;

  std::uint32_t lanes_;
  bool real_threads_;
  std::unique_ptr<LanePool> pool_;  // lazily created, thread backend only
};

}  // namespace dynastar::core
