// PRObject and ObjectStore: the replicated data items a partition holds.
//
// PRObject is the paper's common interface for replicated data items
// (§5.2). Objects move between partitions as immutable-in-flight clones;
// the store indexes them by id and by home vertex so partitioning plans can
// relocate a whole vertex at once.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "core/types.h"

namespace dynastar::core {

/// Base class for replicated application data items.
class PRObject {
 public:
  virtual ~PRObject() = default;

  /// Deep copy; used when objects are shipped between partitions (S-SMR
  /// sends copies, DynaStar moves the original and keeps none).
  [[nodiscard]] virtual std::unique_ptr<PRObject> clone() const = 0;

  /// Approximate serialized size, for network cost accounting.
  [[nodiscard]] virtual std::size_t size_bytes() const { return 64; }
};

using ObjectPtr = std::shared_ptr<PRObject>;

/// A partition replica's local object storage with a vertex index.
class ObjectStore {
 public:
  /// Inserts or replaces an object. The vertex is the object's home vertex.
  void put(ObjectId id, VertexId vertex, ObjectPtr object) {
    auto it = objects_.find(id);
    if (it != objects_.end()) {
      if (it->second.vertex != vertex) {
        by_vertex_[it->second.vertex].erase(id);
        by_vertex_[vertex].insert(id);
        it->second.vertex = vertex;
      }
      it->second.object = std::move(object);
      return;
    }
    objects_.emplace(id, Entry{vertex, std::move(object)});
    by_vertex_[vertex].insert(id);
  }

  [[nodiscard]] bool contains(ObjectId id) const {
    return objects_.contains(id);
  }

  /// Mutable access for command execution; nullptr when absent.
  [[nodiscard]] PRObject* find(ObjectId id) {
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.object.get();
  }

  [[nodiscard]] const PRObject* find(ObjectId id) const {
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.object.get();
  }

  [[nodiscard]] VertexId vertex_of(ObjectId id) const {
    auto it = objects_.find(id);
    return it == objects_.end() ? VertexId{UINT64_MAX} : it->second.vertex;
  }

  /// Removes and returns the object (nullptr if absent).
  ObjectPtr take(ObjectId id) {
    auto it = objects_.find(id);
    if (it == objects_.end()) return nullptr;
    ObjectPtr obj = std::move(it->second.object);
    by_vertex_[it->second.vertex].erase(id);
    objects_.erase(it);
    return obj;
  }

  /// All object ids homed at `vertex` (copy: callers mutate the store).
  [[nodiscard]] std::vector<ObjectId> objects_of_vertex(VertexId vertex) const {
    auto it = by_vertex_.find(vertex);
    if (it == by_vertex_.end()) return {};
    return {it->second.begin(), it->second.end()};
  }

  [[nodiscard]] std::size_t size() const { return objects_.size(); }

  /// Clone of the whole store with every object deep-copied — checkpoint
  /// capture/restore must not alias live mutable objects.
  [[nodiscard]] ObjectStore deep_copy() const {
    ObjectStore copy;
    for (const auto& [id, entry] : objects_) {
      copy.put(id, entry.vertex,
               entry.object ? ObjectPtr(entry.object->clone()) : nullptr);
    }
    return copy;
  }

  /// Approximate serialized size of the whole store, for snapshot-transfer
  /// network cost accounting.
  [[nodiscard]] std::size_t total_bytes() const {
    std::size_t total = 0;
    for (const auto& [id, entry] : objects_)
      total += 16 + (entry.object ? entry.object->size_bytes() : 0);
    return total;
  }

 private:
  struct Entry {
    VertexId vertex;
    ObjectPtr object;
  };
  std::unordered_map<ObjectId, Entry> objects_;
  std::unordered_map<VertexId, std::unordered_set<ObjectId>> by_vertex_;
};

}  // namespace dynastar::core
