// PRObject and ObjectStore: the replicated data items a partition holds.
//
// PRObject is the paper's common interface for replicated data items
// (§5.2). Objects move between partitions as immutable-in-flight clones;
// the store indexes them by id and by home vertex so partitioning plans can
// relocate a whole vertex at once.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "core/types.h"

namespace dynastar::core {

/// Base class for replicated application data items.
class PRObject {
 public:
  virtual ~PRObject() = default;

  /// Deep copy; used when objects are shipped between partitions (S-SMR
  /// sends copies, DynaStar moves the original and keeps none).
  [[nodiscard]] virtual std::unique_ptr<PRObject> clone() const = 0;

  /// Approximate serialized size, for network cost accounting.
  [[nodiscard]] virtual std::size_t size_bytes() const { return 64; }

  /// Content hash over every semantic field; two objects with equal state
  /// must digest equally, and any mutation must change the digest. Used by
  /// the workload write-set audit (a declared read-only command must leave
  /// every digest unchanged). 0 = not implemented — audits self-validate by
  /// also requiring that writes DO move the digest, so an unimplemented
  /// digest fails loudly rather than vacuously passing.
  [[nodiscard]] virtual std::uint64_t digest() const { return 0; }
};

/// FNV-1a fold helper for digest() implementations.
inline std::uint64_t digest_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

using ObjectPtr = std::shared_ptr<PRObject>;

/// A partition replica's local object storage with a vertex index.
///
/// Single-threaded by default. The parallel executor's real-thread backend
/// installs a concurrency guard for the duration of a batch
/// (set_concurrency_guard): index lookups take it shared, structural
/// mutations (put/take) take it exclusive. Objects returned by find() are
/// only written by one lane at a time — the conflict graph guarantees no
/// two in-flight commands share a vertex unless both are read-only.
class ObjectStore {
 public:
  /// Inserts or replaces an object. The vertex is the object's home vertex.
  void put(ObjectId id, VertexId vertex, ObjectPtr object) {
    if (guard_ != nullptr) {
      std::unique_lock<std::shared_mutex> lock(*guard_);
      put_unlocked(id, vertex, std::move(object));
      return;
    }
    put_unlocked(id, vertex, std::move(object));
  }

  [[nodiscard]] bool contains(ObjectId id) const {
    if (guard_ != nullptr) {
      std::shared_lock<std::shared_mutex> lock(*guard_);
      return objects_.contains(id);
    }
    return objects_.contains(id);
  }

  /// Mutable access for command execution; nullptr when absent.
  [[nodiscard]] PRObject* find(ObjectId id) {
    if (guard_ != nullptr) {
      std::shared_lock<std::shared_mutex> lock(*guard_);
      return find_unlocked(id);
    }
    return find_unlocked(id);
  }

  [[nodiscard]] const PRObject* find(ObjectId id) const {
    if (guard_ != nullptr) {
      std::shared_lock<std::shared_mutex> lock(*guard_);
      return find_unlocked(id);
    }
    return find_unlocked(id);
  }

  [[nodiscard]] VertexId vertex_of(ObjectId id) const {
    if (guard_ != nullptr) {
      std::shared_lock<std::shared_mutex> lock(*guard_);
      return vertex_of_unlocked(id);
    }
    return vertex_of_unlocked(id);
  }

  /// Removes and returns the object (nullptr if absent).
  ObjectPtr take(ObjectId id) {
    if (guard_ != nullptr) {
      std::unique_lock<std::shared_mutex> lock(*guard_);
      return take_unlocked(id);
    }
    return take_unlocked(id);
  }

  /// All object ids homed at `vertex` (copy: callers mutate the store).
  [[nodiscard]] std::vector<ObjectId> objects_of_vertex(VertexId vertex) const {
    if (guard_ != nullptr) {
      std::shared_lock<std::shared_mutex> lock(*guard_);
      return objects_of_vertex_unlocked(vertex);
    }
    return objects_of_vertex_unlocked(vertex);
  }

  [[nodiscard]] std::size_t size() const { return objects_.size(); }

  /// Installs (or with nullptr removes) the reader/writer lock used while a
  /// real-thread batch is in flight. The store does not own the mutex; the
  /// guard is transient and never survives checkpoint capture or restore.
  void set_concurrency_guard(std::shared_mutex* guard) { guard_ = guard; }

  /// Clone of the whole store with every object deep-copied — checkpoint
  /// capture/restore must not alias live mutable objects.
  [[nodiscard]] ObjectStore deep_copy() const {
    ObjectStore copy;
    for (const auto& [id, entry] : objects_) {
      copy.put(id, entry.vertex,
               entry.object ? ObjectPtr(entry.object->clone()) : nullptr);
    }
    return copy;
  }

  /// Approximate serialized size of the whole store, for snapshot-transfer
  /// network cost accounting.
  [[nodiscard]] std::size_t total_bytes() const {
    std::size_t total = 0;
    for (const auto& [id, entry] : objects_)
      total += 16 + (entry.object ? entry.object->size_bytes() : 0);
    return total;
  }

 private:
  void put_unlocked(ObjectId id, VertexId vertex, ObjectPtr object) {
    auto it = objects_.find(id);
    if (it != objects_.end()) {
      if (it->second.vertex != vertex) {
        by_vertex_[it->second.vertex].erase(id);
        by_vertex_[vertex].insert(id);
        it->second.vertex = vertex;
      }
      it->second.object = std::move(object);
      return;
    }
    objects_.emplace(id, Entry{vertex, std::move(object)});
    by_vertex_[vertex].insert(id);
  }

  [[nodiscard]] PRObject* find_unlocked(ObjectId id) {
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.object.get();
  }

  [[nodiscard]] const PRObject* find_unlocked(ObjectId id) const {
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.object.get();
  }

  [[nodiscard]] VertexId vertex_of_unlocked(ObjectId id) const {
    auto it = objects_.find(id);
    return it == objects_.end() ? VertexId{UINT64_MAX} : it->second.vertex;
  }

  ObjectPtr take_unlocked(ObjectId id) {
    auto it = objects_.find(id);
    if (it == objects_.end()) return nullptr;
    ObjectPtr obj = std::move(it->second.object);
    by_vertex_[it->second.vertex].erase(id);
    objects_.erase(it);
    return obj;
  }

  [[nodiscard]] std::vector<ObjectId> objects_of_vertex_unlocked(
      VertexId vertex) const {
    auto it = by_vertex_.find(vertex);
    if (it == by_vertex_.end()) return {};
    return {it->second.begin(), it->second.end()};
  }

  struct Entry {
    VertexId vertex;
    ObjectPtr object;
  };
  std::unordered_map<ObjectId, Entry> objects_;
  std::unordered_map<VertexId, std::unordered_set<ObjectId>> by_vertex_;
  std::shared_mutex* guard_ = nullptr;  // non-owning, transient (see above)
};

}  // namespace dynastar::core
