// OracleCore: one replica of DynaStar's location oracle (Algorithm 2).
//
// The oracle is itself a replicated partition ordered by the same atomic
// multicast stack. It keeps (i) the vertex -> partition location map and
// (ii) the workload graph, answers client prophecies, relays commands to
// the involved partitions, and periodically recomputes an optimized
// partitioning with the METIS-like partitioner.
//
// Determinism: every decision that feeds replicated state (placement of
// creates, repartition triggers, plan content) is a pure function of the
// oracle group's delivery order. Only the *timing* of plan completion is
// replica-local; plans are deduplicated by epoch at the receivers, so the
// first replica to finish defines the plan order (paper §5.2).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/flat_map.h"
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/config.h"
#include "core/protocol.h"
#include "core/server.h"
#include "core/types.h"
#include "multicast/client.h"
#include "multicast/member.h"
#include "partitioning/graph.h"
#include "paxos/topology.h"
#include "sim/env.h"

namespace dynastar::core {

class OracleCore {
 public:
  /// A full copy of an oracle replica's volatile state at a slot boundary:
  /// multicast + Paxos position, the plan sender's outbox, the location map,
  /// the workload graph, and the relay (at-most-once) cache.
  struct Snapshot;
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  OracleCore(sim::Env& env, const paxos::Topology& topology,
             const SystemConfig& config, MetricsRegistry* metrics,
             bool record_metrics, TraceCollector* trace = nullptr);

  void start();

  /// Receives the snapshot captured at each checkpoint boundary; the owning
  /// node stores it as the replica's durable checkpoint.
  void set_checkpoint_sink(std::function<void(SnapshotPtr)> sink) {
    checkpoint_sink_ = std::move(sink);
  }

  /// Captures the complete volatile state.
  [[nodiscard]] SnapshotPtr capture_snapshot() const;

  /// Replaces all volatile state with a snapshot's contents.
  void restore_snapshot(const Snapshot& snapshot);

  /// Rejoins the group after restore_snapshot() on a fresh incarnation:
  /// re-arms timers and proactively pulls the missing log suffix. Plan
  /// computations in flight at the crash are abandoned (the latch is reset);
  /// a surviving replica's plan or a later hint delivery re-triggers one.
  void start_recovered();

  bool handle(ProcessId from, const sim::MessagePtr& msg);

  // --- pre-run state loading ---
  void preload_assignment(AssignmentPtr assignment, Epoch epoch);
  /// Seeds the workload graph (so the first plan covers preloaded vertices).
  void preload_vertex(VertexId v, std::int64_t weight = 1);

  [[nodiscard]] Epoch epoch() const { return epoch_; }
  [[nodiscard]] const partitioning::WorkloadGraph& graph() const {
    return graph_;
  }
  [[nodiscard]] const Assignment& location_map() const { return map_; }
  multicast::MemberCore& member() { return member_; }

  /// Load signal driving the oracle's admission gate: messages waiting in
  /// the node's CPU queue, relays not yet acked by their destination groups
  /// (genuine backpressure from saturated partitions), and creates whose
  /// Task-2 delivery is still in flight.
  [[nodiscard]] std::size_t queue_depth() const {
    return env_.inbox_depth() + member_.outbox_depth() +
           pending_creates_.size();
  }

  /// Forces a repartition on the next hint delivery (used by benches that
  /// reproduce a specific repartition time).
  void request_repartition() { repartition_requested_ = true; }

 private:
  void on_checkpoint_boundary();
  void on_adeliver(const multicast::McastData& data);
  void on_shed_deliver(const multicast::McastData& data);
  void on_request(const OracleRequest& request);
  void on_create_apply(const ExecCommand& exec);
  void on_hint(const HintReport& hint);
  void on_location_update(const LocationUpdate& update);
  void on_plan(const PlanMsg& plan);
  void maybe_trigger_repartition();
  void arm_plan_repair_timer();
  void finish_repartition(Epoch candidate,
                          std::shared_ptr<partitioning::WorkloadGraph::Compact>
                              snapshot);
  void send_prophecy(const OracleRequest& request, ReplyStatus status,
                     PartitionId target,
                     std::vector<std::pair<VertexId, PartitionId>> locations,
                     SimTime retry_after = 0);
  [[nodiscard]] PartitionId lookup(VertexId v) const;

  sim::Env& env_;
  const paxos::Topology& topology_;
  const SystemConfig& config_;
  MetricsRegistry* metrics_;
  bool record_metrics_;
  TraceCollector* trace_;
  std::function<void(SnapshotPtr)> checkpoint_sink_;
  /// Snapshot captured at the last checkpoint boundary; serves chunked
  /// state transfers (see PartitionServerCore::stable_snapshot_).
  SnapshotPtr stable_snapshot_;
  /// Label identifying this replica in per-node metrics.
  std::string replica_label_;

  multicast::MemberCore member_;
  multicast::McastClient plan_sender_;  // per-replica sender for PlanMsg

  Assignment map_;
  Epoch epoch_ = 0;
  partitioning::WorkloadGraph graph_;

  /// Creates relayed but whose Task-2 delivery has not landed yet.
  common::FlatMap<VertexId, PartitionId> pending_creates_;

  /// Last command relayed per client. A retransmitted request whose vertices
  /// no longer resolve (the original attempt already executed a delete) is
  /// re-relayed with the original addressing so the target's reply cache can
  /// answer it, instead of bouncing kNok at the client.
  std::unordered_map<std::uint64_t, sim::Ref<const ExecCommand>>
      relay_cache_;

  std::uint64_t changes_ = 0;         // hint deltas since last plan
  bool computing_ = false;            // a plan is being computed
  SimTime last_plan_time_ = 0;        // replica-local cooldown anchor
  bool repartition_requested_ = false;
  std::uint64_t create_round_robin_ = 0;
  std::uint64_t relays_emitted_ = 0;  // uid counter for group multicasts
};

/// Defined out of line so it can name the core's private bookkeeping types.
/// Deliberately excludes the replica-local plan-computation latch and
/// cooldown anchor: a restored replica starts with no plan in flight.
struct OracleCore::Snapshot {
  multicast::MemberCore::State member;
  multicast::McastClient::State plan_sender;

  Assignment map;
  Epoch epoch = 0;
  partitioning::WorkloadGraph graph;
  common::FlatMap<VertexId, PartitionId> pending_creates;
  std::unordered_map<std::uint64_t, sim::Ref<const ExecCommand>> relay_cache;
  std::uint64_t changes = 0;
  std::uint64_t create_round_robin = 0;
  std::uint64_t relays_emitted = 0;
};

/// Carrier for an oracle snapshot travelling as an InstallSnapshotResp
/// payload.
struct OracleSnapshotMsg final : sim::Message {
  explicit OracleSnapshotMsg(OracleCore::SnapshotPtr s)
      : state(std::move(s)) {}
  const char* type_name() const override { return "core.OracleSnapshot"; }
  std::size_t size_bytes() const override {
    return 256 + (state ? state->map.size() * 16 : 0);
  }
  OracleCore::SnapshotPtr state;
};

}  // namespace dynastar::core
