// System: builds and owns a complete simulated deployment — oracle group,
// partition groups (replicas + acceptors), and clients — and offers the
// pre-run state loading the benchmarks use.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/app.h"
#include "core/config.h"
#include "core/nodes.h"
#include "paxos/nodes.h"
#include "paxos/topology.h"
#include "sim/world.h"

namespace dynastar::core {

class System {
 public:
  /// Constructs the full topology: group 0 = oracle, group p+1 = partition
  /// p, each with config.replicas_per_partition replicas and
  /// config.acceptors_per_partition acceptors.
  System(SystemConfig config, AppFactory app_factory);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Adds a closed-loop client with the given command generator. With
  /// surge_only, the client issues commands only while the world's surge
  /// flag is raised (World::begin_surge / ChaosInjector surge windows).
  ClientNode& add_client(std::unique_ptr<ClientDriver> driver,
                         bool surge_only = false);

  // --- pre-run state loading (must happen before run_until) ---
  /// Installs `object` (cloned per replica) at `partition` under `vertex`.
  void preload_object(ObjectId id, VertexId vertex, PartitionId partition,
                      const PRObject& object);
  /// Installs the initial vertex -> partition map at the oracle and every
  /// server (epoch 0).
  void preload_assignment(const Assignment& assignment);

  void run_until(SimTime t) { world_.run_until(t); }

  sim::World& world() { return world_; }
  MetricsRegistry& metrics() { return world_.metrics(); }
  const paxos::Topology& topology() const { return topology_; }
  const SystemConfig& config() const { return config_; }

  OracleCore& oracle(std::size_t replica = 0) {
    return oracle_nodes_[replica]->core();
  }
  PartitionServerCore& server(PartitionId p, std::size_t replica = 0) {
    return server_nodes_[p.value()][replica]->core();
  }
  ClientNode& client(std::size_t i) { return *clients_[i]; }
  [[nodiscard]] std::size_t num_clients() const { return clients_.size(); }

 private:
  SystemConfig config_;
  paxos::Topology topology_;
  sim::World world_;
  AppFactory app_factory_;

  std::vector<OracleNode*> oracle_nodes_;
  std::vector<std::vector<ServerNode*>> server_nodes_;  // [partition][replica]
  std::vector<paxos::AcceptorNode*> acceptors_;
  std::vector<ClientNode*> clients_;
};

}  // namespace dynastar::core
