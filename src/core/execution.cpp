#include "core/execution.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace dynastar::core {

const char* mode_name(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kDynaStar: return "dynastar";
    case ExecutionMode::kSSMR: return "ssmr";
    case ExecutionMode::kDSSMR: return "dssmr";
    case ExecutionMode::kStar: return "star";
  }
  return "unknown";
}

std::optional<ExecutionMode> parse_mode(std::string_view name) {
  for (ExecutionMode mode : kAllModes)
    if (name == mode_name(mode)) return mode;
  return std::nullopt;
}

PartitionId choose_target([[maybe_unused]] const std::vector<ObjectId>& objects,
                          const std::vector<PartitionId>& owner_per_object) {
  assert(!objects.empty() && objects.size() == owner_per_object.size());
  // Count objects per owner; winner = most objects, ties -> lowest id.
  std::map<PartitionId, std::size_t> counts;
  for (PartitionId p : owner_per_object) counts[p]++;
  PartitionId best = owner_per_object[0];
  std::size_t best_count = 0;
  for (const auto& [p, count] : counts) {
    if (count > best_count) {
      best = p;
      best_count = count;
    }
  }
  return best;
}

Route route_command(ExecutionMode mode, PartitionId star_master,
                    const std::vector<ObjectId>& objects,
                    const std::vector<PartitionId>& owner_per_object) {
  Route route;
  route.dests = owner_per_object;
  std::sort(route.dests.begin(), route.dests.end());
  route.dests.erase(std::unique(route.dests.begin(), route.dests.end()),
                    route.dests.end());
  route.multi = route.dests.size() > 1;
  route.target = choose_target(objects, owner_per_object);
  if (mode == ExecutionMode::kStar) {
    if (route.multi) {
      // Deferred to the master's next fully-replicated epoch; the owners
      // never see the command — they receive the master's state update at
      // the epoch switch instead.
      route.dests.assign(1, star_master);
      route.target = star_master;
    } else {
      // The owner executes and replies; the master applies silently so its
      // full replica stays fresh for the next epoch.
      route.dests.push_back(star_master);
      std::sort(route.dests.begin(), route.dests.end());
      route.dests.erase(std::unique(route.dests.begin(), route.dests.end()),
                        route.dests.end());
    }
  }
  return route;
}

}  // namespace dynastar::core
