// The ExecutionMode seam: the one place that knows how the four systems
// (DynaStar, S-SMR*, DS-SMR, STAR) differ in command addressing. Everything
// that routes a command — the oracle on a cache miss, the client on a cache
// hit — goes through route_command(), so a new mode changes addressing here
// and execution in the server, and nowhere else.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/ids.h"

namespace dynastar::core {

/// Which protocol the partition servers run.
enum class ExecutionMode : std::uint8_t {
  /// DynaStar (the paper): borrow omega to one target partition, execute
  /// once, return the variables; periodic METIS repartitioning.
  kDynaStar,
  /// S-SMR (Bezerra et al., DSN'14): static partitioning; every involved
  /// partition executes the command after exchanging copies of state.
  kSSMR,
  /// DS-SMR (Le et al., DSN'16): dynamic, but variables move permanently to
  /// the target on every multi-partition command; no workload graph.
  kDSSMR,
  /// STAR-style asymmetric execution: one designated master partition holds
  /// a full replica of the state (kept fresh by addressing every command to
  /// it). Single-partition commands execute partitioned as in DynaStar;
  /// multi-partition commands are deferred at the master and executed there
  /// in periodic log-ordered epochs, without borrow/return round-trips.
  kStar,
};

inline constexpr ExecutionMode kAllModes[] = {
    ExecutionMode::kDynaStar, ExecutionMode::kSSMR, ExecutionMode::kDSSMR,
    ExecutionMode::kStar};

/// Canonical lowercase name ("dynastar", "ssmr", "dssmr", "star") — the
/// spelling used by the baseline registry and simctl --system.
const char* mode_name(ExecutionMode mode);

/// Inverse of mode_name; nullopt for unknown spellings.
std::optional<ExecutionMode> parse_mode(std::string_view name);

/// Deterministic choice of the execution target: the partition owning the
/// most of omega's objects; ties broken by lowest partition id (§4.2.2).
PartitionId choose_target(const std::vector<ObjectId>& objects,
                          const std::vector<PartitionId>& owner_per_object);

/// Addressing computed for one access/delete command, shared by the oracle
/// (cache-miss path) and the client (cache-hit path).
struct Route {
  /// Sorted, deduplicated multicast destinations.
  std::vector<PartitionId> dests;
  /// The partition that executes and replies.
  PartitionId target = kNoPartition;
  /// Protocol-level multi-partition: omega spans more than one *owner*.
  /// Under STAR this is NOT dests.size() > 1 — a single-owner command is
  /// also addressed to the master to keep its full replica fresh.
  bool multi = false;
};

/// True for the modes where the read-lease fast path applies: the
/// partitioned borrow/return protocols (DynaStar, DS-SMR). S-SMR executes
/// everywhere off exchanged copies and STAR defers multi-partition commands
/// to the master's epoch batches — neither has a borrow round-trip for a
/// lease to replace, so both are deliberately untouched by leases.
inline constexpr bool mode_supports_leases(ExecutionMode mode) {
  return mode == ExecutionMode::kDynaStar || mode == ExecutionMode::kDSSMR;
}

/// Computes the addressing for `objects` with believed owners
/// `owner_per_object` (parallel arrays):
///  * partitioned modes: dests = distinct owners, target = majority owner;
///  * STAR single-owner: dests = {owner, master}, target = owner (the
///    master applies silently to stay a full replica);
///  * STAR multi-owner:  dests = {master}, target = master (deferred there
///    until the next fully-replicated epoch).
Route route_command(ExecutionMode mode, PartitionId star_master,
                    const std::vector<ObjectId>& objects,
                    const std::vector<PartitionId>& owner_per_object);

}  // namespace dynastar::core
