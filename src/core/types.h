// Core DynaStar types: commands, vertices, and replies.
//
// DynaStar tracks locations at an application-chosen granularity (the
// paper's §4.1 footnote): each state variable (object) has a *home vertex*;
// the location map and the workload graph are per-vertex. TPC-C uses one
// vertex per warehouse/district, Chirper one vertex per user.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "sim/message.h"

namespace dynastar::core {

struct VertexTag {};
/// Granularity unit of the location map and workload graph.
using VertexId = StrongId<VertexTag>;

enum class CommandType : std::uint8_t {
  kCreate,  // create(v): new vertex + its first object
  kAccess,  // access(omega): read/modify existing objects
  kDelete,  // delete(v): remove a vertex and its objects
};

/// One client command. Immutable once multicast; the `objects`/`vertices`
/// arrays are parallel (vertices[i] is the home vertex of objects[i]) and
/// together describe omega, the command's read/write set.
struct Command final : sim::Message {
  Command(std::uint64_t id, ProcessId client_process, CommandType t,
          std::vector<ObjectId> objs, std::vector<VertexId> verts,
          sim::MessagePtr app_payload, bool read_only_hint = false)
      : cmd_id(id),
        client(client_process),
        type(t),
        objects(std::move(objs)),
        vertices(std::move(verts)),
        payload(std::move(app_payload)),
        read_only(read_only_hint) {}

  const char* type_name() const override { return "core.Command"; }
  std::size_t size_bytes() const override {
    return 64 + objects.size() * 16 +
           (payload ? payload->size_bytes() : 0);
  }

  std::uint64_t cmd_id;
  ProcessId client;
  CommandType type;
  std::vector<ObjectId> objects;
  std::vector<VertexId> vertices;
  sim::MessagePtr payload;
  /// Workload-declared hint: this command mutates nothing. Read-only
  /// commands on the same vertices may execute concurrently (parallel
  /// executor); a wrong hint breaks serial-equivalence, so apps must only
  /// set it for ops with no writes at all.
  bool read_only;
};

using CommandPtr = sim::Ref<const Command>;

/// Single source of truth for "this command mutates nothing". Creates and
/// deletes always mutate regardless of the workload hint; only access
/// commands whose driver declared a pure read qualify. Every consumer of
/// the hint (parallel executor intents, read-lease eligibility) must go
/// through this helper so the classification cannot drift between layers.
[[nodiscard]] constexpr bool is_read_only(CommandType type,
                                          bool read_only_hint) {
  return type == CommandType::kAccess && read_only_hint;
}

[[nodiscard]] inline bool is_read_only(const Command& cmd) {
  return is_read_only(cmd.type, cmd.read_only);
}

/// Outcome status carried in replies to the client. New values append at
/// the end — the numeric value rides in trace `detail` fields and must stay
/// stable.
enum class ReplyStatus : std::uint8_t {
  kOk,
  kRetry,       // stale addressing/epoch: re-resolve via the oracle
  kNok,         // oracle rejected the command (e.g., unknown variable)
  kTimeout,     // client-side: retransmission attempts exhausted
  kBusy,        // shed at admission; retry after the carried hint
  kOverloaded,  // client-side: retry budget exhausted on Busy replies
};

/// Plan epochs: each partitioning plan gets a monotonically increasing id;
/// commands carry the epoch their addressing was computed against.
using Epoch = std::uint64_t;

}  // namespace dynastar::core
