// Multilevel k-way graph partitioner (METIS-style).
//
// Same algorithm family as METIS (Karypis & Kumar): (1) coarsen by
// heavy-edge matching, (2) greedy region-growing initial partitioning on the
// coarsest graph, (3) boundary refinement while uncoarsening. The objective
// is minimum edge-cut subject to a vertex-weight balance constraint — the
// paper configures METIS with 20% allowed imbalance (§5.2).
#pragma once

#include <cstdint>
#include <vector>

#include "partitioning/graph.h"

namespace dynastar::partitioning {

struct PartitionerConfig {
  /// Maximum allowed part weight as a multiple of the average (1.2 = 20%).
  double imbalance = 1.20;
  /// Stop coarsening once the graph has at most max(k * per_part, floor)
  /// vertices.
  std::size_t coarsest_per_part = 32;
  std::size_t coarsest_floor = 256;
  /// Boundary-refinement sweeps per level.
  int refinement_passes = 6;
  std::uint64_t seed = 1;
};

struct PartitionResult {
  /// vertex -> part in [0, k).
  std::vector<std::uint32_t> assignment;
  /// Sum of weights of edges whose endpoints land in different parts.
  std::int64_t edge_cut = 0;
  /// max part weight / average part weight.
  double achieved_imbalance = 1.0;
};

/// Partitions `graph` into `k` parts. k >= 1; k == 1 returns the trivial
/// partitioning.
PartitionResult partition_graph(const Graph& graph, std::uint32_t k,
                                const PartitionerConfig& config = {});

/// Computes the edge-cut of an assignment (utility for tests/benches).
std::int64_t edge_cut(const Graph& graph,
                      const std::vector<std::uint32_t>& assignment);

/// max part weight / average part weight for an assignment.
double imbalance(const Graph& graph, std::uint32_t k,
                 const std::vector<std::uint32_t>& assignment);

/// Relabels `next` parts to maximize vertex-weight overlap with `prev`
/// (greedy maximum-agreement matching). DynaStar's oracle uses this so a
/// fresh METIS solution moves as few variables as possible.
std::vector<std::uint32_t> remap_to_minimize_moves(
    const Graph& graph, std::uint32_t k, const std::vector<std::uint32_t>& prev,
    std::vector<std::uint32_t> next);

}  // namespace dynastar::partitioning
