#include "partitioning/partitioner.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "common/rng.h"

namespace dynastar::partitioning {

namespace {

/// One coarsening level: the coarse graph plus the fine->coarse projection.
struct Level {
  Graph graph;
  std::vector<std::uint32_t> fine_to_coarse;  // indexed by fine vertex
};

/// Heavy-edge matching + contraction. Returns nullopt-equivalent (empty
/// fine_to_coarse) when the graph stops shrinking meaningfully.
Level coarsen_once(const Graph& g, Rng& rng) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  constexpr std::uint32_t kUnmatched = UINT32_MAX;
  std::vector<std::uint32_t> match(n, kUnmatched);
  for (std::uint32_t v : order) {
    if (match[v] != kUnmatched) continue;
    std::uint32_t best = kUnmatched;
    std::int64_t best_w = -1;
    for (std::size_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::uint32_t u = g.adjacency[e];
      if (match[u] != kUnmatched || u == v) continue;
      if (g.edge_weights[e] > best_w) {
        best_w = g.edge_weights[e];
        best = u;
      }
    }
    if (best != kUnmatched) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }

  Level level;
  level.fine_to_coarse.assign(n, kUnmatched);
  std::uint32_t next_coarse = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (level.fine_to_coarse[v] != kUnmatched) continue;
    level.fine_to_coarse[v] = next_coarse;
    if (match[v] != v) level.fine_to_coarse[match[v]] = next_coarse;
    ++next_coarse;
  }

  // Contract with flat sort-based edge aggregation (a hash map per coarse
  // vertex would dominate the runtime on million-vertex graphs).
  level.graph.vertex_weights.assign(next_coarse, 0);
  for (std::uint32_t v = 0; v < n; ++v)
    level.graph.vertex_weights[level.fine_to_coarse[v]] += g.vertex_weights[v];

  struct CoarseEdge {
    std::uint32_t from;
    std::uint32_t to;
    std::int64_t weight;
  };
  std::vector<CoarseEdge> edges;
  edges.reserve(g.adjacency.size());
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t cv = level.fine_to_coarse[v];
    for (std::size_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::uint32_t cu = level.fine_to_coarse[g.adjacency[e]];
      if (cv != cu) edges.push_back({cv, cu, g.edge_weights[e]});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const CoarseEdge& a, const CoarseEdge& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });

  Graph& cg = level.graph;
  cg.xadj.assign(next_coarse + 1, 0);
  cg.adjacency.reserve(edges.size());
  cg.edge_weights.reserve(edges.size());
  std::size_t i = 0;
  for (std::uint32_t c = 0; c < next_coarse; ++c) {
    while (i < edges.size() && edges[i].from == c) {
      std::int64_t weight = edges[i].weight;
      const std::uint32_t to = edges[i].to;
      ++i;
      while (i < edges.size() && edges[i].from == c && edges[i].to == to) {
        weight += edges[i].weight;
        ++i;
      }
      cg.adjacency.push_back(to);
      cg.edge_weights.push_back(weight);
    }
    cg.xadj[c + 1] = cg.adjacency.size();
  }
  return level;
}

/// One greedy graph-growing attempt (GGGP): grow each part from a random
/// seed, always absorbing the unassigned vertex with the strongest
/// connection to the growing region — this keeps hub vertices from being
/// swallowed by the wrong region (a plain BFS would take them in arrival
/// order).
std::vector<std::uint32_t> grow_once(const Graph& g, std::uint32_t k,
                                     Rng& rng) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> part(n, k - 1);  // leftovers -> last part
  const std::int64_t total = g.total_vertex_weight();
  const std::int64_t target = total / k;

  std::vector<bool> assigned(n, false);
  std::vector<std::int64_t> gain(n, 0);
  std::size_t num_assigned = 0;

  for (std::uint32_t p = 0; p + 1 < k; ++p) {
    std::int64_t weight = 0;
    // Lazy max-heap over (gain, vertex); stale entries are skipped on pop.
    std::priority_queue<std::pair<std::int64_t, std::uint32_t>> frontier;
    while (weight < target && num_assigned < n) {
      std::uint32_t v = UINT32_MAX;
      while (!frontier.empty()) {
        auto [g_at_push, candidate] = frontier.top();
        frontier.pop();
        if (!assigned[candidate] && gain[candidate] == g_at_push) {
          v = candidate;
          break;
        }
      }
      if (v == UINT32_MAX) {
        // Fresh seed: a random unassigned vertex.
        std::uint32_t tries = 0;
        do {
          v = static_cast<std::uint32_t>(rng.uniform(0, n - 1));
        } while (assigned[v] && ++tries < 64);
        if (assigned[v]) {
          for (std::uint32_t u = 0; u < n; ++u)
            if (!assigned[u]) {
              v = u;
              break;
            }
        }
        if (assigned[v]) break;
      }
      assigned[v] = true;
      ++num_assigned;
      part[v] = p;
      weight += g.vertex_weights[v];
      for (std::size_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        const std::uint32_t u = g.adjacency[e];
        if (assigned[u]) continue;
        gain[u] += g.edge_weights[e];
        frontier.emplace(gain[u], u);
      }
    }
    // Reset gains touched by this region so the next part starts clean.
    for (std::uint32_t u = 0; u < n; ++u)
      if (!assigned[u]) gain[u] = 0;
  }
  return part;
}

void refine(const Graph& g, std::uint32_t k, std::vector<std::uint32_t>& part,
            double imbalance_limit, int passes, Rng& rng);

/// Multi-restart initial partitioning: refine each attempt and keep the
/// best feasible cut (METIS-style).
std::vector<std::uint32_t> initial_partition(const Graph& g, std::uint32_t k,
                                             double imbalance_limit,
                                             int refinement_passes, Rng& rng) {
  const std::size_t n = g.num_vertices();
  if (k == 1) return std::vector<std::uint32_t>(n, 0);

  constexpr int kRestarts = 8;
  std::vector<std::uint32_t> best;
  std::int64_t best_cut = 0;
  double best_imbalance = 0.0;
  for (int attempt = 0; attempt < kRestarts; ++attempt) {
    auto candidate = grow_once(g, k, rng);
    refine(g, k, candidate, imbalance_limit, refinement_passes, rng);
    const std::int64_t cut = edge_cut(g, candidate);
    const double imb = imbalance(g, k, candidate);
    const bool feasible = imb <= imbalance_limit + 1e-9;
    const bool best_feasible = best_imbalance <= imbalance_limit + 1e-9;
    const bool better =
        best.empty() || (feasible && !best_feasible) ||
        (feasible == best_feasible &&
         (cut < best_cut || (cut == best_cut && imb < best_imbalance)));
    if (better) {
      best = std::move(candidate);
      best_cut = cut;
      best_imbalance = imb;
    }
  }
  return best;
}

/// Greedy boundary refinement: move boundary vertices to the neighboring
/// part with the best cut gain, respecting the balance constraint.
void refine(const Graph& g, std::uint32_t k, std::vector<std::uint32_t>& part,
            double imbalance_limit, int passes, Rng& rng) {
  const std::size_t n = g.num_vertices();
  if (k == 1 || n == 0) return;
  std::vector<std::int64_t> part_weight(k, 0);
  for (std::uint32_t v = 0; v < n; ++v) part_weight[part[v]] += g.vertex_weights[v];
  const std::int64_t total = g.total_vertex_weight();
  const auto max_weight = static_cast<std::int64_t>(
      imbalance_limit * static_cast<double>(total) / static_cast<double>(k));

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::vector<std::int64_t> gain_to(k, 0);
  for (int pass = 0; pass < passes; ++pass) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    bool moved_any = false;
    for (std::uint32_t v : order) {
      const std::uint32_t home = part[v];
      // Connectivity of v to each adjacent part.
      std::int64_t internal = 0;
      std::vector<std::uint32_t> touched;
      for (std::size_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        const std::uint32_t p = part[g.adjacency[e]];
        if (p == home) {
          internal += g.edge_weights[e];
        } else {
          if (gain_to[p] == 0) touched.push_back(p);
          gain_to[p] += g.edge_weights[e];
        }
      }
      std::uint32_t best_part = home;
      std::int64_t best_gain = 0;
      for (std::uint32_t p : touched) {
        const std::int64_t gain = gain_to[p] - internal;
        const bool fits = part_weight[p] + g.vertex_weights[v] <= max_weight;
        const bool balances =
            gain == best_gain && part_weight[p] + g.vertex_weights[v] <
                                     part_weight[best_part];
        if (fits && (gain > best_gain || (best_part != home && balances))) {
          best_gain = gain;
          best_part = p;
        }
        gain_to[p] = 0;  // reset scratch
      }
      if (best_part != home && best_gain >= 0) {
        // Also allow zero-gain moves that strictly improve balance when the
        // home part is overweight.
        if (best_gain > 0 || part_weight[home] > max_weight) {
          part[v] = best_part;
          part_weight[home] -= g.vertex_weights[v];
          part_weight[best_part] += g.vertex_weights[v];
          moved_any = true;
        }
      }
    }
    if (!moved_any) break;
  }
}

}  // namespace

std::int64_t edge_cut(const Graph& g,
                      const std::vector<std::uint32_t>& assignment) {
  std::int64_t cut = 0;
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (std::size_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::uint32_t u = g.adjacency[e];
      if (v < u && assignment[v] != assignment[u]) cut += g.edge_weights[e];
    }
  }
  return cut;
}

double imbalance(const Graph& g, std::uint32_t k,
                 const std::vector<std::uint32_t>& assignment) {
  if (k == 0 || g.num_vertices() == 0) return 1.0;
  std::vector<std::int64_t> w(k, 0);
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v)
    w[assignment[v]] += g.vertex_weights[v];
  const double avg =
      static_cast<double>(g.total_vertex_weight()) / static_cast<double>(k);
  const std::int64_t max_w = *std::max_element(w.begin(), w.end());
  return avg == 0.0 ? 1.0 : static_cast<double>(max_w) / avg;
}

PartitionResult partition_graph(const Graph& graph, std::uint32_t k,
                                const PartitionerConfig& config) {
  assert(k >= 1);
  PartitionResult result;
  const std::size_t n = graph.num_vertices();
  if (n == 0) return result;
  if (k == 1) {
    result.assignment.assign(n, 0);
    result.edge_cut = 0;
    result.achieved_imbalance = 1.0;
    return result;
  }

  Rng rng(config.seed);

  // --- Coarsening phase ---
  const std::size_t coarsest_target =
      std::max<std::size_t>(config.coarsest_floor,
                            static_cast<std::size_t>(k) * config.coarsest_per_part);
  std::vector<Level> levels;
  const Graph* current = &graph;
  while (current->num_vertices() > coarsest_target) {
    Level level = coarsen_once(*current, rng);
    // Stop when matching no longer shrinks the graph meaningfully (hubs in
    // power-law graphs limit matchings); grinding out sub-10% levels costs
    // full passes over the edges for little benefit.
    if (level.graph.num_vertices() >
        current->num_vertices() - current->num_vertices() / 10) {
      break;
    }
    levels.push_back(std::move(level));
    current = &levels.back().graph;
  }

  // --- Initial partitioning on the coarsest graph (multi-restart) ---
  std::vector<std::uint32_t> part = initial_partition(
      *current, k, config.imbalance, config.refinement_passes, rng);

  // --- Uncoarsening + refinement ---
  for (std::size_t i = levels.size(); i-- > 0;) {
    const Graph& fine =
        (i == 0) ? graph : levels[i - 1].graph;
    const std::vector<std::uint32_t>& projection = levels[i].fine_to_coarse;
    std::vector<std::uint32_t> fine_part(fine.num_vertices());
    for (std::uint32_t v = 0; v < fine.num_vertices(); ++v)
      fine_part[v] = part[projection[v]];
    part = std::move(fine_part);
    // Full sweeps on small levels; the huge fine levels only need a couple
    // of cleanup passes (the heavy lifting happened while coarse).
    const int passes =
        fine.num_vertices() > 50'000 ? 2 : config.refinement_passes;
    refine(fine, k, part, config.imbalance, passes, rng);
  }

  result.assignment = std::move(part);
  result.edge_cut = edge_cut(graph, result.assignment);
  result.achieved_imbalance = imbalance(graph, k, result.assignment);
  return result;
}

std::vector<std::uint32_t> remap_to_minimize_moves(
    const Graph& graph, std::uint32_t k, const std::vector<std::uint32_t>& prev,
    std::vector<std::uint32_t> next) {
  assert(prev.size() == next.size());
  // overlap[new][old] = vertex weight assigned to `new` now and `old` before.
  std::vector<std::vector<std::int64_t>> overlap(
      k, std::vector<std::int64_t>(k, 0));
  for (std::uint32_t v = 0; v < graph.num_vertices(); ++v)
    overlap[next[v]][prev[v]] += graph.vertex_weights[v];

  std::vector<std::uint32_t> relabel(k, UINT32_MAX);
  std::vector<bool> old_taken(k, false);
  // Greedy: repeatedly take the largest remaining overlap cell.
  for (std::uint32_t round = 0; round < k; ++round) {
    std::int64_t best = -1;
    std::uint32_t best_new = 0, best_old = 0;
    for (std::uint32_t np = 0; np < k; ++np) {
      if (relabel[np] != UINT32_MAX) continue;
      for (std::uint32_t op = 0; op < k; ++op) {
        if (old_taken[op]) continue;
        if (overlap[np][op] > best) {
          best = overlap[np][op];
          best_new = np;
          best_old = op;
        }
      }
    }
    relabel[best_new] = best_old;
    old_taken[best_old] = true;
  }
  for (auto& p : next) p = relabel[p];
  return next;
}

}  // namespace dynastar::partitioning
