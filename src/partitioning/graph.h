// Graph structures for workload-driven partitioning.
//
// WorkloadGraph is the oracle's dynamic accumulation structure (the paper's
// workload graph: vertices = state variables at the application's chosen
// granularity, edge weights = how often commands co-access two vertices).
// Graph is the compact CSR form handed to the partitioner.
//
// WorkloadGraph interns application vertex ids into dense slots via a flat
// map and keeps per-slot adjacency as small vectors (degrees in these
// workloads are tiny), replacing the previous nested unordered_map-of-
// unordered_map layout; GraphBuilder accumulates edges in one flat record
// vector and does a single sort+merge in build(). Both changes remove the
// per-edge allocation/pointer-chasing tax from the oracle's hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.h"

namespace dynastar::partitioning {

/// Compact immutable undirected graph with vertex and edge weights (CSR).
struct Graph {
  std::vector<std::int64_t> vertex_weights;
  std::vector<std::size_t> xadj;        // size n+1
  std::vector<std::uint32_t> adjacency; // neighbor vertex indices
  std::vector<std::int64_t> edge_weights;

  [[nodiscard]] std::size_t num_vertices() const {
    return vertex_weights.size();
  }
  [[nodiscard]] std::size_t num_edges() const { return adjacency.size() / 2; }
  [[nodiscard]] std::int64_t total_vertex_weight() const;

  /// Degree of vertex v.
  [[nodiscard]] std::size_t degree(std::uint32_t v) const {
    return xadj[v + 1] - xadj[v];
  }
};

/// Builder used by tests, generators, and WorkloadGraph::compact():
/// accumulate edges into a flat record vector, then freeze with one
/// sort+merge pass.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_vertices)
      : vertex_weights_(num_vertices, 1) {}

  /// Pre-sizes the edge accumulator (callers that know their edge count —
  /// e.g. WorkloadGraph::compact() — avoid regrowth).
  void reserve(std::size_t num_edges) { edges_.reserve(num_edges); }

  void set_vertex_weight(std::uint32_t v, std::int64_t w) {
    vertex_weights_[v] = w;
  }
  /// Adds (or reinforces) the undirected edge {a, b}.
  void add_edge(std::uint32_t a, std::uint32_t b, std::int64_t w = 1);

  [[nodiscard]] Graph build() const;

 private:
  struct EdgeRec {
    std::uint32_t a;  // canonical: a < b
    std::uint32_t b;
    std::int64_t w;
  };

  std::vector<std::int64_t> vertex_weights_;
  std::vector<EdgeRec> edges_;
};

/// The oracle's evolving workload graph over application vertex ids.
class WorkloadGraph {
 public:
  /// Reinforces a vertex (weight_delta ~ accesses observed).
  void add_vertex(std::uint64_t id, std::int64_t weight_delta = 1);
  /// Reinforces the undirected edge {a, b}; creates the vertices if needed.
  void add_edge(std::uint64_t a, std::uint64_t b, std::int64_t weight_delta = 1);
  /// Removes a vertex and its edges (delete(v) in the paper).
  void remove_vertex(std::uint64_t id);

  /// Multiplies all weights by `factor` (in (0,1]) and drops edges that
  /// decay to zero — lets the oracle forget stale access patterns.
  void decay(double factor);

  [[nodiscard]] std::size_t num_vertices() const { return index_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }
  [[nodiscard]] bool contains(std::uint64_t id) const {
    return index_.contains(id);
  }

  struct Compact {
    Graph graph;
    std::vector<std::uint64_t> ids;  // compact index -> application vertex id
  };
  /// Freezes into CSR form for the partitioner.
  [[nodiscard]] Compact compact() const;

 private:
  using Slot = std::uint32_t;
  struct Neighbor {
    Slot slot;
    std::int64_t weight;
  };

  /// Returns the dense slot for `id`, creating one (reusing freed slots)
  /// if the vertex is new.
  Slot intern(std::uint64_t id);
  /// Drops the {a, b} entry from a's adjacency list (swap-erase).
  void drop_neighbor(Slot from, Slot target);

  common::FlatMap<std::uint64_t, Slot> index_;  // id -> slot (live only)
  std::vector<std::uint64_t> ids_;              // slot -> id
  std::vector<std::int64_t> weights_;           // slot -> vertex weight
  std::vector<std::uint8_t> alive_;             // slot -> liveness
  std::vector<std::vector<Neighbor>> adj_;      // slot -> neighbors
  std::vector<Slot> free_slots_;
  std::size_t num_edges_ = 0;
};

}  // namespace dynastar::partitioning
