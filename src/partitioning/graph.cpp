#include "partitioning/graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace dynastar::partitioning {

std::int64_t Graph::total_vertex_weight() const {
  return std::accumulate(vertex_weights.begin(), vertex_weights.end(),
                         std::int64_t{0});
}

void GraphBuilder::add_edge(std::uint32_t a, std::uint32_t b, std::int64_t w) {
  assert(a < vertex_weights_.size() && b < vertex_weights_.size());
  if (a == b) return;
  if (a > b) std::swap(a, b);
  edges_.push_back(EdgeRec{a, b, w});
}

Graph GraphBuilder::build() const {
  const std::size_t n = vertex_weights_.size();

  // One sort puts duplicate records adjacent (for the weight merge) and
  // yields ascending neighbor order for both CSR directions.
  std::vector<EdgeRec> edges = edges_;
  std::sort(edges.begin(), edges.end(), [](const EdgeRec& x, const EdgeRec& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  std::size_t merged = 0;
  for (std::size_t i = 0; i < edges.size();) {
    EdgeRec rec = edges[i];
    for (++i; i < edges.size() && edges[i].a == rec.a && edges[i].b == rec.b;
         ++i) {
      rec.w += edges[i].w;
    }
    edges[merged++] = rec;
  }
  edges.resize(merged);

  Graph g;
  g.vertex_weights = vertex_weights_;
  g.xadj.assign(n + 1, 0);
  for (const EdgeRec& e : edges) {
    ++g.xadj[e.a + 1];
    ++g.xadj[e.b + 1];
  }
  for (std::size_t v = 0; v < n; ++v) g.xadj[v + 1] += g.xadj[v];
  g.adjacency.resize(g.xadj[n]);
  g.edge_weights.resize(g.xadj[n]);
  std::vector<std::size_t> cursor(g.xadj.begin(), g.xadj.end() - 1);
  // Records sorted by (a, b) fill each vertex's slice in ascending neighbor
  // order: for fixed a the b's ascend, and for fixed b the a's ascend
  // across the sorted list.
  for (const EdgeRec& e : edges) {
    g.adjacency[cursor[e.a]] = e.b;
    g.edge_weights[cursor[e.a]] = e.w;
    ++cursor[e.a];
    g.adjacency[cursor[e.b]] = e.a;
    g.edge_weights[cursor[e.b]] = e.w;
    ++cursor[e.b];
  }
  return g;
}

WorkloadGraph::Slot WorkloadGraph::intern(std::uint64_t id) {
  auto [it, inserted] = index_.try_emplace(id, 0);
  if (!inserted) return it->second;
  Slot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    ids_[slot] = id;
    weights_[slot] = 0;
    alive_[slot] = 1;
  } else {
    slot = static_cast<Slot>(ids_.size());
    ids_.push_back(id);
    weights_.push_back(0);
    alive_.push_back(1);
    adj_.emplace_back();
  }
  it->second = slot;
  return slot;
}

void WorkloadGraph::drop_neighbor(Slot from, Slot target) {
  auto& neighbors = adj_[from];
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    if (neighbors[i].slot == target) {
      neighbors[i] = neighbors.back();
      neighbors.pop_back();
      return;
    }
  }
  assert(false && "asymmetric adjacency");
}

void WorkloadGraph::add_vertex(std::uint64_t id, std::int64_t weight_delta) {
  weights_[intern(id)] += weight_delta;
}

void WorkloadGraph::add_edge(std::uint64_t a, std::uint64_t b,
                             std::int64_t weight_delta) {
  if (a == b) {
    add_vertex(a, weight_delta);
    return;
  }
  const Slot sa = intern(a);
  const Slot sb = intern(b);
  for (Neighbor& n : adj_[sa]) {
    if (n.slot == sb) {
      n.weight += weight_delta;
      for (Neighbor& m : adj_[sb]) {
        if (m.slot == sa) {
          m.weight += weight_delta;
          return;
        }
      }
      assert(false && "asymmetric adjacency");
    }
  }
  adj_[sa].push_back(Neighbor{sb, weight_delta});
  adj_[sb].push_back(Neighbor{sa, weight_delta});
  ++num_edges_;
}

void WorkloadGraph::remove_vertex(std::uint64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  const Slot slot = it->second;
  for (const Neighbor& n : adj_[slot]) {
    drop_neighbor(n.slot, slot);
    --num_edges_;
  }
  adj_[slot].clear();
  alive_[slot] = 0;
  weights_[slot] = 0;
  index_.erase(it);
  free_slots_.push_back(slot);
}

void WorkloadGraph::decay(double factor) {
  const auto scale = [factor](std::int64_t w) {
    return static_cast<std::int64_t>(
        std::floor(static_cast<double>(w) * factor));
  };
  for (Slot s = 0; s < ids_.size(); ++s) {
    if (alive_[s] != 0) weights_[s] = scale(weights_[s]);
  }
  // Both directions of an edge carry the same weight, so both copies decay
  // identically; drop dead entries from each side and count the undirected
  // edge once (from the lower slot).
  for (Slot s = 0; s < adj_.size(); ++s) {
    auto& neighbors = adj_[s];
    for (std::size_t i = 0; i < neighbors.size();) {
      const std::int64_t decayed = scale(neighbors[i].weight);
      if (decayed <= 0) {
        if (s < neighbors[i].slot) --num_edges_;
        neighbors[i] = neighbors.back();
        neighbors.pop_back();
      } else {
        neighbors[i].weight = decayed;
        ++i;
      }
    }
  }
}

WorkloadGraph::Compact WorkloadGraph::compact() const {
  Compact result;
  result.ids.reserve(index_.size());
  for (const auto& [id, slot] : index_) result.ids.push_back(id);
  std::sort(result.ids.begin(), result.ids.end());

  const auto compact_index = [&result](std::uint64_t id) {
    const auto pos =
        std::lower_bound(result.ids.begin(), result.ids.end(), id);
    return static_cast<std::uint32_t>(pos - result.ids.begin());
  };

  GraphBuilder builder(result.ids.size());
  builder.reserve(num_edges_);
  for (std::uint32_t i = 0; i < result.ids.size(); ++i) {
    const Slot slot = index_.at(result.ids[i]);
    builder.set_vertex_weight(i, std::max<std::int64_t>(weights_[slot], 1));
  }
  for (Slot s = 0; s < adj_.size(); ++s) {
    if (alive_[s] == 0) continue;
    const std::uint32_t ci = compact_index(ids_[s]);
    for (const Neighbor& n : adj_[s]) {
      if (ids_[s] < ids_[n.slot]) {
        builder.add_edge(ci, compact_index(ids_[n.slot]), n.weight);
      }
    }
  }
  result.graph = builder.build();
  return result;
}

}  // namespace dynastar::partitioning
