#include "partitioning/graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace dynastar::partitioning {

std::int64_t Graph::total_vertex_weight() const {
  return std::accumulate(vertex_weights.begin(), vertex_weights.end(),
                         std::int64_t{0});
}

void GraphBuilder::add_edge(std::uint32_t a, std::uint32_t b, std::int64_t w) {
  assert(a < adj_.size() && b < adj_.size());
  if (a == b) return;
  adj_[a][b] += w;
  adj_[b][a] += w;
}

Graph GraphBuilder::build() const {
  Graph g;
  const std::size_t n = vertex_weights_.size();
  g.vertex_weights = vertex_weights_;
  g.xadj.resize(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) g.xadj[v + 1] = g.xadj[v] + adj_[v].size();
  g.adjacency.resize(g.xadj[n]);
  g.edge_weights.resize(g.xadj[n]);
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t pos = g.xadj[v];
    // Deterministic neighbor order independent of hash iteration.
    std::vector<std::pair<std::uint32_t, std::int64_t>> sorted(
        adj_[v].begin(), adj_[v].end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [u, w] : sorted) {
      g.adjacency[pos] = u;
      g.edge_weights[pos] = w;
      ++pos;
    }
  }
  return g;
}

void WorkloadGraph::add_vertex(std::uint64_t id, std::int64_t weight_delta) {
  vertices_[id] += weight_delta;
}

void WorkloadGraph::add_edge(std::uint64_t a, std::uint64_t b,
                             std::int64_t weight_delta) {
  if (a == b) {
    add_vertex(a, weight_delta);
    return;
  }
  vertices_.try_emplace(a, 0);
  vertices_.try_emplace(b, 0);
  auto& forward = edges_[a][b];
  if (forward == 0) ++num_edges_;
  forward += weight_delta;
  edges_[b][a] += weight_delta;
}

void WorkloadGraph::remove_vertex(std::uint64_t id) {
  auto it = edges_.find(id);
  if (it != edges_.end()) {
    for (const auto& [neighbor, w] : it->second) {
      auto nit = edges_.find(neighbor);
      if (nit != edges_.end()) {
        nit->second.erase(id);
        if (nit->second.empty()) edges_.erase(nit);
      }
      --num_edges_;
    }
    edges_.erase(it);
  }
  vertices_.erase(id);
}

void WorkloadGraph::decay(double factor) {
  for (auto& [id, w] : vertices_)
    w = static_cast<std::int64_t>(std::floor(static_cast<double>(w) * factor));
  for (auto eit = edges_.begin(); eit != edges_.end();) {
    auto& neighbors = eit->second;
    for (auto nit = neighbors.begin(); nit != neighbors.end();) {
      const auto decayed = static_cast<std::int64_t>(
          std::floor(static_cast<double>(nit->second) * factor));
      if (decayed <= 0) {
        // Count each undirected edge once (when erasing from the smaller id).
        if (eit->first < nit->first) --num_edges_;
        nit = neighbors.erase(nit);
      } else {
        nit->second = decayed;
        ++nit;
      }
    }
    if (neighbors.empty())
      eit = edges_.erase(eit);
    else
      ++eit;
  }
}

WorkloadGraph::Compact WorkloadGraph::compact() const {
  Compact result;
  result.ids.reserve(vertices_.size());
  for (const auto& [id, w] : vertices_) result.ids.push_back(id);
  std::sort(result.ids.begin(), result.ids.end());
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  index.reserve(result.ids.size());
  for (std::uint32_t i = 0; i < result.ids.size(); ++i)
    index.emplace(result.ids[i], i);

  GraphBuilder builder(result.ids.size());
  for (std::uint32_t i = 0; i < result.ids.size(); ++i) {
    auto w = vertices_.at(result.ids[i]);
    builder.set_vertex_weight(i, std::max<std::int64_t>(w, 1));
  }
  for (const auto& [a, neighbors] : edges_) {
    for (const auto& [b, w] : neighbors) {
      if (a < b) builder.add_edge(index.at(a), index.at(b), w);
    }
  }
  result.graph = builder.build();
  return result;
}

}  // namespace dynastar::partitioning
