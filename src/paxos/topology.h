// Static deployment description: which processes form each replica group and
// which acceptors order that group's log. Mirrors the paper's deployment of
// "2 replicas and 3 acceptors per partition" (§6.1), though any sizes work.
#pragma once

#include <cassert>
#include <vector>

#include "common/ids.h"

namespace dynastar::paxos {

struct GroupDef {
  GroupId id;
  /// Replicas: learn + execute the group's log (the partition servers).
  std::vector<ProcessId> replicas;
  /// Acceptors: the Paxos voters persisting the log.
  std::vector<ProcessId> acceptors;

  [[nodiscard]] std::size_t quorum() const { return acceptors.size() / 2 + 1; }
};

class Topology {
 public:
  void add_group(GroupDef def) {
    assert(def.id.value() == groups_.size());
    groups_.push_back(std::move(def));
  }

  [[nodiscard]] const GroupDef& group(GroupId id) const {
    assert(id.value() < groups_.size());
    return groups_[id.value()];
  }

  [[nodiscard]] std::size_t num_groups() const { return groups_.size(); }
  [[nodiscard]] const std::vector<GroupDef>& groups() const { return groups_; }

 private:
  std::vector<GroupDef> groups_;
};

}  // namespace dynastar::paxos
