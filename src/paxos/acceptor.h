// Paxos acceptor: the voting role. Its durable state (highest promised
// ballot, per-slot votes) lives in AcceptorStorage, which the hosting node
// keeps across crashes — modeling stable storage.
#pragma once

#include <map>
#include <memory>

#include "paxos/messages.h"
#include "paxos/topology.h"
#include "sim/env.h"

namespace dynastar::paxos {

/// Durable acceptor state; survives process crashes.
struct AcceptorStorage {
  Ballot promised = kNoBallot;  // kNoBallot == never promised
  std::map<Slot, AcceptedEntry> votes;
};

class AcceptorCore {
 public:
  AcceptorCore(sim::Env& env, GroupId group, AcceptorStorage& storage)
      : env_(env), group_(group), storage_(storage) {}

  /// Processes a Paxos message addressed to this acceptor. Returns true if
  /// the message was one the acceptor understands.
  bool handle(ProcessId from, const sim::MessagePtr& msg);

  [[nodiscard]] GroupId group() const { return group_; }

 private:
  void on_prepare(ProcessId from, const Prepare& msg);
  void on_accept(ProcessId from, const Accept& msg);

  sim::Env& env_;
  GroupId group_;
  AcceptorStorage& storage_;
};

}  // namespace dynastar::paxos
