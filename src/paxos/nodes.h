// Simulated node hosting a Paxos acceptor. Durable state survives crashes;
// the core is rebuilt from storage on recovery (modeling a process restart
// that re-reads its disk).
#pragma once

#include <memory>

#include "paxos/acceptor.h"
#include "sim/process.h"

namespace dynastar::paxos {

class AcceptorNode final : public sim::Process {
 public:
  AcceptorNode(ProcessId id, sim::World& world, GroupId group)
      : sim::Process(id, world), group_(group) {
    set_message_service_time(microseconds(3));
    core_ = std::make_unique<AcceptorCore>(*this, group_, storage_);
  }

  void on_message(ProcessId from, const sim::MessagePtr& msg) override {
    core_->handle(from, msg);
  }

  void on_crash() override { core_.reset(); }

  void on_recover() override {
    core_ = std::make_unique<AcceptorCore>(*this, group_, storage_);
  }

  [[nodiscard]] const AcceptorStorage& storage() const { return storage_; }

 private:
  GroupId group_;
  AcceptorStorage storage_;  // stable storage: outlives crashes
  std::unique_ptr<AcceptorCore> core_;
};

}  // namespace dynastar::paxos
