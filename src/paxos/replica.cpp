#include "paxos/replica.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/logging.h"
#include "common/metric_names.h"

namespace dynastar::paxos {

ReplicaCore::ReplicaCore(sim::Env& env, const Topology& topology, GroupId group,
                         ReplicaConfig config)
    : env_(env), topology_(topology), group_(group), config_(config) {
  const auto& replicas = topology_.group(group_).replicas;
  auto it = std::find(replicas.begin(), replicas.end(), env_.self());
  assert(it != replicas.end() && "replica core hosted on non-member node");
  my_index_ = static_cast<std::size_t>(it - replicas.begin());
}

ProcessId ReplicaCore::leader_hint() const {
  const auto& replicas = topology_.group(group_).replicas;
  return replicas[ballot_ % replicas.size()];
}

Ballot ReplicaCore::next_owned_ballot(Ballot at_least) const {
  const std::size_t n = topology_.group(group_).replicas.size();
  Ballot b = at_least + (my_index_ + n - at_least % n) % n;
  if (b < at_least) b += n;  // overflow guard; unreachable in practice
  return b;
}

void ReplicaCore::start() {
  last_leader_contact_ = env_.now();
  if (my_index_ == 0) {
    start_phase1();
  } else {
    arm_election_timer();
  }
}

void ReplicaCore::submit(sim::MessagePtr value) {
  if (state_ == State::kLeading) {
    batch_.push_back(std::move(value));
    if (batch_.size() >= config_.max_batch) {
      flush_batch();
    } else if (!flush_scheduled_) {
      flush_scheduled_ = true;
      env_.start_timer(config_.batch_delay, [this] {
        flush_scheduled_ = false;
        flush_batch();
      });
    }
    return;
  }
  // Forward to whoever owns the current ballot; if an election is running —
  // or the hint points at ourselves (possible right after recovering from a
  // crash while owning the ballot), which would loop the forward back here —
  // we stash and retry shortly.
  if (state_ == State::kFollower && leader_hint() != env_.self()) {
    env_.send_message(leader_hint(), sim::make_message<ProposeReq>(std::move(value)));
  } else {
    stashed_.push_back(std::move(value));
    arm_stash_retry();
  }
}

void ReplicaCore::arm_stash_retry() {
  if (stash_retry_armed_) return;
  stash_retry_armed_ = true;
  env_.start_timer(config_.phase1_timeout, [this] {
    stash_retry_armed_ = false;
    // Drain into a local batch first: submit() may legitimately re-stash a
    // value (leadership still unresolved), and popping from the same deque
    // we push to would spin forever.
    std::deque<sim::MessagePtr> pending;
    pending.swap(stashed_);
    for (auto& v : pending) submit(std::move(v));
    if (!stashed_.empty()) arm_stash_retry();
  });
}

void ReplicaCore::restore(const ReplicaRestart& s) {
  state_ = State::kFollower;
  ballot_ = s.ballot;
  promises_.clear();
  recovered_.clear();
  in_flight_.clear();
  next_slot_ = 0;
  batch_.clear();
  flush_scheduled_ = false;
  log_.clear();
  next_deliver_slot_ = s.next_deliver_slot;
  next_seq_ = s.next_seq;
  floor_slot_ = s.next_deliver_slot;
  last_checkpoint_slot_ = s.last_checkpoint_slot;
  last_leader_contact_ = env_.now();
  catchup_pending_ = false;
  transfer_.reset();  // any in-flight chunk pull predates the restored state
  stashed_.clear();
  stash_retry_armed_ = false;
}

void ReplicaCore::start_recovered() {
  last_leader_contact_ = env_.now();
  arm_election_timer();
  // Pull the missing suffix without waiting for the next heartbeat. If the
  // gap starts below the peer's log floor, its on_catchup answers with a
  // snapshot instead of decisions.
  if (leader_hint() != env_.self()) {
    env_.send_message(leader_hint(),
                      sim::make_message<CatchupReq>(group_, next_deliver_slot_));
  }
}

bool ReplicaCore::handle(ProcessId from, const sim::MessagePtr& msg) {
  if (auto* p = dynamic_cast<const ProposeReq*>(msg.get())) {
    on_propose(*p);
    return true;
  }
  if (auto* p = dynamic_cast<const Promise*>(msg.get())) {
    if (p->group != group_) return false;
    on_promise(from, *p);
    return true;
  }
  if (auto* p = dynamic_cast<const Nack*>(msg.get())) {
    if (p->group != group_) return false;
    on_nack(*p);
    return true;
  }
  if (auto* p = dynamic_cast<const Accepted*>(msg.get())) {
    if (p->group != group_) return false;
    on_accepted(from, *p);
    return true;
  }
  if (auto* p = dynamic_cast<const Decision*>(msg.get())) {
    if (p->group != group_) return false;
    on_decision(*p);
    return true;
  }
  if (auto* p = dynamic_cast<const Heartbeat*>(msg.get())) {
    if (p->group != group_) return false;
    on_heartbeat(*p);
    return true;
  }
  if (auto* p = dynamic_cast<const CatchupReq*>(msg.get())) {
    if (p->group != group_) return false;
    on_catchup(from, *p);
    return true;
  }
  if (auto* p = dynamic_cast<const InstallSnapshotReq*>(msg.get())) {
    if (p->group != group_) return false;
    on_install_req(from, *p);
    return true;
  }
  if (auto* p = dynamic_cast<const InstallSnapshotResp*>(msg.get())) {
    if (p->group != group_) return false;
    on_install_resp(*p);
    return true;
  }
  if (auto* p = dynamic_cast<const ChunkManifest*>(msg.get())) {
    if (p->group != group_) return false;
    on_chunk_manifest(from, *p);
    return true;
  }
  if (auto* p = dynamic_cast<const StateChunkReq*>(msg.get())) {
    if (p->group != group_) return false;
    on_chunk_req(from, *p);
    return true;
  }
  if (auto* p = dynamic_cast<const StateChunk*>(msg.get())) {
    if (p->group != group_) return false;
    on_chunk(from, *p);
    return true;
  }
  if (auto* p = dynamic_cast<const StateChunkAck*>(msg.get())) {
    if (p->group != group_) return false;
    // Wire-level close of the chunk loop; the sim-side sender is stateless,
    // so there is nothing to update.
    return true;
  }
  return false;
}

void ReplicaCore::on_propose(const ProposeReq& msg) { submit(msg.value); }

void ReplicaCore::start_phase1() {
  // A retry from within phase 1 must move to a strictly higher ballot; the
  // first attempt may reuse the current one (so replica 0 bootstraps at 0).
  const Ballot at_least = (state_ == State::kPhase1) ? ballot_ + 1 : ballot_;
  state_ = State::kPhase1;
  ballot_ = next_owned_ballot(at_least);
  promises_.clear();
  recovered_.clear();
  ++phase1_epoch_;
  const std::uint64_t epoch = phase1_epoch_;
  LOG_DEBUG << "g" << group_ << " r" << my_index_ << " phase1 ballot " << ballot_;
  for (ProcessId acceptor : topology_.group(group_).acceptors) {
    env_.send_message(acceptor,
                      sim::make_message<Prepare>(group_, ballot_, next_deliver_slot_));
  }
  env_.start_timer(config_.phase1_timeout, [this, epoch] {
    if (state_ == State::kPhase1 && phase1_epoch_ == epoch) start_phase1();
  });
}

void ReplicaCore::on_promise(ProcessId from, const Promise& msg) {
  if (state_ != State::kPhase1 || msg.ballot != ballot_) return;
  if (!promises_.insert(from.value()).second) return;
  for (const auto& entry : msg.accepted) {
    auto it = recovered_.find(entry.slot);
    if (it == recovered_.end() || it->second.ballot < entry.ballot)
      recovered_[entry.slot] = entry;
  }
  if (promises_.size() >= topology_.group(group_).quorum()) become_leader();
}

void ReplicaCore::become_leader() {
  state_ = State::kLeading;
  next_slot_ = next_deliver_slot_;
  if (!recovered_.empty())
    next_slot_ = std::max(next_slot_, recovered_.rbegin()->first + 1);
  in_flight_.clear();
  // Re-propose recovered values at our ballot and plug holes with no-ops so
  // the log prefix becomes decidable.
  for (Slot s = next_deliver_slot_; s < next_slot_; ++s) {
    if (log_.contains(s)) continue;
    auto it = recovered_.find(s);
    sim::MessagePtr value = (it != recovered_.end())
                                ? it->second.value
                                : sim::make_message<Batch>(std::vector<sim::MessagePtr>{});
    propose_slot(s, std::move(value));
  }
  recovered_.clear();
  promises_.clear();
  LOG_DEBUG << "g" << group_ << " r" << my_index_ << " leading ballot " << ballot_;
  arm_heartbeat_timer();
  if (!batch_.empty()) flush_batch();
  while (!stashed_.empty()) {
    batch_.push_back(std::move(stashed_.front()));
    stashed_.pop_front();
  }
  if (!batch_.empty()) flush_batch();
  if (on_lead_) on_lead_();
}

void ReplicaCore::step_down(Ballot higher) {
  // Adopt the higher ballot; its owner is the presumptive leader. Any values
  // we were trying to order are re-submitted so they are not lost (the upper
  // layer deduplicates).
  ballot_ = higher;
  state_ = State::kFollower;
  last_leader_contact_ = env_.now();
  std::vector<sim::MessagePtr> to_resubmit;
  for (auto& [slot, inflight] : in_flight_) to_resubmit.push_back(inflight.value);
  in_flight_.clear();
  for (auto& v : batch_) to_resubmit.push_back(std::move(v));
  batch_.clear();
  for (auto& v : to_resubmit) {
    if (const auto* batch = dynamic_cast<const Batch*>(v.get())) {
      // Unwrap recovered batches back into individual values.
      for (const auto& inner : batch->values) submit(inner);
    } else {
      submit(std::move(v));
    }
  }
  arm_election_timer();
}

void ReplicaCore::on_nack(const Nack& msg) {
  if (msg.promised > ballot_) step_down(msg.promised);
}

void ReplicaCore::flush_batch() {
  if (state_ != State::kLeading || batch_.empty()) return;
  auto value = sim::make_message<Batch>(std::move(batch_));
  batch_.clear();
  propose_slot(next_slot_++, std::move(value));
}

void ReplicaCore::propose_slot(Slot slot, sim::MessagePtr value) {
  auto [it, inserted] = in_flight_.try_emplace(slot, InFlight{value, {}, 0});
  (void)inserted;
  it->second.value = value;
  it->second.votes.clear();
  it->second.proposed_at = env_.now();
  for (ProcessId acceptor : topology_.group(group_).acceptors) {
    env_.send_message(acceptor, sim::make_message<Accept>(
                                    group_, ballot_, slot, next_deliver_slot_,
                                    value));
  }
}

void ReplicaCore::on_accepted(ProcessId from, const Accepted& msg) {
  if (state_ != State::kLeading || msg.ballot != ballot_) return;
  auto it = in_flight_.find(msg.slot);
  if (it == in_flight_.end()) return;
  it->second.votes.insert(from.value());
  if (it->second.votes.size() < topology_.group(group_).quorum()) return;
  sim::MessagePtr value = it->second.value;
  in_flight_.erase(it);
  for (ProcessId replica : topology_.group(group_).replicas) {
    if (replica == env_.self()) continue;
    env_.send_message(replica, sim::make_message<Decision>(group_, msg.slot, value));
  }
  record_decision(msg.slot, std::move(value));
}

void ReplicaCore::on_decision(const Decision& msg) {
  last_leader_contact_ = env_.now();
  record_decision(msg.slot, msg.value);
}

void ReplicaCore::record_decision(Slot slot, sim::MessagePtr value) {
  if (slot < next_deliver_slot_) return;  // duplicate of an applied slot
  log_.emplace(slot, std::move(value));
  try_deliver();
}

void ReplicaCore::try_deliver() {
  while (true) {
    auto it = log_.find(next_deliver_slot_);
    if (it == log_.end()) break;
    const sim::MessagePtr& value = it->second;
    if (auto* batch = dynamic_cast<const Batch*>(value.get())) {
      for (const auto& inner : batch->values) {
        if (trace_)
          trace_->record(TracePoint::kPaxosDecided, env_.now(), next_seq_, 0,
                         env_.self().value(), group_.value());
        if (deliver_) deliver_(next_seq_, inner);
        ++next_seq_;
      }
    } else {
      if (trace_)
        trace_->record(TracePoint::kPaxosDecided, env_.now(), next_seq_, 0,
                       env_.self().value(), group_.value());
      if (deliver_) deliver_(next_seq_, value);
      ++next_seq_;
    }
    ++next_deliver_slot_;
    // Deterministic checkpoint cadence: every upper-layer mutation from the
    // slots below next_deliver_slot_ has fully applied (delivery is
    // synchronous), so the captured state sits exactly at a slot boundary.
    if (config_.checkpoint_interval > 0 &&
        next_deliver_slot_ % config_.checkpoint_interval == 0) {
      take_checkpoint();
    }
  }
  // Trim the applied prefix. Everything below the last checkpoint is
  // recoverable from the snapshot, so only the window beyond it needs to be
  // retained for peer catch-up; a replica that lags below the floor pulls a
  // snapshot via InstallSnapshotReq.
  Slot cutoff = last_checkpoint_slot_;
  if (config_.catchup_window > 0 && next_deliver_slot_ > config_.catchup_window)
    cutoff = std::max(cutoff, next_deliver_slot_ - config_.catchup_window);
  if (cutoff > floor_slot_) {
    log_.erase(log_.begin(), log_.lower_bound(cutoff));
    floor_slot_ = cutoff;
  }
}

void ReplicaCore::take_checkpoint() {
  last_checkpoint_slot_ = next_deliver_slot_;
  if (checkpoint_hook_) checkpoint_hook_();
}

void ReplicaCore::arm_heartbeat_timer() {
  if (state_ != State::kLeading) return;
  for (ProcessId replica : topology_.group(group_).replicas) {
    if (replica == env_.self()) continue;
    env_.send_message(replica, sim::make_message<Heartbeat>(
                                   group_, ballot_, next_slot_, floor_slot_));
  }
  // Retransmit phase-2 messages for slots that have not gathered a quorum
  // within a heartbeat period (lost Accepts would otherwise stall the slot
  // and, with it, delivery of everything after).
  const SimTime now = env_.now();
  for (auto& [slot, inflight] : in_flight_) {
    if (now - inflight.proposed_at < config_.heartbeat_interval) continue;
    inflight.proposed_at = now;
    for (ProcessId acceptor : topology_.group(group_).acceptors) {
      env_.send_message(acceptor,
                        sim::make_message<Accept>(group_, ballot_, slot,
                                                  next_deliver_slot_,
                                                  inflight.value));
    }
  }
  env_.start_timer(config_.heartbeat_interval, [this] { arm_heartbeat_timer(); });
}

void ReplicaCore::on_heartbeat(const Heartbeat& msg) {
  if (msg.ballot < ballot_) return;
  if (msg.ballot > ballot_ && state_ != State::kFollower) {
    step_down(msg.ballot);
  } else {
    ballot_ = msg.ballot;
    if (state_ != State::kFollower) state_ = State::kFollower;
  }
  last_leader_contact_ = env_.now();
  maybe_request_catchup(msg.next_slot, msg.floor_slot);
}

void ReplicaCore::maybe_request_catchup(Slot leader_next, Slot leader_floor) {
  if (next_deliver_slot_ >= leader_next || catchup_pending_) return;
  catchup_pending_ = true;
  const bool below_floor = next_deliver_slot_ < leader_floor;
  env_.start_timer(config_.catchup_delay, [this, below_floor] {
    catchup_pending_ = false;
    if (state_ == State::kLeading) return;
    if (below_floor && snapshot_installer_) {
      // An active chunk transfer already owns recovery of this gap; its
      // retransmit timers redirect to other peers if the source dies.
      if (transfer_) return;
      env_.send_message(leader_hint(), sim::make_message<InstallSnapshotReq>(
                                           group_, next_deliver_slot_));
    } else {
      env_.send_message(
          leader_hint(), sim::make_message<CatchupReq>(group_, next_deliver_slot_));
    }
  });
}

void ReplicaCore::on_catchup(ProcessId from, const CatchupReq& msg) {
  if (msg.from_slot < floor_slot_ && snapshot_provider_) {
    // The requested prefix is gone; a snapshot covers it (chunked when a
    // stable checkpoint snapshot exists, monolithic otherwise).
    offer_snapshot(from, msg.from_slot);
    return;
  }
  for (auto it = log_.lower_bound(msg.from_slot); it != log_.end(); ++it) {
    env_.send_message(from,
                      sim::make_message<Decision>(group_, it->first, it->second));
  }
}

void ReplicaCore::on_install_req(ProcessId from, const InstallSnapshotReq& msg) {
  offer_snapshot(from, msg.have_slot);
}

void ReplicaCore::offer_snapshot(ProcessId to, Slot have_slot) {
  if (config_.transfer_chunk_bytes > 0 && stable_snapshot_provider_ &&
      last_checkpoint_slot_ > have_slot) {
    if (const sim::MessagePtr stable = stable_snapshot_provider_()) {
      const std::size_t chunk = config_.transfer_chunk_bytes;
      const std::size_t total_bytes = stable->size_bytes();
      const auto total = static_cast<std::uint32_t>(
          std::max<std::size_t>(1, (total_bytes + chunk - 1) / chunk));
      env_.send_message(to, sim::make_message<ChunkManifest>(
                                group_, last_checkpoint_slot_, total,
                                static_cast<std::uint32_t>(chunk)));
      return;
    }
  }
  // No stable snapshot newer than the receiver's position (or chunking is
  // off): fall back to a monolithic fresh capture at the tip. This also
  // closes the gap when catchup_window < checkpoint_interval leaves a
  // freshly chunk-installed replica still below the leader's log floor.
  maybe_send_snapshot(to, have_slot);
}

void ReplicaCore::on_chunk_req(ProcessId from, const StateChunkReq& msg) {
  if (config_.transfer_chunk_bytes == 0 || !stable_snapshot_provider_) return;
  if (msg.next_slot != last_checkpoint_slot_) {
    // Our stable snapshot moved past the manifest being pulled: offer the
    // newer one so the receiver restarts instead of starving. When we are
    // the stale side, stay silent — the receiver's retransmit timer will
    // redirect the request to a peer that can serve it.
    if (last_checkpoint_slot_ > msg.next_slot)
      offer_snapshot(from, msg.next_slot);
    return;
  }
  const sim::MessagePtr stable = stable_snapshot_provider_();
  if (!stable) return;
  const std::size_t chunk = config_.transfer_chunk_bytes;
  const std::size_t total_bytes = stable->size_bytes();
  const auto total = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, (total_bytes + chunk - 1) / chunk));
  if (msg.index >= total) return;
  const auto payload = static_cast<std::uint32_t>(std::min(
      chunk, total_bytes - static_cast<std::size_t>(msg.index) * chunk));
  env_.send_message(from,
                    sim::make_message<StateChunk>(group_, msg.next_slot,
                                                  msg.index, total, payload,
                                                  stable));
  if (metrics_) metrics_->add_counter(metric::kTransferChunksSent);
}

void ReplicaCore::on_chunk_manifest(ProcessId /*from*/,
                                    const ChunkManifest& msg) {
  if (!snapshot_installer_ || state_ == State::kLeading) return;
  if (msg.next_slot <= next_deliver_slot_) return;  // stale offer
  if (transfer_) {
    // The same manifest from another peer adds nothing (any peer at that
    // checkpoint can already serve chunk requests); an older one is stale.
    if (msg.next_slot <= transfer_->next_slot) return;
    abandon_transfer();  // peers checkpointed past the old manifest: restart
  }
  transfer_.emplace();
  transfer_->next_slot = msg.next_slot;
  transfer_->total_chunks = std::max<std::uint32_t>(1, msg.total_chunks);
  transfer_->chunk_bytes = msg.chunk_bytes;
  transfer_->have.assign(transfer_->total_chunks, false);
  transfer_->epoch = ++transfer_epochs_;
  if (trace_)
    trace_->record(TracePoint::kStateTransferStart, env_.now(), msg.next_slot,
                   0, env_.self().value(), transfer_->total_chunks);
  pump_chunk_requests();
}

void ReplicaCore::pump_chunk_requests() {
  Transfer& t = *transfer_;
  while (t.outstanding.size() < config_.transfer_window &&
         t.next_index < t.total_chunks) {
    const std::uint32_t index = t.next_index++;
    if (t.have[index]) continue;
    request_chunk(index, 0);
  }
}

void ReplicaCore::request_chunk(std::uint32_t index, std::uint32_t tries) {
  Transfer& t = *transfer_;
  const ProcessId peer = best_transfer_peer();
  t.outstanding[index] = OutstandingChunk{peer, env_.now(), tries};
  env_.send_message(peer, sim::make_message<StateChunkReq>(group_, t.next_slot,
                                                           index));
  SimTime delay = config_.transfer_retry_base;
  for (std::uint32_t i = 0; i < tries && delay < config_.transfer_retry_cap;
       ++i)
    delay *= 2;
  delay = std::min(delay, config_.transfer_retry_cap);
  const std::uint64_t epoch = t.epoch;
  env_.start_timer(delay, [this, epoch, index] {
    if (!transfer_ || transfer_->epoch != epoch) return;
    auto it = transfer_->outstanding.find(index);
    if (it == transfer_->outstanding.end()) return;  // chunk arrived in time
    // Overdue: deprioritize the silent peer hard (a probe that never
    // answered is most likely down) and re-request with backoff — possibly
    // from a different peer, which is what survives a sender crash.
    const ProcessId silent = it->second.peer;
    const std::uint32_t prior_tries = it->second.tries;
    auto bw = peer_bandwidth_.find(silent.value());
    if (bw == peer_bandwidth_.end())
      peer_bandwidth_[silent.value()] = 1.0;
    else
      bw->second *= 0.5;
    ++transfer_->retransmits;
    if (metrics_) metrics_->add_counter(metric::kTransferChunksRetransmitted);
    request_chunk(index, prior_tries + 1);
  });
}

void ReplicaCore::on_chunk(ProcessId from, const StateChunk& msg) {
  env_.send_message(from, sim::make_message<StateChunkAck>(group_,
                                                           msg.next_slot,
                                                           msg.index));
  if (!transfer_ || msg.next_slot != transfer_->next_slot) return;
  Transfer& t = *transfer_;
  auto out = t.outstanding.find(msg.index);
  if (out != t.outstanding.end()) {
    if (out->second.peer == from) {
      const SimTime elapsed = env_.now() - out->second.sent_at;
      if (elapsed > 0)
        note_peer_bandwidth(from, static_cast<double>(msg.payload_bytes) *
                                      1e9 / static_cast<double>(elapsed));
    }
    t.outstanding.erase(out);
  }
  if (msg.index < t.have.size() && !t.have[msg.index]) {
    t.have[msg.index] = true;
    ++t.have_count;
    // Peers checkpointed at the same slot hold state covering the same
    // applied prefix; keep the first arriving ref as the splice payload and
    // let later chunks (possibly from other peers) count as wire progress.
    if (!t.state) t.state = msg.state;
  }
  if (t.have_count == t.total_chunks) {
    complete_transfer();
    return;
  }
  pump_chunk_requests();
}

void ReplicaCore::note_peer_bandwidth(ProcessId peer, double bytes_per_sec) {
  auto [it, inserted] = peer_bandwidth_.try_emplace(peer.value(),
                                                    bytes_per_sec);
  if (!inserted)
    it->second = config_.transfer_ewma_alpha * bytes_per_sec +
                 (1.0 - config_.transfer_ewma_alpha) * it->second;
}

ProcessId ReplicaCore::best_transfer_peer() const {
  ProcessId best = env_.self();
  double best_score = -1.0;
  for (ProcessId peer : topology_.group(group_).replicas) {
    if (peer == env_.self()) continue;
    auto it = peer_bandwidth_.find(peer.value());
    const double score = it == peer_bandwidth_.end()
                             ? std::numeric_limits<double>::infinity()
                             : it->second;
    if (score > best_score) {
      best = peer;
      best_score = score;
    }
  }
  return best;
}

void ReplicaCore::complete_transfer() {
  Transfer done = std::move(*transfer_);
  transfer_.reset();  // before the installer: restore() must see no transfer
  if (trace_)
    trace_->record(TracePoint::kStateTransferEnd, env_.now(), done.next_slot,
                   0, env_.self().value(), done.retransmits);
  if (!snapshot_installer_ || state_ == State::kLeading) return;
  if (done.next_slot <= next_deliver_slot_) return;  // outran the manifest
  if (!done.state || !snapshot_installer_(done.state)) return;
  take_checkpoint();
  try_deliver();
}

void ReplicaCore::abandon_transfer() { transfer_.reset(); }

void ReplicaCore::maybe_send_snapshot(ProcessId to, Slot have_slot) {
  if (!snapshot_provider_ || next_deliver_slot_ <= have_slot) return;
  env_.send_message(to, sim::make_message<InstallSnapshotResp>(
                            group_, next_deliver_slot_, snapshot_provider_()));
}

void ReplicaCore::on_install_resp(const InstallSnapshotResp& msg) {
  // Stale or self-defeating installs are ignored: a leader never rolls its
  // own state back, and a snapshot at or below our position adds nothing.
  if (!snapshot_installer_ || state_ == State::kLeading) return;
  if (msg.next_slot <= next_deliver_slot_) return;
  if (!snapshot_installer_(msg.state)) return;
  // The installer restored every layer, including our position (restore()),
  // so next_deliver_slot_ == msg.next_slot here. Persist the installed state
  // as the new durable checkpoint, then resume normal delivery.
  take_checkpoint();
  try_deliver();
}

void ReplicaCore::arm_election_timer() {
  // Randomized patience avoids dueling candidates with two replicas.
  const SimTime jitter = static_cast<SimTime>(env_.random().uniform(
      0, static_cast<std::uint64_t>(config_.election_timeout)));
  env_.start_timer(config_.election_timeout + jitter, [this] {
    if (state_ != State::kFollower) return;
    if (env_.now() - last_leader_contact_ >= config_.election_timeout) {
      start_phase1();
    } else {
      arm_election_timer();
    }
  });
}

}  // namespace dynastar::paxos
