// Wire messages of the Multi-Paxos protocol.
//
// Log positions are `Slot` (0-based), ballots are totally ordered integers
// whose owner rotates over the group's replicas (owner = ballot % replicas).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "sim/message.h"

namespace dynastar::paxos {

using Slot = std::uint64_t;
using Ballot = std::uint64_t;

constexpr Ballot kNoBallot = UINT64_MAX;

/// A slot the acceptor has voted on (used in Promise to recover values).
struct AcceptedEntry {
  Slot slot;
  Ballot ballot;
  sim::MessagePtr value;
};

/// Client/replica -> leader: please order this value.
struct ProposeReq final : sim::Message {
  explicit ProposeReq(sim::MessagePtr v) : value(std::move(v)) {}
  const char* type_name() const override { return "paxos.ProposeReq"; }
  std::size_t size_bytes() const override { return 64 + value->size_bytes(); }
  sim::MessagePtr value;
};

/// Phase 1a: leader -> acceptors.
struct Prepare final : sim::Message {
  Prepare(GroupId g, Ballot b, Slot from) : group(g), ballot(b), from_slot(from) {}
  const char* type_name() const override { return "paxos.Prepare"; }
  GroupId group;
  Ballot ballot;
  Slot from_slot;
};

/// Phase 1b: acceptor -> leader, with every vote at slot >= from_slot.
struct Promise final : sim::Message {
  Promise(GroupId g, Ballot b, std::vector<AcceptedEntry> acc)
      : group(g), ballot(b), accepted(std::move(acc)) {}
  const char* type_name() const override { return "paxos.Promise"; }
  std::size_t size_bytes() const override { return 64 + accepted.size() * 64; }
  GroupId group;
  Ballot ballot;
  std::vector<AcceptedEntry> accepted;
};

/// Acceptor -> proposer: your ballot is stale (promised is higher).
struct Nack final : sim::Message {
  Nack(GroupId g, Ballot b, Ballot promised_b)
      : group(g), ballot(b), promised(promised_b) {}
  const char* type_name() const override { return "paxos.Nack"; }
  GroupId group;
  Ballot ballot;
  Ballot promised;
};

/// Phase 2a: leader -> acceptors. `committed` piggybacks the leader's
/// applied prefix so acceptors can trim votes below it.
struct Accept final : sim::Message {
  Accept(GroupId g, Ballot b, Slot s, Slot committed_prefix, sim::MessagePtr v)
      : group(g),
        ballot(b),
        slot(s),
        committed(committed_prefix),
        value(std::move(v)) {}
  const char* type_name() const override { return "paxos.Accept"; }
  std::size_t size_bytes() const override { return 64 + value->size_bytes(); }
  GroupId group;
  Ballot ballot;
  Slot slot;
  Slot committed;
  sim::MessagePtr value;
};

/// Phase 2b: acceptor -> leader.
struct Accepted final : sim::Message {
  Accepted(GroupId g, Ballot b, Slot s) : group(g), ballot(b), slot(s) {}
  const char* type_name() const override { return "paxos.Accepted"; }
  GroupId group;
  Ballot ballot;
  Slot slot;
};

/// Leader -> other replicas: slot is chosen.
struct Decision final : sim::Message {
  Decision(GroupId g, Slot s, sim::MessagePtr v)
      : group(g), slot(s), value(std::move(v)) {}
  const char* type_name() const override { return "paxos.Decision"; }
  std::size_t size_bytes() const override { return 64 + value->size_bytes(); }
  GroupId group;
  Slot slot;
  sim::MessagePtr value;
};

/// Leader -> replicas: liveness heartbeat (suppresses elections).
/// `floor_slot` advertises the leader's log floor: slots below it have been
/// truncated and can only be recovered via snapshot transfer.
struct Heartbeat final : sim::Message {
  Heartbeat(GroupId g, Ballot b, Slot next, Slot floor)
      : group(g), ballot(b), next_slot(next), floor_slot(floor) {}
  const char* type_name() const override { return "paxos.Heartbeat"; }
  GroupId group;
  Ballot ballot;
  Slot next_slot;
  Slot floor_slot;
};

/// Lagging replica -> leader: resend decisions starting at from_slot.
struct CatchupReq final : sim::Message {
  CatchupReq(GroupId g, Slot from) : group(g), from_slot(from) {}
  const char* type_name() const override { return "paxos.CatchupReq"; }
  GroupId group;
  Slot from_slot;
};

/// Lagging replica -> leader: my gap starts below your log floor; send a
/// full snapshot instead of decisions.
struct InstallSnapshotReq final : sim::Message {
  InstallSnapshotReq(GroupId g, Slot have) : group(g), have_slot(have) {}
  const char* type_name() const override { return "paxos.InstallSnapshotReq"; }
  GroupId group;
  Slot have_slot;
};

/// Leader -> lagging replica: an opaque application snapshot covering every
/// slot below `next_slot`. The payload is produced by the upper layer's
/// snapshot provider and installed by its snapshot installer; Paxos itself
/// only transports it.
struct InstallSnapshotResp final : sim::Message {
  InstallSnapshotResp(GroupId g, Slot next, sim::MessagePtr st)
      : group(g), next_slot(next), state(std::move(st)) {}
  const char* type_name() const override { return "paxos.InstallSnapshotResp"; }
  std::size_t size_bytes() const override {
    return 64 + (state ? state->size_bytes() : 0);
  }
  GroupId group;
  Slot next_slot;
  sim::MessagePtr state;
};

// --- Chunked snapshot transfer (receiver-driven pull) -----------------------
//
// Replaces the monolithic InstallSnapshotResp when ReplicaConfig::transfer
// chunking is enabled. A lagging replica still announces its gap with
// InstallSnapshotReq; a chunk-capable peer answers with a ChunkManifest of
// its latest *stable* (checkpoint-boundary) snapshot instead of a fresh
// monolithic capture. The receiver then pulls fixed-size chunks — windowed,
// with per-chunk retransmit timers — from whichever group peer its
// observed-bandwidth EWMA ranks best, and splices the state in only once
// every chunk has arrived. Checkpoints land at deterministic slot
// boundaries, so every peer whose last checkpoint is at `next_slot` serves
// the same manifest: a transfer survives its original sender crashing by
// re-pulling the remaining chunks from someone else (Chiba/Ohmura/Nakamura,
// arXiv:2110.04448 + arXiv:2204.08656).

/// Peer -> lagging replica: my stable snapshot covers slots < next_slot, cut
/// into total_chunks pieces of chunk_bytes (the last one possibly shorter).
struct ChunkManifest final : sim::Message {
  ChunkManifest(GroupId g, Slot next, std::uint32_t chunks, std::uint32_t bytes)
      : group(g), next_slot(next), total_chunks(chunks), chunk_bytes(bytes) {}
  const char* type_name() const override { return "paxos.ChunkManifest"; }
  GroupId group;
  Slot next_slot;
  std::uint32_t total_chunks;
  std::uint32_t chunk_bytes;
};

/// Receiver -> peer: send chunk `index` of the manifest at `next_slot`.
struct StateChunkReq final : sim::Message {
  StateChunkReq(GroupId g, Slot next, std::uint32_t idx)
      : group(g), next_slot(next), index(idx) {}
  const char* type_name() const override { return "paxos.StateChunkReq"; }
  GroupId group;
  Slot next_slot;
  std::uint32_t index;
};

/// Peer -> receiver: one chunk. The simulator substitutes a shared ref for
/// serialized bytes, so the chunk carries the whole snapshot object while
/// only `payload_bytes` occupy the wire; the receiver reads the payload
/// exclusively at manifest completion (the splice point).
struct StateChunk final : sim::Message {
  StateChunk(GroupId g, Slot next, std::uint32_t idx, std::uint32_t chunks,
             std::uint32_t bytes, sim::MessagePtr st)
      : group(g),
        next_slot(next),
        index(idx),
        total_chunks(chunks),
        payload_bytes(bytes),
        state(std::move(st)) {}
  const char* type_name() const override { return "paxos.StateChunk"; }
  std::size_t size_bytes() const override { return 64 + payload_bytes; }
  GroupId group;
  Slot next_slot;
  std::uint32_t index;
  std::uint32_t total_chunks;
  std::uint32_t payload_bytes;
  sim::MessagePtr state;
};

/// Receiver -> peer: chunk `index` arrived. Closes the per-chunk loop on the
/// wire (senders are stateless in the sim, but the ack keeps the exchange
/// faithful to the real protocol and feeds per-link accounting).
struct StateChunkAck final : sim::Message {
  StateChunkAck(GroupId g, Slot next, std::uint32_t idx)
      : group(g), next_slot(next), index(idx) {}
  const char* type_name() const override { return "paxos.StateChunkAck"; }
  GroupId group;
  Slot next_slot;
  std::uint32_t index;
};

/// Values proposed by the leader are batches of submitted values; the
/// replica unwraps them on delivery. Empty batches act as no-ops when a new
/// leader fills log gaps.
struct Batch final : sim::Message {
  explicit Batch(std::vector<sim::MessagePtr> vs) : values(std::move(vs)) {}
  const char* type_name() const override { return "paxos.Batch"; }
  std::size_t size_bytes() const override {
    std::size_t total = 32;
    for (const auto& v : values) total += v->size_bytes();
    return total;
  }
  std::vector<sim::MessagePtr> values;
};

}  // namespace dynastar::paxos
