// Multi-Paxos replica: proposer + learner role, one instance per group
// member. A stable leader (the owner of the highest seen ballot) batches
// submitted values, runs phase 2 against the group's acceptors, and
// disseminates decisions to the other replicas; leadership changes via
// phase 1 when heartbeats stop. Values are delivered to the upper layer
// (the atomic multicast member) in a single total order per group.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "paxos/messages.h"
#include "paxos/topology.h"
#include "sim/env.h"

namespace dynastar::paxos {

struct ReplicaConfig {
  /// Leader-side batching window; values submitted within it share a slot.
  SimTime batch_delay = microseconds(100);
  std::size_t max_batch = 64;
  SimTime heartbeat_interval = milliseconds(20);
  /// Base follower patience before starting an election (jitter is added).
  SimTime election_timeout = milliseconds(100);
  /// Phase-1 retry if no quorum of promises arrives.
  SimTime phase1_timeout = milliseconds(50);
  /// Follower delay before requesting missing decisions from the leader.
  SimTime catchup_delay = milliseconds(10);
  /// Applied log entries retained for serving CatchupReq beyond the last
  /// checkpoint. A replica whose gap starts below a peer's retained log
  /// pulls a full snapshot via InstallSnapshotReq instead of wedging.
  Slot catchup_window = 16384;
  /// Take an application checkpoint every this many applied slots (0
  /// disables). The applied log is truncated up to the last checkpoint, so
  /// log memory is bounded by max(checkpoint_interval, catchup_window)
  /// retained entries once checkpoints start landing.
  Slot checkpoint_interval = 4096;

  // --- chunked snapshot transfer (see messages.h §Chunked snapshot
  // transfer). Defaults enable chunking with a 64KiB chunk; 0 restores the
  // monolithic InstallSnapshotResp path bit-for-bit. ---
  /// Chunk payload size in bytes (0 disables chunked transfer).
  std::size_t transfer_chunk_bytes = 64 * 1024;
  /// Outstanding chunk requests per transfer (pipeline depth).
  std::size_t transfer_window = 4;
  /// Per-chunk retransmit timer; doubles per retry up to the cap. A timeout
  /// also halves the EWMA bandwidth estimate of the peer that went silent,
  /// steering the re-request toward a faster (or at least alive) peer.
  SimTime transfer_retry_base = milliseconds(25);
  SimTime transfer_retry_cap = milliseconds(400);
  /// Weight of the newest per-peer bandwidth sample in the EWMA.
  double transfer_ewma_alpha = 0.4;
};

/// The Paxos-level position captured in a checkpoint and restored on
/// recovery: everything a replica needs to resume learning after its
/// volatile state (log suffix, proposer bookkeeping) is discarded.
struct ReplicaRestart {
  Slot next_deliver_slot = 0;
  std::uint64_t next_seq = 0;
  Ballot ballot = 0;
  Slot last_checkpoint_slot = 0;
};

class ReplicaCore {
 public:
  /// Called once per delivered value, in delivery order; `seq` increases by
  /// one per value with no gaps.
  using DeliverFn = std::function<void(std::uint64_t seq, const sim::MessagePtr&)>;

  ReplicaCore(sim::Env& env, const Topology& topology, GroupId group,
              ReplicaConfig config = {});

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Optional lifecycle trace sink; records one kPaxosDecided event per
  /// delivered value. Null (the default) disables the hook entirely.
  void set_trace(TraceCollector* trace) { trace_ = trace; }

  /// Invoked every time this replica completes phase 1 and starts leading.
  /// Upper layers use it to re-emit coordination messages a failed leader
  /// may have dropped.
  void set_on_lead(std::function<void()> fn) { on_lead_ = std::move(fn); }

  /// Invoked right after the replica crosses a checkpoint boundary
  /// (`last_checkpoint_slot()` is already advanced); the upper layer
  /// captures its durable checkpoint synchronously. The hook must not
  /// consume CPU, RNG draws, or timers.
  void set_checkpoint_hook(std::function<void()> fn) {
    checkpoint_hook_ = std::move(fn);
  }

  /// Produces an opaque snapshot of the upper layer's current state, shipped
  /// to peers whose catch-up gap starts below our log floor.
  void set_snapshot_provider(std::function<sim::MessagePtr()> fn) {
    snapshot_provider_ = std::move(fn);
  }

  /// Installs a peer snapshot; must restore every layer including this
  /// replica's position (via restore()). Returns false to reject a payload
  /// it does not recognise.
  void set_snapshot_installer(std::function<bool(const sim::MessagePtr&)> fn) {
    snapshot_installer_ = std::move(fn);
  }

  /// Produces the snapshot captured at the *last checkpoint boundary*
  /// (null if none exists yet), without copying state. Chunked transfers
  /// serve this instead of a fresh capture: checkpoint boundaries are
  /// deterministic slots, so every peer checkpointed at the same slot serves
  /// an interchangeable manifest and a receiver can resume a transfer from a
  /// different peer mid-flight.
  void set_stable_snapshot_provider(std::function<sim::MessagePtr()> fn) {
    stable_snapshot_provider_ = std::move(fn);
  }

  /// Optional metrics sink for transfer counters (chunks sent /
  /// retransmitted). Null disables.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Starts timers; leader bootstrap for replica index 0.
  void start();

  /// Resets all volatile state to a checkpointed position. The applied log,
  /// proposer bookkeeping, and stashed values are dropped; the suffix above
  /// `s.next_deliver_slot` is re-learned via catch-up or snapshot install.
  void restore(const ReplicaRestart& s);

  /// Captures the Paxos-level position for a checkpoint.
  [[nodiscard]] ReplicaRestart checkpoint_state() const {
    return ReplicaRestart{next_deliver_slot_, next_seq_, ballot_,
                          last_checkpoint_slot_};
  }

  /// Rejoins the group after restore(): arms liveness timers as a follower
  /// and proactively asks the presumptive leader for the missing suffix.
  /// Unlike start(), never bootstraps phase 1 immediately — a recovered
  /// bootstrap replica must not duel the established leader.
  void start_recovered();

  /// Submits a value for total ordering within this group. May be called by
  /// the co-located upper layer at any time.
  void submit(sim::MessagePtr value);

  /// Processes a Paxos message; returns false if the message is not a Paxos
  /// message of this group.
  bool handle(ProcessId from, const sim::MessagePtr& msg);

  [[nodiscard]] bool is_leader() const { return state_ == State::kLeading; }
  [[nodiscard]] Ballot ballot() const { return ballot_; }
  [[nodiscard]] ProcessId leader_hint() const;
  [[nodiscard]] std::uint64_t delivered_count() const { return next_seq_; }
  [[nodiscard]] GroupId group() const { return group_; }
  [[nodiscard]] Slot next_deliver_slot() const { return next_deliver_slot_; }
  /// Slots below this have been truncated from the applied log.
  [[nodiscard]] Slot floor_slot() const { return floor_slot_; }
  [[nodiscard]] Slot last_checkpoint_slot() const {
    return last_checkpoint_slot_;
  }
  /// Retained applied-log entries (bounded-memory assertion hook).
  [[nodiscard]] std::size_t applied_log_size() const { return log_.size(); }

 private:
  enum class State { kFollower, kPhase1, kLeading };

  void on_propose(const ProposeReq& msg);
  void on_promise(ProcessId from, const Promise& msg);
  void on_nack(const Nack& msg);
  void on_accepted(ProcessId from, const Accepted& msg);
  void on_decision(const Decision& msg);
  void on_heartbeat(const Heartbeat& msg);
  void on_catchup(ProcessId from, const CatchupReq& msg);
  void on_install_req(ProcessId from, const InstallSnapshotReq& msg);
  void on_install_resp(const InstallSnapshotResp& msg);
  void maybe_send_snapshot(ProcessId to, Slot have_slot);
  void take_checkpoint();

  // Chunked transfer: sender side.
  /// Answers a snapshot request with a ChunkManifest when a stable snapshot
  /// newer than `have_slot` exists, else falls back to the monolithic path.
  void offer_snapshot(ProcessId to, Slot have_slot);
  void on_chunk_req(ProcessId from, const StateChunkReq& msg);
  // Chunked transfer: receiver side.
  void on_chunk_manifest(ProcessId from, const ChunkManifest& msg);
  void on_chunk(ProcessId from, const StateChunk& msg);
  void request_chunk(std::uint32_t index, std::uint32_t tries);
  void pump_chunk_requests();
  void complete_transfer();
  void abandon_transfer();
  void note_peer_bandwidth(ProcessId peer, double bytes_per_sec);
  [[nodiscard]] ProcessId best_transfer_peer() const;

  void start_phase1();
  void become_leader();
  void step_down(Ballot higher);
  void flush_batch();
  void propose_slot(Slot slot, sim::MessagePtr value);
  void record_decision(Slot slot, sim::MessagePtr value);
  void try_deliver();
  void arm_election_timer();
  void arm_heartbeat_timer();
  void arm_stash_retry();
  void maybe_request_catchup(Slot leader_next, Slot leader_floor);
  [[nodiscard]] Ballot next_owned_ballot(Ballot at_least) const;
  [[nodiscard]] std::size_t my_index() const { return my_index_; }

  sim::Env& env_;
  const Topology& topology_;
  GroupId group_;
  ReplicaConfig config_;
  DeliverFn deliver_;
  TraceCollector* trace_ = nullptr;
  std::function<void()> on_lead_;
  std::function<void()> checkpoint_hook_;
  std::function<sim::MessagePtr()> snapshot_provider_;
  std::function<sim::MessagePtr()> stable_snapshot_provider_;
  std::function<bool(const sim::MessagePtr&)> snapshot_installer_;
  std::size_t my_index_ = 0;

  State state_ = State::kFollower;
  Ballot ballot_ = 0;

  // Phase 1 bookkeeping.
  std::unordered_set<std::uint64_t> promises_;
  std::map<Slot, AcceptedEntry> recovered_;
  std::uint64_t phase1_epoch_ = 0;

  // Leader phase 2 bookkeeping.
  struct InFlight {
    sim::MessagePtr value;
    std::unordered_set<std::uint64_t> votes;
    SimTime proposed_at = 0;
  };
  std::map<Slot, InFlight> in_flight_;
  Slot next_slot_ = 0;
  std::vector<sim::MessagePtr> batch_;
  bool flush_scheduled_ = false;

  // Learner state. `floor_slot_` is the lowest slot still in log_; slots
  // below it are only recoverable via snapshot transfer.
  std::map<Slot, sim::MessagePtr> log_;
  Slot next_deliver_slot_ = 0;
  std::uint64_t next_seq_ = 0;
  Slot floor_slot_ = 0;
  Slot last_checkpoint_slot_ = 0;

  // Liveness.
  SimTime last_leader_contact_ = 0;
  bool catchup_pending_ = false;

  // --- chunked transfer state (receiver side) ---
  struct OutstandingChunk {
    ProcessId peer{0};
    SimTime sent_at = 0;
    std::uint32_t tries = 0;
  };
  struct Transfer {
    Slot next_slot = 0;
    std::uint32_t total_chunks = 0;
    std::uint32_t chunk_bytes = 0;
    std::vector<bool> have;
    std::uint32_t have_count = 0;
    /// Next chunk index never requested (requested-and-lost chunks re-enter
    /// via their retransmit timers, not this cursor).
    std::uint32_t next_index = 0;
    /// Snapshot ref from the first chunk that arrived. Peers checkpointed at
    /// the same slot hold state covering the same applied prefix, so chunks
    /// from other peers only contribute wire progress (the sim's stand-in
    /// for byte-range reassembly).
    sim::MessagePtr state;
    std::map<std::uint32_t, OutstandingChunk> outstanding;
    /// Guards retransmit timers across transfer restarts.
    std::uint64_t epoch = 0;
    std::uint32_t retransmits = 0;
  };
  std::optional<Transfer> transfer_;
  std::uint64_t transfer_epochs_ = 0;
  /// Observed per-peer bandwidth EWMA (bytes/sec), learned from chunk
  /// request->arrival times; untried peers score +inf so they get probed.
  std::unordered_map<std::uint64_t, double> peer_bandwidth_;
  MetricsRegistry* metrics_ = nullptr;

  // Values awaiting a known leader (buffered during elections).
  std::deque<sim::MessagePtr> stashed_;
  bool stash_retry_armed_ = false;
};

}  // namespace dynastar::paxos
