#include "paxos/acceptor.h"

namespace dynastar::paxos {

bool AcceptorCore::handle(ProcessId from, const sim::MessagePtr& msg) {
  if (auto* prepare = dynamic_cast<const Prepare*>(msg.get())) {
    if (prepare->group != group_) return false;
    on_prepare(from, *prepare);
    return true;
  }
  if (auto* accept = dynamic_cast<const Accept*>(msg.get())) {
    if (accept->group != group_) return false;
    on_accept(from, *accept);
    return true;
  }
  return false;
}

void AcceptorCore::on_prepare(ProcessId from, const Prepare& msg) {
  if (storage_.promised != kNoBallot && msg.ballot <= storage_.promised) {
    env_.send_message(from,
                      sim::make_message<Nack>(group_, msg.ballot, storage_.promised));
    return;
  }
  storage_.promised = msg.ballot;
  std::vector<AcceptedEntry> accepted;
  for (auto it = storage_.votes.lower_bound(msg.from_slot);
       it != storage_.votes.end(); ++it) {
    accepted.push_back(it->second);
  }
  env_.send_message(
      from, sim::make_message<Promise>(group_, msg.ballot, std::move(accepted)));
}

void AcceptorCore::on_accept(ProcessId from, const Accept& msg) {
  if (storage_.promised != kNoBallot && msg.ballot < storage_.promised) {
    env_.send_message(from,
                      sim::make_message<Nack>(group_, msg.ballot, storage_.promised));
    return;
  }
  storage_.promised = msg.ballot;
  storage_.votes[msg.slot] = AcceptedEntry{msg.slot, msg.ballot, msg.value};
  // Trim votes far below the leader's applied prefix. The window covers a
  // prospective new leader whose own applied prefix lags the old leader's:
  // its phase-1 recovery still finds every vote it can need. A replica
  // lagging more than the window would require snapshot transfer in a real
  // deployment; the simulation's heartbeat-driven catch-up keeps lag far
  // below this bound.
  constexpr Slot kVoteWindow = 4096;
  if (msg.committed > kVoteWindow)
    storage_.votes.erase(
        storage_.votes.begin(),
        storage_.votes.lower_bound(msg.committed - kVoteWindow));
  env_.send_message(from, sim::make_message<Accepted>(group_, msg.ballot, msg.slot));
}

}  // namespace dynastar::paxos
