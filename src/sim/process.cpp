#include "sim/process.h"

namespace dynastar::sim {

SimTime Process::now() const { return world_.now(); }

void Process::send_message(ProcessId to, const MessagePtr& msg) {
  world_.network().send(id_, to, msg);
}

void Process::start_timer(SimTime delay, std::function<void()> fn) {
  const std::uint64_t inc = incarnation_;
  world_.sim().schedule_after(delay, [this, inc, fn = std::move(fn)]() mutable {
    if (crashed_ || incarnation_ != inc) return;
    fn();
  });
}

void Process::accept_delivery(ProcessId from, MessagePtr msg) {
  inbox_.emplace_back(from, std::move(msg));
  if (!serving_) serve_next();
}

void Process::serve_next() {
  if (inbox_.empty()) {
    serving_ = false;
    return;
  }
  serving_ = true;
  const std::uint64_t inc = incarnation_;
  // The message occupies the CPU for its service time, then the handler runs
  // and may charge additional work (consume_cpu) which delays the next one.
  world_.sim().schedule_after(message_service_time_, [this, inc] {
    if (crashed_ || incarnation_ != inc || inbox_.empty()) return;
    auto [from, msg] = std::move(inbox_.front());
    inbox_.pop_front();
    on_message(from, msg);
    // pending_work_ also carries CPU charged outside message handling —
    // timer-driven work such as parallel-executor batch flushes and STAR
    // epoch switches. It delays the next serve all the same: CPU consumed
    // from a timer is not free.
    const SimTime extra = pending_work_;
    pending_work_ = 0;
    if (extra > 0) {
      world_.sim().schedule_after(extra, [this, inc] {
        if (crashed_ || incarnation_ != inc) return;
        serve_next();
      });
    } else {
      serve_next();
    }
  });
}

}  // namespace dynastar::sim
