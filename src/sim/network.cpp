#include "sim/network.h"

namespace dynastar::sim {

namespace {
Network::LinkKey link_key(ProcessId from, ProcessId to) {
  return Network::LinkKey{from.value(), to.value()};
}
}  // namespace

SimTime Network::sample_latency(std::size_t payload_bytes) {
  SimTime latency = config_.base_latency;
  if (config_.jitter > 0)
    latency += static_cast<SimTime>(
        rng_.uniform(0, static_cast<std::uint64_t>(config_.jitter)));
  latency += config_.per_kib_cost *
             static_cast<SimTime>((payload_bytes + 1023) / 1024);
  return latency;
}

void Network::send(ProcessId from, ProcessId to, const MessagePtr& msg) {
  ++messages_sent_;
  bytes_sent_ += msg->size_bytes();
  if (blocked_.contains(link_key(from, to))) {
    ++messages_dropped_;
    return;
  }
  if (config_.drop_probability > 0 && rng_.chance(config_.drop_probability)) {
    ++messages_dropped_;
    return;
  }
  const bool duplicate = config_.duplicate_probability > 0 &&
                         rng_.chance(config_.duplicate_probability);
  const SimTime latency = sample_latency(msg->size_bytes());
  sim_.schedule_after(latency, [this, from, to, msg] {
    deliver_(from, to, msg);
  });
  if (duplicate) {
    const SimTime dup_latency = sample_latency(msg->size_bytes());
    sim_.schedule_after(dup_latency, [this, from, to, msg] {
      deliver_(from, to, msg);
    });
  }
}

void Network::block_link(ProcessId from, ProcessId to) {
  blocked_.insert(link_key(from, to));
}

void Network::unblock_link(ProcessId from, ProcessId to) {
  blocked_.erase(link_key(from, to));
}

void Network::unblock_all() { blocked_.clear(); }

}  // namespace dynastar::sim
