#include "sim/network.h"

#include <algorithm>

#include "common/metric_names.h"

namespace dynastar::sim {

namespace {
Network::LinkKey link_key(ProcessId from, ProcessId to) {
  return Network::LinkKey{from.value(), to.value()};
}

std::uint64_t site_pair_key(std::uint32_t from_site, std::uint32_t to_site) {
  return (static_cast<std::uint64_t>(from_site) << 32) | to_site;
}

constexpr std::uint32_t kNoSite = UINT32_MAX;
}  // namespace

SimTime Network::sample_latency(std::size_t payload_bytes) {
  SimTime latency = config_.base_latency;
  if (config_.jitter > 0)
    latency += static_cast<SimTime>(
        rng_.uniform(0, static_cast<std::uint64_t>(config_.jitter)));
  latency += config_.per_kib_cost *
             static_cast<SimTime>((payload_bytes + 1023) / 1024);
  return latency;
}

void Network::set_site(ProcessId process, std::uint32_t site) {
  sites_[process.value()] = site;
}

std::uint32_t Network::site_of(ProcessId process) const {
  auto it = sites_.find(process.value());
  return it == sites_.end() ? kNoSite : it->second;
}

void Network::set_site_profile(std::uint32_t from_site, std::uint32_t to_site,
                               LinkProfile profile) {
  site_profiles_[site_pair_key(from_site, to_site)] = profile;
}

void Network::set_link_profile(ProcessId from, ProcessId to,
                               LinkProfile profile) {
  overrides_[link_key(from, to)] = profile;
  link_series_.erase(link_key(from, to));  // label source may change
}

void Network::clear_link_profile(ProcessId from, ProcessId to) {
  overrides_.erase(link_key(from, to));
  link_series_.erase(link_key(from, to));
}

std::optional<LinkProfile> Network::link_profile_override(ProcessId from,
                                                          ProcessId to) const {
  auto it = overrides_.find(link_key(from, to));
  if (it == overrides_.end()) return std::nullopt;
  return it->second;
}

LinkProfile Network::resolve_profile(ProcessId from, ProcessId to) const {
  if (auto it = overrides_.find(link_key(from, to)); it != overrides_.end())
    return it->second;
  const std::uint32_t fs = site_of(from);
  const std::uint32_t ts = site_of(to);
  if (fs != kNoSite && ts != kNoSite) {
    auto it = site_profiles_.find(site_pair_key(fs, ts));
    if (it != site_profiles_.end()) return it->second;
  }
  return default_profile_;
}

void Network::account_link_bytes(ProcessId from, ProcessId to,
                                 std::size_t bytes, bool site_resolved) {
  if (metrics_ == nullptr) return;
  const LinkKey key = link_key(from, to);
  auto it = link_series_.find(key);
  if (it == link_series_.end()) {
    // Site-resolved links aggregate per site pair (bounded cardinality even
    // with many processes); explicit overrides get a per-process label.
    char label[32];
    if (site_resolved) {
      std::snprintf(label, sizeof(label), "s%u->s%u", site_of(from),
                    site_of(to));
    } else {
      std::snprintf(label, sizeof(label), "p%llu->p%llu",
                    static_cast<unsigned long long>(from.value()),
                    static_cast<unsigned long long>(to.value()));
    }
    TimeSeries& series =
        metrics_->series(metric::kNetworkBytesSent, {{"link", label}});
    it = link_series_.emplace(key, &series).first;
  }
  it->second->add(sim_.now(), static_cast<double>(bytes));
}

void Network::send(ProcessId from, ProcessId to, const MessagePtr& msg) {
  ++messages_sent_;
  const std::size_t size = msg->size_bytes();
  bytes_sent_ += size;
  if (blocked_.contains(link_key(from, to))) {
    ++messages_dropped_;
    return;
  }
  if (config_.drop_probability > 0 && rng_.chance(config_.drop_probability)) {
    ++messages_dropped_;
    return;
  }
  const bool duplicate = config_.duplicate_probability > 0 &&
                         rng_.chance(config_.duplicate_probability);

  const bool has_override = overrides_.contains(link_key(from, to));
  LinkProfile profile = resolve_profile(from, to);
  SimTime tx_delay = 0;
  if (profile.bandwidth_bytes_per_sec > 0) {
    // FIFO pipe: this message starts serializing when everything accepted
    // before it is on the wire, so large messages delay their followers.
    const double rate = static_cast<double>(profile.bandwidth_bytes_per_sec) *
                        std::max(bandwidth_scale_, 1e-9);
    LinkState& link = link_states_[link_key(from, to)];
    if (profile.queue_bytes > 0 &&
        link.queued_bytes + size > profile.queue_bytes) {
      ++messages_dropped_;
      ++messages_queue_dropped_;
      return;
    }
    const SimTime now = sim_.now();
    const SimTime tx_start = std::max(now, link.busy_until);
    const SimTime tx_time = std::max<SimTime>(
        1, static_cast<SimTime>(static_cast<double>(size) * 1e9 / rate));
    link.busy_until = tx_start + tx_time;
    tx_delay = link.busy_until - now;  // queueing wait + serialization
    link.queued_bytes += size;
    sim_.schedule_after(link.busy_until - now, [this, from, to, size] {
      LinkState& l = link_states_[LinkKey{from.value(), to.value()}];
      l.queued_bytes -= std::min(l.queued_bytes, size);
    });
  }
  if (!profile.is_null() || has_override)
    account_link_bytes(from, to, size, /*site_resolved=*/!has_override);

  const SimTime latency = tx_delay + profile.propagation + sample_latency(size);
  sim_.schedule_after(latency, [this, from, to, msg] {
    deliver_(from, to, msg);
  });
  if (duplicate) {
    const SimTime dup_latency =
        tx_delay + profile.propagation + sample_latency(size);
    sim_.schedule_after(dup_latency, [this, from, to, msg] {
      deliver_(from, to, msg);
    });
  }
}

void Network::block_link(ProcessId from, ProcessId to) {
  blocked_.insert(link_key(from, to));
}

void Network::unblock_link(ProcessId from, ProcessId to) {
  blocked_.erase(link_key(from, to));
}

void Network::unblock_all() { blocked_.clear(); }

}  // namespace dynastar::sim
