// Process: base class for every simulated node (replica, acceptor, client,
// oracle replica, ...). Implements the Env interface for protocol cores and
// models the node as a single-server queue: each incoming message occupies
// the node's CPU for a service time, and handlers can charge extra work via
// consume_cpu(). Queueing is what produces realistic saturation — and thus
// the "peak throughput" numbers the benchmark figures report.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "common/ids.h"
#include "common/rng.h"
#include "sim/env.h"
#include "sim/message.h"
#include "sim/world.h"

namespace dynastar::sim {

class Process : public Env {
 public:
  Process(ProcessId id, World& world)
      : id_(id), world_(world), rng_(world.fork_rng()) {}
  ~Process() override = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Called once when the world starts running.
  virtual void on_start() {}
  /// Handles one message; runs after the message waited in the CPU queue.
  virtual void on_message(ProcessId from, const MessagePtr& msg) = 0;
  /// Called when the process crashes; volatile state should be dropped here.
  virtual void on_crash() {}
  /// Called when a crashed process restarts (new incarnation; timers and
  /// queued messages from the previous incarnation never fire).
  virtual void on_recover() {}

  /// Fixed CPU cost charged per handled message (settable per node type).
  void set_message_service_time(SimTime t) { message_service_time_ = t; }

  // --- Env ---
  [[nodiscard]] ProcessId self() const override { return id_; }
  [[nodiscard]] SimTime now() const override;
  void send_message(ProcessId to, const MessagePtr& msg) override;
  void start_timer(SimTime delay, std::function<void()> fn) override;
  void consume_cpu(SimTime amount) override { pending_work_ += amount; }
  Rng& random() override { return rng_; }
  [[nodiscard]] std::size_t inbox_depth() const override {
    return inbox_.size();
  }
  [[nodiscard]] bool surge_active() const override {
    return world_.surge_active();
  }

 protected:
  World& world() { return world_; }
  MetricsRegistry& metrics() { return world_.metrics(); }

 private:
  friend class World;

  /// Entry point from the network: enqueue and serve FIFO.
  void accept_delivery(ProcessId from, MessagePtr msg);
  void serve_next();

  ProcessId id_;
  World& world_;
  Rng rng_;
  bool crashed_ = false;
  std::uint64_t incarnation_ = 0;

  SimTime message_service_time_ = microseconds(5);
  std::deque<std::pair<ProcessId, MessagePtr>> inbox_;
  bool serving_ = false;
  SimTime pending_work_ = 0;  // extra CPU charged by the current handler
};

}  // namespace dynastar::sim
