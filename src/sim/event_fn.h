// Small-buffer-optimized move-only callable for simulator events.
//
// Every scheduled event used to heap-allocate a std::function; the captures
// actually used in this codebase are small (the network delivery lambda is
// 32 bytes with intrusive MessagePtr, Process timer wrappers are 48), so an
// inline buffer of 48 bytes makes event scheduling allocation-free on the
// hot path. Larger captures transparently fall back to the heap.
//
// Relocation contract: moving an EventFn relocates the stored callable by
// memcpy (no move-constructor call) so heap sifts in the event queue move
// plain bytes. Callables must therefore be trivially relocatable — true
// for every capture in this codebase: raw pointers, ids, sim::Ref,
// std::function (libstdc++ stores non-trivially-copyable targets on the
// heap). Do not capture self-referential types (e.g. std::string with SSO,
// std::list) by value directly in an event lambda; wrap them in a
// std::function or capture by pointer instead.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

namespace dynastar::sim {

class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = 16;

  constexpr EventFn() noexcept = default;
  constexpr EventFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vt_ = inline_vtable<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = heap_vtable<Fn>();
    }
  }

  EventFn(EventFn&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) std::memcpy(storage_, other.storage_, kInlineSize);
    other.vt_ = nullptr;
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) std::memcpy(storage_, other.storage_, kInlineSize);
      other.vt_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { vt_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static const VTable* inline_vtable() {
    static constexpr VTable vt{
        [](void* s) { (*static_cast<Fn*>(s))(); },
        [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
    };
    return &vt;
  }

  template <typename Fn>
  static const VTable* heap_vtable() {
    static constexpr VTable vt{
        [](void* s) { (**static_cast<Fn**>(s))(); },
        [](void* s) noexcept { delete *static_cast<Fn**>(s); },
    };
    return &vt;
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const VTable* vt_ = nullptr;
};

}  // namespace dynastar::sim
