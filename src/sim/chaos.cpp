#include "sim/chaos.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>

#include "common/metric_names.h"

namespace dynastar::sim {

void ChaosInjector::arm() {
  schedule_crashes();
  schedule_link_cuts();
  schedule_network_windows();
  schedule_link_degrades();
  schedule_surges();  // last: may pin a window to a scheduled recovery
}

SimTime ChaosInjector::random_time_in_horizon(SimTime latest_margin) {
  const SimTime span = std::max<SimTime>(1, config_.horizon - latest_margin);
  return config_.start +
         static_cast<SimTime>(rng_.uniform(0, static_cast<std::uint64_t>(span)));
}

void ChaosInjector::record(SimTime at, std::string what) {
  std::ostringstream line;
  line << "t=" << to_millis(at) << "ms " << what;
  log_.push_back(line.str());
  ++injected_;
  world_.metrics().add_counter(metric::kChaosEvents);
  world_.trace().record(TracePoint::kChaosEvent, at, injected_, 0, 0, 0);
}

void ChaosInjector::schedule_crashes() {
  if (config_.crash_groups.empty()) return;
  if (config_.crash_events == 0 && config_.long_crash_events == 0) return;
  // Per-group "next free time": a group's windows never overlap, so at most
  // one member of any replica group is down at once. Shared between the
  // short- and long-downtime programs.
  std::vector<SimTime> free_at(config_.crash_groups.size(), config_.start);
  const auto one_crash = [&](SimTime min_downtime, SimTime max_downtime) {
    const std::size_t g = static_cast<std::size_t>(
        rng_.uniform(0, config_.crash_groups.size() - 1));
    const auto& members = config_.crash_groups[g];
    if (members.empty()) return;
    const ProcessId victim =
        members[static_cast<std::size_t>(rng_.uniform(0, members.size() - 1))];
    const SimTime downtime = static_cast<SimTime>(
        rng_.uniform(static_cast<std::uint64_t>(min_downtime),
                     static_cast<std::uint64_t>(max_downtime)));
    SimTime at = random_time_in_horizon(max_downtime);
    at = std::max(at, free_at[g]);
    free_at[g] = at + downtime + milliseconds(100);

    world_.sim().schedule_at(at, [this, victim, at] {
      std::ostringstream what;
      what << "crash p" << victim;
      record(at, what.str());
      world_.crash(victim);
    });
    const SimTime up_at = at + downtime;
    recovery_times_.push_back(up_at);
    world_.sim().schedule_at(up_at, [this, victim, up_at] {
      std::ostringstream what;
      what << "recover p" << victim;
      record(up_at, what.str());
      world_.recover(victim);
    });
  };
  for (std::size_t e = 0; e < config_.crash_events; ++e)
    one_crash(config_.min_downtime, config_.max_downtime);
  for (std::size_t e = 0; e < config_.long_crash_events; ++e)
    one_crash(config_.long_min_downtime, config_.long_max_downtime);
}

void ChaosInjector::schedule_link_cuts() {
  if (config_.link_pool.size() < 2 || config_.link_cut_events == 0) return;
  for (std::size_t e = 0; e < config_.link_cut_events; ++e) {
    const std::size_t a = static_cast<std::size_t>(
        rng_.uniform(0, config_.link_pool.size() - 1));
    std::size_t b = static_cast<std::size_t>(
        rng_.uniform(0, config_.link_pool.size() - 2));
    if (b >= a) ++b;
    const ProcessId from = config_.link_pool[a];
    const ProcessId to = config_.link_pool[b];
    const SimTime duration = static_cast<SimTime>(
        rng_.uniform(static_cast<std::uint64_t>(milliseconds(50)),
                     static_cast<std::uint64_t>(config_.max_cut)));
    const SimTime at = random_time_in_horizon(config_.max_cut);

    world_.sim().schedule_at(at, [this, from, to, at] {
      std::ostringstream what;
      what << "cut link p" << from << "->p" << to;
      record(at, what.str());
      world_.network().block_link(from, to);
    });
    const SimTime heal_at = at + duration;
    world_.sim().schedule_at(heal_at, [this, from, to, heal_at] {
      std::ostringstream what;
      what << "heal link p" << from << "->p" << to;
      record(heal_at, what.str());
      world_.network().unblock_link(from, to);
    });
  }
}

void ChaosInjector::schedule_network_windows() {
  // Windows of one kind may overlap, so restores are refcounted: the first
  // window to open captures the steady-state value, and only the last window
  // to close restores it. Per-window save/restore would leave the burst value
  // permanently installed when windows overlap without nesting.
  for (std::size_t e = 0; e < config_.drop_burst_events; ++e) {
    const SimTime duration = static_cast<SimTime>(
        rng_.uniform(static_cast<std::uint64_t>(milliseconds(50)),
                     static_cast<std::uint64_t>(config_.max_window)));
    const SimTime at = random_time_in_horizon(config_.max_window);
    const double burst = config_.burst_drop_probability;
    world_.sim().schedule_at(at, [this, at, burst] {
      std::ostringstream what;
      what << "drop burst p=" << burst;
      record(at, what.str());
      if (drop_windows_++ == 0)
        steady_drop_ = world_.network().config().drop_probability;
      world_.network().set_drop_probability(burst);
    });
    world_.sim().schedule_at(at + duration, [this, at, duration] {
      record(at + duration, "drop burst end");
      if (--drop_windows_ == 0)
        world_.network().set_drop_probability(steady_drop_);
    });
  }
  for (std::size_t e = 0; e < config_.latency_spike_events; ++e) {
    const SimTime duration = static_cast<SimTime>(
        rng_.uniform(static_cast<std::uint64_t>(milliseconds(50)),
                     static_cast<std::uint64_t>(config_.max_window)));
    const SimTime at = random_time_in_horizon(config_.max_window);
    const SimTime spike = config_.spike_latency;
    world_.sim().schedule_at(at, [this, at, spike] {
      std::ostringstream what;
      what << "latency spike " << to_millis(spike) << "ms";
      record(at, what.str());
      if (latency_windows_++ == 0)
        steady_latency_ = world_.network().config().base_latency;
      world_.network().set_base_latency(spike);
    });
    world_.sim().schedule_at(at + duration, [this, at, duration] {
      record(at + duration, "latency spike end");
      if (--latency_windows_ == 0)
        world_.network().set_base_latency(steady_latency_);
    });
  }
  for (std::size_t e = 0; e < config_.bandwidth_drop_events; ++e) {
    const SimTime duration = static_cast<SimTime>(
        rng_.uniform(static_cast<std::uint64_t>(milliseconds(50)),
                     static_cast<std::uint64_t>(config_.max_window)));
    const SimTime at = random_time_in_horizon(config_.max_window);
    const double factor = config_.bandwidth_drop_factor;
    world_.sim().schedule_at(at, [this, at, factor] {
      std::ostringstream what;
      what << "bandwidth drop /" << factor;
      record(at, what.str());
      if (bandwidth_windows_++ == 0)
        steady_bandwidth_scale_ = world_.network().bandwidth_scale();
      world_.network().set_bandwidth_scale(steady_bandwidth_scale_ / factor);
    });
    world_.sim().schedule_at(at + duration, [this, at, duration] {
      record(at + duration, "bandwidth drop end");
      if (--bandwidth_windows_ == 0)
        world_.network().set_bandwidth_scale(steady_bandwidth_scale_);
    });
  }
}

void ChaosInjector::schedule_link_degrades() {
  if (config_.link_pool.size() < 2 || config_.link_degrade_events == 0) return;
  for (std::size_t e = 0; e < config_.link_degrade_events; ++e) {
    const std::size_t a = static_cast<std::size_t>(
        rng_.uniform(0, config_.link_pool.size() - 1));
    std::size_t b = static_cast<std::size_t>(
        rng_.uniform(0, config_.link_pool.size() - 2));
    if (b >= a) ++b;
    const ProcessId from = config_.link_pool[a];
    const ProcessId to = config_.link_pool[b];
    const SimTime duration = static_cast<SimTime>(
        rng_.uniform(static_cast<std::uint64_t>(milliseconds(50)),
                     static_cast<std::uint64_t>(config_.max_window)));
    const SimTime at = random_time_in_horizon(config_.max_window);

    // Each window saves whatever override the link carried when it opened
    // and restores exactly that when it closes. Overlapping windows on the
    // same link unwind in close order (the later close restores the earlier
    // window's degraded profile, then that window's close restores the
    // original) — acceptable nesting for a nemesis.
    auto saved = std::make_shared<std::optional<LinkProfile>>();
    world_.sim().schedule_at(at, [this, from, to, at, saved] {
      std::ostringstream what;
      what << "degrade link p" << from << "->p" << to;
      record(at, what.str());
      *saved = world_.network().link_profile_override(from, to);
      world_.network().set_link_profile(from, to, config_.degraded_profile);
    });
    const SimTime heal_at = at + duration;
    world_.sim().schedule_at(heal_at, [this, from, to, heal_at, saved] {
      record(heal_at, "degrade end");
      if (saved->has_value())
        world_.network().set_link_profile(from, to, **saved);
      else
        world_.network().clear_link_profile(from, to);
    });
  }
}

void ChaosInjector::schedule_surges() {
  if (config_.surge_events == 0) return;
  for (std::size_t e = 0; e < config_.surge_events; ++e) {
    const SimTime duration = static_cast<SimTime>(
        rng_.uniform(static_cast<std::uint64_t>(config_.surge_min_duration),
                     static_cast<std::uint64_t>(config_.surge_max_duration)));
    // Draw the random start unconditionally so the Rng stream — and thus the
    // rest of the fault program — is identical whether or not the first
    // window ends up pinned to a recovery instant.
    SimTime at = random_time_in_horizon(config_.surge_max_duration);
    const bool pinned =
        e == 0 && config_.surge_with_recovery && !recovery_times_.empty();
    if (pinned) at = recovery_times_.front();
    world_.sim().schedule_at(at, [this, at, pinned] {
      std::ostringstream what;
      what << "surge begin" << (pinned ? " (at recovery)" : "");
      record(at, what.str());
      world_.begin_surge();
    });
    const SimTime end_at = at + duration;
    world_.sim().schedule_at(end_at, [this, end_at] {
      record(end_at, "surge end");
      world_.end_surge();
    });
  }
}

}  // namespace dynastar::sim
