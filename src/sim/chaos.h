// ChaosInjector: a seeded, deterministic nemesis.
//
// Given a ChaosConfig, the injector pre-computes a schedule of fault events
// (process crash + delayed recover, directed link cuts/heals, transient
// latency-spike and drop-burst windows) from its own Rng stream and arms them
// on the world's simulator before the run starts. Because the schedule is a
// pure function of the config, two runs with the same seed inject the exact
// same faults at the exact same instants — chaos tests stay bit-reproducible.
//
// Inspired by Jepsen-style nemesis testing: the injector never touches
// protocol state, only the environment (World::crash/recover, link blocking,
// global network-knob windows via Network's explicit setters, bandwidth
// collapses, and per-link degrade windows).
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "sim/world.h"

namespace dynastar::sim {

struct ChaosConfig {
  std::uint64_t seed = 42;
  /// Faults are injected in [start, start + horizon); recoveries/heals may
  /// land slightly after the horizon but are always scheduled.
  SimTime start = seconds(1);
  SimTime horizon = seconds(8);

  /// Crash targets, grouped by replica group: at most one process per group
  /// is down at a time, so every Paxos group keeps a live majority path once
  /// its peers are reachable.
  std::vector<std::vector<ProcessId>> crash_groups;
  std::size_t crash_events = 2;
  SimTime min_downtime = milliseconds(300);
  SimTime max_downtime = milliseconds(900);

  /// Additional crash events with an independent (typically much longer)
  /// downtime range — long enough that the victim's gap outruns its peers'
  /// retained logs, forcing a snapshot install on recovery. Scheduled from
  /// the same per-group occupancy as the regular crashes, so the
  /// one-member-down-per-group invariant still holds.
  std::size_t long_crash_events = 0;
  SimTime long_min_downtime = seconds(2);
  SimTime long_max_downtime = seconds(4);

  /// Pool of processes between which directed links may be cut and healed.
  std::vector<ProcessId> link_pool;
  std::size_t link_cut_events = 0;
  SimTime max_cut = milliseconds(500);

  /// Transient windows that temporarily rewrite global network knobs.
  std::size_t drop_burst_events = 0;
  double burst_drop_probability = 0.2;
  std::size_t latency_spike_events = 0;
  SimTime spike_latency = milliseconds(2);
  SimTime max_window = milliseconds(400);

  /// Bandwidth-collapse windows: every finite-bandwidth link's rate is
  /// divided by `bandwidth_drop_factor` for the window (links without a
  /// bandwidth model are unaffected). Overlapping windows do not compound;
  /// the refcounted scale restores to 1.0 when the last window closes.
  std::size_t bandwidth_drop_events = 0;
  double bandwidth_drop_factor = 10.0;

  /// Link-degrade windows: one directed link drawn from link_pool gets
  /// `degraded_profile` installed as a per-link override for the window
  /// (any pre-existing override is saved and restored afterwards). Unlike a
  /// cut, traffic still flows — just slow, far, and shallow-queued.
  std::size_t link_degrade_events = 0;
  LinkProfile degraded_profile{/*bandwidth_bytes_per_sec=*/1'000'000,
                               /*propagation=*/milliseconds(30),
                               /*queue_bytes=*/256 * 1024};

  /// Load-surge windows: each raises the world's refcounted surge flag
  /// (World::begin_surge/end_surge), waking any surge-only clients. With
  /// surge_with_recovery, one window is pinned to start right at a scheduled
  /// crash recovery, so the burst coincides with snapshot install + catch-up
  /// — the metastable-failure scenario overload tests target.
  std::size_t surge_events = 0;
  SimTime surge_min_duration = milliseconds(400);
  SimTime surge_max_duration = milliseconds(900);
  bool surge_with_recovery = false;
};

class ChaosInjector {
 public:
  ChaosInjector(World& world, ChaosConfig config)
      : world_(world), config_(std::move(config)), rng_(config_.seed) {}

  /// Generates the whole fault program and schedules it on the simulator.
  /// Call once, before World::run_until.
  void arm();

  [[nodiscard]] std::size_t events_injected() const { return injected_; }
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  void schedule_crashes();
  void schedule_link_cuts();
  void schedule_network_windows();
  void schedule_link_degrades();
  void schedule_surges();
  SimTime random_time_in_horizon(SimTime latest_margin);
  void record(SimTime at, std::string what);

  World& world_;
  ChaosConfig config_;
  Rng rng_;
  std::size_t injected_ = 0;
  std::vector<std::string> log_;
  // Refcounts for overlapping network-config windows (see .cpp).
  int drop_windows_ = 0;
  int latency_windows_ = 0;
  int bandwidth_windows_ = 0;
  double steady_drop_ = 0.0;
  SimTime steady_latency_ = 0;
  double steady_bandwidth_scale_ = 1.0;
  /// Recovery instants produced by schedule_crashes(), in schedule order;
  /// schedule_surges() pins one surge window to the first of these when
  /// surge_with_recovery is set.
  std::vector<SimTime> recovery_times_;
};

}  // namespace dynastar::sim
