#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace dynastar::sim {

void Simulator::schedule_at(SimTime t, Action action) {
  if (t < now_) t = now_;
  queue_.push(t, next_seq_++, std::move(action));
}

void Simulator::schedule_after(SimTime delay, Action action) {
  assert(delay >= 0);
  schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.pop();
  now_ = ev.time();
  ++executed_;
  ev.action();
  return true;
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) step();
  if (now_ < t) now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace dynastar::sim
