#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dynastar::sim {

void Simulator::schedule_at(SimTime t, Action action) {
  if (t < now_) t = now_;
  heap_.push_back(Event{t, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
}

void Simulator::schedule_after(SimTime delay, Action action) {
  assert(delay >= 0);
  schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.time;
  ++executed_;
  ev.action();
  return true;
}

void Simulator::run_until(SimTime t) {
  while (!heap_.empty() && heap_.front().time <= t) step();
  if (now_ < t) now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace dynastar::sim
