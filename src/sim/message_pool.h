// Per-World freelist pool backing make_message allocations.
//
// The simulation is single-threaded and churns through millions of
// short-lived protocol messages per run; this pool recycles their
// allocations through per-size-class freelists (64-byte granularity, up to
// 1 KiB — larger messages fall through to the global allocator).
//
// Lifetime safety: messages can outlive the World that allocated them
// (tests keep replies around after tearing a world down), so the freelists
// live in a heap-allocated, refcounted PoolCore. Every live pooled block
// holds one reference; the owning MessagePool holds one. When the pool is
// destroyed it drains its freelists and closes the core; blocks freed after
// that go straight back to the global allocator, and the core itself is
// deleted when the last live block dies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace dynastar::sim::detail {

constexpr std::size_t kPoolGranularity = 64;
// Size-class index is (size + 63) / 64, so valid classes are 1..16
// (64 B .. 1 KiB). kHeapClass marks blocks owned by the global allocator.
constexpr std::uint32_t kNumSizeClasses = 17;
constexpr std::uint32_t kHeapClass = 0xFFFFFFFF;

struct PoolCore {
  void* free_lists[kNumSizeClasses] = {};
  // 1 for the owning MessagePool (until closed) + 1 per live pooled block.
  std::uint64_t refs = 1;
  bool open = true;
  // Stats surfaced by bench/kernel_throughput.
  std::uint64_t allocs = 0;
  std::uint64_t reuses = 0;
};

// The pool new messages allocate from; installed by the owning World.
// Thread-local only as a guard rail — the kernel itself is single-threaded.
inline thread_local PoolCore* g_current_pool = nullptr;

inline void* pool_alloc(std::size_t size, std::uint32_t* cls_out,
                        PoolCore** core_out) {
  PoolCore* core = g_current_pool;
  const auto cls = static_cast<std::uint32_t>(
      (size + kPoolGranularity - 1) / kPoolGranularity);
  if (core == nullptr || cls >= kNumSizeClasses) {
    *cls_out = kHeapClass;
    *core_out = nullptr;
    return ::operator new(size);
  }
  *cls_out = cls;
  *core_out = core;
  ++core->allocs;
  ++core->refs;
  void*& head = core->free_lists[cls];
  if (head != nullptr) {
    void* block = head;
    head = *static_cast<void**>(block);
    ++core->reuses;
    return block;
  }
  return ::operator new(static_cast<std::size_t>(cls) * kPoolGranularity);
}

inline void pool_free(void* block, std::uint32_t cls,
                      PoolCore* core) noexcept {
  if (core == nullptr) {
    ::operator delete(block);
    return;
  }
  if (core->open) {
    *static_cast<void**>(block) = core->free_lists[cls];
    core->free_lists[cls] = block;
  } else {
    ::operator delete(block);
  }
  if (--core->refs == 0) delete core;
}

}  // namespace dynastar::sim::detail

namespace dynastar::sim {

class MessagePool {
 public:
  MessagePool() : core_(new detail::PoolCore) {}
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  ~MessagePool() {
    if (detail::g_current_pool == core_) detail::g_current_pool = nullptr;
    core_->open = false;
    for (void*& head : core_->free_lists) {
      while (head != nullptr) {
        void* next = *static_cast<void**>(head);
        ::operator delete(head);
        head = next;
      }
    }
    if (--core_->refs == 0) delete core_;
  }

  /// Makes this pool the allocation target for subsequent make_message
  /// calls on this thread.
  void install() { detail::g_current_pool = core_; }

  [[nodiscard]] std::uint64_t allocs() const { return core_->allocs; }
  [[nodiscard]] std::uint64_t reuses() const { return core_->reuses; }

 private:
  detail::PoolCore* core_;
};

}  // namespace dynastar::sim
