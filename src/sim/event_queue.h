// Two-tier event queue: a calendar (bucket) wheel for near-future events
// plus a spill min-heap for far-future ones.
//
// Most scheduled events land within a few hundred microseconds of `now`
// (link latencies, service times, batch timers); a single binary heap pays
// O(log n) comparisons and cache misses per operation over the whole
// pending set. The wheel buckets events by time tick (tick = time >>
// kGranularityBits) into a power-of-two ring; only events beyond the wheel
// horizon go to the spill heap and migrate in as the cursor advances.
//
// Each bucket is kept as a small binary heap on (time, seq), so the pop
// order is the exact (time, seq) total order the old single heap produced —
// same-seed runs stay bit-deterministic (cross-checked against a reference
// heap in tests/test_simulator_queue.cpp). Same-tick pushes during a
// bucket's own drain (events scheduled for `now()` from inside a running
// event) are ordinary heap pushes into the current bucket.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "sim/event_fn.h"

namespace dynastar::sim {

struct Event {
  // (time, seq) packed into one 128-bit key: lexicographic order becomes a
  // single branchless compare in the heap sifts. Time is a non-negative
  // int64, so the packing preserves order exactly.
  unsigned __int128 key;
  EventFn action;

  static unsigned __int128 make_key(SimTime time, std::uint64_t seq) {
    return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(time))
            << 64) |
           seq;
  }
  [[nodiscard]] SimTime time() const {
    return static_cast<SimTime>(static_cast<std::uint64_t>(key >> 64));
  }
  [[nodiscard]] std::uint64_t seq() const {
    return static_cast<std::uint64_t>(key);
  }
};

// std::push_heap is a max-heap; "later" events compare smaller.
struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    return a.key > b.key;
  }
};

class EventQueue {
 public:
  // Bucket granularity: 2^14 ns ≈ 16.4 us per tick. With 4096 buckets the
  // wheel horizon is ~67 ms of simulated time — comfortably past the
  // default link latency (100 us) and batch/heartbeat timers (<= 50 ms),
  // so in steady state nearly every push lands in the wheel.
  static constexpr int kGranularityBits = 14;
  static constexpr std::size_t kNumBuckets = 4096;  // power of two
  static constexpr std::uint64_t kBucketMask = kNumBuckets - 1;

  EventQueue() : buckets_(kNumBuckets), occupied_(kNumBuckets / 64, 0) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push(SimTime time, std::uint64_t seq, EventFn action) {
    assert(time >= 0);
    const std::uint64_t tick = tick_of(time);
    // The caller (Simulator) clamps times to now, so tick >= cursor_tick_.
    assert(tick >= cursor_tick_);
    Event event{Event::make_key(time, seq), std::move(action)};
    if (tick >= cursor_tick_ + kNumBuckets) {
      spill_.push_back(std::move(event));
      std::push_heap(spill_.begin(), spill_.end(), EventLater{});
    } else {
      bucket_push(tick, std::move(event));
    }
    ++size_;
  }

  /// Time of the next event in (time, seq) order. Requires !empty().
  /// Advances the wheel cursor to that event's bucket as a side effect.
  [[nodiscard]] SimTime next_time() {
    position_cursor();
    return buckets_[cursor_tick_ & kBucketMask].front().time();
  }

  /// Pops the next event in (time, seq) order. Requires !empty().
  Event pop() {
    position_cursor();
    auto& bucket = buckets_[cursor_tick_ & kBucketMask];
    std::pop_heap(bucket.begin(), bucket.end(), EventLater{});
    Event event = std::move(bucket.back());
    bucket.pop_back();
    --wheel_size_;
    --size_;
    if (bucket.empty()) clear_occupied(cursor_tick_ & kBucketMask);
    return event;
  }

 private:
  static std::uint64_t tick_of(SimTime time) {
    return static_cast<std::uint64_t>(time) >> kGranularityBits;
  }

  void bucket_push(std::uint64_t tick, Event event) {
    auto& bucket = buckets_[tick & kBucketMask];
    if (bucket.empty()) set_occupied(tick & kBucketMask);
    bucket.push_back(std::move(event));
    std::push_heap(bucket.begin(), bucket.end(), EventLater{});
    ++wheel_size_;
  }

  void set_occupied(std::uint64_t index) {
    occupied_[index >> 6] |= std::uint64_t{1} << (index & 63);
  }
  void clear_occupied(std::uint64_t index) {
    occupied_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
  }

  /// Moves cursor_tick_ forward to the bucket holding the globally next
  /// event, migrating spill events that the advancing horizon uncovers.
  /// Requires !empty().
  void position_cursor() {
    assert(size_ > 0);
    for (;;) {
      if (wheel_size_ == 0) {
        // Wheel drained: jump straight to the earliest spill tick. Spill
        // events always lie at or beyond the old horizon, so this only
        // moves the cursor forward.
        assert(!spill_.empty());
        cursor_tick_ = tick_of(spill_.front().time());
        migrate_spill();
        continue;  // wheel is now non-empty
      }
      const std::uint64_t distance = next_occupied_distance();
      if (distance == 0) return;
      cursor_tick_ += distance;
      // The horizon moved; spill events may now fit in the wheel. Any
      // migrated event has tick >= old cursor + kNumBuckets > new cursor,
      // so the bucket at the new cursor position is unaffected unless the
      // wheel span was empty past it — in which case the loop re-scans.
      migrate_spill();
    }
  }

  /// Ring distance from cursor_tick_ to the first occupied bucket.
  /// Requires wheel_size_ > 0 (so some bucket within the ring is occupied).
  [[nodiscard]] std::uint64_t next_occupied_distance() const {
    const std::uint64_t start = cursor_tick_ & kBucketMask;
    std::uint64_t word_index = start >> 6;
    std::uint64_t word = occupied_[word_index] >> (start & 63);
    if (word != 0) {
      return static_cast<std::uint64_t>(std::countr_zero(word));
    }
    std::uint64_t distance = 64 - (start & 63);
    constexpr std::uint64_t kNumWords = kNumBuckets / 64;
    for (std::uint64_t i = 1; i <= kNumWords; ++i) {
      word = occupied_[(word_index + i) & (kNumWords - 1)];
      if (word != 0) {
        return distance + (i - 1) * 64 +
               static_cast<std::uint64_t>(std::countr_zero(word));
      }
    }
    assert(false && "wheel_size_ > 0 but no occupied bucket");
    return 0;
  }

  void migrate_spill() {
    while (!spill_.empty() &&
           tick_of(spill_.front().time()) < cursor_tick_ + kNumBuckets) {
      std::pop_heap(spill_.begin(), spill_.end(), EventLater{});
      Event event = std::move(spill_.back());
      spill_.pop_back();
      bucket_push(tick_of(event.time()), std::move(event));
    }
  }

  std::vector<std::vector<Event>> buckets_;
  std::vector<std::uint64_t> occupied_;  // one bit per bucket
  std::vector<Event> spill_;             // binary min-heap on (time, seq)
  std::uint64_t cursor_tick_ = 0;
  std::size_t wheel_size_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dynastar::sim
