// World: the container tying together simulator, network, metrics, and the
// set of simulated processes. One World per experiment run.
#pragma once

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "sim/message_pool.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace dynastar::sim {

class Process;

class World {
 public:
  explicit World(NetworkConfig net_config = {}, std::uint64_t seed = 1);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Registers a process constructed by `factory(id)`; returns the assigned
  /// id. All processes must be added before the simulation is driven.
  template <typename T, typename... Args>
  T& spawn(Args&&... args) {
    const ProcessId id{next_process_id_++};
    auto proc = std::make_unique<T>(id, *this, std::forward<Args>(args)...);
    T& ref = *proc;
    attach(std::move(proc));
    return ref;
  }

  Simulator& sim() { return sim_; }
  Network& network() { return *network_; }
  MetricsRegistry& metrics() { return metrics_; }
  /// Lifecycle trace sink (disabled by default; `trace().enable()` to arm).
  /// Always constructed so cores can hold a stable pointer from birth.
  TraceCollector& trace() { return trace_; }
  [[nodiscard]] const TraceCollector& trace() const { return trace_; }

  /// Fresh independent random stream (deterministic given the world seed).
  Rng fork_rng() { return rng_.fork(); }

  [[nodiscard]] Process* find(ProcessId id) const;
  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }

  /// Crashes a process: its volatile state is torn down via Process::on_crash
  /// and all in-flight deliveries/timers addressed to it are suppressed.
  void crash(ProcessId id);
  /// Restarts a crashed process (Process::on_recover runs with a fresh
  /// incarnation).
  void recover(ProcessId id);

  /// Starts all registered processes (calls Process::on_start in id order)
  /// and runs the simulation until `t`.
  void run_until(SimTime t);

  [[nodiscard]] SimTime now() const { return sim_.now(); }

  /// Message allocation pool for this world (installed as the active pool
  /// on construction and on every run_until, so interleaved worlds each
  /// allocate from their own slabs).
  MessagePool& message_pool() { return message_pool_; }

  /// Load-surge flag, refcounted so overlapping surge windows compose.
  /// Surge-only clients (ClientCore) poll it via Env::surge_active() and
  /// issue commands only while it is raised.
  void begin_surge() { ++surge_level_; }
  void end_surge() {
    if (surge_level_ > 0) --surge_level_;
  }
  [[nodiscard]] bool surge_active() const { return surge_level_ > 0; }

 private:
  void attach(std::unique_ptr<Process> proc);
  void deliver(ProcessId from, ProcessId to, const MessagePtr& msg);
  void start_all();

  // Declared first so it outlives everything that can hold messages
  // (pending simulator events, process inboxes, protocol cores).
  MessagePool message_pool_;
  Simulator sim_;
  Rng rng_;
  std::unique_ptr<Network> network_;
  MetricsRegistry metrics_;
  TraceCollector trace_;
  std::vector<std::unique_ptr<Process>> processes_;  // index == ProcessId
  std::uint64_t next_process_id_ = 0;
  bool started_ = false;
  int surge_level_ = 0;
};

}  // namespace dynastar::sim
