// Deterministic discrete-event simulation kernel.
//
// A single-threaded event loop over a two-tier calendar/spill queue keyed
// by (time, sequence). The sequence tiebreak makes execution order — and
// thus every protocol run and every benchmark figure — a pure function of
// the configuration and seed. Events are stored as allocation-free
// sim::EventFn callables (see event_fn.h); the queue design and its
// determinism contract are documented in event_queue.h and
// docs/PERFORMANCE.md.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "sim/event_fn.h"
#include "sim/event_queue.h"

namespace dynastar::sim {

class Simulator {
 public:
  using Action = EventFn;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute simulated time `t`
  /// (clamped to `now` if in the past).
  void schedule_at(SimTime t, Action action);

  /// Schedules `action` to run `delay` after the current time.
  void schedule_after(SimTime delay, Action action);

  /// Executes the next pending event. Returns false when the queue is empty.
  bool step();

  /// Runs events until simulated time reaches `t` (events at exactly `t`
  /// are executed) or the queue drains.
  void run_until(SimTime t);

  /// Runs until the event queue is empty.
  void run();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dynastar::sim
