// Deterministic discrete-event simulation kernel.
//
// A single-threaded event loop over a binary heap keyed by
// (time, sequence). The sequence tiebreak makes execution order — and thus
// every protocol run and every benchmark figure — a pure function of the
// configuration and seed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"

namespace dynastar::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute simulated time `t`
  /// (clamped to `now` if in the past).
  void schedule_at(SimTime t, Action action);

  /// Schedules `action` to run `delay` after the current time.
  void schedule_after(SimTime delay, Action action);

  /// Executes the next pending event. Returns false when the queue is empty.
  bool step();

  /// Runs events until simulated time reaches `t` (events at exactly `t`
  /// are executed) or the queue drains.
  void run_until(SimTime t);

  /// Runs until the event queue is empty.
  void run();

  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  // std::push_heap is a max-heap; "later" events compare smaller.
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dynastar::sim
