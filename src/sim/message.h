// Message base for inter-process communication in the simulation.
//
// The simulated network passes immutable shared message objects instead of
// byte buffers — a documented substitution for wire serialization: the
// protocols never mutate a received message, so sharing one allocation among
// all destinations preserves distributed semantics while keeping the
// simulator fast.
//
// Sharing is tracked by a non-atomic intrusive refcount (the kernel is
// single-threaded, so atomic refcount traffic would be pure overhead) via
// sim::Ref<T>; allocations are recycled through the per-World MessagePool
// (see message_pool.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "sim/message_pool.h"

namespace dynastar::sim {

class Message;

namespace detail {
struct MessageAccess;
inline void message_add_ref(const Message* m) noexcept;
inline void message_release(const Message* m) noexcept;
}  // namespace detail

class Message {
 public:
  Message() = default;
  // Copying a message produces a fresh object with its own refcount and
  // pool identity; the bookkeeping fields never transfer.
  Message(const Message&) noexcept {}
  Message& operator=(const Message&) noexcept { return *this; }
  virtual ~Message() = default;

  /// Human-readable type tag for logging and debugging.
  [[nodiscard]] virtual const char* type_name() const = 0;

  /// Approximate wire size; the network uses it for bandwidth accounting.
  [[nodiscard]] virtual std::size_t size_bytes() const { return 64; }

 private:
  friend struct detail::MessageAccess;

  mutable std::int32_t refs_ = 0;
  std::uint32_t pool_class_ = detail::kHeapClass;
  detail::PoolCore* pool_core_ = nullptr;
};

/// Intrusive smart pointer for Message subclasses. Copy bumps the
/// non-atomic refcount; the object destroys itself (returning its block to
/// the owning pool) when the last Ref drops.
template <typename T>
class Ref {
 public:
  using element_type = T;

  constexpr Ref() noexcept = default;
  constexpr Ref(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  /// Takes a new reference on `ptr` (which may already be shared).
  explicit Ref(T* ptr) noexcept : ptr_(ptr) {
    if (ptr_ != nullptr) detail::message_add_ref(ptr_);
  }

  Ref(const Ref& other) noexcept : ptr_(other.ptr_) {
    if (ptr_ != nullptr) detail::message_add_ref(ptr_);
  }
  Ref(Ref&& other) noexcept : ptr_(other.ptr_) { other.ptr_ = nullptr; }

  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  Ref(const Ref<U>& other) noexcept  // NOLINT(runtime/explicit)
      : ptr_(other.get()) {
    if (ptr_ != nullptr) detail::message_add_ref(ptr_);
  }
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  Ref(Ref<U>&& other) noexcept  // NOLINT(runtime/explicit)
      : ptr_(other.detach()) {}

  Ref& operator=(const Ref& other) noexcept {
    Ref(other).swap(*this);
    return *this;
  }
  Ref& operator=(Ref&& other) noexcept {
    Ref(std::move(other)).swap(*this);
    return *this;
  }
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  Ref& operator=(const Ref<U>& other) noexcept {
    Ref(other).swap(*this);
    return *this;
  }
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  Ref& operator=(Ref<U>&& other) noexcept {
    Ref(std::move(other)).swap(*this);
    return *this;
  }
  Ref& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~Ref() {
    if (ptr_ != nullptr) detail::message_release(ptr_);
  }

  [[nodiscard]] T* get() const noexcept { return ptr_; }
  T& operator*() const noexcept { return *ptr_; }
  T* operator->() const noexcept { return ptr_; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return ptr_ != nullptr;
  }

  void reset() noexcept {
    if (ptr_ != nullptr) {
      detail::message_release(ptr_);
      ptr_ = nullptr;
    }
  }

  /// Releases ownership without touching the refcount.
  [[nodiscard]] T* detach() noexcept {
    T* p = ptr_;
    ptr_ = nullptr;
    return p;
  }

  void swap(Ref& other) noexcept { std::swap(ptr_, other.ptr_); }

 private:
  T* ptr_ = nullptr;
};

template <typename T, typename U>
[[nodiscard]] bool operator==(const Ref<T>& a, const Ref<U>& b) noexcept {
  return a.get() == b.get();
}
template <typename T>
[[nodiscard]] bool operator==(const Ref<T>& a, std::nullptr_t) noexcept {
  return a.get() == nullptr;
}

/// dynamic_pointer_cast equivalent for Ref.
template <typename T, typename U>
[[nodiscard]] Ref<T> dyn_ref_cast(const Ref<U>& r) noexcept {
  return Ref<T>(dynamic_cast<T*>(r.get()));
}

/// static_pointer_cast equivalent for Ref.
template <typename T, typename U>
[[nodiscard]] Ref<T> static_ref_cast(const Ref<U>& r) noexcept {
  return Ref<T>(static_cast<T*>(r.get()));
}

namespace detail {

struct MessageAccess {
  static void add_ref(const Message* m) noexcept { ++m->refs_; }

  static void release(const Message* m) noexcept {
    if (--m->refs_ != 0) return;
    const std::uint32_t cls = m->pool_class_;
    PoolCore* core = m->pool_core_;
    // The block starts at the most-derived object (make_message constructs
    // the full object at the allocation address); recover it before the
    // vptr is destroyed.
    void* block = const_cast<void*>(dynamic_cast<const void*>(m));
    m->~Message();
    pool_free(block, cls, core);
  }

  static void set_pool(const Message* m, std::uint32_t cls,
                       PoolCore* core) noexcept {
    auto* mut = const_cast<Message*>(m);
    mut->pool_class_ = cls;
    mut->pool_core_ = core;
  }
};

inline void message_add_ref(const Message* m) noexcept {
  MessageAccess::add_ref(m);
}
inline void message_release(const Message* m) noexcept {
  MessageAccess::release(m);
}

}  // namespace detail

using MessagePtr = Ref<const Message>;

/// Convenience factory: make_message<AppendEntries>(args...). Allocates
/// from the installed per-World pool when one is active.
template <typename T, typename... Args>
Ref<const T> make_message(Args&&... args) {
  static_assert(std::is_base_of_v<Message, T>,
                "make_message requires a sim::Message subclass");
  std::uint32_t cls = detail::kHeapClass;
  detail::PoolCore* core = nullptr;
  void* mem = detail::pool_alloc(sizeof(T), &cls, &core);
  const T* obj = ::new (mem) T(std::forward<Args>(args)...);
  detail::MessageAccess::set_pool(obj, cls, core);
  return Ref<const T>(obj);
}

/// Like make_message, but returns a mutable Ref for builder-style code that
/// fills fields in before handing the message off (it converts implicitly
/// to Ref<const T> / MessagePtr).
template <typename T, typename... Args>
Ref<T> make_mutable_message(Args&&... args) {
  static_assert(std::is_base_of_v<Message, T>,
                "make_mutable_message requires a sim::Message subclass");
  std::uint32_t cls = detail::kHeapClass;
  detail::PoolCore* core = nullptr;
  void* mem = detail::pool_alloc(sizeof(T), &cls, &core);
  T* obj = ::new (mem) T(std::forward<Args>(args)...);
  detail::MessageAccess::set_pool(obj, cls, core);
  return Ref<T>(obj);
}

}  // namespace dynastar::sim
