// Message base for inter-process communication in the simulation.
//
// The simulated network passes immutable shared message objects instead of
// byte buffers — a documented substitution for wire serialization: the
// protocols never mutate a received message, so sharing one allocation among
// all destinations preserves distributed semantics while keeping the
// simulator fast.
#pragma once

#include <cstddef>
#include <memory>

namespace dynastar::sim {

class Message {
 public:
  virtual ~Message() = default;

  /// Human-readable type tag for logging and debugging.
  [[nodiscard]] virtual const char* type_name() const = 0;

  /// Approximate wire size; the network uses it for bandwidth accounting.
  [[nodiscard]] virtual std::size_t size_bytes() const { return 64; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// Convenience factory: make_message<AppendEntries>(args...).
template <typename T, typename... Args>
MessagePtr make_message(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

}  // namespace dynastar::sim
