#include "sim/world.h"

#include <cassert>

#include "sim/process.h"

namespace dynastar::sim {

World::World(NetworkConfig net_config, std::uint64_t seed) : rng_(seed) {
  message_pool_.install();
  network_ = std::make_unique<Network>(
      sim_, net_config, rng_.fork(),
      [this](ProcessId from, ProcessId to, const MessagePtr& msg) {
        deliver(from, to, msg);
      });
  network_->set_metrics(&metrics_);
}

World::~World() = default;

void World::attach(std::unique_ptr<Process> proc) {
  assert(proc->id().value() == processes_.size());
  processes_.push_back(std::move(proc));
  if (started_) processes_.back()->on_start();
}

Process* World::find(ProcessId id) const {
  if (id.value() >= processes_.size()) return nullptr;
  return processes_[id.value()].get();
}

void World::deliver(ProcessId from, ProcessId to, const MessagePtr& msg) {
  Process* proc = find(to);
  if (proc == nullptr || proc->crashed_) return;
  proc->accept_delivery(from, msg);
}

void World::crash(ProcessId id) {
  Process* proc = find(id);
  assert(proc != nullptr);
  if (proc->crashed_) return;
  proc->crashed_ = true;
  proc->inbox_.clear();
  proc->serving_ = false;
  proc->on_crash();
}

void World::recover(ProcessId id) {
  Process* proc = find(id);
  assert(proc != nullptr);
  if (!proc->crashed_) return;
  proc->crashed_ = false;
  ++proc->incarnation_;
  proc->inbox_.clear();
  proc->serving_ = false;
  proc->on_recover();
}

void World::start_all() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < processes_.size(); ++i) processes_[i]->on_start();
}

void World::run_until(SimTime t) {
  message_pool_.install();
  start_all();
  sim_.run_until(t);
}

}  // namespace dynastar::sim
