#include "sim/reliable.h"

namespace dynastar::sim {

namespace {
// Retransmission cadence and budget. The interval is well above one network
// round-trip (hundreds of microseconds), so in a loss-free run a message is
// acked long before the first retry fires. ~5 simulated seconds of retries
// outlives every crash window the chaos injector schedules.
constexpr SimTime kRetryInterval = milliseconds(100);
constexpr std::uint32_t kMaxTries = 50;
}  // namespace

void ReliableLink::send(ProcessId to, MessagePtr msg) {
  const std::uint64_t token =
      (env_.self().value() << 20) ^ ++next_token_;
  MessagePtr wrapped = make_message<ReliableMsg>(token, std::move(msg));
  env_.send_message(to, wrapped);
  pending_[token] = Pending{to, std::move(wrapped), env_.now(), 1};
  maybe_arm();
}

bool ReliableLink::handle(ProcessId from, const MessagePtr& msg,
                          MessagePtr* inner) {
  if (inner != nullptr) *inner = nullptr;
  if (const auto* ack = dynamic_cast<const ReliableAck*>(msg.get())) {
    pending_.erase(ack->token);
    return true;
  }
  if (const auto* wrapped = dynamic_cast<const ReliableMsg*>(msg.get())) {
    env_.send_message(from, make_message<ReliableAck>(wrapped->token));
    if (inner != nullptr) *inner = wrapped->inner;
    return true;
  }
  return false;
}

void ReliableLink::on_recover() {
  armed_ = false;
  maybe_arm();
}

void ReliableLink::maybe_arm() {
  if (armed_ || pending_.empty()) return;
  armed_ = true;
  env_.start_timer(kRetryInterval, [this] { on_timer(); });
}

void ReliableLink::on_timer() {
  armed_ = false;
  const SimTime now = env_.now();
  for (auto it = pending_.begin(); it != pending_.end();) {
    auto& p = it->second;
    if (now - p.last_tx >= kRetryInterval) {
      if (p.tries >= kMaxTries) {
        // Peer presumed permanently dead; drop rather than retry forever.
        it = pending_.erase(it);
        continue;
      }
      ++p.tries;
      p.last_tx = now;
      env_.send_message(p.to, p.wrapped);
    }
    ++it;
  }
  maybe_arm();
}

}  // namespace dynastar::sim
