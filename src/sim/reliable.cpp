#include "sim/reliable.h"

namespace dynastar::sim {

namespace {
// Retransmission cadence and budget. The interval is well above one network
// round-trip (hundreds of microseconds), so in a loss-free run a message is
// acked long before the first retry fires. ~5 simulated seconds of retries
// outlives every crash window the chaos injector schedules; a peer that
// stays down longer revives the buffer with a ResendReq when it returns.
constexpr SimTime kRetryInterval = milliseconds(100);
constexpr std::uint32_t kMaxTries = 50;
}  // namespace

std::uint64_t ReliableLink::new_token() {
  // Tokens must never collide across incarnations of the same process: a
  // pre-crash message still in flight could otherwise ack a fresh entry
  // that happens to reuse its token. The epoch (bumped on restore) salts
  // the counter out of the old incarnation's token space.
  return (epoch_ << 48) ^ (env_.self().value() << 20) ^ ++next_token_;
}

void ReliableLink::enqueue(ProcessId to, MessagePtr msg, bool control) {
  const std::uint64_t token = new_token();
  MessagePtr wrapped = make_message<ReliableMsg>(token, std::move(msg));
  env_.send_message(to, wrapped);
  Entry e;
  e.to = to;
  e.wrapped = std::move(wrapped);
  e.last_tx = env_.now();
  e.tries = 1;
  e.control = control;
  pending_.emplace(token, std::move(e));
  maybe_arm();
}

void ReliableLink::send(ProcessId to, MessagePtr msg) {
  enqueue(to, std::move(msg), /*control=*/false);
}

bool ReliableLink::handle(ProcessId from, const MessagePtr& msg,
                          MessagePtr* inner) {
  if (inner != nullptr) *inner = nullptr;
  if (const auto* ack = dynamic_cast<const ReliableAck*>(msg.get())) {
    auto it = pending_.find(ack->token);
    if (it != pending_.end()) {
      if (it->second.control) {
        pending_.erase(it);
      } else if (!it->second.acked) {
        it->second.acked = true;
        it->second.acked_at = env_.now();
      }
    }
    return true;
  }
  if (const auto* wrapped = dynamic_cast<const ReliableMsg*>(msg.get())) {
    env_.send_message(from, make_message<ReliableAck>(wrapped->token));
    if (dynamic_cast<const ResendReq*>(wrapped->inner.get()) != nullptr) {
      redrive(from);
      return true;
    }
    if (inner != nullptr) *inner = wrapped->inner;
    return true;
  }
  if (const auto* stable = dynamic_cast<const StableNotice*>(msg.get())) {
    // An ack that arrived strictly before the peer's checkpoint capture
    // implies the delivery happened before the capture, so the checkpoint
    // covers it and the entry can never be needed again.
    for (auto it = pending_.begin(); it != pending_.end();) {
      const Entry& e = it->second;
      if (e.to == from && e.acked && !e.control &&
          e.acked_at < stable->capture_time) {
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    return true;
  }
  return false;
}

void ReliableLink::redrive(ProcessId peer) {
  // The peer rolled back to its checkpoint; everything we retain for it may
  // have been lost. Re-send the lot (its restored dedup state suppresses
  // true duplicates) and restart the retry budget.
  const SimTime now = env_.now();
  for (auto& [token, e] : pending_) {
    if (e.to != peer || e.control) continue;
    e.acked = false;
    e.tries = 1;
    e.last_tx = now;
    env_.send_message(e.to, e.wrapped);
  }
  maybe_arm();
}

ReliableLink::State ReliableLink::capture() const {
  State s;
  for (const auto& [token, e] : pending_)
    if (!e.control) s.pending.emplace(token, e);
  s.next_token = next_token_;
  s.epoch = epoch_;
  return s;
}

void ReliableLink::restore(const State& s, const std::vector<ProcessId>& peers) {
  pending_ = s.pending;
  next_token_ = s.next_token;
  epoch_ = s.epoch + 1;
  armed_ = false;
  // Anything acked after the checkpoint looks unacked again — that is the
  // point: the ack bookkeeping died with the heap, so re-send everything
  // and let acks re-accumulate. Tokens are unchanged (same content), so a
  // stale ack from a pre-crash copy still lands correctly.
  const SimTime now = env_.now();
  for (auto& [token, e] : pending_) {
    e.acked = false;
    e.tries = 1;
    e.last_tx = now;
    env_.send_message(e.to, e.wrapped);
  }
  for (ProcessId peer : peers) {
    if (peer == env_.self()) continue;
    enqueue(peer, make_message<ResendReq>(), /*control=*/true);
  }
  maybe_arm();
}

void ReliableLink::note_checkpoint(SimTime capture_time,
                                   const std::vector<ProcessId>& peers) {
  for (ProcessId peer : peers) {
    if (peer == env_.self()) continue;
    // Raw send: a lost notice only delays pruning until the next checkpoint.
    env_.send_message(peer, make_message<StableNotice>(capture_time));
  }
}

std::size_t ReliableLink::unacked() const {
  std::size_t n = 0;
  for (const auto& [token, e] : pending_)
    if (!e.acked) ++n;
  return n;
}

void ReliableLink::maybe_arm() {
  if (armed_) return;
  for (const auto& [token, e] : pending_) {
    if (!e.acked && e.tries < kMaxTries) {
      armed_ = true;
      env_.start_timer(kRetryInterval, [this] { on_timer(); });
      return;
    }
  }
}

void ReliableLink::on_timer() {
  armed_ = false;
  const SimTime now = env_.now();
  for (auto& [token, e] : pending_) {
    if (e.acked || e.tries >= kMaxTries) continue;
    if (now - e.last_tx >= kRetryInterval) {
      // Budget exhaustion keeps the entry (silent while the peer is
      // presumed dead); its ResendReq on recovery resets the budget.
      ++e.tries;
      e.last_tx = now;
      env_.send_message(e.to, e.wrapped);
    }
  }
  maybe_arm();
}

}  // namespace dynastar::sim
