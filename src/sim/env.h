// Env: the narrow interface protocol cores (Paxos roles, multicast members,
// DynaStar servers) use to interact with their host node. Cores never touch
// the simulator directly, which keeps them unit-testable against a mock Env
// and would let the same cores run over a real transport.
#pragma once

#include <functional>

#include "common/ids.h"
#include "common/rng.h"
#include "sim/message.h"

namespace dynastar::sim {

class Env {
 public:
  virtual ~Env() = default;

  /// Identity of the hosting node.
  [[nodiscard]] virtual ProcessId self() const = 0;

  /// Current (simulated) time.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Sends a message to another node. Takes the message by reference so a
  /// multi-destination fan-out pays exactly one refcount bump per
  /// destination (the network's delivery capture) and none in between.
  virtual void send_message(ProcessId to, const MessagePtr& msg) = 0;

  /// One-shot timer; cancelled implicitly if the node crashes first.
  virtual void start_timer(SimTime delay, std::function<void()> fn) = 0;

  /// Charges `amount` of CPU time to this node; subsequent message handling
  /// is pushed back accordingly (models execution cost / saturation).
  virtual void consume_cpu(SimTime amount) = 0;

  /// Node-local deterministic randomness.
  virtual Rng& random() = 0;

  /// Messages waiting in this node's CPU queue — the true backlog under
  /// saturation (protocol-level queues drain synchronously at delivery).
  /// Admission gates read it as their load signal; mock Envs report 0.
  [[nodiscard]] virtual std::size_t inbox_depth() const { return 0; }

  /// True while a load surge is active in the hosting world (surge-only
  /// clients poll this). Mock Envs report false.
  [[nodiscard]] virtual bool surge_active() const { return false; }
};

}  // namespace dynastar::sim
