// Simulated point-to-point network with fault injection.
//
// Models per-message latency (base + seeded jitter), message loss and
// duplication, and per-process crash state. Partition-style faults are
// expressed with explicit link blocking so tests can cut the network along
// any line.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/ids.h"
#include "common/rng.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace dynastar::sim {

struct NetworkConfig {
  /// One-way delivery latency before jitter.
  SimTime base_latency = microseconds(100);
  /// Uniform jitter added on top of base latency: U[0, jitter].
  SimTime jitter = microseconds(20);
  /// Probability an individual message is silently dropped.
  double drop_probability = 0.0;
  /// Probability an individual message is delivered twice.
  double duplicate_probability = 0.0;
  /// Per-message CPU/serialization overhead added per 1KiB of payload.
  SimTime per_kib_cost = microseconds(2);
};

class Network {
 public:
  using Deliver =
      std::function<void(ProcessId from, ProcessId to, const MessagePtr&)>;

  Network(Simulator& sim, NetworkConfig config, Rng rng, Deliver deliver)
      : sim_(sim),
        config_(config),
        rng_(std::move(rng)),
        deliver_(std::move(deliver)) {}

  /// Sends `msg` from `from` to `to`; delivery is scheduled per the latency
  /// model unless the message is dropped or the link is blocked. The only
  /// refcount bump on this path is the capture into the delivery event.
  void send(ProcessId from, ProcessId to, const MessagePtr& msg);

  /// Blocks / unblocks the directed link from->to (for partition tests).
  void block_link(ProcessId from, ProcessId to);
  void unblock_link(ProcessId from, ProcessId to);
  void unblock_all();

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return messages_dropped_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

  NetworkConfig& config() { return config_; }

  /// A directed link, identified by the full 64-bit endpoint ids. (An earlier
  /// revision packed both ids into one 64-bit word, which silently collided
  /// for process ids >= 2^32.)
  struct LinkKey {
    std::uint64_t from;
    std::uint64_t to;
    bool operator==(const LinkKey&) const = default;
  };
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& key) const {
      // splitmix64-style mix of both halves; order-sensitive so (a, b) and
      // (b, a) hash independently.
      std::uint64_t x = key.from * 0x9e3779b97f4a7c15ULL ^ key.to;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

 private:
  [[nodiscard]] SimTime sample_latency(std::size_t payload_bytes);

  Simulator& sim_;
  NetworkConfig config_;
  Rng rng_;
  Deliver deliver_;
  std::unordered_set<LinkKey, LinkKeyHash> blocked_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace dynastar::sim
