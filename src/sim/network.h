// Simulated point-to-point network with fault injection.
//
// Models per-message latency (base + seeded jitter), message loss and
// duplication, per-process crash state, and — when a link carries a
// LinkProfile — finite bandwidth with FIFO transmission queues, so a large
// message occupies the pipe and delays everything sent behind it.
// Partition-style faults are expressed with explicit link blocking so tests
// can cut the network along any line.
//
// Link profiles resolve in priority order:
//   explicit per-link override > site-pair profile > default profile.
// Sites model datacenters: assign each process a site and give the site
// pairs WAN-grade profiles (thin, far) while intra-site traffic stays fat
// and near. A default-constructed LinkProfile (bandwidth 0 = infinite, no
// extra propagation, unbounded queue) reproduces the pure latency+jitter
// model bit-for-bit, so existing scenarios are unaffected until a profile
// is installed.
#pragma once

#include <cstdio>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/ids.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace dynastar::sim {

struct NetworkConfig {
  /// One-way delivery latency before jitter.
  SimTime base_latency = microseconds(100);
  /// Uniform jitter added on top of base latency: U[0, jitter].
  SimTime jitter = microseconds(20);
  /// Probability an individual message is silently dropped.
  double drop_probability = 0.0;
  /// Probability an individual message is delivered twice.
  double duplicate_probability = 0.0;
  /// Per-message CPU/serialization overhead added per 1KiB of payload.
  SimTime per_kib_cost = microseconds(2);
};

/// Capacity model for one directed link. The zero-initialized profile is
/// the "LAN" null model: infinite bandwidth, no added propagation, no queue
/// bound — exactly the pre-profile latency behavior.
struct LinkProfile {
  /// Serialization rate in bytes per simulated second; 0 = infinite (no
  /// transmission delay and no queueing on this link).
  std::uint64_t bandwidth_bytes_per_sec = 0;
  /// One-way propagation delay added on top of the global latency model
  /// (models distance; chaos latency spikes stack on top).
  SimTime propagation = 0;
  /// Maximum bytes awaiting or in transmission on the link; a message whose
  /// arrival would push the backlog above this is tail-dropped. 0 =
  /// unbounded. Only meaningful with finite bandwidth.
  std::size_t queue_bytes = 0;

  [[nodiscard]] bool is_null() const {
    return bandwidth_bytes_per_sec == 0 && propagation == 0;
  }
};

class Network {
 public:
  using Deliver =
      std::function<void(ProcessId from, ProcessId to, const MessagePtr&)>;

  Network(Simulator& sim, NetworkConfig config, Rng rng, Deliver deliver)
      : sim_(sim),
        config_(config),
        rng_(std::move(rng)),
        deliver_(std::move(deliver)) {}

  /// Sends `msg` from `from` to `to`; delivery is scheduled per the latency
  /// and link-capacity model unless the message is dropped or the link is
  /// blocked. The only refcount bump on this path is the capture into the
  /// delivery event.
  void send(ProcessId from, ProcessId to, const MessagePtr& msg);

  /// Blocks / unblocks the directed link from->to (for partition tests).
  void block_link(ProcessId from, ProcessId to);
  void unblock_link(ProcessId from, ProcessId to);
  void unblock_all();

  // --- global knobs ---------------------------------------------------------
  // The config is read-only once the network exists; mid-run changes go
  // through these explicit setters so every mutation site is greppable and
  // per-link behavior stays in LinkProfile overrides. (An earlier revision
  // handed out a mutable NetworkConfig&, which let any caller silently
  // rewrite global behavior retroactively.)
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  void set_base_latency(SimTime t) { config_.base_latency = t; }
  void set_jitter(SimTime t) { config_.jitter = t; }
  void set_drop_probability(double p) { config_.drop_probability = p; }
  void set_duplicate_probability(double p) { config_.duplicate_probability = p; }
  void set_per_kib_cost(SimTime t) { config_.per_kib_cost = t; }

  // --- link profiles / WAN topology ----------------------------------------
  /// Default profile for links without an override (null = pure latency).
  void set_default_profile(LinkProfile profile) { default_profile_ = profile; }
  /// Assigns `process` to a site (datacenter) for site-pair resolution.
  void set_site(ProcessId process, std::uint32_t site);
  [[nodiscard]] std::uint32_t site_of(ProcessId process) const;
  /// Profile for every directed link from a process in `from_site` to one in
  /// `to_site` (both directions must be set explicitly if asymmetric).
  void set_site_profile(std::uint32_t from_site, std::uint32_t to_site,
                        LinkProfile profile);
  /// Per-link override, strongest binding.
  void set_link_profile(ProcessId from, ProcessId to, LinkProfile profile);
  void clear_link_profile(ProcessId from, ProcessId to);
  /// Override currently installed for the link, if any (chaos nemeses use
  /// this to save/restore around degrade windows).
  [[nodiscard]] std::optional<LinkProfile> link_profile_override(
      ProcessId from, ProcessId to) const;
  /// Resolved profile the next send on from->to would use (override >
  /// site pair > default), before bandwidth scaling.
  [[nodiscard]] LinkProfile resolve_profile(ProcessId from, ProcessId to) const;

  /// Global bandwidth multiplier applied to every finite-bandwidth link
  /// (chaos bandwidth-collapse windows divide it). 1.0 = nominal; must be
  /// > 0. Infinite-bandwidth links are unaffected.
  void set_bandwidth_scale(double scale) { bandwidth_scale_ = scale; }
  [[nodiscard]] double bandwidth_scale() const { return bandwidth_scale_; }

  /// Installs the labeled-metrics sink. When set, sends over links with a
  /// non-null resolved profile account bytes into
  /// `network.bytes_sent{link=...}` (label `sA->sB` for site pairs, `pF->pT`
  /// for per-process overrides). Null disables labeled accounting.
  void set_metrics(MetricsRegistry* metrics) {
    metrics_ = metrics;
    link_series_.clear();
  }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return messages_dropped_;
  }
  /// Messages tail-dropped because a link's transmission queue was full
  /// (also counted in messages_dropped()).
  [[nodiscard]] std::uint64_t messages_queue_dropped() const {
    return messages_queue_dropped_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// A directed link, identified by the full 64-bit endpoint ids. (An earlier
  /// revision packed both ids into one 64-bit word, which silently collided
  /// for process ids >= 2^32.)
  struct LinkKey {
    std::uint64_t from;
    std::uint64_t to;
    bool operator==(const LinkKey&) const = default;
  };
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& key) const {
      // splitmix64-style mix of both halves; order-sensitive so (a, b) and
      // (b, a) hash independently.
      std::uint64_t x = key.from * 0x9e3779b97f4a7c15ULL ^ key.to;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

 private:
  /// Mutable transmission state of one finite-bandwidth link.
  struct LinkState {
    /// Instant the pipe finishes serializing everything accepted so far; a
    /// new message starts transmitting at max(now, busy_until).
    SimTime busy_until = 0;
    /// Bytes accepted but not yet fully on the wire (backs the queue cap).
    std::size_t queued_bytes = 0;
  };

  [[nodiscard]] SimTime sample_latency(std::size_t payload_bytes);
  void account_link_bytes(ProcessId from, ProcessId to, std::size_t bytes,
                          bool site_resolved);

  Simulator& sim_;
  NetworkConfig config_;
  Rng rng_;
  Deliver deliver_;
  std::unordered_set<LinkKey, LinkKeyHash> blocked_;
  LinkProfile default_profile_{};
  std::unordered_map<LinkKey, LinkProfile, LinkKeyHash> overrides_;
  std::unordered_map<std::uint64_t, std::uint32_t> sites_;
  /// Site-pair profiles keyed by from_site * 2^32 + to_site.
  std::unordered_map<std::uint64_t, LinkProfile> site_profiles_;
  std::unordered_map<LinkKey, LinkState, LinkKeyHash> link_states_;
  double bandwidth_scale_ = 1.0;
  MetricsRegistry* metrics_ = nullptr;
  /// Cached labeled series per link (label strings are built once).
  std::unordered_map<LinkKey, TimeSeries*, LinkKeyHash> link_series_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t messages_queue_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace dynastar::sim
