// ReliableLink: ack + retransmit for point-to-point protocol messages, with
// crash-recovery support.
//
// The simulated network may drop messages; most protocol layers already
// repair their own traffic (Paxos retries phase 2, the multicast repair
// timer re-drives coordination), but the direct server-to-server messages
// (variable transfers/returns, plan handoffs, abort notices) have no
// retransmission path of their own — a single lost transfer would block a
// partition's queue head forever.
//
// v1 semantics (retransmit until acked) are not enough once receivers can
// lose state: a message acked by an incarnation that later crashes and rolls
// back to a checkpoint taken BEFORE the delivery is gone on both sides. So:
//
//  - An ack only stops retransmission. The entry is RETAINED until the
//    receiver's durable checkpoint provably covers the delivery: the
//    receiver broadcasts a StableNotice carrying its checkpoint capture
//    time, and the sender prunes entries whose ack arrived strictly before
//    that time (ack receipt at t_a implies delivery at some t <= t_a).
//  - On recovery, the restored receiver sends a ResendReq to every potential
//    peer; each peer re-drives its full retained buffer for that receiver.
//    ResendReq itself travels through the link (acked + retransmitted).
//  - On recovery, the restored sender re-sends every retained entry — its
//    own ack bookkeeping above the checkpoint is gone too.
//  - A retry-budget exhaustion (peer presumed dead) stops retransmission
//    but keeps the entry: the peer's eventual ResendReq revives it.
//
// Receivers must be idempotent under duplicates: recovery re-drives entire
// buffers. All wrapped DynaStar messages already dedupe at the protocol
// level, and that dedup state is part of the application checkpoint.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "sim/env.h"
#include "sim/message.h"

namespace dynastar::sim {

/// Wrapper carrying the retransmission token.
struct ReliableMsg final : Message {
  ReliableMsg(std::uint64_t t, MessagePtr m) : token(t), inner(std::move(m)) {}
  const char* type_name() const override { return "sim.Reliable"; }
  std::size_t size_bytes() const override {
    return 8 + (inner ? inner->size_bytes() : 0);
  }
  std::uint64_t token;
  MessagePtr inner;
};

struct ReliableAck final : Message {
  explicit ReliableAck(std::uint64_t t) : token(t) {}
  const char* type_name() const override { return "sim.ReliableAck"; }
  std::uint64_t token;
};

/// Recovered receiver -> peer: re-send everything you retain for me.
/// Travels through the link itself (wrapped, acked, retransmitted).
struct ResendReq final : Message {
  const char* type_name() const override { return "sim.ResendReq"; }
};

/// Checkpointing receiver -> peers: my durable checkpoint was captured at
/// `capture_time`; deliveries before it can never be rolled back.
struct StableNotice final : Message {
  explicit StableNotice(SimTime t) : capture_time(t) {}
  const char* type_name() const override { return "sim.StableNotice"; }
  SimTime capture_time;
};

class ReliableLink {
 public:
  struct Entry {
    ProcessId to{0};
    MessagePtr wrapped;
    SimTime last_tx = 0;
    std::uint32_t tries = 0;
    bool acked = false;
    SimTime acked_at = 0;
    bool control = false;  // link-internal (ResendReq); dropped on ack
  };

  /// Sender-side state captured into a checkpoint. Control entries are
  /// excluded (they are incarnation-local).
  struct State {
    std::map<std::uint64_t, Entry> pending;
    std::uint64_t next_token = 0;
    std::uint64_t epoch = 0;
  };

  explicit ReliableLink(Env& env) : env_(env) {}

  /// Sends `msg` to `to`, retransmitting until acked; the entry is retained
  /// past the ack until the receiver's checkpoint covers it.
  void send(ProcessId to, MessagePtr msg);

  /// Consumes ReliableMsg/ReliableAck/StableNotice (and link-internal
  /// ResendReqs). For an application ReliableMsg, acks the sender and
  /// surfaces the payload via `*inner` for the caller to dispatch. Returns
  /// false (and leaves `*inner` null) for any other message type.
  bool handle(ProcessId from, const MessagePtr& msg, MessagePtr* inner);

  /// Captures retained sends for the owner's checkpoint.
  [[nodiscard]] State capture() const;

  /// Restores after a crash: re-sends every retained entry under a fresh
  /// token epoch (acks above the checkpoint were lost with the heap) and
  /// asks every potential peer to re-drive its buffer for us.
  void restore(const State& s, const std::vector<ProcessId>& peers);

  /// Announces a durable checkpoint captured at `capture_time` so peers can
  /// prune entries this checkpoint covers.
  void note_checkpoint(SimTime capture_time,
                       const std::vector<ProcessId>& peers);

  /// Entries still awaiting an ack (excludes acked-but-retained ones).
  [[nodiscard]] std::size_t unacked() const;
  /// Total retained entries, acked or not.
  [[nodiscard]] std::size_t retained() const { return pending_.size(); }

 private:
  void enqueue(ProcessId to, MessagePtr msg, bool control);
  void redrive(ProcessId peer);
  void maybe_arm();
  void on_timer();
  [[nodiscard]] std::uint64_t new_token();

  Env& env_;
  std::map<std::uint64_t, Entry> pending_;  // token -> retained send
  std::uint64_t next_token_ = 0;
  std::uint64_t epoch_ = 0;  // bumped per incarnation; salts tokens
  bool armed_ = false;
};

}  // namespace dynastar::sim
