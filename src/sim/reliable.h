// ReliableLink: ack + retransmit for point-to-point protocol messages.
//
// The simulated network may drop messages; most protocol layers already
// repair their own traffic (Paxos retries phase 2, the multicast repair
// timer re-drives coordination), but the direct server-to-server messages
// (variable transfers/returns, plan handoffs, abort notices) have no
// retransmission path of their own — a single lost transfer would block a
// partition's queue head forever. ReliableLink wraps such messages with a
// per-sender token, acks on receipt, and retransmits unacked messages until
// they are acked or a retry budget runs out (the peer is presumed dead; its
// replica group peer holds a copy of every such message anyway).
//
// Receivers must be idempotent under duplicates: a retransmission whose ack
// was lost is delivered twice. All wrapped DynaStar messages already dedupe
// at the protocol level.
#pragma once

#include <cstdint>
#include <map>

#include "common/ids.h"
#include "sim/env.h"
#include "sim/message.h"

namespace dynastar::sim {

/// Wrapper carrying the retransmission token.
struct ReliableMsg final : Message {
  ReliableMsg(std::uint64_t t, MessagePtr m) : token(t), inner(std::move(m)) {}
  const char* type_name() const override { return "sim.Reliable"; }
  std::size_t size_bytes() const override {
    return 8 + (inner ? inner->size_bytes() : 0);
  }
  std::uint64_t token;
  MessagePtr inner;
};

struct ReliableAck final : Message {
  explicit ReliableAck(std::uint64_t t) : token(t) {}
  const char* type_name() const override { return "sim.ReliableAck"; }
  std::uint64_t token;
};

class ReliableLink {
 public:
  explicit ReliableLink(Env& env) : env_(env) {}

  /// Sends `msg` to `to`, retransmitting until acked (or retries exhaust).
  void send(ProcessId to, MessagePtr msg);

  /// Consumes ReliableMsg/ReliableAck. For a ReliableMsg, acks the sender
  /// and surfaces the payload via `*inner` for the caller to dispatch.
  /// Returns false (and leaves `*inner` null) for any other message type.
  bool handle(ProcessId from, const MessagePtr& msg, MessagePtr* inner);

  /// Re-arms the retransmission timer after a crash/recover cycle (timers of
  /// the previous incarnation never fire; pending sends are retained).
  void on_recover();

  [[nodiscard]] std::size_t unacked() const { return pending_.size(); }

 private:
  struct Pending {
    ProcessId to{0};
    MessagePtr wrapped;
    SimTime last_tx = 0;
    std::uint32_t tries = 0;
  };

  void maybe_arm();
  void on_timer();

  Env& env_;
  std::map<std::uint64_t, Pending> pending_;  // token -> in-flight send
  std::uint64_t next_token_ = 0;
  bool armed_ = false;
};

}  // namespace dynastar::sim
