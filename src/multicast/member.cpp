#include "multicast/member.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace dynastar::multicast {

namespace {
/// CPU cost of advancing the multicast state machine by one log entry.
constexpr SimTime kEntryCost = microseconds(2);

/// Leader re-drives in-flight coordination this often.
constexpr SimTime kRepairInterval = milliseconds(50);

std::uint64_t group_sender_key(GroupId g) { return (1ULL << 40) + g.value(); }
}  // namespace

MemberCore::MemberCore(sim::Env& env, const paxos::Topology& topology,
                       GroupId group, paxos::ReplicaConfig paxos_config)
    : env_(env),
      topology_(topology),
      group_(group),
      replica_(env, topology, group, paxos_config) {
  replica_.set_deliver([this](std::uint64_t /*seq*/, const sim::MessagePtr& v) {
    on_log_entry(v);
  });
  replica_.set_on_lead([this] { on_gain_leadership(); });
}

void MemberCore::start() {
  replica_.start();
  arm_repair_timer();
}

MemberCore::State MemberCore::capture_state() const {
  State s;
  s.clock = clock_;
  s.pending = pending_;
  s.seen = seen_;
  s.delivered_count = delivered_count_;
  s.early_proposals = early_proposals_;
  s.final_submitted = final_submitted_;
  s.channels = channels_;
  s.unstarted = unstarted_;
  s.outbox = outbox_;
  s.group_sender_seq = group_sender_seq_;
  s.replica = replica_.checkpoint_state();
  return s;
}

void MemberCore::restore_state(const State& s) {
  // A live replica installing a peer's checkpoint (Paxos catchup) must not
  // drop McastSends it receipt-acked but the peer has not started: the ack
  // stopped the sender's retransmissions, so this stash may hold the only
  // surviving copy. Carry those entries across the install; resubmission is
  // deduplicated through seen_. (After a crash the map starts empty — no-op.)
  std::map<Uid, Unstarted> carried;
  for (const auto& [uid, entry] : unstarted_)
    if (!s.seen.contains(uid)) carried.emplace(uid, entry);
  clock_ = s.clock;
  pending_ = s.pending;
  seen_ = s.seen;
  delivered_count_ = s.delivered_count;
  early_proposals_ = s.early_proposals;
  final_submitted_ = s.final_submitted;
  channels_ = s.channels;
  unstarted_ = s.unstarted;
  for (const auto& [uid, entry] : carried) unstarted_.emplace(uid, entry);
  outbox_ = s.outbox;
  group_sender_seq_ = s.group_sender_seq;
  replica_.restore(s.replica);
}

void MemberCore::start_recovered() {
  replica_.start_recovered();
  arm_repair_timer();
}

void MemberCore::arm_repair_timer() {
  // Periodic repair: lost McastSends / TsProposals / Finals / group-sender
  // transmissions are re-driven; every path is idempotent (log-side and
  // receiver-side dedupe), so duplicates are harmless. Unstarted entries are
  // re-submitted by EVERY replica (a follower's submit is forwarded to the
  // leader), not just the leader — the send may have reached only followers.
  env_.start_timer(kRepairInterval, [this] {
    const SimTime now = env_.now();
    for (auto& [uid, entry] : unstarted_) {
      if (now - entry.since < kRepairInterval) continue;
      entry.since = now;
      replica_.submit(sim::make_message<StartEntry>(entry.data));
    }
    if (replica_.is_leader()) {
      for (auto& [uid, pending] : pending_) {
        if (pending.data->groups.size() > 1 && !pending.final_ts.has_value()) {
          resend_to_silent_groups(pending);
          broadcast_ts_proposal(pending);
          maybe_submit_final(uid);
        }
      }
      for (auto& entry : outbox_) {
        if (!entry.unacked.empty() && now - entry.last_tx >= kRepairInterval)
          transmit(entry);
      }
    }
    arm_repair_timer();
  });
}

bool MemberCore::handle(ProcessId from, const sim::MessagePtr& msg) {
  if (replica_.handle(from, msg)) return true;
  if (auto* send = dynamic_cast<const McastSend*>(msg.get())) {
    on_send(from, *send);
    return true;
  }
  if (auto* ack = dynamic_cast<const McastAck*>(msg.get())) {
    return on_ack(*ack);
  }
  if (auto* prop = dynamic_cast<const TsProposal*>(msg.get())) {
    on_ts_proposal(*prop);
    return true;
  }
  return false;
}

void MemberCore::on_send(ProcessId from, const McastSend& msg) {
  const Uid uid = msg.data->uid;
  const auto& groups = msg.data->groups;
  if (std::find(groups.begin(), groups.end(), group_) == groups.end()) return;
  // Ack receipt even for duplicates — the sender's previous ack may have
  // been lost, and it keeps retransmitting until one arrives.
  env_.send_message(from, sim::make_message<McastAck>(uid, group_));
  if (seen_.contains(uid) || unstarted_.contains(uid)) return;
  if (gate_ && replica_.is_leader() && groups.size() == 1 &&
      gate_(*msg.data)) {
    // Shed at admission: order a shed-flagged Start so every replica makes
    // the identical decision from the log. Not stashed in unstarted_ — if
    // this submit is lost (leader crash), followers hold the send in their
    // own unstarted_ and the repair timer re-drives a plain Start, which is
    // a benign late admission.
    replica_.submit(sim::make_message<StartEntry>(msg.data, /*shed=*/true));
    return;
  }
  unstarted_[uid] = Unstarted{msg.data, env_.now()};
  if (replica_.is_leader())
    replica_.submit(sim::make_message<StartEntry>(msg.data));
}

bool MemberCore::on_ack(const McastAck& msg) {
  for (auto it = outbox_.begin(); it != outbox_.end(); ++it) {
    if (it->data->uid != msg.uid) continue;
    it->unacked.erase(msg.group);
    if (it->unacked.empty()) outbox_.erase(it);
    return true;
  }
  // Not one of ours: either already fully acked (late duplicate) or aimed at
  // a co-located McastClient. Let the caller route it.
  return false;
}

void MemberCore::on_ts_proposal(const TsProposal& msg) {
  auto it = pending_.find(msg.uid);
  if (it == pending_.end()) {
    auto seen = seen_.find(msg.uid);
    if (seen == seen_.end()) {
      early_proposals_[msg.uid][msg.from_group] = msg.ts;
    } else if (!msg.reply && msg.from_group != group_) {
      // Already ordered here — possibly already delivered, in which case the
      // repair timer no longer re-drives our proposal. The sender may be
      // polling because its copy of it was lost; answer with the remembered
      // timestamp so the peer group can finalize. Replies are marked so two
      // already-delivered groups never answer each other in a loop.
      for (ProcessId replica : topology_.group(msg.from_group).replicas) {
        env_.send_message(replica,
                          sim::make_message<TsProposal>(
                              msg.uid, group_, seen->second, /*reply=*/true));
      }
    }
    return;
  }
  auto [pos, inserted] =
      it->second.proposals.emplace(msg.from_group, msg.ts);
  (void)pos;
  if (inserted) maybe_submit_final(msg.uid);
}

void MemberCore::on_log_entry(const sim::MessagePtr& value) {
  env_.consume_cpu(kEntryCost);
  if (auto* start = dynamic_cast<const StartEntry*>(value.get())) {
    process_start(start->data, start->shed);
    return;
  }
  if (auto* final_entry = dynamic_cast<const FinalEntry*>(value.get())) {
    process_final(final_entry->uid, final_entry->ts);
    return;
  }
  // Unknown entries are no-ops (e.g., gap-filling empty batches).
}

void MemberCore::process_start(const McastDataPtr& data, bool shed) {
  if (seen_.contains(data->uid)) {
    unstarted_.erase(data->uid);
    return;
  }
  auto& channel = channels_[data->sender];
  const std::uint64_t seq = data->seq_for(group_);
  if (seq != channel.next_seq) {
    if (seq > channel.next_seq) channel.held[seq] = HeldStart{data, shed};
    return;
  }
  McastDataPtr current = data;
  bool current_shed = shed;
  while (true) {
    // Admit `current`: assign the group-local timestamp. Shed messages still
    // take a timestamp and advance the FIFO channel — the shed flag only
    // changes which delivery callback fires.
    unstarted_.erase(current->uid);
    Pending pending;
    pending.data = current;
    pending.shed = current_shed;
    pending.local_ts = ++clock_;
    seen_.emplace(current->uid, pending.local_ts);
    pending.proposals.emplace(group_, pending.local_ts);
    if (auto early = early_proposals_.find(current->uid);
        early != early_proposals_.end()) {
      for (const auto& [g, ts] : early->second)
        pending.proposals.emplace(g, ts);
      early_proposals_.erase(early);
    }
    const bool single_group = current->groups.size() == 1;
    auto [it, inserted] = pending_.emplace(current->uid, std::move(pending));
    assert(inserted);
    if (single_group) {
      it->second.final_ts = it->second.local_ts;
    } else if (replica_.is_leader()) {
      broadcast_ts_proposal(it->second);
      maybe_submit_final(current->uid);
    }
    ++channel.next_seq;
    auto next = channel.held.find(channel.next_seq);
    if (next == channel.held.end()) break;
    current = next->second.data;
    current_shed = next->second.shed;
    channel.held.erase(next);
  }
  try_deliver();
}

void MemberCore::process_final(Uid uid, Timestamp ts) {
  auto it = pending_.find(uid);
  if (it == pending_.end() || it->second.final_ts.has_value()) return;
  clock_ = std::max(clock_, ts);
  it->second.final_ts = ts;
  try_deliver();
}

void MemberCore::maybe_submit_final(Uid uid) {
  if (!replica_.is_leader()) return;
  auto it = pending_.find(uid);
  if (it == pending_.end()) return;
  const Pending& pending = it->second;
  if (pending.final_ts.has_value() || final_submitted_.contains(uid)) return;
  if (pending.proposals.size() < pending.data->groups.size()) return;
  Timestamp final_ts = 0;
  for (const auto& [g, ts] : pending.proposals) final_ts = std::max(final_ts, ts);
  final_submitted_.insert(uid);
  replica_.submit(sim::make_message<FinalEntry>(uid, final_ts));
}

void MemberCore::resend_to_silent_groups(const Pending& pending) {
  // A destination group can lose the original McastSend *after* acking it:
  // the ack goes out on receipt, but a lagging replica's unstarted stash
  // dies with a catchup snapshot install (or a crash). The sender then
  // retransmits no more, that group never proposes, and every group that did
  // admit the message wedges behind it. Any admitted group re-offers the
  // payload to groups it has no proposal from; receivers deduplicate.
  auto msg = sim::make_message<McastSend>(pending.data);
  for (GroupId dest : pending.data->groups) {
    if (dest == group_ || pending.proposals.contains(dest)) continue;
    for (ProcessId replica : topology_.group(dest).replicas)
      env_.send_message(replica, msg);
  }
}

void MemberCore::broadcast_ts_proposal(const Pending& pending) {
  for (GroupId dest : pending.data->groups) {
    if (dest == group_) continue;
    for (ProcessId replica : topology_.group(dest).replicas) {
      env_.send_message(replica, sim::make_message<TsProposal>(
                                     pending.data->uid, group_, pending.local_ts));
    }
  }
}

void MemberCore::try_deliver() {
  while (!pending_.empty()) {
    // The deliverable message is the pending minimum by (lower bound, uid),
    // provided its final timestamp is known: every other pending message can
    // only end up with a larger (ts, uid) key.
    auto min_it = pending_.end();
    Timestamp min_lb = 0;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      const Timestamp lb = it->second.final_ts.value_or(it->second.local_ts);
      if (min_it == pending_.end() || lb < min_lb ||
          (lb == min_lb && it->first < min_it->first)) {
        min_it = it;
        min_lb = lb;
      }
    }
    if (!min_it->second.final_ts.has_value()) return;
    McastDataPtr data = min_it->second.data;
    const bool shed = min_it->second.shed;
    final_submitted_.erase(min_it->first);
    early_proposals_.erase(min_it->first);
    pending_.erase(min_it);
    ++delivered_count_;
    if (trace_)
      trace_->record(TracePoint::kMcastDelivered, env_.now(), data->uid, 0,
                     env_.self().value(), group_.value());
    if (shed) {
      if (shed_deliver_) shed_deliver_(*data);
    } else if (deliver_) {
      deliver_(*data);
    }
  }
}

void MemberCore::on_gain_leadership() {
  // A previous leader may have died between ordering and coordinating; make
  // every in-flight step happen again (receivers deduplicate).
  for (auto& [uid, entry] : unstarted_) {
    entry.since = env_.now();
    replica_.submit(sim::make_message<StartEntry>(entry.data));
  }
  for (auto& [uid, pending] : pending_) {
    if (pending.data->groups.size() > 1 && !pending.final_ts.has_value()) {
      resend_to_silent_groups(pending);
      broadcast_ts_proposal(pending);
      maybe_submit_final(uid);
    }
  }
  for (auto& entry : outbox_)
    if (!entry.unacked.empty()) transmit(entry);
}

void MemberCore::amcast_as_group(Uid uid, std::vector<GroupId> groups,
                                 sim::MessagePtr payload) {
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  std::vector<std::pair<GroupId, std::uint64_t>> seqs;
  seqs.reserve(groups.size());
  for (GroupId g : groups) seqs.emplace_back(g, ++group_sender_seq_[g]);
  auto data = sim::make_message<McastData>(
      uid, group_sender_key(group_), env_.self(), std::move(groups),
      std::move(seqs), std::move(payload));
  OutEntry entry;
  entry.data = data;
  entry.unacked.insert(data->groups.begin(), data->groups.end());
  outbox_.push_back(std::move(entry));
  if (replica_.is_leader()) transmit(outbox_.back());
}

void MemberCore::transmit(OutEntry& entry) {
  entry.last_tx = env_.now();
  auto msg = sim::make_message<McastSend>(entry.data);
  for (GroupId dest : entry.unacked) {
    for (ProcessId replica : topology_.group(dest).replicas) {
      env_.send_message(replica, msg);
    }
  }
}

}  // namespace dynastar::multicast
