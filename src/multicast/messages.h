// Atomic multicast: message and log-entry types.
//
// The protocol is the Skeen-style genuine algorithm used by BaseCast
// (Coelho et al., DSN'17): each destination group orders the message in its
// Paxos log and assigns it a local logical timestamp; destination groups
// exchange their timestamps; the final timestamp is the maximum, and every
// group delivers in (timestamp, uid) order. Only sender and destination
// groups communicate — the multicast is genuine.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "sim/message.h"

namespace dynastar::multicast {

/// Globally unique multicast message id, chosen by the logical sender.
/// Deterministic senders (replicated groups emitting outputs) derive it from
/// replicated state so every replica computes the same uid.
using Uid = std::uint64_t;

/// Group-local logical timestamp.
using Timestamp = std::uint64_t;

/// The unit the application hands to a-mcast: destination groups plus an
/// opaque payload. `fifo_seq` carries one per-(sender, group) sequence
/// number per destination so each group can process a sender's messages in
/// submission order.
struct McastData final : sim::Message {
  McastData(Uid u, std::uint64_t sender_key, ProcessId orig,
            std::vector<GroupId> gs,
            std::vector<std::pair<GroupId, std::uint64_t>> seqs,
            sim::MessagePtr p)
      : uid(u),
        sender(sender_key),
        origin(orig),
        groups(std::move(gs)),
        fifo_seq(std::move(seqs)),
        payload(std::move(p)) {}
  const char* type_name() const override { return "mcast.Data"; }
  std::size_t size_bytes() const override {
    return 64 + groups.size() * 8 + payload->size_bytes();
  }

  [[nodiscard]] std::uint64_t seq_for(GroupId g) const {
    for (const auto& [group, seq] : fifo_seq)
      if (group == g) return seq;
    return 0;
  }

  Uid uid;
  /// Logical sender key for per-(sender, group) FIFO ordering. Client nodes
  /// use their process id; replicated group senders use a key derived from
  /// their group id so every replica computes the same channel.
  std::uint64_t sender;
  ProcessId origin;
  std::vector<GroupId> groups;  // sorted, unique
  std::vector<std::pair<GroupId, std::uint64_t>> fifo_seq;
  sim::MessagePtr payload;
};

using McastDataPtr = sim::Ref<const McastData>;

/// Sender -> replicas of each destination group.
struct McastSend final : sim::Message {
  explicit McastSend(McastDataPtr d) : data(std::move(d)) {}
  const char* type_name() const override { return "mcast.Send"; }
  std::size_t size_bytes() const override { return data->size_bytes(); }
  McastDataPtr data;
};

/// Receiver replica -> transmitting process: "group `group` has received
/// multicast `uid`". Positive acknowledgement driving sender-side
/// retransmission — without it, a McastSend lost on every link to a
/// destination group would leave that group's FIFO channel waiting forever.
struct McastAck final : sim::Message {
  McastAck(Uid u, GroupId g) : uid(u), group(g) {}
  const char* type_name() const override { return "mcast.Ack"; }
  Uid uid;
  GroupId group;
};

/// Leader of one destination group -> replicas of the other destination
/// groups: "my group ordered `uid` at local timestamp `ts`". `reply` marks
/// an answer to another group's (re-)broadcast from a group that already
/// ordered the message; replies must never trigger counter-replies, or two
/// groups that both delivered would answer each other forever.
struct TsProposal final : sim::Message {
  TsProposal(Uid u, GroupId g, Timestamp t, bool r = false)
      : uid(u), from_group(g), ts(t), reply(r) {}
  const char* type_name() const override { return "mcast.TsProposal"; }
  Uid uid;
  GroupId from_group;
  Timestamp ts;
  bool reply;
};

/// Log entry: the group ordered this multicast (assigns the local timestamp
/// deterministically at processing time). `shed` bakes an admission-control
/// decision into the log: the message still advances the sender's FIFO
/// channel and the group clock at every replica, but delivery routes to the
/// shed handler instead of the application — so shedding is replicated
/// state, never a replica-local divergence.
struct StartEntry final : sim::Message {
  explicit StartEntry(McastDataPtr d, bool s = false)
      : data(std::move(d)), shed(s) {}
  const char* type_name() const override { return "mcast.Start"; }
  std::size_t size_bytes() const override { return data->size_bytes(); }
  McastDataPtr data;
  bool shed;
};

/// Log entry: the final (max) timestamp for `uid` is known; bump the group
/// clock and make the message deliverable.
struct FinalEntry final : sim::Message {
  FinalEntry(Uid u, Timestamp t) : uid(u), ts(t) {}
  const char* type_name() const override { return "mcast.Final"; }
  Uid uid;
  Timestamp ts;
};

}  // namespace dynastar::multicast
