// MemberCore: one group member's view of the atomic multicast protocol.
//
// Owns the group's Paxos replica and drives the multicast state machine from
// the replica's delivered log, so every replica of a group makes identical
// decisions. Network-side events (incoming sends, timestamp proposals) feed
// the leader, which injects the corresponding log entries.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "multicast/messages.h"
#include "paxos/replica.h"
#include "paxos/topology.h"
#include "sim/env.h"

namespace dynastar::multicast {

class MemberCore {
 public:
  /// Called exactly once per a-delivered message, in the group's delivery
  /// order.
  using DeliverFn = std::function<void(const McastData&)>;

  /// Admission gate consulted by the *leader* before ordering a single-group
  /// message. Returning true sheds the message: it is still ordered (as a
  /// shed-flagged Start entry, so every replica advances the sender's FIFO
  /// channel and clock identically) but delivery routes to the shed handler
  /// instead of the application. Multi-group messages are never gated —
  /// shedding at one group would wedge peer groups waiting on timestamp
  /// proposals.
  using GateFn = std::function<bool(const McastData&)>;

  struct Pending {
    McastDataPtr data;
    Timestamp local_ts = 0;
    std::map<GroupId, Timestamp> proposals;
    std::optional<Timestamp> final_ts;
    bool shed = false;
  };

  struct OutEntry {
    McastDataPtr data;
    std::set<GroupId> unacked;  // destination groups not yet heard from
    SimTime last_tx = 0;
  };

  // FIFO holdback: per sender, next expected seq and messages waiting. Each
  // held message carries its log-ordered shed flag.
  struct HeldStart {
    McastDataPtr data;
    bool shed = false;
  };
  struct SenderChannel {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, HeldStart> held;
  };

  // McastSends received but not yet seen as Start entries (see unstarted_).
  struct Unstarted {
    McastDataPtr data;
    SimTime since = 0;  // last submission attempt (age-gates resubmits)
  };

  /// The complete multicast protocol state captured into a checkpoint. Plain
  /// value copies; McastData payloads are immutable and shared by pointer.
  struct State {
    Timestamp clock = 0;
    std::unordered_map<Uid, Pending> pending;
    std::unordered_map<Uid, Timestamp> seen;
    std::uint64_t delivered_count = 0;
    std::unordered_map<Uid, std::map<GroupId, Timestamp>> early_proposals;
    std::unordered_set<Uid> final_submitted;
    std::unordered_map<std::uint64_t, SenderChannel> channels;
    std::map<Uid, Unstarted> unstarted;
    std::vector<OutEntry> outbox;
    std::map<GroupId, std::uint64_t> group_sender_seq;
    paxos::ReplicaRestart replica;
  };

  MemberCore(sim::Env& env, const paxos::Topology& topology, GroupId group,
             paxos::ReplicaConfig paxos_config = {});

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Installs the admission gate (see GateFn). Null disables gating.
  void set_admission_gate(GateFn fn) { gate_ = std::move(fn); }

  /// Called (in delivery order) for messages shed at admission. A shed
  /// delivery replaces the app delivery; with no handler installed the
  /// message is silently consumed.
  void set_shed_deliver(DeliverFn fn) { shed_deliver_ = std::move(fn); }

  /// Optional lifecycle trace sink (propagated to the owned Paxos replica);
  /// records one kMcastDelivered event per a-delivery. Null disables.
  void set_trace(TraceCollector* trace) {
    trace_ = trace;
    replica_.set_trace(trace);
  }

  void start();

  /// Captures/restores the full multicast + Paxos-position state for
  /// checkpoints. restore_state() leaves timers untouched; pair it with
  /// start_recovered() when rejoining after a crash.
  [[nodiscard]] State capture_state() const;
  void restore_state(const State& s);

  /// Rejoins the group after restore_state(): re-arms the repair timer and
  /// the replica's follower liveness (the previous incarnation's timers
  /// never fire). Restored in-flight coordination is re-driven by the
  /// repair timer and on_gain_leadership.
  void start_recovered();

  /// Handles Paxos and multicast messages; returns false for anything else
  /// (application messages the caller should dispatch itself). A McastAck
  /// for a multicast this member did not emit also returns false so the
  /// caller can route it to a co-located McastClient.
  bool handle(ProcessId from, const sim::MessagePtr& msg);

  /// Deterministic group-sender a-mcast: every replica of this group calls
  /// this with identical arguments while processing the same log position;
  /// only the current leader transmits (others stash for re-emission on
  /// leadership change). `uid` must be derived from replicated state.
  void amcast_as_group(Uid uid, std::vector<GroupId> groups,
                       sim::MessagePtr payload);

  [[nodiscard]] GroupId group() const { return group_; }
  [[nodiscard]] bool is_leader() const { return replica_.is_leader(); }
  paxos::ReplicaCore& replica() { return replica_; }
  [[nodiscard]] const paxos::ReplicaCore& replica() const { return replica_; }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_count_; }

  /// Group-sender multicasts awaiting acks from destination groups. Grows
  /// when a destination is saturated or down — a backpressure signal the
  /// oracle's admission gate folds into its load estimate.
  [[nodiscard]] std::size_t outbox_depth() const { return outbox_.size(); }

 private:
  void on_log_entry(const sim::MessagePtr& value);
  void process_start(const McastDataPtr& data, bool shed);
  void process_final(Uid uid, Timestamp ts);
  void on_send(ProcessId from, const McastSend& msg);
  bool on_ack(const McastAck& msg);
  void on_ts_proposal(const TsProposal& msg);
  void maybe_submit_final(Uid uid);
  void resend_to_silent_groups(const Pending& pending);
  void broadcast_ts_proposal(const Pending& pending);
  void try_deliver();
  void on_gain_leadership();
  void transmit(OutEntry& entry);
  void arm_repair_timer();

  sim::Env& env_;
  const paxos::Topology& topology_;
  GroupId group_;
  paxos::ReplicaCore replica_;
  DeliverFn deliver_;
  GateFn gate_;
  DeliverFn shed_deliver_;
  TraceCollector* trace_ = nullptr;

  Timestamp clock_ = 0;
  std::unordered_map<Uid, Pending> pending_;
  // Started or delivered uids (dedupe for Start), each with the group-local
  // timestamp assigned at admission. The timestamp outlives the pending_
  // entry on purpose: after this group delivers, a peer group whose copy of
  // our proposal was lost still repair-polls with its own proposal, and we
  // must be able to answer (see on_ts_proposal) or that group wedges.
  std::unordered_map<Uid, Timestamp> seen_;
  std::uint64_t delivered_count_ = 0;

  // Timestamp proposals that arrived before the Start entry was processed.
  std::unordered_map<Uid, std::map<GroupId, Timestamp>> early_proposals_;
  // Finals already submitted (leader-side dedupe; log-side dedupe also holds).
  std::unordered_set<Uid> final_submitted_;

  std::unordered_map<std::uint64_t, SenderChannel> channels_;

  // McastSends received but not yet seen as Start entries; every replica
  // retains (and periodically re-submits) them until started, so a send that
  // reached only a follower — or whose leader died — still gets ordered.
  std::map<Uid, Unstarted> unstarted_;

  // Group-sender outbox: multicasts this group emitted (deterministically).
  // The leader retransmits entries to destination groups that have not acked
  // yet; fully-acked entries are pruned.
  std::vector<OutEntry> outbox_;

  // Deterministic per-destination-group fifo sequence counters for
  // amcast_as_group (replicated state: identical at all replicas).
  std::map<GroupId, std::uint64_t> group_sender_seq_;
};

}  // namespace dynastar::multicast
