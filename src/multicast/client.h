// Client-side a-mcast helper for processes that are not group members
// (application clients). Assigns uids and per-group FIFO sequence numbers
// and transmits to every replica of each destination group.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "multicast/messages.h"
#include "paxos/topology.h"
#include "sim/env.h"

namespace dynastar::multicast {

class McastClient {
 public:
  McastClient(sim::Env& env, const paxos::Topology& topology)
      : env_(env), topology_(topology) {}

  /// Atomically multicasts `payload` to `groups`; returns the message uid.
  Uid amcast(std::vector<GroupId> groups, sim::MessagePtr payload) {
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
    const Uid uid = (env_.self().value() << 32) | ++next_uid_;
    std::vector<std::pair<GroupId, std::uint64_t>> seqs;
    seqs.reserve(groups.size());
    for (GroupId g : groups) seqs.emplace_back(g, ++seq_per_group_[g]);
    auto data = std::make_shared<const McastData>(
        uid, env_.self().value(), env_.self(), std::move(groups),
        std::move(seqs), std::move(payload));
    auto msg = sim::make_message<McastSend>(data);
    for (GroupId dest : data->groups) {
      for (ProcessId replica : topology_.group(dest).replicas) {
        env_.send_message(replica, msg);
      }
    }
    return uid;
  }

 private:
  sim::Env& env_;
  const paxos::Topology& topology_;
  std::uint64_t next_uid_ = 0;
  std::map<GroupId, std::uint64_t> seq_per_group_;
};

}  // namespace dynastar::multicast
