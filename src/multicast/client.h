// Client-side a-mcast helper for processes that are not group members
// (application clients). Assigns uids and per-group FIFO sequence numbers
// and transmits to every replica of each destination group.
//
// Sends are retained until every destination group acknowledges receipt
// (McastAck); the owner decides when to retransmit unacked sends — the
// DynaStar client does so from its command-timeout path, which bounds
// retransmission traffic by the client's own backoff schedule.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "multicast/messages.h"
#include "paxos/topology.h"
#include "sim/env.h"

namespace dynastar::multicast {

class McastClient {
 public:
  struct OutEntry {
    McastDataPtr data;
    std::set<GroupId> unacked;
  };

  /// Sender state captured into a checkpoint (the env/topology refs stay
  /// with the owning incarnation). Payloads are immutable shared pointers.
  struct State {
    std::uint64_t next_uid = 0;
    std::map<GroupId, std::uint64_t> seq_per_group;
    std::map<Uid, OutEntry> outbox;
  };

  McastClient(sim::Env& env, const paxos::Topology& topology)
      : env_(env), topology_(topology) {}

  [[nodiscard]] State capture() const {
    return State{next_uid_, seq_per_group_, outbox_};
  }

  /// Restores sender state after a crash; the owner re-drives delivery via
  /// retransmit_unacked() (receivers dedupe by uid).
  void restore(const State& s) {
    next_uid_ = s.next_uid;
    seq_per_group_ = s.seq_per_group;
    outbox_ = s.outbox;
  }

  /// Atomically multicasts `payload` to `groups`; returns the message uid.
  Uid amcast(std::vector<GroupId> groups, sim::MessagePtr payload) {
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
    const Uid uid = (env_.self().value() << 32) | ++next_uid_;
    std::vector<std::pair<GroupId, std::uint64_t>> seqs;
    seqs.reserve(groups.size());
    for (GroupId g : groups) seqs.emplace_back(g, ++seq_per_group_[g]);
    auto data = sim::make_message<McastData>(
        uid, env_.self().value(), env_.self(), std::move(groups),
        std::move(seqs), std::move(payload));
    auto& entry = outbox_[uid];
    entry.data = data;
    entry.unacked.insert(data->groups.begin(), data->groups.end());
    transmit(entry);
    return uid;
  }

  /// Consumes McastAcks addressed to this sender; returns false for any
  /// other message type.
  bool handle(const sim::MessagePtr& msg) {
    const auto* ack = dynamic_cast<const McastAck*>(msg.get());
    if (ack == nullptr) return false;
    auto it = outbox_.find(ack->uid);
    if (it != outbox_.end()) {
      it->second.unacked.erase(ack->group);
      if (it->second.unacked.empty()) outbox_.erase(it);
    }
    return true;
  }

  /// Retransmits every send that still has unacked destination groups, in
  /// uid (i.e. submission) order.
  void retransmit_unacked() {
    for (auto& [uid, entry] : outbox_) transmit(entry);
  }

  [[nodiscard]] std::size_t unacked() const { return outbox_.size(); }

 private:
  void transmit(const OutEntry& entry) {
    auto msg = sim::make_message<McastSend>(entry.data);
    for (GroupId dest : entry.unacked) {
      for (ProcessId replica : topology_.group(dest).replicas) {
        env_.send_message(replica, msg);
      }
    }
  }

  sim::Env& env_;
  const paxos::Topology& topology_;
  std::uint64_t next_uid_ = 0;
  std::map<GroupId, std::uint64_t> seq_per_group_;
  std::map<Uid, OutEntry> outbox_;  // sends awaiting group acks
};

}  // namespace dynastar::multicast
