#include "baselines/registry.h"

#include <cstdio>
#include <cstdlib>

#include "core/scenario.h"

namespace dynastar::baselines {

core::SystemConfig baseline_common(std::uint32_t partitions,
                                   std::uint64_t seed) {
  core::SystemConfig config;
  config.num_partitions = partitions;
  config.seed = seed;
  return config;
}

core::SystemConfig Baseline::config(std::uint32_t partitions,
                                    std::uint64_t seed) const {
  core::SystemConfig c = baseline_common(partitions, seed);
  c.mode = mode;
  protocol_knobs(c);
  return c;
}

namespace {

void dynastar_knobs(core::SystemConfig& config) {
  config.repartitioning_enabled = true;
}

void static_knobs(core::SystemConfig& config) {
  // Static placement: the benchmark setup installs the (workload-optimized
  // or naive) assignment; the run never re-plans.
  config.repartitioning_enabled = false;
}

void star_knobs(core::SystemConfig& config) {
  // STAR keeps placement static too; multi-partition commands run in
  // log-ordered master epochs instead of borrow/return round-trips.
  config.repartitioning_enabled = false;
}

}  // namespace

const std::vector<Baseline>& registry() {
  static const std::vector<Baseline> kBaselines = {
      {"dynastar",
       "DynaStar as evaluated in the paper: oracle repartitioning on, "
       "borrow/return execution, optimized plans",
       core::ExecutionMode::kDynaStar, dynastar_knobs},
      {"ssmr",
       "S-SMR* (paper §5.5): static workload-optimized placement; "
       "multi-partition commands execute at every involved partition",
       core::ExecutionMode::kSSMR, static_knobs},
      {"dssmr",
       "DS-SMR (Le et al., DSN'16): every multi-partition command "
       "permanently moves its variables to the target; no workload graph",
       core::ExecutionMode::kDSSMR, static_knobs},
      {"star",
       "STAR-style asymmetric execution: singles run partitioned, "
       "multi-partition commands defer to periodic full-replica master epochs",
       core::ExecutionMode::kStar, star_knobs},
  };
  return kBaselines;
}

const Baseline* find_baseline(std::string_view name) {
  for (const Baseline& b : registry())
    if (name == b.name) return &b;
  return nullptr;
}

core::SystemConfig config_for(std::string_view name, std::uint32_t partitions,
                              std::uint64_t seed) {
  const Baseline* baseline = find_baseline(name);
  if (baseline == nullptr) {
    std::fprintf(stderr, "unknown baseline '%.*s' (expected %s)\n",
                 static_cast<int>(name.size()), name.data(),
                 baseline_names().c_str());
    std::abort();
  }
  return baseline->config(partitions, seed);
}

std::string baseline_names(const char* sep) {
  std::string out;
  for (const Baseline& b : registry()) {
    if (!out.empty()) out += sep;
    out += b.name;
  }
  return out;
}

}  // namespace dynastar::baselines

namespace dynastar::core {

ScenarioBuilder& ScenarioBuilder::system_preset(std::string_view name) {
  const std::uint32_t partitions = current_config().num_partitions;
  const std::uint64_t seed = current_config().seed;
  return config(baselines::config_for(name, partitions, seed));
}

}  // namespace dynastar::core
