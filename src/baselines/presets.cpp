#include "baselines/presets.h"

namespace dynastar::baselines {

namespace {
core::SystemConfig base_config(std::uint32_t partitions, std::uint64_t seed) {
  core::SystemConfig config;
  config.num_partitions = partitions;
  config.seed = seed;
  return config;
}
}  // namespace

core::SystemConfig dynastar_config(std::uint32_t partitions,
                                   std::uint64_t seed) {
  core::SystemConfig config = base_config(partitions, seed);
  config.mode = core::ExecutionMode::kDynaStar;
  config.repartitioning_enabled = true;
  return config;
}

core::SystemConfig ssmr_config(std::uint32_t partitions, std::uint64_t seed) {
  core::SystemConfig config = base_config(partitions, seed);
  config.mode = core::ExecutionMode::kSSMR;
  config.repartitioning_enabled = false;
  return config;
}

core::SystemConfig dssmr_config(std::uint32_t partitions, std::uint64_t seed) {
  core::SystemConfig config = base_config(partitions, seed);
  config.mode = core::ExecutionMode::kDSSMR;
  config.repartitioning_enabled = false;
  return config;
}

}  // namespace dynastar::baselines
