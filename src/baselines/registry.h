// Baseline registry: the four systems the repo evaluates — DynaStar,
// S-SMR* (static, workload-optimized placement), DS-SMR (naive dynamic
// relocation), and STAR (asymmetric partitioned/replicated execution) —
// expressed as named configurations of one seam. Every comparison resolves
// through baseline_common(), so the systems provably share network/CPU/Paxos
// parameters and differ only in protocol knobs (asserted in tests).
//
// Benches, examples, tests, core::ScenarioBuilder::system_preset() and
// `simctl --system=<name>` all resolve names through this table, so adding a
// baseline here surfaces it everywhere at once.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"

namespace dynastar::baselines {

/// The parameters every baseline shares: identical network, CPU, Paxos, and
/// partitioner settings for the requested deployment size. Baselines layer
/// only protocol knobs on top of this.
core::SystemConfig baseline_common(std::uint32_t partitions,
                                   std::uint64_t seed = 1);

/// One registered system. `protocol_knobs` is the complete delta from
/// baseline_common() besides the execution mode itself.
struct Baseline {
  const char* name;     // registry key ("dynastar", "ssmr", ...)
  const char* summary;  // one-liner for --help / docs
  core::ExecutionMode mode;
  void (*protocol_knobs)(core::SystemConfig&);

  /// baseline_common(partitions, seed) + mode + protocol_knobs.
  core::SystemConfig config(std::uint32_t partitions,
                            std::uint64_t seed = 1) const;
};

/// All registered baselines, in presentation order.
const std::vector<Baseline>& registry();

/// Looks a baseline up by name; nullptr if unknown.
const Baseline* find_baseline(std::string_view name);

/// find_baseline(name)->config(...); aborts with a message listing the
/// registered names when `name` is unknown (bench/example convenience).
core::SystemConfig config_for(std::string_view name, std::uint32_t partitions,
                              std::uint64_t seed = 1);

/// Registered names joined by `sep` — for generated --help text.
std::string baseline_names(const char* sep = " | ");

}  // namespace dynastar::baselines
