// Configuration presets for the three systems the paper evaluates:
// DynaStar, S-SMR* (static, workload-optimized placement), and DS-SMR
// (naive dynamic relocation). Benches and examples build systems from these
// so that every comparison uses identical network/CPU/Paxos parameters and
// differs only in the protocol under test.
#pragma once

#include "core/config.h"

namespace dynastar::baselines {

/// DynaStar as evaluated in the paper: repartitioning on, borrow/return
/// execution, strict epoch validation, eager plan transfer.
core::SystemConfig dynastar_config(std::uint32_t partitions,
                                   std::uint64_t seed = 1);

/// S-SMR* (§5.5): static partitioning (installed by the benchmark setup with
/// full workload knowledge); multi-partition commands executed by every
/// involved partition after exchanging state copies; no oracle traffic in
/// steady state.
core::SystemConfig ssmr_config(std::uint32_t partitions,
                               std::uint64_t seed = 1);

/// DS-SMR (Le et al., DSN'16): dynamic, but every multi-partition command
/// permanently moves its variables to the target; no workload graph, no
/// optimized plans.
core::SystemConfig dssmr_config(std::uint32_t partitions,
                                std::uint64_t seed = 1);

}  // namespace dynastar::baselines
