#!/usr/bin/env python3
"""Validate a simctl --report=FILE RunReport JSON document.

Checks the structural contract documented in docs/OBSERVABILITY.md:
  * all top-level sections are present with the right JSON types;
  * the six lifecycle phases appear in order with sane values;
  * when the e2e latency came from the trace, the per-phase means sum to
    the end-to-end mean within 5% (they telescope, so in practice the
    difference is double rounding only);
  * the headline series exist and command counts are consistent.

Usage: check_report.py REPORT.json [--min-commands N]
Exit code 0 on success, 1 with a message per violation otherwise.
"""

import argparse
import json
import sys

EXPECTED_SECTIONS = {
    "meta": dict,
    "phases": list,
    "e2e": dict,
    "series": dict,
    "histograms": dict,
    "counters": dict,
    "repartitions": list,
    "chaos": list,
}

EXPECTED_PHASES = ["retry", "resolve", "order", "coordinate", "execute", "reply"]

META_KEYS = ["workload", "mode", "seed", "duration_s", "partitions",
             "clients", "trace_enabled", "trace_events"]


def check(report, min_commands):
    errors = []

    def err(msg):
        errors.append(msg)

    for key, kind in EXPECTED_SECTIONS.items():
        if key not in report:
            err(f"missing top-level section {key!r}")
        elif not isinstance(report[key], kind):
            err(f"section {key!r} is {type(report[key]).__name__}, "
                f"expected {kind.__name__}")
    if errors:
        return errors  # structure too broken to continue

    meta = report["meta"]
    for key in META_KEYS:
        if key not in meta:
            err(f"meta is missing {key!r}")

    phases = report["phases"]
    names = [p.get("name") for p in phases]
    if names != EXPECTED_PHASES:
        err(f"phase names/order {names} != {EXPECTED_PHASES}")
    for p in phases:
        for field in ("mean_ms", "total_ms", "count"):
            if not isinstance(p.get(field), (int, float)):
                err(f"phase {p.get('name')!r} missing numeric {field!r}")
            elif p[field] < 0:
                err(f"phase {p.get('name')!r} has negative {field!r}")

    e2e = report["e2e"]
    for field in ("source", "commands", "mean_ms"):
        if field not in e2e:
            err(f"e2e is missing {field!r}")
    if errors:
        return errors

    commands = e2e["commands"]
    if commands < min_commands:
        err(f"only {commands} completed commands (need >= {min_commands})")

    if e2e["source"] == "trace":
        phase_sum = sum(p["mean_ms"] for p in phases)
        mean = e2e["mean_ms"]
        if mean <= 0:
            err(f"e2e mean_ms is {mean}, expected > 0")
        elif abs(phase_sum - mean) > 0.05 * mean:
            err(f"phase means sum to {phase_sum:.6f} ms but e2e mean is "
                f"{mean:.6f} ms (off by more than 5%)")
        for p in phases:
            if p["count"] != commands:
                err(f"phase {p['name']!r} counted {p['count']} commands, "
                    f"e2e counted {commands}")
    elif meta.get("trace_enabled"):
        err("trace was enabled but e2e.source is not 'trace'")

    for name in ("completed", "executed"):
        if name not in report["series"]:
            err(f"series {name!r} missing from report")
        elif report["series"][name].get("total", 0) <= 0:
            err(f"series {name!r} has non-positive total")
    if not any(name.startswith("server.executed{") for name in report["series"]):
        err("no labeled server.executed{...} series in report")

    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("report", help="path to RunReport JSON")
    parser.add_argument("--min-commands", type=int, default=100,
                        help="minimum completed commands expected (default 100)")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_report: cannot read {args.report}: {exc}", file=sys.stderr)
        return 1

    errors = check(report, args.min_commands)
    if errors:
        for msg in errors:
            print(f"check_report: {msg}", file=sys.stderr)
        return 1

    phases = {p["name"]: p["mean_ms"] for p in report["phases"]}
    summary = " ".join(f"{k}={v:.3f}" for k, v in phases.items())
    print(f"check_report: OK — {int(report['e2e']['commands'])} commands, "
          f"e2e {report['e2e']['mean_ms']:.3f} ms ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
